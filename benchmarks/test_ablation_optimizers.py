"""Ablation: global optimisers vs local/baseline methods on the RSM.

The paper picked SA and GA "because both are capable of global searching";
this bench checks what that buys on the actual fitted surface against
pattern search, multistart Nelder-Mead, grid and random search -- with the
winners *verified on the true simulator*, not just the surrogate.
"""

import numpy as np

from repro.core.paper import paper_objective
from repro.core.report import format_table
from repro.optimize import (
    Problem,
    genetic_algorithm,
    grid_search,
    multistart,
    nelder_mead,
    pattern_search,
    random_search,
    simulated_annealing,
)


def test_optimizer_ablation(benchmark, paper_outcome, write_artifact):
    model = paper_outcome.model
    objective = paper_objective(seed=1)

    def _problem():
        return Problem(
            lambda x: float(model.predict_coded(x)),
            [(-1.0, 1.0)] * 3,
            maximize=True,
        )

    methods = {
        "simulated-annealing": lambda p: simulated_annealing(p, seed=5),
        "genetic-algorithm": lambda p: genetic_algorithm(p, seed=5),
        "pattern-search": lambda p: multistart(p, pattern_search, n_starts=6, seed=5),
        "nelder-mead": lambda p: multistart(p, nelder_mead, n_starts=6, seed=5),
        "grid-search-5": lambda p: grid_search(p, n_levels=5),
        "random-search": lambda p: random_search(p, n_evaluations=500, seed=5),
    }

    results = {}
    for name, run in methods.items():
        problem = _problem()
        res = run(problem)
        verified = objective(np.clip(res.x, -1, 1))
        results[name] = (res, verified)

    benchmark.pedantic(
        lambda: simulated_annealing(_problem(), seed=5), rounds=3, iterations=1
    )

    rsm_best = max(res.value for res, _ in results.values())
    sa_res, sa_verified = results["simulated-annealing"]
    ga_res, ga_verified = results["genetic-algorithm"]
    # The paper's two global methods should be at (or near) the best RSM
    # value found by any method.
    assert sa_res.value >= 0.95 * rsm_best
    assert ga_res.value >= 0.95 * rsm_best
    # And their verified (true simulator) performance beats the original.
    assert sa_verified > paper_outcome.original_transmissions
    assert ga_verified > paper_outcome.original_transmissions

    rows = [
        [
            name,
            f"{res.value:.0f}",
            f"{verified:.0f}",
            res.n_evaluations,
        ]
        for name, (res, verified) in results.items()
    ]
    text = format_table(
        ["method", "RSM optimum", "verified (simulated)", "evaluations"],
        rows,
        title="Optimiser ablation on the fitted response surface",
    )
    write_artifact("ablation_optimizers.txt", text)
