"""Distributed-campaign wall clock of the coordinator (:mod:`repro.coord`).

A coordinated campaign fans N partitions out to N serve processes and
stream-merges the shards; the win over ``--partitions 1`` (one process
running the whole manifest) is that the partitions simulate
*concurrently* on separate machines.

Capacity, not CPU: on a one-core runner N serve processes merely
time-slice the single CPU, so a naive side-by-side wall comparison
would measure the OS scheduler, not the coordinator.  The bench
instead measures every component of the distributed critical path in
isolation and assembles the fleet's wall from them:

- ``baseline_s``: one ``Campaign.run`` over the full manifest in one
  process against one store -- the ``--partitions 1`` path;
- ``partition_wall_s[i]``: partition *i* submitted to its own serve
  process with nothing else on the box -- submit, claim, simulate,
  detect done -- exactly what the *i*-th dedicated machine spends
  (concurrently with the others on real hardware);
- ``submit_s[i]`` / ``merge_s[i]``: the coordinator-side costs around
  each lane, timed against an otherwise idle server: posting the
  manifest, and paging the finished partition's raw rows into the
  local store.

The model charges the single-threaded coordinator honestly and
credits only what genuinely overlaps:

- submits serialise on the coordinator, so partition *i* starts
  ``i * submit_s`` late -- the ``(N-1) * avg(submit_s)`` stagger term;
- simulation runs concurrently, one partition per machine -- the
  ``max(partition_wall_s)`` term;
- the streaming merge imports each partition as it lands, *while the
  later partitions are still simulating*.  The submit stagger spaces
  the finish times further apart than one merge takes (``merge_s``
  < ``submit_s`` here, asserted via the reported numbers), so the
  merges pipeline into the gaps and only the **last** partition's
  merge extends the critical path -- the ``max(merge_s)`` tail term.

``distributed_wall_s`` is the sum of those three terms and must beat
``baseline_s`` by :data:`MIN_SPEEDUP`.  A full ``Coordinator.run``
against the (now pre-warmed) workers then proves the real machinery
produces a byte-identical store -- a speedup over a diverging result
would be meaningless.  Its wall time is reported as
``coordinator_rerun_s`` for transparency but is *not* a model term:
that rerun re-pays every lane's submit/claim/fetch serially on one
CPU, which the per-lane measurements above already account for.
"""

import json
import os
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.coord import Coordinator
from repro.service import ServiceClient
from repro.store import Campaign, ResultStore
from repro.store.merge import import_raw_rows
from repro.system.stochastic import manifest_scenarios, named_family

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")

#: Campaign size under test (the acceptance case).
N_SCENARIOS = 256

#: Serve processes / partitions.
N_WORKERS = 4

#: Per-scenario horizon.
HORIZON_S = 1200.0

#: Scenario options: no stored traces (the bench measures coordination,
#: not bulk trace transfer), and a tightened integration step so each
#: scenario carries meaningful CPU relative to its manifest bytes --
#: the regime a distributed fleet exists for.  dt_max applies to the
#: baseline and every worker alike, so the byte-identity check below
#: compares like with like.
OPTIONS = (("record_traces", False), ("dt_max", 0.2))

#: One fixed seed: the whole bench is reproducible.
SEED = 1

#: Required wall-clock advantage (acceptance criterion).
MIN_SPEEDUP = 2.0

#: Queue poll cadence inside the serve processes.
POLL_S = 0.25


def _manifest():
    family = replace(
        named_family("factory-floor"),
        horizon=HORIZON_S,
        backend="envelope",
        options=OPTIONS,
    )
    return family.manifest(n=N_SCENARIOS, seed=SEED)


def _spawn_serve(db):
    env = dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONUNBUFFERED="1")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--store", db, "--port", "0", "--workers", "1",
            "--poll", str(POLL_S),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = process.stdout.readline()
    assert "serving on http://127.0.0.1:" in banner, banner
    port = int(banner.split("http://127.0.0.1:")[1].split(" ")[0].split("/")[0])
    return process, f"http://127.0.0.1:{port}"


def _stop(process):
    if process.poll() is None:
        process.terminate()
        process.communicate(timeout=30)


def _await_done(client, job_id, deadline_s=600.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        doc = client.job(job_id)
        if doc["status"] == "done":
            return
        assert doc["status"] in ("queued", "running"), doc
        time.sleep(POLL_S)
    raise AssertionError(f"job {job_id} did not finish in {deadline_s:g}s")


def test_distributed_campaign_speedup(tmp_path_factory, write_artifact):
    manifest = _manifest()
    name = f"coord-bench-n{N_SCENARIOS}-s{SEED}"

    # Baseline: the --partitions 1 path.
    baseline_store = ResultStore(
        tmp_path_factory.mktemp("coord-baseline") / "baseline.db"
    )
    t0 = time.perf_counter()
    Campaign.create(
        baseline_store, name, manifest_scenarios(manifest)
    ).run(jobs=1)
    baseline_s = time.perf_counter() - t0
    assert len(baseline_store) == N_SCENARIOS

    worker_dir = tmp_path_factory.mktemp("coord-workers")
    staging = ResultStore(worker_dir / "staging.db")
    submit_walls, partition_walls, merge_walls = [], [], []
    # One lane at a time, its serve process alone on the box: the lane
    # measurements compose into the concurrent fleet's wall below.
    for index in range(1, N_WORKERS + 1):
        process, url = _spawn_serve(
            str(worker_dir / f"worker-{index}.db")
        )
        try:
            client = ServiceClient(url, retries=2, backoff_s=0.2)
            t0 = time.perf_counter()
            doc = client.submit(
                manifest,
                kind="campaign",
                name=name,
                partition=(index, N_WORKERS),
            )
            submit_walls.append(time.perf_counter() - t0)
            _await_done(client, doc["id"])
            partition_walls.append(time.perf_counter() - t0)

            # The coordinator-side import of the landed partition.
            t0 = time.perf_counter()
            rows = [
                tuple(entry["row"])
                for entry in client.iter_results(doc["id"], raw=True)
            ]
            import_raw_rows(staging, rows, source=url)
            merge_walls.append(time.perf_counter() - t0)
        finally:
            _stop(process)

    # The real machinery end-to-end on the warm shards: the merged
    # store must match the single-process answer byte for byte.
    processes, urls = [], []
    try:
        for index in range(1, N_WORKERS + 1):
            process, url = _spawn_serve(
                str(worker_dir / f"worker-{index}.db")
            )
            processes.append(process)
            urls.append(url)
        local = ResultStore(worker_dir / "local.db")
        coordinator = Coordinator(
            local,
            manifest,
            urls,
            name=name,
            partitions=N_WORKERS,
            poll_interval_s=0.1,
        )
        t0 = time.perf_counter()
        status = coordinator.run()
        coordinator_rerun_s = time.perf_counter() - t0
        assert status.complete, status.summary()
    finally:
        for process in processes:
            _stop(process)

    assert set(local.keys()) == set(baseline_store.keys())
    for key in baseline_store.keys():
        assert local.get_payload_text(key) == baseline_store.get_payload_text(
            key
        )

    submit_stagger_s = (
        (N_WORKERS - 1) * sum(submit_walls) / len(submit_walls)
    )
    merge_tail_s = max(merge_walls)
    distributed_wall_s = (
        submit_stagger_s + max(partition_walls) + merge_tail_s
    )
    speedup = baseline_s / distributed_wall_s

    payload = {
        "n_scenarios": N_SCENARIOS,
        "workers": N_WORKERS,
        "horizon_s": HORIZON_S,
        "options": dict(OPTIONS),
        "baseline_s": round(baseline_s, 3),
        "submit_s": [round(wall, 3) for wall in submit_walls],
        "partition_wall_s": [round(wall, 3) for wall in partition_walls],
        "merge_s": [round(wall, 3) for wall in merge_walls],
        "submit_stagger_s": round(submit_stagger_s, 3),
        "merge_tail_s": round(merge_tail_s, 3),
        "distributed_wall_s": round(distributed_wall_s, 3),
        "coordinator_rerun_s": round(coordinator_rerun_s, 3),
        "speedup": round(speedup, 2),
        "note": (
            "distributed wall = serial submit stagger + slowest "
            "partition (each lane measured alone on its own serve "
            "process) + the last partition's merge; earlier merges "
            "stream into the submit-stagger gaps while later "
            "partitions still simulate.  coordinator_rerun_s is the "
            "full Coordinator.run over the pre-warmed workers "
            "(correctness proof, not a model term: one CPU re-pays "
            "every lane's submit/claim serially there)"
        ),
    }
    write_artifact(
        "BENCH_coord.json", json.dumps(payload, indent=2, sort_keys=True)
    )

    assert speedup >= MIN_SPEEDUP, (
        f"{N_WORKERS} workers only reach {speedup:.2f}x over the "
        f"single-process baseline ({distributed_wall_s:.2f}s vs "
        f"{baseline_s:.2f}s); distribution must buy >= {MIN_SPEEDUP:g}x"
    )
