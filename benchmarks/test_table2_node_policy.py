"""Table II: sensor node behaviour based on supercapacitor voltage.

Regenerates the policy table by *driving the simulator* through the three
bands and measuring actual transmission intervals, rather than reading the
policy constants back.
"""

import numpy as np

from repro.core.report import format_table
from repro.system.components import paper_system
from repro.system.config import SystemConfig
from repro.system.envelope import EnvelopeSimulator
from repro.system.vibration import VibrationProfile


def _measured_interval(v_init: float, horizon: float = 360.0) -> float:
    """Observed mean transmission interval at a held storage voltage."""
    parts = paper_system(v_init=v_init)
    # Large watchdog: no tuning; detuned input: no charging, so the band
    # is held by the (slow) sleep discharge alone.
    cfg = SystemConfig(clock_hz=4e6, watchdog_s=1e5, tx_interval_s=5.0)
    sim = EnvelopeSimulator(
        cfg, parts=parts, profile=VibrationProfile.constant(74.0), seed=0,
        record_traces=False,
    )
    res = sim.run(horizon)
    if res.transmissions == 0:
        return float("inf")
    return horizon / res.transmissions


def _rows():
    below = _measured_interval(2.60)
    mid = _measured_interval(2.75)
    fast = _measured_interval(2.85)
    return below, mid, fast


def test_table2_policy_bands(benchmark, write_artifact):
    below, mid, fast = benchmark.pedantic(_rows, rounds=1, iterations=1)
    assert below == float("inf")  # paper: no transmission below 2.7 V
    assert 50.0 <= mid <= 75.0  # paper: every 1 minute between 2.7-2.8 V
    assert 4.5 <= fast <= 6.0  # paper: every 5 s (original design) above 2.8 V
    text = format_table(
        ["supercap voltage", "paper interval", "measured interval (s)"],
        [
            ["below 2.7 V", "no transmission", "no transmission"],
            ["2.7 - 2.8 V", "60 s", f"{mid:.1f}"],
            ["above 2.8 V", "5 s (parameter)", f"{fast:.2f}"],
        ],
        title="Table II (reproduced by simulation)",
    )
    write_artifact("table2_node_policy.txt", text)
