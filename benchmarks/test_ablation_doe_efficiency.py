"""Ablation: D-optimal 10 runs vs the 27-run full factorial (section II-B).

The paper's justification for D-optimal DOE: *"the full factorial design
requires 27 simulations while the D-optimal design only requires 10"*.
The bench quantifies what those 10 runs give up: fit both designs, compare
prediction quality over a dense grid against the true simulator, and the
per-run D-efficiency.
"""

import numpy as np

from repro.core.paper import paper_objective
from repro.core.report import format_table
from repro.doe.criteria import d_efficiency
from repro.doe.doptimal import d_optimal
from repro.doe.factorial import full_factorial
from repro.rsm.model import fit_response_surface
from repro.system.config import paper_parameter_space


def test_doe_efficiency_10_vs_27(benchmark, write_artifact):
    space = paper_parameter_space()
    objective = paper_objective(seed=1)

    def _build_designs():
        opt = d_optimal(3, 10, seed=1, space=space)
        fact = full_factorial(3, 3, space=space)
        return opt, fact

    opt, fact = benchmark.pedantic(_build_designs, rounds=1, iterations=1)

    y_opt = objective.evaluate_design(opt.points)
    y_fact = objective.evaluate_design(fact.points)
    m_opt = fit_response_surface(opt.points, y_opt)
    m_fact = fit_response_surface(fact.points, y_fact)

    # Validation grid: 2 levels off the training lattice + training levels.
    rng = np.random.default_rng(3)
    probe = rng.uniform(-1, 1, size=(24, 3))
    truth = objective.evaluate_design(probe)
    rmse_opt = float(np.sqrt(np.mean((m_opt.predict_coded(probe) - truth) ** 2)))
    rmse_fact = float(
        np.sqrt(np.mean((m_fact.predict_coded(probe) - truth) ** 2))
    )
    spread = float(np.max(truth) - np.min(truth))

    # The 10-run model must stay in the same quality class as the 27-run
    # model (the paper's claim that D-optimal suffices).
    assert rmse_opt < 2.5 * max(rmse_fact, 0.05 * spread)
    assert d_efficiency(opt) > 0.6 * d_efficiency(fact)

    text = format_table(
        ["design", "runs", "D-efficiency", "grid RMSE (tx)"],
        [
            ["d-optimal", opt.n_runs, f"{d_efficiency(opt):.3f}", f"{rmse_opt:.1f}"],
            ["full factorial", fact.n_runs, f"{d_efficiency(fact):.3f}", f"{rmse_fact:.1f}"],
        ],
        title=(
            "DOE ablation: 10-run D-optimal vs 27-run factorial "
            f"(response spread {spread:.0f} tx)"
        ),
    )
    write_artifact("ablation_doe_efficiency.txt", text)
