"""Ablation: throughput vs energy-reserve trade-off (extension).

The single-objective optimum of Table VI drains every harvested joule
into transmissions.  NSGA-II over (transmissions, final stored energy)
exposes the frontier a deployment engineer actually chooses from; the
bench regenerates it and checks the Table VI optimum sits at the
throughput-heavy end.
"""

from repro.core.multiobjective import MultiObjectiveSimulation, explore_tradeoff
from repro.core.objective import SimulationObjective
from repro.core.report import format_table


def test_throughput_reserve_tradeoff(benchmark, paper_outcome, write_artifact):
    sim = MultiObjectiveSimulation(
        objective=SimulationObjective(seed=1, horizon=3600.0)
    )

    def _explore():
        return explore_tradeoff(
            seed=1, population_size=16, n_generations=6, simulation=sim
        )

    entries, result = benchmark.pedantic(_explore, rounds=1, iterations=1)

    assert len(entries) >= 2
    tx = [e.transmissions for e in entries]
    energy = [e.final_energy for e in entries]
    # A genuine frontier: throughput and reserve anti-correlate.
    assert tx == sorted(tx)
    assert all(b <= a + 1e-9 for a, b in zip(energy, energy[1:]))
    # The frontier's throughput end reaches the Table VI optimised scale.
    assert max(tx) >= 0.8 * paper_outcome.best().simulated_value

    rows = [
        [e.config.describe(), f"{e.transmissions:.0f}", f"{e.final_energy:.3f}"]
        for e in entries
    ]
    text = format_table(
        ["configuration", "tx/hour", "final energy (J)"],
        rows,
        title=(
            "Throughput vs reserve Pareto front "
            f"({sim.n_simulations} simulations)"
        ),
    )
    point, objs = result.knee_point()
    text += f"\nknee point: {objs[0]:.0f} tx with {objs[1]:.3f} J reserved"
    write_artifact("ablation_tradeoff.txt", text)


def test_morris_screening(benchmark, write_artifact):
    from repro.core.sensitivity import morris_screening

    obj = SimulationObjective(seed=1, horizon=3600.0)

    def _screen():
        return morris_screening(objective=obj, n_trajectories=5, seed=1)

    effects = benchmark.pedantic(_screen, rounds=1, iterations=1)
    by_name = {e.name: e for e in effects}
    # Fig. 4's message as a global statistic: x3 dominates.
    assert by_name["tx_interval_s"].mu_star == max(e.mu_star for e in effects)

    rows = [
        [e.name, f"{e.mu_star:.1f}", f"{e.sigma:.1f}"] for e in effects
    ]
    text = format_table(
        ["parameter", "mu* (tx per coded unit)", "sigma"],
        rows,
        title="Morris elementary-effects screening (global Fig. 4 complement)",
    )
    write_artifact("ablation_morris_screening.txt", text)
