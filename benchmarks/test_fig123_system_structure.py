"""Figs. 1-3: system block diagrams, verified structurally.

The paper's first three figures are block diagrams: the tunable-harvester
system (Fig. 1), the concrete component diagram (Fig. 2) and the sensor
node internals (Fig. 3).  Their reproduction is the *architecture* of the
assembled model, so the bench asserts that every published block exists,
is wired into the simulation, and participates in the energy flow of one
short run.
"""

from repro.core.report import format_table
from repro.system.components import paper_system
from repro.system.config import ORIGINAL_DESIGN
from repro.system.envelope import EnvelopeSimulator
from repro.system.vibration import VibrationProfile


def _assemble_and_run():
    parts = paper_system(v_init=2.85)
    sim = EnvelopeSimulator(
        ORIGINAL_DESIGN,
        parts=parts,
        profile=VibrationProfile.paper_profile(step_period=120.0),
        seed=1,
        record_traces=False,
    )
    result = sim.run(900.0)
    return parts, sim, result


def test_fig123_block_diagram_structure(benchmark, write_artifact):
    parts, sim, result = benchmark.pedantic(
        _assemble_and_run, rounds=1, iterations=1
    )

    blocks = [
        # (figure block, implementing object, participated-in-run evidence)
        (
            "microgenerator (Fig.1/2)",
            type(parts.microgenerator).__name__,
            result.breakdown.harvested > 0,
        ),
        (
            "power processing / storage (Fig.1/2)",
            type(parts.store).__name__,
            result.breakdown.final_stored > 0,
        ),
        (
            "frequency-tuning actuator (Fig.1/2)",
            type(parts.microgenerator.actuator).__name__,
            result.breakdown.actuator > 0,
        ),
        (
            "accelerometer (Fig.1/2)",
            type(parts.accelerometer).__name__,
            result.breakdown.accelerometer > 0,
        ),
        (
            "microcontroller (Fig.1/2)",
            type(sim.mcu).__name__,
            result.breakdown.mcu_active > 0,
        ),
        (
            "tuning LUT in MCU memory (Fig.2)",
            type(parts.lut).__name__,
            len(parts.lut) == 256,
        ),
        (
            "sensor node + transceiver (Fig.1/3)",
            type(parts.node).__name__,
            result.breakdown.node_tx > 0,
        ),
        (
            "energy-aware tx policy (Fig.3)",
            type(sim.policy).__name__,
            result.transmissions > 0,
        ),
    ]
    for name, impl, participated in blocks:
        assert participated, f"block {name} ({impl}) did not participate"

    text = format_table(
        ["paper block", "implementation", "active in run"],
        [[n, i, "yes"] for n, i, _ in blocks],
        title="Figs. 1-3 block structure (verified by participation)",
    )
    write_artifact("fig123_system_structure.txt", text)
