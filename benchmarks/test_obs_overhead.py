"""Telemetry overhead on the vectorized batch hot path.

The acceptance case, written to ``BENCH_obs.json``: enabling the full
telemetry stack -- the metrics registry *and* the span event sink -- on
a **256-scenario** vectorized family batch must cost less than **3%**
wall time over the same batch with telemetry off.

The measurement alternates off/on rounds and keeps the best of three of
each, so drift (thermal, scheduler) hits both arms alike.  Every round
gets a fresh store and a fresh runner: nothing is served from cache, so
each timed run is the same full simulate-and-persist pass.
"""

import json
import time
from dataclasses import replace

import pytest

import repro.obs as obs
from repro.backends import quiet_options
from repro.core.batch import BatchRunner
from repro.obs.state import STATE
from repro.store import ResultStore
from repro.system.stochastic import named_family
from repro.system.vectorized import numpy_available

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="vectorized backend needs NumPy"
)

#: Acceptance batch size (matches the throughput bench).
N_SCENARIOS = 256
#: Family expansion seed: the whole bench is reproducible.
SEED = 42
#: Telemetry may cost at most this fraction of the untelemetered time.
MAX_OVERHEAD = 0.03
#: Timed rounds per arm; the best (minimum) of each is compared.
ROUNDS = 3


def _scenarios():
    family = named_family("factory-floor")
    return [
        replace(s, options=quiet_options("envelope"))
        for s in family.expand(n=N_SCENARIOS, seed=SEED)
    ]


def _timed_batch(scenarios, tmp_path, label):
    store = ResultStore(tmp_path / f"{label}.db")
    runner = BatchRunner(
        jobs=1, cache_size=0, backend="vectorized", store=store
    )
    started = time.perf_counter()
    results = runner.run(scenarios)
    elapsed = time.perf_counter() - started
    assert len(results) == N_SCENARIOS
    return elapsed


def test_telemetry_overhead_under_three_percent(tmp_path, write_artifact):
    scenarios = _scenarios()
    saved = (STATE.metrics_on, STATE.sink_path)
    off_times, on_times = [], []
    try:
        # One untimed warm-up ahead of the alternation so import costs
        # and allocator warm-up are not charged to the first arm.
        STATE.metrics_on = False
        STATE.close_sink()
        STATE.sink_path = None
        _timed_batch(scenarios, tmp_path, "warmup")
        for i in range(ROUNDS):
            STATE.metrics_on = False
            STATE.close_sink()
            STATE.sink_path = None
            off_times.append(_timed_batch(scenarios, tmp_path, f"off{i}"))

            obs.configure(
                metrics=True, events=str(tmp_path / f"events{i}.jsonl")
            )
            on_times.append(_timed_batch(scenarios, tmp_path, f"on{i}"))
    finally:
        STATE.close_sink()
        STATE.metrics_on, STATE.sink_path = saved

    best_off, best_on = min(off_times), min(on_times)
    overhead = (best_on - best_off) / best_off

    payload = {
        "n_scenarios": N_SCENARIOS,
        "family": "factory-floor",
        "seed": SEED,
        "rounds": ROUNDS,
        "telemetry_off_s": [round(t, 4) for t in off_times],
        "telemetry_on_s": [round(t, 4) for t in on_times],
        "best_off_s": round(best_off, 4),
        "best_on_s": round(best_on, 4),
        "overhead_fraction": round(overhead, 4),
        "max_overhead_fraction": MAX_OVERHEAD,
    }
    write_artifact(
        "BENCH_obs.json", json.dumps(payload, indent=2, sort_keys=True)
    )

    assert overhead < MAX_OVERHEAD, (
        f"telemetry must cost < {MAX_OVERHEAD:.0%} on the vectorized batch "
        f"(measured {overhead:.2%}: off {best_off:.3f} s, on {best_on:.3f} s)"
    )
