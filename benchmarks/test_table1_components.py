"""Table I: system components powered by the energy harvester.

The registry is metadata, so the bench checks fidelity to the published
bill of materials and times the (trivial) registry render -- its presence
keeps the "one bench per table" index complete.
"""

from repro.core.report import format_table
from repro.system.components import COMPONENT_REGISTRY

PAPER_TABLE_I = {
    "microcontroller": ("PIC16F884", "Microchip"),
    "accelerometer": ("LIS3L06AL", "STMicroelectronics"),
    "sensor_node": ("eZ430-RF2500", "Texas Instruments"),
}


def _render() -> str:
    rows = [
        [name, entry["type"], entry["make"]]
        for name, entry in sorted(COMPONENT_REGISTRY.items())
    ]
    return format_table(
        ["component", "type", "make"], rows, title="Table I (reproduced)"
    )


def test_table1_component_registry(benchmark, write_artifact):
    text = benchmark.pedantic(_render, rounds=5, iterations=1)
    for name, (ctype, make) in PAPER_TABLE_I.items():
        assert COMPONENT_REGISTRY[name]["type"] == ctype
        assert COMPONENT_REGISTRY[name]["make"] == make
    assert "Haydon" in COMPONENT_REGISTRY["linear_actuator"]["make"]
    write_artifact("table1_components.txt", text)
