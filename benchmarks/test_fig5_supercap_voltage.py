"""Fig. 5: supercapacitor voltage of the original and optimised designs.

The paper's figure shows the storage voltage over the hour for the
original and the SA-optimised configurations: both charge up initially,
dip visibly at the retunes (the actuator burns hundreds of mJ), and the
optimised trace rides lower because its surplus is converted into
transmissions.  The bench regenerates both series as CSV and asserts
those features.
"""

import numpy as np

from repro.core.report import series_to_csv


def test_fig5_voltage_traces(
    benchmark, original_result, paper_sa_result, write_artifact
):
    grid = np.linspace(0.0, 3600.0, 721)

    def _series():
        return (
            original_result.traces["v_store"].resample(grid),
            paper_sa_result.traces["v_store"].resample(grid),
        )

    v_orig, v_opt = benchmark.pedantic(_series, rounds=5, iterations=1)

    # Both start at the calibrated initial voltage and charge up.
    assert v_orig[0] == v_opt[0]
    assert np.max(v_orig) > 2.8
    # Retune dips exist in the original trace (>30 mV drops).
    drops = np.diff(v_orig)
    assert np.min(drops) < -0.02
    # The optimised design converts surplus into transmissions: in the
    # second half of the hour its voltage stays at/below the original's.
    late = grid >= 1800.0
    assert np.mean(v_opt[late]) <= np.mean(v_orig[late]) + 0.02
    # Both stay within the physical window.
    for trace in (v_orig, v_opt):
        assert np.min(trace) > 2.0
        assert np.max(trace) < 3.6

    csv = series_to_csv(
        {"time_s": grid, "v_original": v_orig, "v_optimised": v_opt}
    )
    write_artifact("fig5_supercap_voltage.csv", csv)
    summary = (
        "Fig. 5 summary\n"
        f"original:  min {np.min(v_orig):.3f} V, max {np.max(v_orig):.3f} V, "
        f"final {v_orig[-1]:.3f} V\n"
        f"optimised: min {np.min(v_opt):.3f} V, max {np.max(v_opt):.3f} V, "
        f"final {v_opt[-1]:.3f} V"
    )
    write_artifact("fig5_summary.txt", summary)
