"""Table III: current draw of the sensor node, and the eq. 8 resistances.

Regenerates the characterisation: per-phase currents, the per-transmission
energy at the 2.8 V rail, and the equivalent resistances.
"""

from repro.core.report import format_table
from repro.node.ez430 import SensorNode

PAPER = {
    "sleep_current": 0.5e-6,
    "wakeup": (1e-3, 4.5e-3),
    "sensing": (1.5e-3, 13.4e-3),
    "transmission": (2e-3, 26.8e-3),
    "energy_per_tx": 227e-6,
    "r_transmit": 167.0,
    "r_sleep": 5.8e6,
}


def _characterise():
    node = SensorNode()
    e_tx = node.transmission_energy(2.8)
    r_tx, r_sleep = node.equivalent_resistances(2.8)
    return node, e_tx, r_tx, r_sleep


def test_table3_current_draw(benchmark, write_artifact):
    node, e_tx, r_tx, r_sleep = benchmark.pedantic(
        _characterise, rounds=20, iterations=1
    )
    p = node.phases
    assert p.wakeup_time == PAPER["wakeup"][0]
    assert p.wakeup_current == PAPER["wakeup"][1]
    assert p.sensing_current == PAPER["sensing"][1]
    assert p.transmit_current == PAPER["transmission"][1]
    # Energy per transmission within 5% of the paper's 227 uJ.
    assert abs(e_tx - PAPER["energy_per_tx"]) / PAPER["energy_per_tx"] < 0.05
    # eq. 8 equivalent resistances.
    assert abs(r_tx - PAPER["r_transmit"]) / PAPER["r_transmit"] < 0.05
    assert abs(r_sleep - PAPER["r_sleep"]) / PAPER["r_sleep"] < 0.05

    text = format_table(
        ["operation", "time", "current", "paper"],
        [
            ["sleep", "-", f"{node.sleep_current * 1e6:.1f} uA", "0.5 uA"],
            ["wake-up", "1 ms", f"{p.wakeup_current * 1e3:.1f} mA", "4.5 mA"],
            ["sensing", "1.5 ms", f"{p.sensing_current * 1e3:.1f} mA", "13.4 mA"],
            ["transmission", "2 ms", f"{p.transmit_current * 1e3:.1f} mA", "26.8 mA"],
            ["energy/tx @2.8V", "4.5 ms", f"{e_tx * 1e6:.0f} uJ", "227 uJ"],
            ["R transmit (eq.8)", "-", f"{r_tx:.0f} ohm", "167 ohm"],
            ["R sleep (eq.8)", "-", f"{r_sleep / 1e6:.1f} Mohm", "5.8 Mohm"],
        ],
        title="Table III (reproduced)",
    )
    write_artifact("table3_node_currents.txt", text)
