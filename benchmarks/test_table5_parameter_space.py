"""Table V: the optimisation parameter space and its coded variables."""

import numpy as np

from repro.core.report import format_table
from repro.system.config import paper_parameter_space

PAPER_RANGES = {
    "clock_hz": (125e3, 8e6, "x1"),
    "watchdog_s": (60.0, 600.0, "x2"),
    "tx_interval_s": (0.005, 10.0, "x3"),
}


def _build():
    space = paper_parameter_space()
    coded_low = space.to_coded([p.low for p in space.parameters])
    coded_high = space.to_coded([p.high for p in space.parameters])
    return space, coded_low, coded_high


def test_table5_parameter_space(benchmark, write_artifact):
    space, coded_low, coded_high = benchmark.pedantic(
        _build, rounds=20, iterations=1
    )
    assert np.allclose(coded_low, -1.0)
    assert np.allclose(coded_high, 1.0)
    rows = []
    for p in space.parameters:
        low, high, symbol = PAPER_RANGES[p.name]
        assert (p.low, p.high) == (low, high)
        assert p.coded_symbol == symbol
        rows.append([p.name, f"{p.low:g} - {p.high:g}", p.unit, p.coded_symbol])
    text = format_table(
        ["parameter", "value range", "unit", "coded symbol"],
        rows,
        title="Table V (reproduced)",
    )
    write_artifact("table5_parameter_space.txt", text)
