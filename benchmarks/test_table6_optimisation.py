"""Table VI: optimisation results -- the paper's headline.

Paper values: original 405 transmissions/hour; Simulated Annealing
optimum 899 (8 MHz / 60 s / 0.005 s); Genetic Algorithm optimum 894
(125 kHz / 600 s / 3.065 s) -- i.e. both global optimisers roughly
*double* the figure of merit.  The bench regenerates the table from our
flow and asserts the shape: >=1.6x improvement, SA and GA within 25% of
each other, and both optima at sub-second transmission intervals.
"""

from repro.core.report import render_table_vi

PAPER_ORIGINAL = 405
PAPER_SA = 899
PAPER_GA = 894


def test_table6_optimisation(benchmark, paper_outcome, write_artifact):
    text = benchmark.pedantic(
        lambda: render_table_vi(paper_outcome), rounds=10, iterations=1
    )

    original = paper_outcome.original_transmissions
    values = {e.method: e.simulated_value for e in paper_outcome.optima}
    sa = values["simulated-annealing"]
    ga = values["genetic-algorithm"]

    # Shape checks against the published table:
    assert 300 <= original <= 600  # paper: 405
    assert sa / original >= 1.6 and ga / original >= 1.6  # paper: ~2.2x
    assert abs(sa - ga) <= 0.25 * max(sa, ga)  # paper: 899 vs 894
    for entry in paper_outcome.optima:
        assert entry.config.tx_interval_s < 1.0  # both optima drive x3 down

    text += (
        f"\n\npaper:  original {PAPER_ORIGINAL}, SA {PAPER_SA}, GA {PAPER_GA}"
        f" (2.22x)\nours:   original {original:.0f}, SA {sa:.0f}, GA {ga:.0f}"
        f" ({max(sa, ga) / original:.2f}x)"
    )
    write_artifact("table6_optimisation.txt", text)


def test_table6_simulating_papers_published_optimum(
    benchmark, original_result, paper_sa_result, write_artifact
):
    """Replay the paper's own SA configuration through our simulator."""

    def _ratio():
        return paper_sa_result.transmissions / original_result.transmissions

    ratio = benchmark.pedantic(_ratio, rounds=10, iterations=1)
    # The paper's published optimum must also roughly double our original.
    assert ratio >= 1.5
    write_artifact(
        "table6_paper_configs_replay.txt",
        "paper configurations replayed through our simulator\n"
        f"original (4 MHz/320 s/5 s):      {original_result.transmissions} tx "
        f"(paper: {PAPER_ORIGINAL})\n"
        f"paper SA (8 MHz/60 s/0.005 s):   {paper_sa_result.transmissions} tx "
        f"(paper: {PAPER_SA})\n"
        f"ratio: {ratio:.2f}x (paper: {PAPER_SA / PAPER_ORIGINAL:.2f}x)",
    )
