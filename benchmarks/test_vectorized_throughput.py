"""Throughput of the vectorized batch envelope backend.

The acceptance case, written to ``BENCH_vectorized.json``: one
**1k-scenario** stochastic-family batch on the vectorized backend must
be at least **25x faster** than running the same scenarios serially on
the scalar envelope backend, with byte-identical results.

Workload: the ``factory-floor`` family on the fine integration grid
(``dt_max=0.5`` s -- four integration steps per default-grid step).
Per-step integration work is what the lockstep engine amortises across
the whole batch, while tuning sessions (rare, RNG-stream-bound) run
through scalar machinery on both sides; the fine grid is therefore the
regime the vectorized backend exists for, and the regime where the
paper-scale studies that need 1k-scenario families actually run.

Measurement protocol (container timing noise is +-15% run to run, so
the bench is built to be insensitive to it):

- the serial envelope side is timed on a deterministic 32-lane stride
  of the family (lanes 0, 32, 64, ...) and extrapolated by lane count
  -- scenario costs are iid across the family, and timing all 1024
  serially would take minutes per rep;
- both sides are timed in interleaved repetitions (vec, serial, vec,
  serial, ...) so a slow stretch of the container hits both sides, and
  the reported ratio is the ratio of per-side **medians**;
- byte-identity checks (scalar envelope vs batch payloads, and
  vectorized store rows written serially vs via the batch path) run
  outside the timed sections.
"""

import gc
import json
import statistics
import time
from dataclasses import replace

import pytest

from repro.backends import get_backend, quiet_options
from repro.core.batch import BatchRunner
from repro.store import ResultStore
from repro.system.stochastic import named_family
from repro.system.vectorized import numpy_available, simulate_batch

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="vectorized backend needs NumPy"
)

#: Acceptance batch size (the issue's 1k-scenario family).
N_SCENARIOS = 1024
#: Family expansion seed: the whole bench is reproducible.
SEED = 42
#: Required vectorized-batch over serial-envelope advantage.
MIN_SPEEDUP = 25.0
#: Fine integration grid (seconds): the per-step-dominated regime the
#: batch engine is built for (the family default is 2.0).
DT_MAX = 0.5
#: Serial lanes actually timed (strided across the family, extrapolated).
SERIAL_STRIDE = 32
#: Interleaved timing repetitions per side.
N_REPS = 3
#: Scenarios re-run one at a time for the store byte-identity check
#: (serial vectorized runs cost scalar-ish time, so the subset is small).
N_STORE_CHECK = 4


def _scenarios():
    family = named_family("factory-floor")
    options = dict(quiet_options("envelope"), dt_max=DT_MAX)
    return [
        replace(s, options=options)
        for s in family.expand(n=N_SCENARIOS, seed=SEED)
    ]


def test_vectorized_batch_speedup_and_byte_identity(tmp_path, write_artifact):
    scenarios = _scenarios()
    assert len(scenarios) == N_SCENARIOS
    serial_subset = scenarios[::SERIAL_STRIDE]
    envelope = get_backend("envelope")

    # Warm both paths before timing (imports, the shared physics cache).
    envelope.simulate(serial_subset[0])
    simulate_batch(scenarios[:8])

    # Interleaved raw-execution timing: each rep times the full
    # vectorized batch, then the strided serial subset.
    vec_times, serial_lane_times = [], []
    batch_results = None
    serial_results = None
    for _ in range(N_REPS):
        gc.collect()
        started = time.perf_counter()
        batch_results = simulate_batch(scenarios)
        vec_times.append(time.perf_counter() - started)

        gc.collect()
        started = time.perf_counter()
        serial_results = [envelope.simulate(s) for s in serial_subset]
        serial_lane_times.append(
            (time.perf_counter() - started) / len(serial_subset)
        )

    vectorized_s = statistics.median(vec_times)
    serial_per_lane_s = statistics.median(serial_lane_times)
    serial_envelope_s = serial_per_lane_s * N_SCENARIOS
    speedup = serial_envelope_s / vectorized_s

    # Byte-identity, scalar envelope vs the batch, on the timed subset:
    # full payloads (counters, tuning log, final state), not just
    # headline numbers.
    for lane, serial_result in zip(range(0, N_SCENARIOS, SERIAL_STRIDE),
                                   serial_results):
        assert json.dumps(
            serial_result.to_payload(), sort_keys=True
        ) == json.dumps(batch_results[lane].to_payload(), sort_keys=True), (
            f"lane {lane}: serial envelope and vectorized batch payloads "
            f"differ"
        )

    # Store byte-identity: rows written through the batch path equal the
    # rows a one-at-a-time vectorized pass writes for the same keys.
    vec_scenarios = [replace(s, backend="vectorized") for s in scenarios]
    batch_store = ResultStore(tmp_path / "vectorized-batch.db")
    for scenario, result in zip(vec_scenarios[:N_STORE_CHECK], batch_results):
        batch_store.put(scenario, result, wall_time_s=0.0)
    serial_store = ResultStore(tmp_path / "vectorized-serial.db")
    serial_runner = BatchRunner(
        jobs=1, cache_size=0, backend="vectorized", store=serial_store
    )
    for scenario in vec_scenarios[:N_STORE_CHECK]:
        serial_runner.run_one(scenario)
    keys = [s.cache_key() for s in vec_scenarios[:N_STORE_CHECK]]
    assert set(keys) <= set(serial_store.keys())
    mismatched = [
        key
        for key in keys
        if batch_store.get_payload_text(key) != serial_store.get_payload_text(key)
    ]
    assert not mismatched, (
        f"{len(mismatched)} of {len(keys)} store rows differ between "
        f"batch and serial vectorized execution"
    )

    payload = {
        "n_scenarios": N_SCENARIOS,
        "family": "factory-floor",
        "seed": SEED,
        "dt_max_s": DT_MAX,
        "reps": N_REPS,
        "serial_lanes_timed": len(serial_subset),
        "serial_per_lane_s": round(serial_per_lane_s, 4),
        "serial_envelope_s": round(serial_envelope_s, 3),
        "vectorized_batch_s": round(vectorized_s, 3),
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "payload_lanes_byte_identical": len(serial_subset),
        "store_rows_byte_identical": len(keys),
    }
    write_artifact(
        "BENCH_vectorized.json", json.dumps(payload, indent=2, sort_keys=True)
    )

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized batch must be >= {MIN_SPEEDUP}x faster than serial "
        f"envelope (measured {speedup:.2f}x: serial {serial_envelope_s:.2f} s "
        f"extrapolated from {len(serial_subset)} lanes, vectorized "
        f"{vectorized_s:.2f} s)"
    )
