"""Throughput of the vectorized batch envelope backend.

The acceptance case, written to ``BENCH_vectorized.json``:

- ``BatchRunner(backend="vectorized")`` on a **256-scenario** stochastic
  family batch must be at least **5x faster** than running the same
  scenarios serially on the scalar envelope backend, and
- for keys present in both stores, the canonical result rows written
  through the batch path and through one-at-a-time execution must be
  **byte-identical** (the batch engine is an optimisation, not a new
  source of truth).

The speedup comes from amortisation: the lockstep engine pays the
interpreter cost of an integration step once per batch instead of once
per scenario, while tuning sessions (rare, RNG-consuming) still run
through the scalar machinery.  A batch of one therefore has *no*
advantage -- the matrix in the README says so -- which is why the
byte-identity cross-check uses a small serial subset.
"""

import json
import time
from dataclasses import replace

import pytest

from repro.backends import quiet_options
from repro.core.batch import BatchRunner
from repro.store import ResultStore
from repro.system.stochastic import named_family
from repro.system.vectorized import numpy_available

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="vectorized backend needs NumPy"
)

#: Acceptance batch size (the issue's 256-scenario family batch).
N_SCENARIOS = 256
#: Family expansion seed: the whole bench is reproducible.
SEED = 42
#: Required vectorized-batch over serial-envelope advantage.
MIN_SPEEDUP = 5.0
#: Scenarios re-run one at a time for the byte-identity cross-check
#: (serial vectorized runs cost scalar-ish time, so the subset is small).
N_SERIAL_CHECK = 8


def _scenarios():
    family = named_family("factory-floor")
    return [
        replace(s, options=quiet_options("envelope"))
        for s in family.expand(n=N_SCENARIOS, seed=SEED)
    ]


def test_vectorized_batch_speedup_and_store_identity(
    tmp_path, write_artifact
):
    scenarios = _scenarios()
    assert len(scenarios) == N_SCENARIOS

    # Serial envelope reference (the status quo every driver used to pay).
    envelope_store = ResultStore(tmp_path / "envelope.db")
    envelope_runner = BatchRunner(
        jobs=1, cache_size=0, backend="envelope", store=envelope_store
    )
    started = time.perf_counter()
    envelope_results = [envelope_runner.run_one(s) for s in scenarios]
    envelope_s = time.perf_counter() - started

    # One vectorized batch through the same runner machinery.
    batch_store = ResultStore(tmp_path / "vectorized.db")
    batch_runner = BatchRunner(
        jobs=1, cache_size=0, backend="vectorized", store=batch_store
    )
    started = time.perf_counter()
    batch_results = batch_runner.run(scenarios)
    vectorized_s = time.perf_counter() - started

    speedup = envelope_s / vectorized_s

    # Same physics: the batch agrees with the scalar reference.
    assert [r.transmissions for r in batch_results] == [
        r.transmissions for r in envelope_results
    ]
    assert [r.final_voltage for r in batch_results] == [
        r.final_voltage for r in envelope_results
    ]

    # Byte-identity: a one-at-a-time vectorized pass over a subset must
    # write exactly the rows the batch pass wrote for those keys.
    serial_store = ResultStore(tmp_path / "vectorized-serial.db")
    serial_runner = BatchRunner(
        jobs=1, cache_size=0, backend="vectorized", store=serial_store
    )
    subset = scenarios[:N_SERIAL_CHECK]
    for scenario in subset:
        serial_runner.run_one(scenario)
    resolved = serial_runner.resolve_seeds(subset)
    overlap = [s.cache_key() for s in resolved]
    assert set(overlap) <= set(batch_store.keys())
    mismatched = [
        key
        for key in overlap
        if batch_store.get_payload_text(key) != serial_store.get_payload_text(key)
    ]
    assert not mismatched, (
        f"{len(mismatched)} of {len(overlap)} overlapping store rows "
        f"differ between batch and serial vectorized execution"
    )

    # Backend identity is part of the row key: the envelope pass and the
    # vectorized pass share no keys, so neither can squat the other's rows.
    assert not set(envelope_store.keys()) & set(batch_store.keys())

    payload = {
        "n_scenarios": N_SCENARIOS,
        "family": "factory-floor",
        "seed": SEED,
        "serial_envelope_s": round(envelope_s, 3),
        "vectorized_batch_s": round(vectorized_s, 3),
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "overlap_keys_checked": len(overlap),
        "overlap_rows_byte_identical": not mismatched,
    }
    write_artifact(
        "BENCH_vectorized.json", json.dumps(payload, indent=2, sort_keys=True)
    )

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized batch must be >= {MIN_SPEEDUP}x faster than serial "
        f"envelope (measured {speedup:.2f}x: envelope {envelope_s:.2f} s, "
        f"vectorized {vectorized_s:.2f} s)"
    )
