"""Fig. 4: design space exploration -- one-parameter sweeps.

The figure plots each parameter against the number of transmissions while
holding the other two at their centre values (RSM prediction and design
space).  The bench regenerates those three series from both the fitted
model and the true simulator, writes them as CSV, and asserts the trend
the paper's figure shows: transmissions fall steeply with the
transmission interval and react comparatively weakly to the clock.
"""

import numpy as np

from repro.core.paper import paper_objective
from repro.core.report import design_space_sweep, series_to_csv
from repro.system.config import paper_parameter_space


def test_fig4_design_space_sweeps(benchmark, paper_outcome, write_artifact):
    objective = paper_objective(seed=1)

    def _sweep():
        return design_space_sweep(
            paper_outcome.model, objective=objective, n_points=21
        )

    sweeps = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    assert set(sweeps) == {"clock_hz", "watchdog_s", "tx_interval_s"}

    # Simulated truth: the x3 sweep swings far more than the x1 sweep.
    swing = {
        name: float(np.max(entry["sim"]) - np.min(entry["sim"]))
        for name, entry in sweeps.items()
    }
    assert swing["tx_interval_s"] > 2.0 * swing["clock_hz"]
    # Transmissions fall as the interval grows (coded -1 -> +1).
    x3 = sweeps["tx_interval_s"]["sim"]
    assert x3[0] > x3[-1]
    # RSM tracks the simulated response ordering at the extremes.
    rsm = sweeps["tx_interval_s"]["rsm"]
    assert rsm[0] > rsm[-1]

    for name, entry in sweeps.items():
        csv = series_to_csv(
            {
                "coded": entry["coded"],
                "natural": entry["natural"],
                "rsm_prediction": entry["rsm"],
            }
        )
        csv_sim = series_to_csv(
            {"coded": entry["sim_coded"], "simulated": entry["sim"]}
        )
        write_artifact(f"fig4_sweep_{name}.csv", csv)
        write_artifact(f"fig4_sweep_{name}_simulated.csv", csv_sim)
