"""Warm-resume performance of store-backed studies (:mod:`repro.core.study`).

One measurement, written to ``BENCH_study.json``: resuming a completed
study from its result store must be at least 10x faster than the cold
run that simulated it.  The cold run pays every design-point and
verification simulation; the warm resume pays only store reads plus the
(cheap, deterministic) surrogate fit and surface maximisation -- the
whole reason the study journal exists.
"""

import json
import time

from repro.core.study import Study, paper_study_spec
from repro.store import ResultStore

#: Simulated seconds per design point: long enough that simulation
#: dominates, short enough to keep the bench snappy.
HORIZON = 1800.0

#: Trimmed optimiser budgets: the surface maximisation runs in *both*
#: passes, so it must stay well below one simulation's cost for the
#: speedup to measure the store, not the optimisers.
OPTIMIZER_OPTIONS = {
    "simulated-annealing": {"n_iterations": 300},
    "genetic-algorithm": {"population_size": 12, "n_generations": 12},
}

#: Required cold/warm advantage (acceptance criterion).
MIN_SPEEDUP = 10.0


def test_warm_resume_at_least_10x_faster_than_cold(tmp_path, write_artifact):
    from dataclasses import replace

    spec = replace(
        paper_study_spec(seed=1, horizon=HORIZON),
        name="bench-resume",
        optimizer_options=OPTIMIZER_OPTIONS,
    )
    store = ResultStore(tmp_path / "bench.db")

    cold_study = Study(spec, store=store)
    t0 = time.perf_counter()
    cold = cold_study.run()
    cold_s = time.perf_counter() - t0
    assert cold_study.status().complete

    # A fresh Study models a new process: empty caches, same disk.
    t0 = time.perf_counter()
    warm = Study.resume(store, "bench-resume")
    warm_s = time.perf_counter() - t0

    assert warm.summary() == cold.summary()
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    payload = {
        "design_points": cold.design.n_runs,
        "horizon_s": HORIZON,
        "cold_run_s": round(cold_s, 6),
        "warm_resume_s": round(warm_s, 6),
        "speedup": round(speedup, 2),
        "stored_simulations": cold_study.status().total,
    }
    write_artifact("BENCH_study.json", json.dumps(payload, indent=2, sort_keys=True))

    assert speedup >= MIN_SPEEDUP, (
        f"warm resume only {speedup:.1f}x faster than cold "
        f"(cold {cold_s:.3f}s, warm {warm_s:.3f}s); resumption must beat "
        f"re-simulation by >= {MIN_SPEEDUP:g}x"
    )
