"""Eq. (9): the quadratic response surface fitted to the D-optimal runs.

The coefficients cannot match the paper's absolute values (their testbed
is not ours), so the bench asserts the *structure* the paper's model
shows: the transmission-interval main effect (x3) dominates and is
negative, and reports our coefficients next to the published ones.
"""

import numpy as np

from repro.core.report import format_table

#: The paper's eq. (9) coefficients, Table V coding, term order of eq. (4).
PAPER_EQ9 = {
    "1": 484.02,
    "x1": -121.79,
    "x2": -16.77,
    "x3": -208.43,
    "x1^2": 120.98,
    "x2^2": 106.69,
    "x3^2": -69.75,
    "x1*x2": -34.23,
    "x1*x3": -121.79,
    "x2*x3": 32.54,
}


def test_eq9_response_surface(benchmark, paper_outcome, write_artifact):
    model = paper_outcome.model

    def _refit():
        from repro.rsm.model import fit_response_surface

        return fit_response_surface(
            paper_outcome.design.points, paper_outcome.responses, kind="quadratic"
        )

    refit = benchmark.pedantic(_refit, rounds=10, iterations=1)
    assert np.allclose(refit.coefficients, model.coefficients)

    names = model.basis.term_names(["x1", "x2", "x3"])
    ours = dict(zip(names, model.coefficients))

    # Shape assertions mirroring the paper's model structure:
    assert ours["x3"] < 0, "more interval must mean fewer transmissions"
    linear = [abs(ours["x1"]), abs(ours["x2"]), abs(ours["x3"])]
    assert abs(ours["x3"]) == max(linear), "x3 dominates the linear effects"
    # The intercept sits at the centre-point response scale (hundreds).
    assert 100 < ours["1"] < 1500

    rows = [
        [name, f"{ours[name]:.2f}", f"{PAPER_EQ9[name]:.2f}"] for name in names
    ]
    text = format_table(
        ["term", "ours", "paper eq.(9)"],
        rows,
        title="Eq. (9) quadratic response surface (coded variables)",
    )
    text += "\n\nmodel: y = " + model.to_string(["x1", "x2", "x3"])
    text += f"\nfit: R^2 = {paper_outcome.fit_diagnostics.r2:.4f} (10 runs, 10 terms: saturated, as in the paper)"
    write_artifact("eq9_response_surface.txt", text)
