"""Ablation: envelope (accelerated) vs detailed (MNA) backend.

The paper relies on an accelerated linearised simulation for hour-long
runs (their ref [9]); our envelope model plays that role.  The bench
compares net charging power between both backends on short windows and
times one detailed window -- documenting the ~10^3-10^4x speed gap that
motivates the acceleration.
"""

import time

import numpy as np

from repro.core.report import format_table
from repro.system.components import paper_system
from repro.system.config import SystemConfig
from repro.system.detailed import DetailedSimulator
from repro.system.vibration import VibrationProfile
from repro.units import mg_to_mps2

WINDOW = 1.5  # seconds of simulated time per detailed run


def _detailed_power(v_init: float) -> float:
    parts = paper_system()
    cfg = SystemConfig(clock_hz=4e6, watchdog_s=1e4, tx_interval_s=1e3)
    sim = DetailedSimulator(
        cfg, parts=parts, profile=VibrationProfile.constant(64.0), v_init=v_init
    )
    res = sim.run(WINDOW)
    c = parts.store.capacitance
    return (res.final_voltage**2 - v_init**2) * 0.5 * c / WINDOW


def test_backend_agreement(benchmark, write_artifact):
    parts = paper_system()
    accel = mg_to_mps2(60.0)

    rows = []
    ratios = []
    for v in (2.60, 2.80, 2.95):
        t0 = time.perf_counter()
        p_detail = _detailed_power(v)
        wall = time.perf_counter() - t0
        p_env = parts.microgenerator.charging_power(64.0, accel, v)
        ratios.append(p_detail / p_env)
        rows.append(
            [
                f"{v:.2f} V",
                f"{p_env * 1e6:.0f} uW",
                f"{p_detail * 1e6:.0f} uW",
                f"{p_detail / p_env:.2f}",
                f"{wall / WINDOW:.0f}x realtime",
            ]
        )

    benchmark.pedantic(lambda: _detailed_power(2.8), rounds=1, iterations=1)

    # Same order of magnitude across the operating window, and both
    # backends agree charging power falls as the store fills.
    assert all(0.3 < r < 3.0 for r in ratios)
    detailed_powers = [float(r[2].split()[0]) for r in rows]
    assert detailed_powers[0] > detailed_powers[-1]

    text = format_table(
        ["store voltage", "envelope", "detailed MNA", "ratio", "detailed cost"],
        rows,
        title="Backend agreement: net charging power at 64 Hz / 60 mg",
    )
    write_artifact("ablation_backend_agreement.txt", text)
