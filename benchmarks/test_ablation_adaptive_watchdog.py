"""Ablation: fixed vs adaptive (exponential-backoff) watchdog.

The paper treats the watchdog period as a static design parameter, which
bakes in the reaction-latency / idle-check-energy trade-off.  The
extension lets the period back off while the environment is steady and
snap back after a retune.  The bench compares both schedulers at several
fixed periods under the paper's stepping profile: adaptive should match
or beat every fixed setting because it buys short latency only when
something actually changed.
"""

from repro.control.adaptive import AdaptiveEnvelopeSimulator
from repro.core.report import format_table
from repro.system.components import paper_system
from repro.system.config import SystemConfig
from repro.system.envelope import EnvelopeSimulator
from repro.system.vibration import VibrationProfile


def _run(simulator_cls, watchdog_s: float) -> "tuple[int, int]":
    cfg = SystemConfig(clock_hz=4e6, watchdog_s=watchdog_s, tx_interval_s=0.02)
    sim = simulator_cls(
        cfg,
        parts=paper_system(),
        profile=VibrationProfile.paper_profile(),
        seed=1,
        record_traces=False,
    )
    res = sim.run(3600.0)
    return res.transmissions, len(res.tuning_events)


def test_adaptive_watchdog_ablation(benchmark, write_artifact):
    rows = []
    fixed_results = {}
    for period in (60.0, 320.0, 600.0):
        tx, wakeups = _run(EnvelopeSimulator, period)
        fixed_results[period] = tx
        rows.append([f"fixed {period:g} s", f"{tx}", f"{wakeups}"])
    adaptive_tx, adaptive_wakeups = benchmark.pedantic(
        lambda: _run(AdaptiveEnvelopeSimulator, 600.0), rounds=1, iterations=1
    )
    rows.append(
        [
            "adaptive 60-600 s",
            f"{adaptive_tx}",
            f"{adaptive_wakeups}",
        ]
    )

    # The adaptive schedule must be competitive with the best fixed one
    # and clearly better than the slowest fixed one.
    best_fixed = max(fixed_results.values())
    assert adaptive_tx >= 0.93 * best_fixed
    assert adaptive_tx >= fixed_results[600.0]

    text = format_table(
        ["watchdog schedule", "transmissions/hour", "wake-ups"],
        rows,
        title="Adaptive vs fixed watchdog (stepping profile, 20 ms interval)",
    )
    write_artifact("ablation_adaptive_watchdog.txt", text)
