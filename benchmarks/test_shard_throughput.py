"""Aggregate write capacity of the sharded store (:mod:`repro.store.shard`).

A single-file store has exactly one write lock, so its aggregate intake
is one writer's throughput no matter how many writers queue on it.  A
sharded store carries one lock *per shard file*, so its aggregate
capacity -- the rate N truly concurrent writers (separate processes or
machines, as in ``Campaign.run_partitioned``) can sustain together --
is the **sum** of the per-shard rates.

This bench measures both sides on the same batch of rows and writes
``BENCH_shard.json``:

- ``single_file_rows_per_s``: wall throughput of ``WRITERS`` concurrent
  threads all writing the batch into one store file (they serialise on
  the single write lock, which is the point);
- ``shard_rows_per_s``: each shard's own intake rate, measured
  independently on its slice of the batch;
- ``aggregate_capacity_rows_per_s``: their sum -- what the same
  ``WRITERS`` writers achieve once each owns its own shard file;
- ``speedup``: aggregate capacity over the single-file wall rate, which
  must clear :data:`MIN_SPEEDUP`.

Capacity, not CPU: on a one-core runner the threads of the single-file
measurement are also GIL-serialised, so the comparison isolates exactly
the resource sharding multiplies (independent write locks), which is
what partitioned campaigns across processes exploit.  Timings take the
best of :data:`ROUNDS` rounds after a warmup pass, each round against
fresh store files.
"""

import json
import threading
import time

from repro.backends import quiet_options, run
from repro.scenario import PartsSpec, Scenario
from repro.store import ResultStore, ShardedResultStore, shard_index
from repro.system.config import SystemConfig

#: Shard count under test (the default layout, and the acceptance case).
N_SHARDS = 4

#: Concurrent writers hammering the single-file store.
WRITERS = 4

#: Rows per measurement: enough that per-shard slices (~1/4 of this)
#: time well above clock resolution, small enough to keep rounds snappy.
N_ROWS = 240

#: Timing rounds (best-of, after one untimed warmup round).
ROUNDS = 3

#: Required aggregate-capacity advantage (acceptance criterion).
MIN_SPEEDUP = 3.0


def _rows():
    """(scenario, result) pairs with distinct content keys.

    One short envelope simulation provides the payload; distinct seeds
    give every row its own sha256 cache key, which the shard router
    spreads uniformly.
    """
    base = Scenario(
        config=SystemConfig(tx_interval_s=0.5),
        parts=PartsSpec(v_init=2.85),
        horizon=60.0,
        seed=0,
        backend="envelope",
        options=quiet_options("envelope"),
    )
    result = run(base)
    scenarios = [
        Scenario(
            config=SystemConfig(tx_interval_s=0.5),
            parts=PartsSpec(v_init=2.85),
            horizon=60.0,
            seed=i,
            backend="envelope",
            options=quiet_options("envelope"),
            name=f"shard-bench-{i}",
        )
        for i in range(N_ROWS)
    ]
    return [(scenario, result) for scenario in scenarios]


def _single_file_wall_rate(rows, tmp_path_factory):
    """Wall throughput of WRITERS threads sharing one store file."""
    best = float("inf")
    for round_no in range(ROUNDS + 1):  # round 0 is the warmup
        store = ResultStore(
            tmp_path_factory.mktemp(f"single-{round_no}") / "bench.db"
        )
        slices = [rows[i::WRITERS] for i in range(WRITERS)]

        def write_slice(chunk):
            for scenario, result in chunk:
                store.put(scenario, result)

        threads = [
            threading.Thread(target=write_slice, args=(chunk,))
            for chunk in slices
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - t0
        assert len(store) == len(rows)
        store.close()
        if round_no > 0:
            best = min(best, elapsed)
    return len(rows) / best


def _per_shard_rates(rows, tmp_path_factory):
    """Each shard's independent intake rate on its slice of the batch."""
    groups = [[] for _ in range(N_SHARDS)]
    for scenario, result in rows:
        groups[shard_index(scenario.cache_key(), N_SHARDS)].append(
            (scenario, result)
        )
    assert all(groups), "batch left a shard empty; grow N_ROWS"

    best = [float("inf")] * N_SHARDS
    for round_no in range(ROUNDS + 1):
        store = ShardedResultStore(
            tmp_path_factory.mktemp(f"sharded-{round_no}") / "store",
            shards=N_SHARDS,
        )
        for index, group in enumerate(groups):
            t0 = time.perf_counter()
            for scenario, result in group:
                store.put(scenario, result)
            elapsed = time.perf_counter() - t0
            if round_no > 0:
                best[index] = min(best[index], elapsed)
        assert len(store) == len(rows)
        store.close()
    return [len(group) / t for group, t in zip(groups, best)]


def test_sharded_aggregate_write_capacity(tmp_path_factory, write_artifact):
    rows = _rows()
    single_rate = _single_file_wall_rate(rows, tmp_path_factory)
    shard_rates = _per_shard_rates(rows, tmp_path_factory)
    capacity = sum(shard_rates)
    speedup = capacity / single_rate

    payload = {
        "n_rows": N_ROWS,
        "shards": N_SHARDS,
        "writers": WRITERS,
        "rounds": ROUNDS,
        "single_file_rows_per_s": round(single_rate, 1),
        "shard_rows_per_s": [round(rate, 1) for rate in shard_rates],
        "aggregate_capacity_rows_per_s": round(capacity, 1),
        "speedup": round(speedup, 2),
        "note": (
            "aggregate write capacity (sum of independent per-shard "
            "rates) vs the wall rate of concurrent writers serialising "
            "on one store file's single write lock"
        ),
    }
    write_artifact(
        "BENCH_shard.json", json.dumps(payload, indent=2, sort_keys=True)
    )

    assert speedup >= MIN_SPEEDUP, (
        f"{N_SHARDS} shards only offer {speedup:.2f}x the single-file "
        f"intake ({capacity:.0f} vs {single_rate:.0f} rows/s); sharding "
        f"must multiply write capacity by >= {MIN_SPEEDUP:g}x"
    )
