"""Shared fixtures for the table/figure regeneration benches.

Everything heavyweight (the full paper DSE flow, the one-hour reference
simulations) is computed once per session and shared; each bench then
times its own core computation with ``benchmark.pedantic`` and writes its
regenerated artefact (table text or CSV series) through the
``write_artifact`` fixture -- to a session temp directory by default, or
to the tracked copies under ``benchmarks/results/`` when the run passes
``--update-bench`` -- so paper-vs-measured comparisons are inspectable
after a run without dirtying the working tree.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.backends import run
from repro.core.paper import run_paper_flow
from repro.scenario import Scenario
from repro.system.config import ORIGINAL_DESIGN, SystemConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: One fixed seed for every bench: the whole harness is reproducible.
BENCH_SEED = 1


@pytest.fixture(scope="session")
def artifact_dir(request, tmp_path_factory) -> Path:
    # The tracked artefacts only move on an explicit --update-bench;
    # ordinary runs (CI included) compare against a scratch copy so a
    # bench never dirties the working tree as a side effect.
    if request.config.getoption("--update-bench"):
        RESULTS_DIR.mkdir(exist_ok=True)
        return RESULTS_DIR
    return tmp_path_factory.mktemp("bench-results")


@pytest.fixture(scope="session")
def write_artifact(artifact_dir):
    def _write(name: str, text: str) -> None:
        (artifact_dir / name).write_text(text + "\n")
        print(f"\n--- {name} ---\n{text}\n")

    return _write


@pytest.fixture(scope="session")
def paper_outcome():
    """The full section-V flow: D-optimal DOE, RSM fit, SA+GA optima."""
    return run_paper_flow(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def original_result():
    """One-hour reference simulation of the original design."""
    return run(Scenario(config=ORIGINAL_DESIGN, seed=BENCH_SEED))


@pytest.fixture(scope="session")
def paper_sa_result():
    """One-hour simulation of the paper's published SA optimum."""
    return run(Scenario(config=SystemConfig(8e6, 60.0, 0.005), seed=BENCH_SEED))
