"""Table IV: power consumption models of the tuning subsystem.

Regenerates every row by exercising the models: actuator move costs, the
accelerometer window, and the MCU's coarse/fine operations at the 4 MHz
reference clock (where the paper measured them).
"""

import numpy as np

from repro.core.report import format_table
from repro.digital.mcu import Microcontroller
from repro.harvester.actuator import LinearActuator

#: (operation time s, energy J) from the paper's Table IV.
PAPER = {
    "accelerometer": (153e-3, 2.02e-3),
    "actuator_1": (5e-3, 4.06e-3),
    "actuator_100": (500e-3, 203e-3),
    "mcu_coarse": (149e-3, 0.745e-3),
    "mcu_fine": (325e-3, 2.11e-3),
}


def _characterise():
    rng = np.random.default_rng(0)
    mcu = Microcontroller(4e6)
    rows = {}
    m1 = LinearActuator.move_cost(1)
    m100 = LinearActuator.move_cost(100)
    rows["actuator_1"] = (m1.duration, m1.energy)
    rows["actuator_100"] = (m100.duration, m100.energy)
    coarse = mcu.measure_frequency(65.0, rng)
    rows["mcu_coarse"] = (coarse.duration, coarse.mcu_energy)
    fine = mcu.measure_phase(200e-6, rng)
    rows["mcu_fine"] = (fine.duration, fine.mcu_energy)
    rows["accelerometer"] = (
        mcu.accelerometer.on_time,
        fine.peripheral_energy,
    )
    return rows


def test_table4_power_models(benchmark, write_artifact):
    rows = benchmark.pedantic(_characterise, rounds=5, iterations=1)
    table_rows = []
    for name, (t_paper, e_paper) in PAPER.items():
        t_meas, e_meas = rows[name]
        assert abs(t_meas - t_paper) / t_paper < 0.05, name
        assert abs(e_meas - e_paper) / e_paper < 0.10, name
        table_rows.append(
            [
                name,
                f"{t_meas * 1e3:.0f} ms",
                f"{t_paper * 1e3:.0f} ms",
                f"{e_meas * 1e3:.3g} mJ",
                f"{e_paper * 1e3:.3g} mJ",
            ]
        )
    text = format_table(
        ["component (action)", "time", "paper time", "energy", "paper energy"],
        table_rows,
        title="Table IV (reproduced, MCU at the 4 MHz reference clock)",
    )
    write_artifact("table4_power_models.txt", text)
