"""Throughput of the persistent result store (:mod:`repro.store`).

Three measurements, written to ``BENCH_store.json``:

- raw store **write** and **read** throughput (results/second) for a
  realistic batch of envelope results,
- the headline product property: a **warm** second `BatchRunner` pass
  over an already-stored batch must be at least 10x faster than the
  **cold** first pass that simulated it (the store's entire reason to
  exist -- resumed campaigns pay disk reads, not simulations).
"""

import json
import time

from repro.backends import quiet_options
from repro.core.batch import BatchRunner
from repro.scenario import PartsSpec, Scenario
from repro.store import ResultStore
from repro.system.config import SystemConfig
from repro.system.vibration import VibrationProfile

#: Batch size for every store bench (matches the issue's 40-scenario
#: campaign acceptance case).
N_SCENARIOS = 40

#: Simulated seconds per scenario: long enough that simulation dwarfs a
#: store read by a wide margin, short enough to keep the bench snappy.
HORIZON = 1800.0

#: Required cold/warm advantage (acceptance criterion).
MIN_SPEEDUP = 10.0


def _scenarios():
    return [
        Scenario(
            config=SystemConfig(
                clock_hz=1e6 + 1e5 * i,
                watchdog_s=240.0 + 10.0 * i,
                tx_interval_s=0.5 + 0.25 * i,
            ),
            parts=PartsSpec(v_init=2.85),
            profile=VibrationProfile.paper_profile(horizon=HORIZON),
            horizon=HORIZON,
            seed=i,
            backend="envelope",
            options=quiet_options("envelope"),
            name=f"bench-{i}",
        )
        for i in range(N_SCENARIOS)
    ]


def _simulate_all(scenarios):
    return BatchRunner(jobs=1).run(scenarios)


def test_store_write_throughput(benchmark, tmp_path_factory):
    scenarios = _scenarios()
    results = _simulate_all(scenarios)
    counter = {"n": 0}

    def fresh_store():
        counter["n"] += 1
        root = tmp_path_factory.mktemp(f"write-{counter['n']}")
        return (ResultStore(root / "bench.db"),), {}

    def write_all(store):
        for scenario, result in zip(scenarios, results):
            store.put(scenario, result)
        return len(store)

    stored = benchmark.pedantic(
        write_all, setup=fresh_store, rounds=3, iterations=1
    )
    assert stored == N_SCENARIOS


def test_store_read_throughput(benchmark, tmp_path):
    scenarios = _scenarios()
    store = ResultStore(tmp_path / "bench.db")
    for scenario, result in zip(scenarios, _simulate_all(scenarios)):
        store.put(scenario, result)

    def read_all():
        loaded = [store.get(s) for s in scenarios]
        assert all(r is not None for r in loaded)
        return len(loaded)

    assert benchmark(read_all) == N_SCENARIOS


def test_warm_batch_at_least_10x_faster_than_cold(tmp_path, write_artifact):
    scenarios = _scenarios()
    store = ResultStore(tmp_path / "bench.db")

    cold_runner = BatchRunner(jobs=1, store=store)
    t0 = time.perf_counter()
    cold_results = cold_runner.run(scenarios)
    cold_s = time.perf_counter() - t0
    assert cold_runner.misses == N_SCENARIOS
    assert len(store) == N_SCENARIOS

    # A fresh runner models a new process: empty memory tier, same disk.
    warm_runner = BatchRunner(jobs=1, store=store)
    t0 = time.perf_counter()
    warm_results = warm_runner.run(scenarios)
    warm_s = time.perf_counter() - t0
    assert warm_runner.misses == 0
    assert warm_runner.store_hits == N_SCENARIOS
    assert [r.transmissions for r in warm_results] == [
        r.transmissions for r in cold_results
    ]

    # Raw tier throughput, measured on the same batch.
    t0 = time.perf_counter()
    for scenario in scenarios:
        assert store.get(scenario) is not None
    read_s = time.perf_counter() - t0

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    payload = {
        "n_scenarios": N_SCENARIOS,
        "horizon_s": HORIZON,
        "cold_run_s": round(cold_s, 6),
        "warm_run_s": round(warm_s, 6),
        "speedup": round(speedup, 2),
        "store_hit_rate": warm_runner.store_hits / N_SCENARIOS,
        "read_results_per_s": round(N_SCENARIOS / read_s, 1),
        "simulated_per_s_cold": round(N_SCENARIOS / cold_s, 1),
    }
    write_artifact("BENCH_store.json", json.dumps(payload, indent=2, sort_keys=True))

    assert speedup >= MIN_SPEEDUP, (
        f"warm pass only {speedup:.1f}x faster than cold "
        f"(cold {cold_s:.3f}s, warm {warm_s:.3f}s); the disk tier must "
        f"beat re-simulation by >= {MIN_SPEEDUP:g}x"
    )
