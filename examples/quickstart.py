"""Quickstart: simulate the node, fit a response surface, find the optimum.

Runs the complete paper workflow in miniature (~10 seconds):

1. simulate the original design for one hour (one scenario, one ``run``),
2. build a 10-run D-optimal design and simulate it,
3. fit the quadratic response surface (eq. 9),
4. maximise it with Simulated Annealing and a Genetic Algorithm,
5. verify the optima with full simulations (Table VI).

Run:  python examples/quickstart.py
"""

import repro
from repro.core import paper_explorer
from repro.core.report import render_table_vi


def main() -> None:
    print("=== one simulation of the original design ===")
    result = repro.run(repro.Scenario(seed=1))
    print(result.summary())

    print("\n=== full RSM-based design space exploration ===")
    explorer = paper_explorer(seed=1)
    outcome = explorer.run(n_runs=10, seed=1)
    print(outcome.summary())

    print()
    print(render_table_vi(outcome))

    print("\nfitted response surface (coded variables, eq. 9 form):")
    print("  y =", outcome.model.to_string(["x1", "x2", "x3"]))

    best = outcome.best()
    print(
        f"\nbest configuration found: {best.config.describe()}\n"
        f" -> {best.simulated_value:.0f} transmissions/hour "
        f"({outcome.improvement_factor():.2f}x the original design)"
    )


if __name__ == "__main__":
    main()
