"""Harvester characterisation: the shaker-table curves, from the models.

Prints the calibrated device's personality sheet:

1. the tuning curve (actuator position -> resonant frequency),
2. the delivered-power resonance peak and its bandwidth,
3. power vs storage voltage (mechanical-cap plateau and Thevenin taper),
4. an ASCII rendering of the (frequency, position) harvest map whose
   ridge is exactly the LUT the microcontroller stores.

Run:  python examples/harvester_characterization.py
"""

import numpy as np

from repro.harvester.characterization import (
    harvest_map,
    power_frequency_curve,
    power_voltage_curve,
    resonance_bandwidth,
    tuning_curve,
)
from repro.system.components import paper_microgenerator
from repro.units import mg_to_mps2

ACCEL = mg_to_mps2(60.0)


def main() -> None:
    micro = paper_microgenerator()
    pos_64 = micro.tuning_map.position_for_frequency(64.0)
    micro.actuator.steps = micro.actuator.steps_for_position(pos_64)

    print("== tuning curve (position -> resonant frequency) ==")
    positions, freqs = tuning_curve(micro, n_points=9)
    for p, f in zip(positions, freqs):
        print(f"  position {p:6.1f}  ->  {f:6.2f} Hz")

    print("\n== resonance peak at position", pos_64, "(tuned to 64 Hz) ==")
    f_axis, p_axis = power_frequency_curve(micro, ACCEL, 2.65)
    peak = p_axis.max()
    print(f"  peak delivered power: {peak * 1e6:.0f} uW at "
          f"{f_axis[np.argmax(p_axis)]:.2f} Hz")
    bw = resonance_bandwidth(micro, ACCEL, 2.65, position=pos_64)
    print(f"  half-power bandwidth: {bw * 1e3:.0f} mHz "
          "(why 8-bit tuning resolution is needed)")
    for df in (0.1, 0.3, 1.0, 5.0):
        p = micro.envelope.charging_power(64.0 + df, ACCEL, pos_64, 2.65)
        print(f"  detuned by {df:>4.1f} Hz: {p * 1e6:6.1f} uW "
              f"({100 * p / peak:5.1f}% of peak)")

    print("\n== power vs storage voltage at resonance ==")
    volts, powers = power_voltage_curve(
        micro, 64.0, ACCEL, position=pos_64,
        voltages=np.linspace(1.0, 3.6, 14),
    )
    for v, p in zip(volts, powers):
        bar = "#" * int(p * 1e6 / 10)
        print(f"  {v:4.2f} V  {p * 1e6:6.1f} uW  {bar}")

    print("\n== harvest map: frequency (rows) x position (cols), uW ==")
    freqs, poss, surface = harvest_map(
        micro, ACCEL, 2.65,
        frequencies=np.linspace(62.0, 76.0, 8),
        positions=np.linspace(0, 255, 16),
    )
    header = "        " + " ".join(f"{int(p):4d}" for p in poss)
    print(header)
    for i, f in enumerate(freqs):
        cells = " ".join(f"{surface[i, j] * 1e6:4.0f}" for j in range(len(poss)))
        print(f"  {f:5.1f}  {cells}")
    print("\nthe ridge of that surface is the MCU's frequency->position LUT.")


if __name__ == "__main__":
    main()
