"""DOE comparison: how design choice affects surrogate quality and cost.

Builds five designs over the Table V space (D-optimal 10, D-optimal 14,
face-centred CCD, Box-Behnken, 27-run full factorial), simulates each,
fits the quadratic RSM, and scores every surrogate on a common random
validation grid evaluated with the true simulator.  This quantifies the
paper's section II-B claim that D-optimal designs "explore the design
space efficiently with a minimum number of runs".

Run:  python examples/doe_comparison.py
"""

import numpy as np

from repro.core.paper import paper_objective
from repro.core.report import format_table
from repro.doe import box_behnken, central_composite, d_optimal, full_factorial
from repro.doe.criteria import d_efficiency, g_efficiency
from repro.rsm.model import fit_response_surface
from repro.system.config import paper_parameter_space


def main() -> None:
    space = paper_parameter_space()
    objective = paper_objective(seed=1)

    designs = {
        "d-optimal-10": d_optimal(3, 10, seed=1, space=space),
        "d-optimal-14": d_optimal(3, 14, seed=1, space=space),
        "ccd-face (15)": central_composite(3, alpha="face", n_center=1, space=space),
        "box-behnken (13)": box_behnken(3, n_center=1, space=space),
        "factorial-27": full_factorial(3, 3, space=space),
    }

    rng = np.random.default_rng(9)
    probe = rng.uniform(-1.0, 1.0, size=(30, 3))
    truth = objective.evaluate_design(probe)
    spread = float(np.max(truth) - np.min(truth))

    rows = []
    for name, design in designs.items():
        responses = objective.evaluate_design(design.points)
        model = fit_response_surface(design.points, responses)
        pred = model.predict_coded(probe)
        rmse = float(np.sqrt(np.mean((pred - truth) ** 2)))
        rows.append(
            [
                name,
                design.n_runs,
                f"{d_efficiency(design):.3f}",
                f"{g_efficiency(design):.3f}",
                f"{rmse:.1f}",
                f"{rmse / spread * 100:.1f}%",
            ]
        )

    print(
        format_table(
            ["design", "runs", "D-eff", "G-eff", "grid RMSE (tx)", "RMSE/spread"],
            rows,
            title=(
                "Surrogate quality by design "
                f"(validation spread {spread:.0f} transmissions)"
            ),
        )
    )
    print(f"\ntotal simulator calls used: {objective.n_simulations}")
    print(
        "\ntakeaway: the 10-run D-optimal design supports the full quadratic\n"
        "model at a fraction of the factorial's cost -- the paper's rationale\n"
        "for using it (10 simulations instead of 27)."
    )


if __name__ == "__main__":
    main()
