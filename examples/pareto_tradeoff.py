"""Pareto trade-off: transmissions per hour vs energy kept in reserve.

The paper's optimum maximises throughput by spending every harvested
joule; a node that must also survive vibration droughts wants joules left
in the supercapacitor.  This example runs NSGA-II over the Table V space
with both objectives on the true simulator, prints the frontier, and then
*stress-tests* its knee point and its throughput extreme against a weaker
vibration environment to show what the reserve buys.

Run:  python examples/pareto_tradeoff.py   (~1 minute)
"""

from repro.core.multiobjective import MultiObjectiveSimulation, explore_tradeoff
from repro.core.objective import SimulationObjective
from repro.core.report import format_table
from repro.core.sensitivity import robustness_study


def main() -> None:
    sim = MultiObjectiveSimulation(objective=SimulationObjective(seed=5))
    entries, result = explore_tradeoff(
        seed=5, population_size=20, n_generations=8, simulation=sim
    )

    rows = [
        [e.config.describe(), f"{e.transmissions:.0f}", f"{e.final_energy:.3f}"]
        for e in entries
    ]
    print(
        format_table(
            ["configuration", "tx/hour", "final energy (J)"],
            rows,
            title=f"Pareto front ({sim.n_simulations} hour-long simulations)",
        )
    )
    _, knee = result.knee_point()
    print(f"\nknee point: {knee[0]:.0f} tx/hour with {knee[1]:.3f} J in reserve")

    # Stress test the two ends of the frontier in a weaker environment.
    throughput_end = entries[-1].config
    knee_entry = min(
        entries,
        key=lambda e: abs(e.transmissions - knee[0]) + abs(e.final_energy - knee[1]),
    )
    print("\nstress test at 52 mg (13% weaker vibration):")
    for label, config in (
        ("throughput-extreme", throughput_end),
        ("knee-point", knee_entry.config),
    ):
        report = robustness_study(
            config, seed=5, accel_levels_mg=(52.0,), f_starts=(), v_inits=()
        )
        entry = report.entries[0]
        print(
            f"  {label:<20s} {entry.transmissions:5d} tx, "
            f"final voltage {entry.final_voltage:.3f} V"
        )


if __name__ == "__main__":
    main()
