"""Custom harvester: explore a *different* physical device end-to-end.

Demonstrates the library's composability: design a smaller cantilever
harvester from geometry (Euler-Bernoulli beam + magnetic tuner +
electromagnetic coupling), drop it into the system model in place of the
calibrated default, and re-run the design space exploration.  The optimum
shifts because the energy budget changed -- exactly the study a deployment
engineer would run before choosing firmware settings for new hardware.

Run:  python examples/custom_harvester.py
"""

from repro.core.explorer import DesignSpaceExplorer
from repro.core.objective import SimulationObjective
from repro.digital.lut import FrequencyLut
from repro.harvester.actuator import LinearActuator
from repro.harvester.microgenerator import TunableMicrogenerator
from repro.harvester.rectifier import RectifierEnvelope
from repro.harvester.storage import EnergyStore
from repro.mech.cantilever import CantileverBeam
from repro.mech.coupling import ElectromagneticCoupling
from repro.mech.magnetics import MagneticTuner
from repro.node.ez430 import SensorNode
from repro.system.components import SystemParts
from repro.system.config import ORIGINAL_DESIGN, paper_parameter_space
from repro.system.vibration import VibrationProfile


def build_custom_parts() -> SystemParts:
    """A stiffer, more strongly coupled harvester with a smaller supercap."""
    beam = CantileverBeam.for_frequency(55.0, tip_mass=0.05, length=25e-3)
    resonator = beam.to_resonator(zeta_mech=0.005, zeta_elec=0.009)
    tuner = MagneticTuner.for_frequency_range(
        resonator.mass, resonator.stiffness, 60.0, 80.0, gap_min=0.010, gap_max=0.015
    )
    from repro.harvester.tuning_map import TuningMap

    tuning_map = TuningMap(resonator, tuner, n_positions=256)
    coupling = ElectromagneticCoupling(
        theta=75.0, coil_resistance=3000.0, coil_inductance=0.5
    )
    micro = TunableMicrogenerator(
        tuning_map,
        coupling,
        actuator=LinearActuator(max_steps=255),
        rectifier=RectifierEnvelope(diode_drop=0.3),
        source_resistance=3000.0,
        mech_efficiency=0.45,
    )
    lut = FrequencyLut.from_tuning_map(tuning_map, 58.0, 82.0)
    micro.actuator.steps = micro.actuator.steps_for_position(lut.lookup(64.0))
    return SystemParts(
        microgenerator=micro,
        store=EnergyStore(capacitance=0.22, v_init=2.65, v_max=3.6),  # smaller cap
        node=SensorNode(),
        lut=lut,
    )


def main() -> None:
    print("custom harvester:")
    parts = build_custom_parts()
    f_lo, f_hi = parts.microgenerator.tuning_map.frequency_range()
    print(f"  beam-designed resonator, tunable {f_lo:.1f} - {f_hi:.1f} Hz")
    print(f"  storage: {parts.store.capacitance:.2f} F supercapacitor")

    objective = SimulationObjective(
        space=paper_parameter_space(),
        seed=3,
        parts_factory=build_custom_parts,
        profile_factory=VibrationProfile.paper_profile,
    )
    explorer = DesignSpaceExplorer(
        paper_parameter_space(), objective, original_config=ORIGINAL_DESIGN
    )
    outcome = explorer.run(n_runs=10, seed=3)

    print("\nexploration outcome for the custom device:")
    print(outcome.summary())

    best = outcome.best()
    print(
        f"\nwith this hardware the firmware should run "
        f"{best.config.describe()} -- a different operating point than the "
        f"paper's device, found by the same methodology."
    )


if __name__ == "__main__":
    main()
