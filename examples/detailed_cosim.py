"""Detailed co-simulation: the cycle-accurate power path.

Runs the MNA backend (electromechanical generator -> diode bridge ->
supercapacitor -> switched node load) for a few seconds of simulated time,
then executes one full Algorithm 1 tuning session whose *measurements come
from the waveforms* (frequency from velocity zero crossings, phase from
the accelerometer/generator offset).  Exports the supercap waveform as
CSV and a VCD-ready transmission log.

This is the fidelity level the paper's SystemC-A model runs at; the
envelope backend exists because an hour of this is ~10^4x slower than
real time in Python.

Run:  python examples/detailed_cosim.py
"""

import numpy as np

from repro.core.report import series_to_csv
from repro.system.components import paper_system
from repro.system.config import SystemConfig
from repro.system.detailed import DetailedSimulator
from repro.system.vibration import VibrationProfile


def main() -> None:
    parts = paper_system(initial_frequency=64.0)
    config = SystemConfig(clock_hz=4e6, watchdog_s=1e4, tx_interval_s=0.5)
    sim = DetailedSimulator(
        config,
        parts=parts,
        profile=VibrationProfile.constant(69.0),  # 5 Hz off: needs retuning
        v_init=2.85,
    )

    print("phase 1: 2 s of detuned operation (generator resonates at 64 Hz,")
    print("         input vibrates at 69 Hz: almost nothing harvested)")
    res = sim.run(2.0)
    v = res.traces["v(vdc)"]
    print(f"  supercap: {v.values[0]:.4f} V -> {res.final_voltage:.4f} V, "
          f"{res.transmissions} transmissions so far")

    print("\nphase 2: one Algorithm 1 tuning session (waveform-derived measurements)")
    out = sim.run_tuning_session()
    s = out.session
    print(f"  measured frequency: {s.measured_frequency:.3f} Hz (true 69.0)")
    print(f"  optimum position {s.optimum_position}, moved from {s.initial_position}")
    print(f"  coarse iterations {s.coarse_iterations}, fine steps {s.fine_steps}")
    f_r = parts.microgenerator.tuning_map.resonant_frequency(
        parts.microgenerator.position
    )
    print(f"  generator retuned to {f_r:.3f} Hz")

    print("\nphase 3: 2 s of retuned operation (charging resumes)")
    res = sim.run(2.0)
    print(f"  supercap now {res.final_voltage:.4f} V, "
          f"{res.transmissions} transmissions total")

    grid = np.linspace(0.0, sim.kernel.now, 400)
    csv = series_to_csv({"time_s": grid, "v_supercap": v.resample(grid)})
    path = "detailed_cosim_waveform.csv"
    with open(path, "w") as fh:
        fh.write(csv)
    print(f"\nwaveform written to {path} ({len(grid)} samples)")


if __name__ == "__main__":
    main()
