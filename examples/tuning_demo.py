"""Tuning demo: watch Algorithms 1-3 track a changing vibration frequency.

Simulates two hours with an aggressive vibration profile (a +-5 Hz step
every 10 minutes) and prints a timeline of every watchdog wake-up: what
the MCU measured, whether it retuned, how many coarse/fine moves it made
and what each session cost in energy.  Ends with the harvester's energy
ledger.

Run:  python examples/tuning_demo.py
"""

from repro.system.components import paper_system
from repro.system.config import SystemConfig
from repro.system.envelope import EnvelopeSimulator
from repro.system.vibration import VibrationProfile, VibrationSegment
from repro.units import mg_to_mps2


def sawtooth_profile() -> VibrationProfile:
    """64 -> 69 -> 74 -> 69 -> 64 ... Hz, stepping every 10 minutes."""
    accel = mg_to_mps2(60.0)
    freqs = [64.0, 69.0, 74.0, 69.0, 64.0, 69.0, 74.0, 69.0, 64.0, 69.0, 74.0, 69.0]
    segments = [
        VibrationSegment(i * 600.0, f, accel) for i, f in enumerate(freqs)
    ]
    return VibrationProfile(segments)


def main() -> None:
    parts = paper_system(v_init=2.85)
    config = SystemConfig(clock_hz=4e6, watchdog_s=120.0, tx_interval_s=5.0)
    sim = EnvelopeSimulator(config, parts=parts, profile=sawtooth_profile(), seed=7)
    result = sim.run(7200.0)

    print("wake-up timeline (one line per watchdog event):")
    print(f"{'t (s)':>8} {'f_meas':>8} {'opt':>4} {'pos':>4} "
          f"{'coarse':>6} {'fine':>4} {'cost (mJ)':>10}  note")
    for ev in result.tuning_events:
        r = ev.result
        if r.skipped_low_energy:
            note = "skipped: storage below 2.6 V"
            print(f"{ev.time:8.0f} {'-':>8} {'-':>4} {'-':>4} "
                  f"{'-':>6} {'-':>4} {ev.energy * 1e3:10.2f}  {note}")
            continue
        note = "retuned" if r.retuned else "already on target"
        print(
            f"{ev.time:8.0f} {r.measured_frequency:8.3f} {r.optimum_position:>4} "
            f"{r.initial_position:>4} {r.coarse_iterations:>6} {r.fine_steps:>4} "
            f"{ev.energy * 1e3:10.2f}  {note}"
        )

    print("\nrun summary:")
    print(result.summary())

    retunes = result.retune_count()
    print(
        f"\nthe controller retuned {retunes} times across "
        f"{len(sawtooth_profile().segments) - 1} frequency steps; "
        f"tuning overhead was "
        f"{result.breakdown.tuning_overhead * 1e3:.0f} mJ of "
        f"{result.breakdown.harvested * 1e3:.0f} mJ harvested"
    )


if __name__ == "__main__":
    main()
