"""Property-based tests (Hypothesis) for the vectorized integrator.

Mirrors ``test_envelope_invariants.py`` for the lockstep batch engine:
the same physical invariants must hold over *generated* firmware
configurations and regime-switching vibration profiles --

- energy conservation (the audit's imbalance stays at rounding level),
- the storage voltage stays inside [0, v_max],
- simulated time advances monotonically and covers the horizon,
- sliding-mode pinning at the policy thresholds,

-- plus the property that is this backend's whole contract: on any
generated input, a vectorized run agrees with a scalar envelope run of
the same scenario within the differential harness's rounding-level
tolerances, whether the scenario runs alone or inside a batch.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenario import PartsSpec, Scenario
from repro.system.config import SystemConfig
from repro.system.stochastic import EnvironmentState, RegimeSwitchingVibration
from repro.system.vibration import VibrationProfile
from repro.system.vectorized import numpy_available, simulate_batch
from repro.units import mg_to_mps2

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="vectorized backend needs NumPy"
)

#: Absolute energy-audit tolerance (J); observed residuals are ~1e-14.
IMBALANCE_TOL = 1e-9

configs = st.builds(
    SystemConfig,
    clock_hz=st.floats(125e3, 8e6),
    watchdog_s=st.floats(60.0, 600.0),
    tx_interval_s=st.floats(0.05, 10.0),
)

generators = st.builds(
    RegimeSwitchingVibration,
    states=st.lists(
        st.builds(
            EnvironmentState,
            name=st.just("s"),
            frequency_hz=st.tuples(st.floats(60.0, 70.0), st.just(80.0)),
            accel_mg=st.tuples(st.floats(0.0, 40.0), st.floats(40.0, 120.0)),
            dwell_s=st.tuples(st.floats(10.0, 60.0), st.floats(60.0, 200.0)),
        ),
        min_size=1,
        max_size=3,
    ).map(tuple),
    jitter_mg=st.floats(0.0, 10.0),
    drift_hz_per_hour=st.floats(0.0, 10.0),
    dropout_prob=st.floats(0.0, 0.3),
    burst_prob=st.floats(0.0, 0.3),
    resolution_s=st.floats(10.0, 60.0),
)

slow = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)


def _scenario(config, profile, horizon, seed, v_init=2.65, record_traces=True):
    return Scenario(
        config=config,
        parts=PartsSpec(v_init=v_init, initial_frequency=profile.frequency(0.0)),
        profile=profile,
        horizon=horizon,
        seed=seed,
        backend="vectorized",
        options={"record_traces": record_traces},
    )


class TestGeneratedConfigsAndProfiles:
    @slow
    @given(
        config=configs,
        generator=generators,
        gen_seed=st.integers(0, 2**31 - 1),
        horizon=st.floats(60.0, 300.0),
    )
    def test_physical_invariants(self, config, generator, gen_seed, horizon):
        profile = generator.generate(horizon, seed=gen_seed)
        (result,) = simulate_batch(
            [_scenario(config, profile, horizon, gen_seed)]
        )

        # Energy conservation: every joule is accounted for.
        assert abs(result.breakdown.imbalance()) <= IMBALANCE_TOL

        # Voltage bounded by physics at every traced point.
        v = result.traces.trace("v_store").values
        assert float(np.min(v)) >= 0.0
        assert float(np.max(v)) <= 3.6 + 1e-9

        # Monotone time advance over the full horizon (a run may end a
        # little late if a tuning session straddles the horizon).
        t = result.traces.trace("v_store").times
        assert np.all(np.diff(t) >= 0.0)
        assert result.horizon >= horizon - 1e-9

        assert result.transmissions >= 0

    @slow
    @given(
        config=configs,
        generator=generators,
        gen_seed=st.integers(0, 2**31 - 1),
        horizon=st.floats(60.0, 240.0),
    )
    def test_agrees_with_scalar_envelope(self, config, generator, gen_seed, horizon):
        """The contract: a lockstep run is the scalar run, re-expressed.

        The scenario runs (a) on the scalar envelope backend, (b) alone
        on the vectorized engine and (c) embedded in a batch next to a
        decoy lane; all three must tell the same story to rounding
        level, including the regime-switching profile's segment
        boundaries and the session RNG stream.
        """
        from dataclasses import replace

        from repro.backends import run

        profile = generator.generate(horizon, seed=gen_seed)
        scenario = _scenario(
            config, profile, horizon, gen_seed, record_traces=False
        )
        envelope = run(replace(scenario, backend="envelope"))
        (alone,) = simulate_batch([scenario])
        decoy = _scenario(
            SystemConfig(4e6, 320.0, 5.0),
            VibrationProfile.constant(64.0, accel_mg=60.0),
            horizon,
            seed=0,
            record_traces=False,
        )
        batched = simulate_batch([decoy, scenario])[1]

        for got in (alone, batched):
            assert got.transmissions == envelope.transmissions
            assert got.final_voltage == pytest.approx(
                envelope.final_voltage, abs=1e-9
            )
            assert got.horizon == pytest.approx(envelope.horizon, rel=1e-12)
            assert got.breakdown.harvested == pytest.approx(
                envelope.breakdown.harvested, rel=1e-9, abs=1e-12
            )


class TestJobsComposition:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.data_too_large,
            HealthCheck.filter_too_much,
        ],
    )
    @given(
        config=configs,
        generator=generators,
        gen_seed=st.integers(0, 2**31 - 1),
        horizon=st.floats(60.0, 180.0),
        n_lanes=st.integers(2, 5),
        jobs=st.integers(2, 4),
    )
    def test_sharded_batch_is_byte_identical(
        self, config, generator, gen_seed, horizon, n_lanes, jobs
    ):
        """jobs=N x run_batch lockstep: on any generated workload, the
        N-worker sharded dispatch returns exactly the payloads (traces
        and tuning log included) of the single-call batch, which in turn
        equal the scalar envelope reference lane for lane."""
        import json
        from dataclasses import replace

        from repro.backends import run
        from repro.core.batch import BatchRunner

        profile = generator.generate(horizon, seed=gen_seed)
        scenarios = [
            _scenario(config, profile, horizon, seed=gen_seed + lane)
            for lane in range(n_lanes)
        ]

        def payloads(results):
            return [json.dumps(r.to_payload(), sort_keys=True) for r in results]

        want = payloads(
            [run(replace(s, backend="envelope")) for s in scenarios]
        )
        one_call = payloads(
            BatchRunner(jobs=1, cache_size=0).run(scenarios)
        )
        sharded = payloads(
            BatchRunner(jobs=jobs, cache_size=0, executor="thread").run(
                scenarios
            )
        )
        assert want == one_call
        assert one_call == sharded


class TestSlidingMode:
    @slow
    @given(
        accel_mg=st.floats(52.0, 80.0),
        frequency=st.floats(62.0, 70.0),
        tx_interval=st.floats(0.3, 2.0),
    )
    def test_voltage_pins_at_fast_threshold(self, accel_mg, frequency, tx_interval):
        """If harvest lies strictly between the two bands' total drains
        at v_fast, the lockstep integrator must hold the voltage there,
        exactly like the scalar integrator's sliding mode."""
        from repro.system.components import paper_system

        config = SystemConfig(
            clock_hz=4e6, watchdog_s=600.0, tx_interval_s=tx_interval
        )
        parts = paper_system(v_init=2.8, initial_frequency=frequency)
        policy = parts.policy(config.tx_interval_s)
        thr = policy.v_fast

        p_h = parts.microgenerator.charging_power(
            frequency, mg_to_mps2(accel_mg), thr
        )
        p_sleep = parts.node.sleep_power(thr) + parts.mcu(config.clock_hz).sleep_power()
        e_tx = parts.node.transmission_energy(thr)
        drain_fast = e_tx / policy.fast_interval
        drain_mid = e_tx / policy.mid_interval
        if not (drain_mid + p_sleep < p_h < drain_fast + p_sleep):
            return  # not a sliding configuration; nothing to pin

        profile = VibrationProfile.constant(frequency, accel_mg=accel_mg)
        scenario = _scenario(
            config, profile, 120.0, seed=3, v_init=2.8, record_traces=True
        )
        (result,) = simulate_batch([scenario])
        v = np.asarray(result.traces.trace("v_store").values)
        t = np.asarray(result.traces.trace("v_store").times)
        settled = v[t >= 30.0]
        assert settled.size > 0
        assert np.all(np.abs(settled - thr) < 1e-6), (
            f"voltage should pin at {thr} V "
            f"(max deviation {np.max(np.abs(settled - thr)):.2e})"
        )
