"""Property-based tests on the physical-domain models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mech.magnetics import MagneticTuner
from repro.mech.sdof import SdofResonator
from repro.node.policy import TransmissionPolicy
from repro.optimize.pareto import dominates, non_dominated_sort
from repro.system.components import paper_microgenerator
from repro.units import mg_to_mps2


class TestResonatorProperties:
    @given(
        st.floats(0.01, 1.0),   # mass
        st.floats(30.0, 120.0),  # natural frequency
        st.floats(0.002, 0.05),  # zeta
        st.floats(0.1, 2.0),     # acceleration amplitude
    )
    @settings(max_examples=40)
    def test_power_peaks_at_resonance(self, m, f_n, zeta, accel):
        k = m * (2 * np.pi * f_n) ** 2
        res = SdofResonator(m, k, zeta_mech=zeta / 2, zeta_elec=zeta / 2)
        p_res = res.electrical_power(f_n, accel)
        for detune in (0.97, 1.03):
            assert res.electrical_power(f_n * detune, accel) <= p_res * 1.001

    @given(
        st.floats(0.01, 1.0),
        st.floats(30.0, 120.0),
        st.floats(0.002, 0.05),
    )
    @settings(max_examples=40)
    def test_phase_sign_flips_across_resonance(self, m, f_n, zeta):
        k = m * (2 * np.pi * f_n) ** 2
        res = SdofResonator(m, k, zeta_mech=zeta)
        assert res.phase_difference_seconds(f_n * 0.99) > 0
        assert res.phase_difference_seconds(f_n * 1.01) < 0

    @given(st.floats(0.1, 2.0), st.floats(0.5, 4.0))
    @settings(max_examples=30)
    def test_power_scales_with_acceleration_squared(self, a1, ratio):
        res = SdofResonator(0.05, 0.05 * (2 * np.pi * 64.0) ** 2, 0.004, 0.008)
        p1 = res.resonant_power(a1)
        p2 = res.resonant_power(a1 * ratio)
        assert p2 == pytest.approx(p1 * ratio**2, rel=1e-9)


class TestTunerProperties:
    @given(
        st.floats(0.1, 10.0),   # moment
        st.floats(0.004, 0.02),  # gap_min
        st.floats(1.2, 3.0),     # gap ratio
    )
    @settings(max_examples=40)
    def test_stiffness_monotone_decreasing_in_gap(self, moment, gmin, ratio):
        t = MagneticTuner(moment, moment, gmin, gmin * ratio)
        gaps = np.linspace(gmin, gmin * ratio, 9)
        ks = [t.added_stiffness(g) for g in gaps]
        assert all(a > b for a, b in zip(ks, ks[1:]))

    @given(st.floats(0.1, 10.0), st.floats(0.004, 0.02))
    @settings(max_examples=40)
    def test_gap_stiffness_inversion(self, moment, gap):
        t = MagneticTuner(moment, moment, 0.001, 0.1)
        k = t.added_stiffness(gap)
        assert t.gap_for_stiffness(k) == pytest.approx(gap, rel=1e-9)


class TestPolicyProperties:
    @given(
        st.floats(0.005, 10.0),
        st.lists(st.floats(2.0, 3.5), min_size=2, max_size=20),
    )
    @settings(max_examples=40)
    def test_rate_monotone_in_voltage(self, interval, voltages):
        policy = TransmissionPolicy(fast_interval=interval)
        for v_lo, v_hi in zip(sorted(voltages), sorted(voltages)[1:]):
            assert policy.rate(v_lo) <= policy.rate(v_hi) + 1e-12

    @given(st.floats(0.005, 10.0), st.floats(0.0, 4.0))
    @settings(max_examples=40)
    def test_band_and_interval_consistent(self, interval, v):
        policy = TransmissionPolicy(fast_interval=interval)
        band = policy.band(v)
        i = policy.interval(v)
        if band == "off":
            assert i is None
        elif band == "mid":
            assert i == policy.mid_interval
        else:
            assert i == interval


class TestHarvestProperties:
    @given(st.floats(2.0, 3.4), st.integers(0, 255))
    @settings(max_examples=30, deadline=None)
    def test_charging_power_nonnegative_everywhere(self, v, pos):
        micro = paper_microgenerator()
        accel = mg_to_mps2(60.0)
        for f in (60.0, 64.0, 69.0, 74.0, 80.0):
            assert micro.envelope.charging_power(f, accel, pos, v) >= 0.0

    @given(st.integers(0, 255))
    @settings(max_examples=30, deadline=None)
    def test_tuned_position_never_worse_than_random(self, pos):
        micro = paper_microgenerator()
        accel = mg_to_mps2(60.0)
        f = 67.0
        opt = micro.tuning_map.position_for_frequency(f)
        p_opt = micro.envelope.charging_power(f, accel, opt, 2.65)
        p_other = micro.envelope.charging_power(f, accel, pos, 2.65)
        assert p_opt >= p_other - 1e-12


class TestDominanceProperties:
    @given(
        st.lists(
            st.tuples(st.floats(-5, 5), st.floats(-5, 5)),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=40)
    def test_front_zero_is_mutually_nondominated(self, rows):
        objs = np.array(rows)
        fronts = non_dominated_sort(objs)
        front = fronts[0]
        for i in front:
            for j in front:
                assert not dominates(objs[i], objs[j])

    @given(
        st.lists(
            st.tuples(st.floats(-5, 5), st.floats(-5, 5)),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=40)
    def test_later_fronts_dominated_by_earlier(self, rows):
        objs = np.array(rows)
        fronts = non_dominated_sort(objs)
        for r in range(1, len(fronts)):
            for j in fronts[r]:
                assert any(
                    dominates(objs[i], objs[j]) for i in fronts[r - 1]
                )
