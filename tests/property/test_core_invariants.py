"""Property-based tests (hypothesis) on core data structures."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harvester.actuator import LinearActuator
from repro.harvester.storage import EnergyStore
from repro.rsm.basis import PolynomialBasis
from repro.rsm.coding import Parameter
from repro.sim.events import EventQueue
from repro.sim.trace import Trace
from repro.units import capacitor_energy, capacitor_voltage

finite = st.floats(allow_nan=False, allow_infinity=False)


class TestCapacitorEnergy:
    @given(st.floats(1e-3, 10.0), st.floats(0.0, 10.0))
    def test_voltage_energy_roundtrip(self, c, v):
        assert capacitor_voltage(c, capacitor_energy(c, v)) == pytest.approx(v, abs=1e-9)

    @given(st.floats(1e-3, 10.0), st.floats(-5.0, 0.0))
    def test_nonpositive_energy_gives_zero_voltage(self, c, e):
        assert capacitor_voltage(c, e) == 0.0


class TestEnergyStoreInvariants:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.floats(0.0, 0.5)),
            min_size=1,
            max_size=50,
        )
    )
    def test_energy_never_negative_never_above_max(self, ops):
        store = EnergyStore(capacitance=0.55, v_init=2.0, v_max=3.0)
        for is_deposit, amount in ops:
            if is_deposit:
                store.deposit(amount)
            else:
                store.draw(amount)
            assert 0.0 <= store.energy <= store.energy_max + 1e-12
            assert 0.0 <= store.voltage <= store.v_max + 1e-9

    @given(
        st.lists(
            st.tuples(st.booleans(), st.floats(0.0, 0.5)),
            min_size=1,
            max_size=50,
        )
    )
    def test_ledger_balances(self, ops):
        store = EnergyStore(capacitance=0.55, v_init=2.0, v_max=3.0)
        e0 = store.energy
        for is_deposit, amount in ops:
            if is_deposit:
                store.deposit(amount)
            else:
                store.draw(amount)
        assert store.energy == pytest.approx(
            e0 + store.total_deposited - store.total_drawn, abs=1e-9
        )


class TestActuatorInvariants:
    @given(st.lists(st.integers(-300, 300), min_size=1, max_size=40))
    def test_position_always_in_travel(self, moves):
        act = LinearActuator(max_steps=255)
        for delta in moves:
            act.move_steps(delta)
            assert 0 <= act.steps <= 255

    @given(st.lists(st.integers(-300, 300), min_size=1, max_size=40))
    def test_energy_monotone_nondecreasing(self, moves):
        act = LinearActuator(max_steps=255)
        last = 0.0
        for delta in moves:
            act.move_steps(delta)
            assert act.total_energy >= last
            last = act.total_energy

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_move_to_position_is_exact(self, start, target):
        act = LinearActuator(max_steps=255, initial_steps=start)
        act.move_to_position(target)
        assert act.steps == target


class TestCodingInvariants:
    # Width is kept within ~6 orders of magnitude of the offset: beyond
    # that the affine transform loses the coded component to float
    # cancellation (an inherent representation limit, not a code bug).
    @given(
        st.floats(-1e3, 1e3),
        st.floats(1e-3, 1e3),
        st.floats(-1.0, 1.0),
    )
    def test_roundtrip_natural_coded(self, low, width, coded):
        p = Parameter("p", low, low + width)
        natural = p.to_natural(coded)
        assert p.to_coded(natural) == pytest.approx(coded, abs=1e-6)

    @given(st.floats(-1e3, 1e3), st.floats(1e-3, 1e3))
    def test_endpoints_map_to_unit(self, low, width):
        p = Parameter("p", low, low + width)
        assert p.to_coded(p.low) == pytest.approx(-1.0, abs=1e-9)
        assert p.to_coded(p.high) == pytest.approx(1.0, abs=1e-9)


class TestBasisInvariants:
    @given(
        st.integers(1, 4),
        st.sampled_from(["linear", "interaction", "pure_quadratic", "quadratic", "cubic"]),
    )
    def test_expand_width_matches_n_terms(self, k, kind):
        basis = PolynomialBasis(k, kind)
        X = basis.expand(np.zeros((3, k)))
        assert X.shape == (3, basis.n_terms)
        assert len(basis.term_names()) == basis.n_terms

    @given(
        st.integers(1, 4),
        st.lists(st.floats(-1, 1), min_size=1, max_size=4),
    )
    def test_expansion_at_origin_is_intercept_only(self, k, point):
        basis = PolynomialBasis(k, "quadratic")
        X = basis.expand(np.zeros((1, k)))
        assert X[0, 0] == 1.0
        assert np.all(X[0, 1:] == 0.0)


class TestEventQueueInvariants:
    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=100))
    def test_pops_in_time_order(self, times):
        q = EventQueue()
        for t in times:
            q.schedule(t, lambda: None)
        popped = [q.pop().time for _ in range(len(times))]
        assert popped == sorted(popped)

    @given(st.lists(st.floats(0.0, 100.0), min_size=2, max_size=50))
    def test_cancelled_events_never_surface(self, times):
        q = EventQueue()
        handles = [q.schedule(t, lambda: None) for t in times]
        for h in handles[::2]:
            h.cancel()
        remaining = []
        while q.next_time() is not None:
            remaining.append(q.pop())
        assert len(remaining) == len(handles[1::2])
        assert all(not ev.cancelled for ev in remaining)


class TestTraceInvariants:
    @given(
        st.lists(
            st.tuples(st.floats(0.0, 100.0), st.floats(-10, 10)),
            min_size=2,
            max_size=50,
        )
    )
    def test_interp_within_value_range(self, samples):
        tr = Trace("x")
        for t, v in sorted(samples, key=lambda s: s[0]):
            tr.append(t, v)
        lo, hi = tr.min(), tr.max()
        for q in np.linspace(tr.times[0], tr.times[-1], 7):
            assert lo - 1e-9 <= tr.interp(q) <= hi + 1e-9

    @given(
        st.lists(
            st.tuples(st.floats(0.0, 100.0), st.floats(-10, 10)),
            min_size=2,
            max_size=30,
        ),
        st.floats(-12, 12),
    )
    def test_time_above_bounded_by_span(self, samples, threshold):
        tr = Trace("x")
        for t, v in sorted(samples, key=lambda s: s[0]):
            tr.append(t, v)
        span = tr.times[-1] - tr.times[0]
        assert 0.0 <= tr.time_above(threshold) <= span + 1e-9
