"""Property-based tests (Hypothesis) for the envelope integrator.

The envelope simulator is the backend every batch study leans on, so its
physical invariants are pinned over *generated* inputs -- random firmware
configurations across the whole Table V box and stochastic
regime-switching vibration profiles -- not just the paper's scripted
excitation:

- energy conservation (the audit's imbalance stays at rounding level),
- the storage voltage stays inside [0, v_max],
- simulated time advances monotonically and covers the horizon,
- sliding-mode pinning: when harvest power lands strictly between the
  two bands' drains at a policy threshold, the voltage pins there.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.system.components import paper_system
from repro.system.config import SystemConfig
from repro.system.envelope import EnvelopeSimulator
from repro.system.stochastic import (
    EnvironmentState,
    RegimeSwitchingVibration,
    named_family,
)
from repro.system.vibration import VibrationProfile
from repro.units import mg_to_mps2

#: Absolute energy-audit tolerance (J); observed residuals are ~1e-14.
IMBALANCE_TOL = 1e-9

configs = st.builds(
    SystemConfig,
    clock_hz=st.floats(125e3, 8e6),
    watchdog_s=st.floats(60.0, 600.0),
    tx_interval_s=st.floats(0.05, 10.0),
)

generators = st.builds(
    RegimeSwitchingVibration,
    states=st.lists(
        st.builds(
            EnvironmentState,
            name=st.just("s"),
            frequency_hz=st.tuples(st.floats(60.0, 70.0), st.just(80.0)),
            accel_mg=st.tuples(st.floats(0.0, 40.0), st.floats(40.0, 120.0)),
            dwell_s=st.tuples(st.floats(10.0, 60.0), st.floats(60.0, 200.0)),
        ),
        min_size=1,
        max_size=3,
    ).map(tuple),
    jitter_mg=st.floats(0.0, 10.0),
    drift_hz_per_hour=st.floats(0.0, 10.0),
    dropout_prob=st.floats(0.0, 0.3),
    burst_prob=st.floats(0.0, 0.3),
    resolution_s=st.floats(10.0, 60.0),
)

slow = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)


def _run(config, profile, horizon, seed=0, v_init=2.65):
    parts = paper_system(
        v_init=v_init, initial_frequency=profile.frequency(0.0)
    )
    sim = EnvelopeSimulator(
        config, parts=parts, profile=profile, seed=seed, record_traces=True
    )
    return sim, sim.run(horizon)


class TestGeneratedConfigsAndProfiles:
    @slow
    @given(
        config=configs,
        generator=generators,
        gen_seed=st.integers(0, 2**31 - 1),
        horizon=st.floats(60.0, 300.0),
    )
    def test_physical_invariants(self, config, generator, gen_seed, horizon):
        profile = generator.generate(horizon, seed=gen_seed)
        sim, result = _run(config, profile, horizon, seed=gen_seed)

        # Energy conservation: every joule is accounted for.
        assert abs(result.breakdown.imbalance()) <= IMBALANCE_TOL

        # Voltage bounded by physics at every traced point.
        v = result.traces.trace("v_store").values
        v_max = sim.store.v_max
        assert float(np.min(v)) >= 0.0
        assert float(np.max(v)) <= v_max + 1e-9

        # Monotone time advance over the full horizon (a run may end a
        # little late if a tuning session straddles the horizon).
        t = result.traces.trace("v_store").times
        assert np.all(np.diff(t) >= 0.0)
        assert result.horizon >= horizon - 1e-9

        # The audit's totals are consistent with the endpoints.
        assert result.breakdown.final_stored == pytest.approx(
            sim.store.energy
        )
        assert result.transmissions >= 0

    @slow
    @given(seed=st.integers(0, 2**31 - 1))
    def test_named_families_respect_invariants(self, seed):
        from dataclasses import replace

        fam = replace(named_family("intermittent"), horizon=240.0)
        (scenario,) = fam.expand(n=1, seed=seed)
        sim, result = _run(
            scenario.config,
            scenario.profile,
            scenario.horizon,
            seed=scenario.seed,
            v_init=scenario.parts.v_init,
        )
        assert abs(result.breakdown.imbalance()) <= IMBALANCE_TOL
        v = result.traces.trace("v_store").values
        assert float(np.min(v)) >= 0.0
        assert float(np.max(v)) <= sim.store.v_max + 1e-9


class TestSlidingMode:
    @slow
    # The diode bridge only conducts above ~53 mg at 2.8 V, and the fast
    # band's drain bounds the window from above: this box straddles the
    # sliding region densely enough for assume() to keep plenty.
    @given(
        accel_mg=st.floats(52.0, 80.0),
        frequency=st.floats(62.0, 70.0),
        tx_interval=st.floats(0.3, 2.0),
    )
    def test_voltage_pins_at_fast_threshold(self, accel_mg, frequency, tx_interval):
        """If harvest lies strictly between the two bands' total drains
        at v_fast, the integrator must hold the voltage there (the
        physically averaged behaviour of micro-bursting against the
        threshold) instead of chattering or drifting away."""
        config = SystemConfig(
            clock_hz=4e6, watchdog_s=600.0, tx_interval_s=tx_interval
        )
        parts = paper_system(v_init=2.8, initial_frequency=frequency)
        profile = VibrationProfile.constant(frequency, accel_mg=accel_mg)
        policy = parts.policy(config.tx_interval_s)
        thr = policy.v_fast

        p_h = parts.microgenerator.charging_power(
            frequency, mg_to_mps2(accel_mg), thr
        )
        p_sleep = parts.node.sleep_power(thr) + parts.mcu(config.clock_hz).sleep_power()
        e_tx = parts.node.transmission_energy(thr)
        drain_up = policy.drain_rate(thr + 1e-6, e_tx)
        drain_lo = policy.drain_rate(thr - 1e-6, e_tx)
        # Keep clearly inside the sliding window so discretisation of the
        # band edge cannot flip the regime.
        margin = 0.02 * max(drain_up, 1e-12)
        assume(p_h - p_sleep - drain_lo > margin)
        assume(p_h - p_sleep - drain_up < -margin)

        sim = EnvelopeSimulator(
            config, parts=parts, profile=profile, seed=0, record_traces=True
        )
        # watchdog_s=600 > horizon: no tuning session perturbs the slide.
        result = sim.run(300.0)

        assert result.final_voltage == pytest.approx(thr, abs=1e-6)
        # While pinned, the node transmits at the energy-limited mix of
        # the two bands' rates -- strictly between them.
        rate_lo = policy.rate(thr - 1e-6)
        rate_up = policy.rate(thr + 1e-6)
        per_s = result.transmissions / 300.0
        assert rate_lo - 1e-2 <= per_s <= rate_up + 1e-2
        assert abs(result.breakdown.imbalance()) <= IMBALANCE_TOL
