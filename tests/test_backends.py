"""Backend protocol, registry, and run() parity with direct simulators."""

import pytest

import repro
from repro.backends import (
    Backend,
    backend_names,
    get_backend,
    register_backend,
    run,
)
from repro.errors import ConfigError
from repro.scenario import PartsSpec, Scenario
from repro.system.config import ORIGINAL_DESIGN, SystemConfig
from repro.system.envelope import EnvelopeSimulator
from repro.system.vibration import VibrationProfile


def test_shipped_backends_registered():
    assert "envelope" in backend_names()
    assert "detailed" in backend_names()
    assert isinstance(get_backend("envelope"), Backend)


def test_unknown_backend_error_lists_known_names():
    with pytest.raises(ConfigError, match="unknown backend 'nope'") as err:
        get_backend("nope")
    assert "envelope" in str(err.value)
    assert "detailed" in str(err.value)


def test_register_backend_guards_and_overwrite():
    class Fake:
        name = "fake-for-test"

        def simulate(self, scenario):
            raise NotImplementedError

    register_backend("fake-for-test", Fake)
    try:
        with pytest.raises(ConfigError, match="already registered"):
            register_backend("fake-for-test", Fake)
        register_backend("fake-for-test", Fake, overwrite=True)
        assert isinstance(get_backend("fake-for-test"), Fake)
    finally:
        from repro import backends

        backends._REGISTRY.pop("fake-for-test", None)


def test_run_envelope_matches_direct_simulator():
    """run(scenario) is bit-identical to hand-wiring EnvelopeSimulator."""
    profile = VibrationProfile.paper_profile(f_start=66.0)
    scenario = Scenario(
        config=SystemConfig(clock_hz=1e6, watchdog_s=90.0, tx_interval_s=0.2),
        parts=PartsSpec(v_init=2.85),
        profile=profile,
        horizon=400.0,
        seed=11,
    )
    via_api = run(scenario)
    direct = EnvelopeSimulator(
        scenario.config,
        parts=PartsSpec(v_init=2.85).build(),
        profile=profile,
        seed=11,
    ).run(400.0)
    assert via_api.transmissions == direct.transmissions
    assert via_api.final_voltage == direct.final_voltage
    assert via_api.breakdown.harvested == direct.breakdown.harvested
    assert via_api.breakdown.consumed == direct.breakdown.consumed


def test_run_envelope_forwards_options():
    scenario = Scenario(horizon=120.0, seed=1, options={"record_traces": False})
    result = run(scenario)
    assert "v_store" not in result.traces


def test_bad_options_raise_config_error():
    scenario = Scenario(horizon=60.0, options={"no_such_option": 1})
    with pytest.raises(ConfigError, match="no_such_option"):
        run(scenario)


def test_run_detailed_matches_direct_simulator():
    from repro.system.detailed import DetailedSimulator

    config = SystemConfig(clock_hz=4e6, watchdog_s=1e4, tx_interval_s=0.05)
    scenario = Scenario(
        config=config,
        parts=PartsSpec(v_init=2.85),
        horizon=0.25,
        seed=3,
        backend="detailed",
    )
    via_api = run(scenario)
    direct = DetailedSimulator(
        config, parts=PartsSpec(v_init=2.85).build(), seed=3
    ).run(0.25)
    assert via_api.transmissions == direct.transmissions
    assert via_api.final_voltage == direct.final_voltage
    # The adapter fills the storage book-ends of the energy audit.
    assert via_api.breakdown.initial_stored == pytest.approx(
        0.5 * 0.55 * 2.85**2
    )
    assert via_api.config == config
    # The MNA node trace is also published under the canonical name.
    assert "v_store" in via_api.traces
    assert "v(vdc)" in via_api.traces


def test_top_level_lazy_exports():
    assert repro.Scenario is Scenario
    assert repro.run is run
    assert "Scenario" in repro.__all__
    assert "BatchRunner" in dir(repro)
    with pytest.raises(AttributeError):
        repro.not_a_real_export


def test_default_scenario_uses_backend_default_profile():
    """profile=None must match each simulator's own constructor default."""
    result = run(Scenario(horizon=200.0, seed=5))
    direct = EnvelopeSimulator(ORIGINAL_DESIGN, seed=5).run(200.0)
    assert result.transmissions == direct.transmissions
    assert result.final_voltage == direct.final_voltage


# -- vectorized backend: registry and batch capability ------------------------


def test_vectorized_backend_registered():
    assert "vectorized" in backend_names()


def test_unknown_backend_error_lists_vectorized():
    """Regression: the registry's alternatives listing must include the
    vectorized backend (it previously only knew envelope/detailed)."""
    with pytest.raises(ConfigError) as err:
        get_backend("nope")
    assert "vectorized" in str(err.value)


def test_supports_batch_capability():
    from repro.backends import supports_batch

    assert supports_batch(get_backend("vectorized"))
    assert not supports_batch(get_backend("envelope"))
    assert not supports_batch(get_backend("detailed"))


def test_run_batch_groups_by_backend_and_preserves_order():
    from repro.backends import run_batch
    from repro.system.vectorized import numpy_available

    envelope = Scenario(
        config=ORIGINAL_DESIGN,
        profile=VibrationProfile.constant(64.0),
        horizon=60.0,
        seed=1,
        options={"record_traces": False},
    )
    scenarios = [envelope]
    if numpy_available():
        scenarios = [
            envelope,
            Scenario(
                config=ORIGINAL_DESIGN,
                profile=VibrationProfile.constant(64.0),
                horizon=60.0,
                seed=1,
                backend="vectorized",
                options={"record_traces": False},
            ),
            envelope,
        ]
    results = run_batch(scenarios)
    assert len(results) == len(scenarios)
    singles = [run(s) for s in scenarios]
    assert [r.transmissions for r in results] == [
        r.transmissions for r in singles
    ]
    assert [r.final_voltage for r in results] == [
        r.final_voltage for r in singles
    ]


def test_run_conformance_default_includes_vectorized():
    """Regression: run_conformance previously only knew envelope and
    detailed; the default backend set now carries vectorized too."""
    import inspect

    from repro.backends import run_conformance

    defaults = inspect.signature(run_conformance).parameters["backends"].default
    assert "vectorized" in defaults


def test_quiet_options_knows_vectorized():
    from repro.backends import quiet_options

    assert quiet_options("vectorized") == {"record_traces": False}
    assert quiet_options("envelope") == {"record_traces": False}
    assert quiet_options("detailed") == {}


def test_vectorized_missing_numpy_regression(monkeypatch):
    """The NumPy-missing path: registration survives, use fails with a
    ConfigError that names the extra and a working alternative."""
    from repro.system.vectorized import DISABLE_ENV_VAR, numpy_available

    monkeypatch.setenv(DISABLE_ENV_VAR, "1")
    assert not numpy_available()
    assert "vectorized" in backend_names()
    scenario = Scenario(
        config=ORIGINAL_DESIGN,
        profile=VibrationProfile.constant(64.0),
        horizon=30.0,
        seed=1,
        backend="vectorized",
    )
    with pytest.raises(ConfigError, match=r"repro-wsn\[vectorized\]"):
        run(scenario)


def test_run_batch_rejects_miscounting_backend():
    """A buggy third-party run_batch that returns the wrong number of
    results must fail fast at the dispatch site, not leave None holes."""
    from repro.backends import run_batch
    from repro.errors import SimulationError

    class ShortChanging:
        name = "short-changing"

        def simulate(self, scenario):
            raise NotImplementedError

        def run_batch(self, scenarios):
            return []  # always one short (or more)

    register_backend("short-changing", ShortChanging)
    try:
        scenario = Scenario(
            config=ORIGINAL_DESIGN,
            horizon=30.0,
            seed=1,
            backend="short-changing",
        )
        with pytest.raises(SimulationError, match="0 results for a 1-scenario"):
            run_batch([scenario])
    finally:
        from repro import backends

        backends._REGISTRY.pop("short-changing", None)
