"""ResultStore: content addressing, provenance, query/export/gc, tiers."""

import json
import pickle

import pytest

from repro.core.batch import BatchRunner
from repro.errors import ConfigError, DesignError
from repro.scenario import PartsSpec, Scenario, named_scenario
from repro.store import ResultStore, canonical_json, scenario_family
from repro.system.config import SystemConfig
from repro.system.result import SystemResult


def _scenarios(n=4, horizon=90.0):
    return [
        Scenario(
            config=SystemConfig(
                clock_hz=1e6, watchdog_s=300.0, tx_interval_s=0.5 + 0.5 * i
            ),
            parts=PartsSpec(v_init=2.85),
            horizon=horizon,
            seed=i,
            name=f"case-{i}",
        )
        for i in range(n)
    ]


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "results.db")


def _run(scenario):
    from repro.backends import run

    return run(scenario)


def test_put_get_round_trip(store):
    scenario = _scenarios(1)[0]
    result = _run(scenario)
    assert store.put(scenario, result, wall_time_s=0.25)
    loaded = store.get(scenario)
    assert loaded is not None
    assert loaded.transmissions == result.transmissions
    assert loaded.final_voltage == result.final_voltage
    assert loaded.breakdown.harvested == result.breakdown.harvested
    assert loaded.to_json() == result.to_json()


def test_put_is_idempotent_first_writer_wins(store):
    scenario = _scenarios(1)[0]
    result = _run(scenario)
    assert store.put(scenario, result) is True
    assert store.put(scenario, result) is False
    assert len(store) == 1


def test_content_addressing_ignores_name(store):
    from dataclasses import replace

    scenario = _scenarios(1)[0]
    result = _run(scenario)
    store.put(scenario, result)
    relabelled = replace(scenario, name="другое имя")
    assert relabelled in store
    assert store.get(relabelled) is not None


def test_get_unknown_returns_none(store):
    assert store.get("0" * 64) is None
    assert store.get(_scenarios(1)[0]) is None
    assert "deadbeef" not in store


def test_stored_scenario_document_round_trips(store):
    scenario = _scenarios(1)[0]
    store.put(scenario, _run(scenario))
    recovered = store.get_scenario(scenario.cache_key())
    assert recovered == scenario


def test_payload_bytes_are_canonical(store):
    scenario = _scenarios(1)[0]
    result = _run(scenario)
    store.put(scenario, result)
    text = store.get_payload_text(scenario)
    assert text == canonical_json(result.to_payload())


def test_query_filters(store):
    for scenario in _scenarios(4):
        store.put(scenario, _run(scenario))
    rows = store.query()
    assert len(rows) == 4
    assert {r.name for r in rows} == {f"case-{i}" for i in range(4)}
    assert store.query(backend="detailed") == []
    assert len(store.query(tx_interval_s=1.0)) == 1
    fast = store.query(min_transmissions=1)
    assert all(r.transmissions >= 1 for r in fast)
    limited = store.query(limit=2)
    assert len(limited) == 2


def test_query_by_family(store):
    from repro.system.stochastic import named_family

    family = named_family("hvac")
    from dataclasses import replace

    family = replace(family, horizon=120.0)
    scenarios = family.expand(n=2, seed=0)
    for s in scenarios:
        store.put(s, _run(s))
    assert scenario_family(scenarios[0]) == "hvac"
    assert len(store.query(family="hvac")) == 2
    assert store.query(family="vehicle") == []


def test_export_json_and_csv(store):
    for scenario in _scenarios(2):
        store.put(scenario, _run(scenario))
    doc = json.loads(store.export_json())
    assert doc["count"] == 2
    assert {"key", "transmissions", "backend"} <= set(doc["results"][0])
    assert "result" not in doc["results"][0]
    with_payloads = json.loads(store.export_json(include_payloads=True))
    rebuilt = SystemResult.from_payload(with_payloads["results"][0]["result"])
    assert rebuilt.transmissions == doc["results"][0]["transmissions"]
    csv_text = store.export_csv()
    lines = csv_text.splitlines()
    assert len(lines) == 3
    assert lines[0].startswith("key,name,family,backend")


def test_export_csv_quotes_hostile_names(store):
    import csv
    import io
    from dataclasses import replace

    scenario = replace(_scenarios(1)[0], name='evil,"name\nwith newline')
    store.put(scenario, _run(scenario))
    text = store.export_csv()
    rows = list(csv.reader(io.StringIO(text)))
    assert len(rows) == 2
    assert len(rows[1]) == len(rows[0])  # one field per header column
    assert rows[1][1] == scenario.name


def test_stats(store):
    for scenario in _scenarios(3):
        store.put(scenario, _run(scenario), wall_time_s=0.5)
    stats = store.stats()
    assert stats.n_results == 3
    assert stats.n_campaigns == 0
    assert stats.by_backend == (("envelope", 3),)
    assert stats.payload_bytes > 0
    assert stats.total_wall_time_s == pytest.approx(1.5)
    assert stats.oldest is not None and stats.newest is not None
    assert stats.by_job_status == ()  # no service jobs in this store
    assert "jobs:" not in stats.summary()


def test_stats_count_service_jobs(store):
    from repro.service import JobQueue

    queue = JobQueue(store)
    for seed in range(2):
        queue.submit(_scenarios(1)[0].with_seed(seed).to_dict())
    queue.claim("w")
    stats = store.stats()
    assert stats.by_job_status == (("queued", 1), ("running", 1))
    assert "jobs: queued 1, running 1" in stats.summary()


def test_gc_requires_selector_and_deletes(store):
    for scenario in _scenarios(3):
        store.put(scenario, _run(scenario))
    assert store.gc() == 0
    assert len(store) == 3
    assert store.gc(orphans=True, dry_run=True) == 3
    assert len(store) == 3
    assert store.gc(orphans=True) == 3
    assert len(store) == 0


def test_gc_older_than(store):
    scenario = _scenarios(1)[0]
    store.put(scenario, _run(scenario))
    assert store.gc(older_than_days=1.0) == 0  # too recent
    assert store.gc(older_than_days=0.0) == 1  # everything


def test_rejects_memory_database(tmp_path):
    with pytest.raises(ConfigError):
        ResultStore(":memory:")


def test_rejects_missing_directory(tmp_path):
    with pytest.raises(ConfigError):
        ResultStore(tmp_path / "no" / "such" / "dir" / "x.db")


def test_rejects_future_layout(tmp_path):
    store = ResultStore(tmp_path / "s.db")
    conn = store._conn()
    conn.execute("UPDATE store_meta SET value='99' WHERE key='schema'")
    store.close()
    with pytest.raises(DesignError):
        ResultStore(tmp_path / "s.db")


def test_store_survives_pickling(store):
    scenario = _scenarios(1)[0]
    store.put(scenario, _run(scenario))
    clone = pickle.loads(pickle.dumps(store))
    assert len(clone) == 1
    assert clone.get(scenario) is not None


# -- BatchRunner integration ---------------------------------------------------


def test_batchrunner_writes_through_and_reads_back(store):
    scenarios = _scenarios(3)
    cold = BatchRunner(jobs=1, store=store)
    first = cold.run(scenarios)
    assert cold.misses == 3 and cold.store_hits == 0
    assert len(store) == 3

    warm = BatchRunner(jobs=1, store=store)
    second = warm.run(scenarios)
    assert warm.misses == 0 and warm.store_hits == 3
    assert [r.transmissions for r in first] == [r.transmissions for r in second]
    assert [r.final_voltage for r in first] == [r.final_voltage for r in second]


def test_batchrunner_memory_tier_shields_store(store):
    scenarios = _scenarios(2)
    runner = BatchRunner(jobs=1, store=store)
    runner.run(scenarios)
    runner.run(scenarios)
    # Second pass is served by the memory LRU, not the disk tier.
    assert runner.store_hits == 0
    assert runner.hits == 2


def test_batchrunner_store_results_match_direct_simulation(store):
    scenario = named_scenario("cold-start")
    from dataclasses import replace

    scenario = replace(scenario, horizon=300.0, seed=7)
    direct = _run(scenario)
    via_store = BatchRunner(jobs=1, store=store).run_one(scenario)
    rehydrated = BatchRunner(jobs=1, store=store, cache_size=0).run_one(scenario)
    assert via_store.to_json() == direct.to_json()
    assert rehydrated.to_json() == direct.to_json()


def test_batchrunner_parallel_with_store(store):
    scenarios = _scenarios(4)
    parallel = BatchRunner(jobs=2, store=store).run(scenarios)
    serial = BatchRunner(jobs=1).run(scenarios)
    assert [r.transmissions for r in parallel] == [
        r.transmissions for r in serial
    ]
    assert len(store) == 4


def test_wall_time_provenance_recorded(store):
    scenarios = _scenarios(2)
    BatchRunner(jobs=1, store=store).run(scenarios)
    rows = store.query()
    assert all(row.wall_time_s > 0.0 for row in rows)
    assert all(row.repro_version for row in rows)
    assert all(row.created_at for row in rows)
