"""CLI surface of the persistence subsystem.

Covers the ``store`` and ``campaign`` groups, ``--store`` on the
simulation subcommands, and the canonical result documents written by
``run-scenario --out`` (which ``repro-wsn report`` must render).
"""

import json

import pytest

from repro.cli import main
from repro.store import Campaign, ResultStore
from repro.system.result import RESULT_SCHEMA, SystemResult


@pytest.fixture
def db(tmp_path):
    return str(tmp_path / "cli.db")


def test_store_init_and_stats(db, capsys):
    assert main(["store", "init", db]) == 0
    assert main(["store", "stats", db]) == 0
    out = capsys.readouterr().out
    assert "results: 0" in out
    assert "campaigns: 0" in out


def test_run_scenario_with_store_hits_second_time(db, capsys):
    argv = ["run-scenario", "low-vibration", "--seed", "1", "--store", db]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "fresh simulation" in first
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "(store:" in second
    assert len(ResultStore(db)) == 1


def test_run_scenario_out_is_canonical_payload(db, tmp_path, capsys):
    out_file = tmp_path / "result.json"
    assert (
        main(
            [
                "run-scenario",
                "low-vibration",
                "--seed",
                "1",
                "--out",
                str(out_file),
            ]
        )
        == 0
    )
    payload = json.loads(out_file.read_text())
    assert payload["schema"] == RESULT_SCHEMA
    result = SystemResult.from_payload(payload)
    assert result.horizon == 3600.0
    # report renders the canonical document.
    capsys.readouterr()
    assert main(["report", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "transmissions:" in out
    assert "energy (mJ):" in out


def test_manifest_run_with_store_and_out(db, tmp_path, capsys):
    manifest = tmp_path / "manifest.json"
    results_doc = tmp_path / "results.json"
    assert (
        main(
            [
                "gen-scenarios",
                "hvac",
                "--n",
                "2",
                "--seed",
                "1",
                "--horizon",
                "120",
                "--out",
                str(manifest),
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "run-scenario",
                str(manifest),
                "--store",
                db,
                "--out",
                str(results_doc),
            ]
        )
        == 0
    )
    assert len(ResultStore(db)) == 2
    payload = json.loads(results_doc.read_text())
    assert payload["schema"] == RESULT_SCHEMA
    assert len(payload["results"]) == 2
    for entry in payload["results"]:
        SystemResult.from_payload(entry["result"])  # must parse
    capsys.readouterr()
    assert main(["report", str(results_doc)]) == 0
    out = capsys.readouterr().out
    assert "total transmissions:" in out


def test_gen_scenarios_store_journals_campaign(db, capsys):
    assert (
        main(
            [
                "gen-scenarios",
                "hvac",
                "--n",
                "2",
                "--seed",
                "3",
                "--horizon",
                "90",
                "--store",
                db,
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "hvac-n2-s3" in out
    campaign = Campaign(ResultStore(db), "hvac-n2-s3")
    assert campaign.total == 2
    assert campaign.status().pending == 2


def test_campaign_run_resume_status_cycle(db, tmp_path, capsys):
    manifest = tmp_path / "m.json"
    main(
        [
            "gen-scenarios",
            "hvac",
            "--n",
            "2",
            "--seed",
            "1",
            "--horizon",
            "90",
            "--out",
            str(manifest),
        ]
    )
    capsys.readouterr()
    assert main(["campaign", "run", str(manifest), "--store", db]) == 0
    out = capsys.readouterr().out
    assert "2/2 done" in out
    assert main(["campaign", "status", "--store", db]) == 0
    assert "2/2 done" in capsys.readouterr().out
    assert main(["campaign", "resume", "hvac-n2-s1", "--store", db]) == 0
    assert "nothing to do" in capsys.readouterr().out


def test_store_export_and_gc(db, tmp_path, capsys):
    main(["run-scenario", "low-vibration", "--seed", "1", "--store", db])
    capsys.readouterr()
    assert main(["store", "export", db, "--format", "csv"]) == 0
    csv_out = capsys.readouterr().out
    assert csv_out.startswith("key,name,family,backend")
    assert main(["store", "export", db, "--payloads"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["count"] == 1
    SystemResult.from_payload(doc["results"][0]["result"])
    # gc without a selector is refused; orphan gc clears the row.
    assert main(["store", "gc", db]) == 2
    capsys.readouterr()
    assert main(["store", "gc", db, "--orphans"]) == 0
    assert "deleted 1" in capsys.readouterr().out
    assert len(ResultStore(db)) == 0


def test_report_rejects_payloadless_store_export(db, tmp_path, capsys):
    main(["run-scenario", "low-vibration", "--seed", "1", "--store", db])
    export = tmp_path / "export.json"
    main(["store", "export", db, "--out", str(export)])
    capsys.readouterr()
    # No embedded payloads -> an error, never fabricated zero results.
    assert main(["report", str(export)]) == 1
    assert "result" in capsys.readouterr().err
    # With --payloads the same export renders.
    main(["store", "export", db, "--payloads", "--out", str(export)])
    capsys.readouterr()
    assert main(["report", str(export)]) == 0
    assert "transmissions:" in capsys.readouterr().out


def test_montecarlo_with_store_dedupes_repeat(db, capsys):
    argv = [
        "montecarlo",
        "--samples",
        "3",
        "--seed",
        "2",
        "--store",
        db,
    ]
    assert main(argv) == 0
    store = ResultStore(db)
    assert len(store) == 3
    assert main(argv) == 0  # second run: all served from the store
    assert len(store) == 3


# -- sharding, merge, partitioned runs -----------------------------------------


def test_store_init_sharded_and_stats(tmp_path, capsys):
    root = str(tmp_path / "sharded")
    assert main(["store", "init", root, "--shards", "4"]) == 0
    assert "4 shard(s)" in capsys.readouterr().out
    assert main(["store", "stats", root]) == 0
    assert "shards: 4" in capsys.readouterr().out


def _cli_manifest(tmp_path, n="2", seed="1"):
    manifest = tmp_path / "m.json"
    main(
        ["gen-scenarios", "hvac", "--n", n, "--seed", seed,
         "--horizon", "90", "--out", str(manifest)]
    )
    return str(manifest)


def test_cli_partitioned_run_and_merge_matches_single(tmp_path, capsys):
    manifest = _cli_manifest(tmp_path, n="4")
    single = str(tmp_path / "single.db")
    assert main(["campaign", "run", manifest, "--store", single,
                 "--name", "acc"]) == 0
    # Two processes' worth of slices, each into a private store...
    for i in ("1", "2"):
        part = str(tmp_path / f"p{i}.db")
        assert main(["campaign", "run", manifest, "--store", part,
                     "--name", "acc", "--partitions", "2",
                     "--partition", i]) == 0
    capsys.readouterr()
    # ...merged into a sharded canonical store.
    canonical = str(tmp_path / "canonical")
    assert main(["store", "init", canonical, "--shards", "4"]) == 0
    assert main(["store", "merge", canonical,
                 str(tmp_path / "p1.db"), str(tmp_path / "p2.db")]) == 0
    out = capsys.readouterr().out
    assert "imported" in out
    # The canonical campaign pass finds everything already stored.
    assert main(["campaign", "run", manifest, "--store", canonical,
                 "--name", "acc"]) == 0
    from repro.store import open_store

    a, b = ResultStore(single), open_store(canonical)
    assert a.keys() == b.keys()
    for key in a.keys():
        assert a.get_payload_text(key) == b.get_payload_text(key)


def test_cli_partition_flag_validation(tmp_path, capsys):
    manifest = _cli_manifest(tmp_path)
    db = str(tmp_path / "x.db")
    assert main(["campaign", "run", manifest, "--store", db,
                 "--partition", "1"]) == 2
    assert "--partitions" in capsys.readouterr().err
    assert main(["campaign", "run", manifest, "--store", db,
                 "--partitions", "2", "--partition", "7"]) == 2
    assert "1..2" in capsys.readouterr().err


def test_cli_store_sync(tmp_path, capsys):
    a, b = str(tmp_path / "a.db"), str(tmp_path / "b.db")
    main(["run-scenario", "low-vibration", "--seed", "1", "--store", a])
    main(["run-scenario", "low-vibration", "--seed", "2", "--store", b])
    capsys.readouterr()
    assert main(["store", "sync", a, b]) == 0
    out = capsys.readouterr().out
    assert out.count("merged") == 2
    assert ResultStore(a).keys() == ResultStore(b).keys()
