"""``merge_stores``/``sync_stores`` dry-run: audit, never write.

A dry run must (a) write nothing to either store, (b) predict exactly
what a real merge imports, and (c) *collect* every conflict a real
merge would refuse on -- rows with diverging canonical bytes, journals
with diverging content -- instead of raising at the first.
"""

from dataclasses import replace

import pytest

from repro.cli import main
from repro.errors import StoreError
from repro.store import (
    Campaign,
    ResultStore,
    merge_stores,
    sync_stores,
)
from repro.store.db import RESULT_COLUMNS
from repro.system.stochastic import named_family


def _scenarios(n=4, seed=3):
    family = replace(
        named_family("factory-floor"), horizon=120.0, backend="envelope"
    )
    return family.expand(n=n, seed=seed)


@pytest.fixture
def populated(tmp_path):
    """Two stores with overlapping content: a holds 0..2, b holds 2..4."""
    scenarios = _scenarios(n=4)
    a = ResultStore(tmp_path / "a.db")
    b = ResultStore(tmp_path / "b.db")
    Campaign.create(a, "left", scenarios[:3]).run(jobs=1)
    Campaign.create(b, "right", scenarios[2:]).run(jobs=1)
    return a, b


def test_dry_run_predicts_and_writes_nothing(populated):
    a, b = populated
    before_a, before_b = set(a.keys()), set(b.keys())
    report = merge_stores(a, b, dry_run=True)
    assert report.dry_run is True
    assert report.imported == 1  # b's non-overlapping row
    assert report.identical == 1  # the shared scenario
    assert report.campaigns_imported == 1 and report.conflicts == ()
    assert set(a.keys()) == before_a  # nothing written...
    assert set(b.keys()) == before_b
    assert a._conn().execute(
        "SELECT COUNT(*) FROM campaigns WHERE name='right'"
    ).fetchone()[0] == 0  # ...journals included

    # The prediction matches what the real merge then does.
    real = merge_stores(a, b)
    assert (real.imported, real.identical) == (
        report.imported, report.identical,
    )
    summary = report.summary()
    assert "would merge" in summary and "1 row(s) to import" in summary
    assert "would merge" not in real.summary()


def test_dry_run_collects_row_conflicts_instead_of_raising(populated):
    a, b = populated
    # Forge divergence: replant one of b's rows under a's key with
    # different payload bytes.
    shared = sorted(set(a.keys()) & set(b.keys()))[0]
    row = list(b.get_raw(shared))
    payload_idx = RESULT_COLUMNS.index("payload")
    conn = b._conn()
    conn.execute("BEGIN IMMEDIATE")
    conn.execute(
        "UPDATE results SET payload=? WHERE key=?",
        (row[payload_idx] + " ", shared),
    )
    conn.execute("COMMIT")

    report = merge_stores(a, b, dry_run=True)
    assert report.conflicts == (shared,)
    assert "REFUSES: 1 diverging row(s)" in report.summary()
    assert shared[:12] in report.summary()
    with pytest.raises(StoreError, match="canonical bytes differ"):
        merge_stores(a, b)  # the real merge still refuses


def test_dry_run_collects_journal_conflicts(tmp_path):
    scenarios = _scenarios(n=4)
    a = ResultStore(tmp_path / "a.db")
    b = ResultStore(tmp_path / "b.db")
    # Same campaign name, different journaled scenario lists.
    Campaign.create(a, "camp", scenarios[:2])
    Campaign.create(b, "camp", scenarios[2:])
    report = merge_stores(a, b, dry_run=True)
    assert report.journal_conflicts == ("campaign 'camp'",)
    assert "REFUSES: journal conflict(s) campaign 'camp'" in report.summary()
    with pytest.raises(StoreError, match="campaign 'camp'"):
        merge_stores(a, b)
    # journals=False drops the conflict along with the journals.
    assert merge_stores(a, b, journals=False, dry_run=True).journal_conflicts == ()


def test_sync_dry_run_reports_both_directions(populated):
    a, b = populated
    into_a, into_b = sync_stores(a, b, dry_run=True)
    assert into_a.dry_run and into_b.dry_run
    assert into_a.imported == 1 and into_b.imported == 2
    assert len(a.keys()) == 3 and len(b.keys()) == 2  # untouched


def test_cli_merge_and_sync_dry_run(populated, capsys):
    a, b = populated
    assert main(
        ["store", "merge", str(a.path), str(b.path), "--dry-run"]
    ) == 0
    out = capsys.readouterr().out
    assert "would merge" in out and "1 row(s) to import" in out
    assert len(a.keys()) == 3  # no write through the CLI either

    assert main(["store", "sync", str(a.path), str(b.path), "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert out.count("would merge") == 2
    assert len(a.keys()) == 3 and len(b.keys()) == 2
