"""Campaign: journaling, crash-safe chunked execution, zero re-simulation.

The centrepiece is the acceptance property from the issue: a campaign
over a 40-scenario stochastic family, killed mid-run, resumes without
re-simulating a single stored scenario -- verified by a counting backend
that records every simulation it performs.
"""

from dataclasses import replace

import pytest

from repro.backends import EnvelopeBackend, register_backend
from repro.core.batch import BatchRunner
from repro.errors import ConfigError, SimulationError
from repro.scenario import PartsSpec, Scenario
from repro.store import Campaign, ResultStore, campaign_names, campaign_statuses
from repro.system.config import SystemConfig
from repro.system.stochastic import named_family


class CountingBackend:
    """Envelope backend that logs (and can crash after) N simulations."""

    name = "counting"

    #: Shared mutable state: cache keys in simulation order, crash gate.
    simulated = []
    crash_after = None

    def simulate(self, scenario):
        if (
            CountingBackend.crash_after is not None
            and len(CountingBackend.simulated) >= CountingBackend.crash_after
        ):
            raise SimulationError("simulated crash (power loss)")
        CountingBackend.simulated.append(scenario.cache_key())
        return EnvelopeBackend().simulate(replace(scenario, backend="envelope"))


register_backend("counting", CountingBackend, overwrite=True)


@pytest.fixture(autouse=True)
def _reset_counting_backend():
    CountingBackend.simulated = []
    CountingBackend.crash_after = None
    yield
    CountingBackend.simulated = []
    CountingBackend.crash_after = None


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "campaign.db")


def _family_scenarios(n=40, horizon=60.0, backend="counting"):
    """A 40-scenario expansion of a named stochastic family."""
    family = replace(named_family("factory-floor"), horizon=horizon, backend=backend)
    return family.expand(n=n, seed=3)


def _plain_scenarios(n=5):
    return [
        Scenario(
            config=SystemConfig(tx_interval_s=1.0 + i),
            parts=PartsSpec(v_init=2.85),
            horizon=60.0,
            seed=i,
            name=f"plain-{i}",
        )
        for i in range(n)
    ]


# -- journaling ----------------------------------------------------------------


def test_create_and_reload(store):
    scenarios = _plain_scenarios()
    campaign = Campaign.create(store, "study", scenarios, source="unit test")
    assert campaign.total == 5
    reloaded = Campaign(store, "study")
    assert reloaded.total == 5
    assert reloaded.source == "unit test"
    assert reloaded.scenarios() == scenarios
    assert campaign_names(store) == ["study"]


def test_create_resolves_floating_seeds(store):
    floating = [s.with_seed(None) for s in _plain_scenarios(3)]
    campaign = Campaign.create(store, "seeded", floating, seed=11)
    journaled = campaign.scenarios()
    assert all(s.seed is not None for s in journaled)
    # Deterministic: the same creation inputs journal the same keys.
    other = ResultStore(store.path.parent / "other.db")
    again = Campaign.create(other, "seeded", floating, seed=11)
    assert [s.cache_key() for s in again.scenarios()] == [
        s.cache_key() for s in journaled
    ]


def test_duplicate_name_rejected_unless_identical(store):
    scenarios = _plain_scenarios(3)
    Campaign.create(store, "dup", scenarios)
    with pytest.raises(ConfigError):
        Campaign.create(store, "dup", scenarios)
    # exist_ok with identical content reuses the journal...
    again = Campaign.create(store, "dup", scenarios, exist_ok=True)
    assert again.total == 3
    # ...but different content is still an error.
    with pytest.raises(ConfigError):
        Campaign.create(store, "dup", _plain_scenarios(4), exist_ok=True)


def test_unknown_campaign(store):
    with pytest.raises(ConfigError):
        Campaign(store, "missing")


def test_empty_campaign_rejected(store):
    with pytest.raises(ConfigError):
        Campaign.create(store, "empty", [])


# -- execution -----------------------------------------------------------------


def test_run_completes_and_returns_ordered_results(store):
    scenarios = _plain_scenarios(4)
    campaign = Campaign.create(store, "full", scenarios)
    assert campaign.status().pending == 4
    results = campaign.run(jobs=1)
    assert len(results) == 4
    status = campaign.status()
    assert status.complete and status.done == 4
    # Results align with the journal order.
    for scenario, result in zip(campaign.scenarios(), results):
        assert store.get(scenario).to_json() == result.to_json()


def test_rerun_of_complete_campaign_simulates_nothing(store):
    scenarios = _family_scenarios(n=6)
    campaign = Campaign.create(store, "warm", scenarios)
    campaign.run(jobs=1)
    first_count = len(CountingBackend.simulated)
    assert first_count == len(scenarios)
    results = Campaign(store, "warm").run(jobs=1)
    assert len(CountingBackend.simulated) == first_count  # zero new sims
    assert len(results) == len(scenarios)


def test_custom_runner_must_carry_store(store):
    campaign = Campaign.create(store, "guard", _plain_scenarios(2))
    with pytest.raises(ConfigError):
        campaign.run(runner=BatchRunner(jobs=1))


def test_custom_runner_must_carry_the_same_store(store, tmp_path):
    campaign = Campaign.create(store, "guard2", _plain_scenarios(2))
    other = ResultStore(tmp_path / "elsewhere.db")
    with pytest.raises(ConfigError):
        campaign.run(runner=BatchRunner(jobs=1, store=other))
    # A different instance opened on the same file is fine.
    same_file = ResultStore(store.path)
    results = campaign.run(runner=BatchRunner(jobs=1, store=same_file))
    assert len(results) == 2
    assert campaign.status().complete


def test_killed_campaign_resumes_without_resimulating_stored_work(store):
    """The issue's acceptance scenario: kill at ~50%, resume, count sims."""
    scenarios = _family_scenarios(n=40)
    assert len(scenarios) == 40
    campaign = Campaign.create(store, "killed", scenarios)

    # "Kill" the process mid-campaign: the backend dies after 20
    # simulations, mid-chunk, so some finished work is lost with it.
    CountingBackend.crash_after = 20
    with pytest.raises(SimulationError):
        campaign.run(jobs=1, chunk_size=8)
    stored_before_resume = set(store.keys())
    assert 0 < len(stored_before_resume) < 40  # durable chunks only
    survived = campaign.status()
    assert survived.done == len(stored_before_resume)

    # Resume in a fresh campaign object (a new process would do this).
    CountingBackend.crash_after = None
    CountingBackend.simulated = []
    resumed = Campaign(store, "killed")
    results = resumed.resume(jobs=1, chunk_size=8)

    resim = set(CountingBackend.simulated) & stored_before_resume
    assert resim == set()  # zero re-simulation of stored scenarios
    assert len(CountingBackend.simulated) == 40 - len(stored_before_resume)
    assert len(results) == 40
    assert resumed.status().complete
    assert len(store) == 40


def test_resume_results_identical_to_uninterrupted_run(store):
    scenarios = _family_scenarios(n=10)
    interrupted = Campaign.create(store, "a", scenarios)
    CountingBackend.crash_after = 5
    with pytest.raises(SimulationError):
        interrupted.run(jobs=1, chunk_size=4)
    CountingBackend.crash_after = None
    resumed_results = Campaign(store, "a").resume(jobs=1, chunk_size=4)

    clean_store = ResultStore(store.path.parent / "clean.db")
    clean = Campaign.create(clean_store, "a", scenarios)
    clean_results = clean.run(jobs=1)
    assert [r.to_json() for r in resumed_results] == [
        r.to_json() for r in clean_results
    ]


def test_status_listing(store):
    Campaign.create(store, "one", _plain_scenarios(2))
    Campaign.create(store, "two", _plain_scenarios(3))
    statuses = campaign_statuses(store)
    assert [s.name for s in statuses] == ["one", "two"]
    assert all(not s.complete for s in statuses)
    assert "0/2" in statuses[0].summary()
