"""Merging stores and partitioned campaign execution.

Two contracts under test:

- **merge/sync** (:mod:`repro.store.merge`): rows move between stores
  by raw byte copy, identical keys dedupe, a key whose canonical bytes
  differ between the two stores is a hard :class:`StoreError` (naming
  both provenances), and campaign/study journals merge with the same
  identical-or-refuse semantics;
- **partitioned execution** (:class:`Campaign.partition` and friends):
  disjoint slices with the *same* full-list seed resolution as a
  single-store run, so separately-written partition stores merge back
  into a canonical store that is byte-identical to the one a single
  process would have produced -- kill-safe, with zero re-simulation.
"""

import multiprocessing

from dataclasses import replace

import pytest

from repro.backends import EnvelopeBackend, register_backend, run
from repro.errors import SimulationError, StoreError
from repro.scenario import PartsSpec, Scenario
from repro.store import (
    Campaign,
    CampaignPartition,
    ResultStore,
    ShardedResultStore,
    merge_stores,
    partition_name,
    partition_scenarios,
    partition_slices,
    sync_stores,
)
from repro.system.config import SystemConfig
from repro.system.stochastic import named_family


class CountingBackend:
    """Envelope backend that logs (and can crash after) N simulations."""

    name = "merge-counting"

    simulated = []
    crash_after = None

    def simulate(self, scenario):
        if (
            CountingBackend.crash_after is not None
            and len(CountingBackend.simulated) >= CountingBackend.crash_after
        ):
            raise SimulationError("simulated crash (power loss)")
        CountingBackend.simulated.append(scenario.cache_key())
        return EnvelopeBackend().simulate(replace(scenario, backend="envelope"))


register_backend("merge-counting", CountingBackend, overwrite=True)


@pytest.fixture(autouse=True)
def _reset_counting_backend():
    CountingBackend.simulated = []
    CountingBackend.crash_after = None
    yield
    CountingBackend.simulated = []
    CountingBackend.crash_after = None


def _pairs(n=6, offset=0):
    pairs = []
    for i in range(offset, offset + n):
        scenario = Scenario(
            config=SystemConfig(tx_interval_s=0.5 + 0.5 * i),
            parts=PartsSpec(v_init=2.85),
            horizon=60.0,
            seed=i,
        )
        pairs.append((scenario, run(scenario)))
    return pairs


# -- merge ---------------------------------------------------------------------


def test_merge_imports_missing_and_dedupes_identical(tmp_path):
    a = ResultStore(tmp_path / "a.db")
    b = ResultStore(tmp_path / "b.db")
    shared = _pairs(3)
    only_b = _pairs(3, offset=10)
    for scenario, result in shared:
        a.put(scenario, result)
        b.put(scenario, result)
    for scenario, result in only_b:
        b.put(scenario, result)

    report = merge_stores(a, b)
    assert report.imported == 3
    assert report.identical == 3
    assert len(a) == 6
    # Byte identity end to end.
    for key in b.keys():
        assert a.get_payload_text(key) == b.get_payload_text(key)
    # Idempotent: a second merge moves nothing.
    again = merge_stores(a, b)
    assert again.imported == 0
    assert again.identical == 6


def test_merge_refuses_divergent_bytes_naming_both_stores(tmp_path):
    a = ResultStore(tmp_path / "a.db")
    b = ResultStore(tmp_path / "b.db")
    scenario, result = _pairs(1)[0]
    a.put(scenario, result)
    b.put(scenario, result)
    key = scenario.cache_key()
    conn = b._conn()
    conn.execute(
        "UPDATE results SET payload=? WHERE key=?", ('{"tampered": 1}', key)
    )
    conn.commit()
    with pytest.raises(StoreError) as excinfo:
        merge_stores(a, b)
    message = str(excinfo.value)
    assert key in message
    assert "a.db" in message and "b.db" in message
    assert "payload" in message


def test_merge_campaign_journals_identical_or_refused(tmp_path):
    a = ResultStore(tmp_path / "a.db")
    b = ResultStore(tmp_path / "b.db")
    scenarios = [s for s, _ in _pairs(4)]
    Campaign.create(b, "camp", scenarios, source="b side")

    report = merge_stores(a, b)
    assert report.campaigns_imported == 1
    assert Campaign(a, "camp").scenarios() == scenarios
    # Same name, same journal on both sides: shared, not re-imported.
    report = merge_stores(a, b)
    assert report.campaigns_imported == 0
    assert report.campaigns_shared == 1
    # Same name, different journal: refused with the name in the error.
    c = ResultStore(tmp_path / "c.db")
    Campaign.create(c, "camp", scenarios[:2], source="c side")
    with pytest.raises(StoreError, match="'camp'"):
        merge_stores(a, c)


def test_merge_study_journals_identical_or_refused(tmp_path):
    a = ResultStore(tmp_path / "a.db")
    b = ResultStore(tmp_path / "b.db")
    b.put_study("st", {"n": 1}, "speckey", "ccd", [[0.0]], ["k1", "k2"])
    report = merge_stores(a, b)
    assert report.studies_imported == 1
    assert a.get_study("st") is not None
    assert merge_stores(a, b).studies_shared == 1
    c = ResultStore(tmp_path / "c.db")
    c.put_study("st", {"n": 1}, "speckey", "ccd", [[0.0]], ["k1", "k3"])
    with pytest.raises(StoreError, match="'st'"):
        merge_stores(a, c)


def test_merge_journals_false_copies_rows_only(tmp_path):
    a = ResultStore(tmp_path / "a.db")
    b = ResultStore(tmp_path / "b.db")
    pairs = _pairs(3)
    for scenario, result in pairs:
        b.put(scenario, result)
    Campaign.create(b, "camp", [s for s, _ in pairs])
    report = merge_stores(a, b, journals=False)
    assert report.imported == 3
    assert report.campaigns_imported == 0
    from repro.store import campaign_names

    assert campaign_names(a) == []


def test_sync_converges_both_stores(tmp_path):
    a = ResultStore(tmp_path / "a.db")
    b = ResultStore(tmp_path / "b.db")
    for scenario, result in _pairs(2):
        a.put(scenario, result)
    for scenario, result in _pairs(2, offset=10):
        b.put(scenario, result)
    reports = sync_stores(a, b)
    assert len(reports) == 2
    assert a.keys() == b.keys()
    assert len(a) == 4


# -- partitioning --------------------------------------------------------------


def test_partition_slices_are_contiguous_and_cover(tmp_path):
    assert partition_slices(10, 3) == [(0, 4), (4, 7), (7, 10)]
    assert partition_slices(4, 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]
    with pytest.raises(Exception):
        partition_slices(3, 4)  # more parts than scenarios


def test_partition_seed_resolution_matches_single_run(tmp_path):
    family = replace(named_family("hvac"), horizon=60.0)
    scenarios = family.expand(n=8, seed=2)
    store = ResultStore(tmp_path / "ref.db")
    reference = Campaign.create(store, "ref", scenarios)
    reference_keys = [s.cache_key() for s in reference.scenarios()]
    # Concatenating the partition slices reproduces the reference keys
    # exactly: seeds resolve over the FULL list before slicing.
    sliced = []
    for group in partition_scenarios(scenarios, 3):
        sliced.extend(s.cache_key() for s in group)
    assert sliced == reference_keys
    assert partition_name("ref", 2, 3) == "ref@p2of3"


def test_campaign_partition_objects_cover_disjointly(tmp_path):
    store = ResultStore(tmp_path / "store.db")
    family = replace(named_family("hvac"), horizon=60.0)
    campaign = Campaign.create(store, "part", family.expand(n=7, seed=1))
    parts = campaign.partition(3)
    assert [p.name for p in parts] == [
        "part@p1of3", "part@p2of3", "part@p3of3"
    ]
    keys = [s.cache_key() for p in parts for s in p.scenarios]
    assert keys == [s.cache_key() for s in campaign.scenarios()]
    assert len(set(keys)) == len(keys)


# -- the acceptance path: two processes, a kill, a resume, one merge -----------


def _run_partition_process(part, path, crash_after, queue):
    """Child body: run one partition against its own store, report the
    number of scenarios this process actually simulated."""
    CountingBackend.simulated = []
    CountingBackend.crash_after = crash_after
    store = ResultStore(path)
    try:
        part.run(store, jobs=1, chunk_size=2, executor="thread")
        queue.put(("done", len(CountingBackend.simulated)))
    except SimulationError:
        queue.put(("crashed", len(CountingBackend.simulated)))


def _spawn(ctx, part, path, crash_after, queue):
    process = ctx.Process(
        target=_run_partition_process, args=(part, path, crash_after, queue)
    )
    process.start()
    process.join(timeout=120)
    assert not process.is_alive()
    return queue.get(timeout=10)


def test_partitioned_kill_resume_merge_is_byte_identical(tmp_path):
    family = replace(
        named_family("factory-floor"), horizon=60.0, backend="merge-counting"
    )
    scenarios = family.expand(n=12, seed=3)

    # Reference: one process, one store.
    single = ResultStore(tmp_path / "single.db")
    CountingBackend.simulated = []
    reference = Campaign.create(single, "acc", scenarios)
    reference.run(jobs=1, executor="thread")
    assert len(CountingBackend.simulated) == 12

    # Partitioned: two processes, two private stores; partition 1 is
    # killed mid-run and then resumed.
    parts = [
        CampaignPartition(
            campaign="acc", index=i + 1, of=2, scenarios=tuple(group)
        )
        for i, group in enumerate(partition_scenarios(scenarios, 2))
    ]
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    paths = [tmp_path / "p1.db", tmp_path / "p2.db"]

    state, simulated = _spawn(ctx, parts[0], paths[0], 3, queue)
    assert state == "crashed"
    partial = len(ResultStore(paths[0]))
    assert 0 < partial < len(parts[0].scenarios)

    state, resumed = _spawn(ctx, parts[0], paths[0], None, queue)
    assert state == "done"
    # The resume simulated only what the kill left missing.
    assert resumed == len(parts[0].scenarios) - partial
    state, simulated2 = _spawn(ctx, parts[1], paths[1], None, queue)
    assert state == "done"
    assert simulated2 == len(parts[1].scenarios)

    # Merge both partition stores into a sharded canonical store.
    canonical = ShardedResultStore(tmp_path / "canonical", shards=4)
    merge_stores(canonical, ResultStore(paths[0]), journals=False)
    merge_stores(canonical, ResultStore(paths[1]), journals=False)

    # The final canonical pass journals the campaign and simulates
    # NOTHING: every row is already present.
    CountingBackend.simulated = []
    final = Campaign.create(canonical, "acc", scenarios)
    final.run(jobs=1, executor="thread")
    assert CountingBackend.simulated == []
    assert final.status().complete

    # Byte identity against the single-store reference, row for row.
    assert canonical.keys() == single.keys()
    for key in single.keys():
        assert canonical.get_payload_text(key) == single.get_payload_text(key)
        assert canonical.get_scenario(key) == single.get_scenario(key)
    # And the campaign journal matches too: same order, same keys.
    assert [s.cache_key() for s in final.scenarios()] == [
        s.cache_key() for s in reference.scenarios()
    ]
