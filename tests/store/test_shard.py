"""Sharded store semantics (:mod:`repro.store.shard`).

The contract under test: a :class:`ShardedResultStore` is a drop-in
:class:`ResultStore` -- same API, same canonical bytes per key -- whose
rows live spread over N shard files, with the layout self-describing
(shard count discovered on reopen) and misuse (plain file opened as
sharded, shard-count mismatch) refused loudly.
"""

import pickle

from dataclasses import replace

import pytest

from repro.backends import run
from repro.errors import ConfigError
from repro.scenario import PartsSpec, Scenario
from repro.store import (
    Campaign,
    ResultStore,
    ShardedResultStore,
    open_store,
    shard_index,
)
from repro.store.shard import shard_file_name
from repro.system.config import SystemConfig


def _pairs(n=10):
    pairs = []
    for i in range(n):
        scenario = Scenario(
            config=SystemConfig(tx_interval_s=0.5 + 0.5 * i),
            parts=PartsSpec(v_init=2.85),
            horizon=60.0,
            seed=i,
        )
        pairs.append((scenario, run(scenario)))
    return pairs


@pytest.fixture(scope="module")
def pairs():
    return _pairs()


# -- routing and parity --------------------------------------------------------


def test_rows_spread_over_shards_and_round_trip(tmp_path, pairs):
    store = ShardedResultStore(tmp_path / "store", shards=3)
    for scenario, result in pairs:
        store.put(scenario, result)
    assert len(store) == len(pairs)
    # Every row landed on the shard its key routes to, and only there.
    populated = set()
    for index in range(3):
        shard = ResultStore(tmp_path / "store" / shard_file_name(index))
        for key in shard.keys():
            assert shard_index(key, 3) == index
            populated.add(index)
    assert len(populated) > 1, "ten sha256 keys should hit >1 shard"
    for scenario, result in pairs:
        loaded = store.get(scenario)
        assert loaded is not None
        assert loaded.transmissions == result.transmissions
        assert scenario.cache_key() in store


def test_sharded_bytes_identical_to_plain_store(tmp_path, pairs):
    plain = ResultStore(tmp_path / "plain.db")
    sharded = ShardedResultStore(tmp_path / "sharded", shards=4)
    for scenario, result in pairs:
        plain.put(scenario, result)
        sharded.put(scenario, result)
    assert plain.keys() == sharded.keys()
    for key in plain.keys():
        assert plain.get_payload_text(key) == sharded.get_payload_text(key)
        assert plain.get_scenario(key) == sharded.get_scenario(key)


def test_query_and_have_keys_fan_out(tmp_path, pairs):
    plain = ResultStore(tmp_path / "plain.db")
    sharded = ShardedResultStore(tmp_path / "sharded", shards=4)
    for scenario, result in pairs:
        plain.put(scenario, result)
        sharded.put(scenario, result)
    assert {r.key for r in sharded.query()} == {r.key for r in plain.query()}
    keys = [s.cache_key() for s, _ in pairs]
    probe = keys[:3] + ["0" * 64]
    assert sharded.have_keys(probe) == set(keys[:3])
    limited = sharded.query(limit=4)
    assert len(limited) == 4


def test_stats_aggregate_and_report_shards(tmp_path, pairs):
    sharded = ShardedResultStore(tmp_path / "sharded", shards=4)
    for scenario, result in pairs:
        sharded.put(scenario, result)
    stats = sharded.stats()
    assert stats.n_results == len(pairs)
    assert stats.n_shards == 4
    assert "shards: 4" in stats.summary()


# -- layout discovery ----------------------------------------------------------


def test_reopen_discovers_shard_count(tmp_path, pairs):
    root = tmp_path / "store"
    first = ShardedResultStore(root, shards=3)
    for scenario, result in pairs:
        first.put(scenario, result)
    first.close()
    reopened = ShardedResultStore(root)
    assert reopened.n_shards == 3
    assert len(reopened) == len(pairs)


def test_reopen_with_wrong_shard_count_is_refused(tmp_path):
    ShardedResultStore(tmp_path / "store", shards=3).close()
    with pytest.raises(ConfigError, match="3 shard"):
        ShardedResultStore(tmp_path / "store", shards=5)


def test_plain_file_is_not_a_meta_shard(tmp_path):
    root = tmp_path / "store"
    root.mkdir()
    ResultStore(root / shard_file_name(0)).close()
    # A plain single-file store renamed into position must be refused:
    # it carries no shard-count meta, so treating it as shard 0 of an
    # unknown layout would misroute every future write.
    with pytest.raises(ConfigError, match="plain single-file store"):
        ShardedResultStore(root)


def test_open_store_autodetects_layout(tmp_path):
    plain = open_store(tmp_path / "plain.db")
    assert isinstance(plain, ResultStore)
    assert not isinstance(plain, ShardedResultStore)
    created = open_store(tmp_path / "sharded", shards=4)
    assert isinstance(created, ShardedResultStore)
    created.close()
    detected = open_store(tmp_path / "sharded")
    assert isinstance(detected, ShardedResultStore)
    assert detected.n_shards == 4


def test_sharded_store_pickles_for_process_fanout(tmp_path, pairs):
    store = ShardedResultStore(tmp_path / "store", shards=2)
    scenario, result = pairs[0]
    store.put(scenario, result)
    clone = pickle.loads(pickle.dumps(store))
    assert clone.n_shards == 2
    assert clone.get(scenario) is not None


# -- campaigns and gc on a sharded store ---------------------------------------


def test_campaign_runs_against_sharded_store(tmp_path, pairs):
    store = ShardedResultStore(tmp_path / "store", shards=4)
    scenarios = [replace(s, backend="envelope") for s, _ in pairs]
    campaign = Campaign.create(store, "sharded-camp", scenarios)
    results = campaign.run(jobs=1, executor="thread")
    assert len(results) == len(scenarios)
    status = campaign.status()
    assert status.complete
    assert campaign.pending() == []


def test_gc_fans_out_and_respects_journal_orphans(tmp_path, pairs):
    store = ShardedResultStore(tmp_path / "store", shards=3)
    scenarios = [s for s, _ in pairs]
    for scenario, result in pairs:
        store.put(scenario, result)
    Campaign.create(store, "keep", scenarios[:4])
    # Orphan selector: only rows outside any campaign journal go.
    assert store.gc(orphans=True, dry_run=True) == len(pairs) - 4
    assert store.gc(orphans=True) == len(pairs) - 4
    assert len(store) == 4
    assert store.have_keys([s.cache_key() for s in scenarios[:4]]) == {
        s.cache_key() for s in scenarios[:4]
    }
