"""Two independent processes writing the same scenarios to one store.

The WAL + ``INSERT OR IGNORE`` design must guarantee that racing
writers leave exactly one row per scenario, with canonical byte-identical
payloads and an uncorrupted database.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.core.batch import BatchRunner
from repro.scenario import PartsSpec, Scenario
from repro.store import ResultStore, canonical_json
from repro.system.config import SystemConfig

#: Runs inside each racing process: simulate the same deterministic
#: batch through a store-attached runner with thread fan-out.
_WORKER = """
import sys
from repro.core.batch import BatchRunner
from repro.scenario import PartsSpec, Scenario
from repro.store import ResultStore
from repro.system.config import SystemConfig

path = sys.argv[1]
scenarios = [
    Scenario(
        config=SystemConfig(tx_interval_s=0.5 + 0.5 * i),
        parts=PartsSpec(v_init=2.85),
        horizon=60.0,
        seed=i,
        name=f"race-{i}",
    )
    for i in range(6)
]
runner = BatchRunner(jobs=4, executor="thread", store=ResultStore(path))
results = runner.run(scenarios)
print(sum(r.transmissions for r in results))
"""


def _scenarios():
    return [
        Scenario(
            config=SystemConfig(tx_interval_s=0.5 + 0.5 * i),
            parts=PartsSpec(v_init=2.85),
            horizon=60.0,
            seed=i,
            name=f"race-{i}",
        )
        for i in range(6)
    ]


def test_two_processes_race_cleanly(tmp_path):
    db = tmp_path / "race.db"
    ResultStore(db)  # pre-create so both workers open the same schema

    src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WORKER, str(db)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for _ in range(2)
    ]
    outputs = []
    for proc in procs:
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, err
        outputs.append(out.strip())
    # Both processes computed identical aggregate results.
    assert outputs[0] == outputs[1]

    # Exactly one row per scenario, no duplicates, no corruption.
    store = ResultStore(db)
    scenarios = _scenarios()
    assert len(store) == len(scenarios)
    conn = store._conn()
    assert conn.execute("PRAGMA integrity_check").fetchone()[0] == "ok"

    # Payload bytes are the canonical serialisation of a local re-run.
    reference = BatchRunner(jobs=1).run(scenarios)
    for scenario, result in zip(scenarios, reference):
        text = store.get_payload_text(scenario)
        assert text is not None
        assert text == canonical_json(result.to_payload())


def test_concurrent_threads_one_store_object(tmp_path):
    """One shared store object across a thread pool (per-thread conns)."""
    store = ResultStore(tmp_path / "threads.db")
    scenarios = _scenarios()
    runner = BatchRunner(jobs=4, executor="thread", store=store)
    results = runner.run(scenarios)
    assert len(store) == len(scenarios)
    again = BatchRunner(jobs=4, executor="thread", store=store).run(scenarios)
    assert [r.transmissions for r in results] == [
        r.transmissions for r in again
    ]
