"""Grouping partition campaign journals under their parent campaign."""

from dataclasses import replace

import pytest

from repro.store import (
    Campaign,
    ResultStore,
    campaign_statuses,
    group_campaign_statuses,
    partition_name,
    split_partition_name,
)
from repro.system.stochastic import named_family


def _scenarios(n=4, seed=3):
    family = replace(
        named_family("factory-floor"), horizon=120.0, backend="envelope"
    )
    return family.expand(n=n, seed=seed)


def test_split_partition_name_round_trips():
    assert split_partition_name(partition_name("camp", 2, 4)) == ("camp", 2, 4)
    assert split_partition_name("a@b@p10of12") == ("a@b", 10, 12)
    assert split_partition_name("plain-campaign") is None
    assert split_partition_name("camp@pXof4") is None
    assert split_partition_name("camp@p1of") is None


def test_grouping_folds_partitions_under_parent(tmp_path):
    store = ResultStore(tmp_path / "groups.db")
    scenarios = _scenarios(n=4)
    Campaign.create(store, "camp", scenarios)
    Campaign.create(store, "camp@p1of2", scenarios[:2]).run(jobs=1)
    Campaign.create(store, "camp@p2of2", scenarios[2:])
    Campaign.create(store, "solo", scenarios[:1])

    groups = group_campaign_statuses(campaign_statuses(store))
    assert [g.name for g in groups] == ["camp", "solo"]
    camp, solo = groups
    assert camp.of == 2 and [p.name for p in camp.partitions] == [
        "camp@p1of2", "camp@p2of2",
    ]
    assert camp.partitions_complete == 1
    assert solo.of == 0 and solo.partitions == ()

    lines = camp.summary_lines()
    assert lines[0].startswith("camp:")
    assert "partitions: 1/2 complete" in lines[1]
    assert lines[2].strip().startswith("p1:") and "2/2 done" in lines[2]
    assert solo.summary_lines() == [solo.status.summary()]


def test_grouping_without_parent_journal(tmp_path):
    """Partition journals whose parent lives elsewhere (a worker's
    scratch store) still group, with an explicit placeholder head."""
    store = ResultStore(tmp_path / "orphan.db")
    Campaign.create(store, "remote@p2of3", _scenarios(n=2))
    (group,) = group_campaign_statuses(campaign_statuses(store))
    assert group.name == "remote" and group.status is None
    assert group.of == 3 and group.partitions_complete == 0
    head = group.summary_lines()[0]
    assert "remote" in head and "not in this store" in head


def test_grouping_preserves_partition_index_order(tmp_path):
    store = ResultStore(tmp_path / "order.db")
    scenarios = _scenarios(n=4)
    # Created out of order; grouping must sort by index, not name/time.
    Campaign.create(store, "c@p3of3", scenarios[2:3])
    Campaign.create(store, "c@p1of3", scenarios[0:1])
    Campaign.create(store, "c@p2of3", scenarios[1:2])
    (group,) = group_campaign_statuses(campaign_statuses(store))
    assert [split_partition_name(p.name)[1] for p in group.partitions] == [
        1, 2, 3,
    ]
