"""The package version is declared twice; pin the two together.

``pyproject.toml`` (what installers see) and ``repro.__version__``
(what the runtime reports) have drifted before -- PR 9 bumped only one.
Parsing the project file here makes any future one-sided bump a test
failure instead of a silent mismatch.
"""

import re
from pathlib import Path

import repro

PYPROJECT = Path(__file__).resolve().parent.parent / "pyproject.toml"


def _pyproject_version() -> str:
    # No tomllib dependency needed: the version line is a plain
    # ``version = "X.Y.Z"`` entry in the [project] table.
    match = re.search(
        r'^version\s*=\s*"([^"]+)"', PYPROJECT.read_text(), re.MULTILINE
    )
    assert match is not None, "pyproject.toml has no version line"
    return match.group(1)


def test_versions_match():
    assert repro.__version__ == _pyproject_version()


def test_version_is_semver():
    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)
