"""The ``coord`` subcommand, and the full-process kill/recover story.

``test_sigkill_mid_campaign_recovers_on_survivor`` is the acceptance
fault-injection test: two real ``repro-wsn serve`` subprocesses, one
SIGKILLed while it holds an unfinished partition, and the final
coordinator store byte-identical to a single-process ``campaign run``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.cli import main
from repro.coord import Coordinator
from repro.service import ServiceApp, ServiceServer, WorkerPool
from repro.store import Campaign, ResultStore
from repro.system.stochastic import manifest_scenarios, named_family

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _manifest(n=4, seed=3, horizon=120.0):
    family = replace(
        named_family("factory-floor"), horizon=horizon, backend="envelope"
    )
    return family.manifest(n=n, seed=seed)


@pytest.fixture
def manifest_path(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(_manifest()))
    return str(path)


# -- the CLI face (in-process workers) -----------------------------------------


def test_coord_run_and_status_cli(tmp_path, manifest_path, capsys):
    store_path = str(tmp_path / "local.db")
    worker_store = ResultStore(tmp_path / "worker.db")
    pool = WorkerPool(worker_store, workers=1, poll_interval=0.05)
    pool.start()
    server = ServiceServer(ServiceApp(worker_store, pool=pool)).start()
    try:
        assert main(
            [
                "coord", "run", manifest_path,
                "--workers", server.url,
                "--store", store_path,
                "--poll", "0.05",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "starting 'factory-floor-n4-s3'" in out
        assert "1/1 partition(s) merged" in out
        assert "4/4 done" in out

        assert main(["coord", "status", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "coordinated campaign factory-floor-n4-s3: 1/1" in out
        assert "p1: merged" in out

        # A second run is a resume of a complete journal: a no-op.
        assert main(
            [
                "coord", "run", manifest_path,
                "--workers", server.url,
                "--store", store_path,
            ]
        ) == 0
        assert "resuming 'factory-floor-n4-s3'" in capsys.readouterr().out
    finally:
        server.shutdown()
        pool.stop(drain=False, timeout=5)
    assert len(ResultStore(store_path)) == 4


def test_coord_status_empty_store(tmp_path, capsys):
    store_path = str(tmp_path / "empty.db")
    assert main(["coord", "status", "--store", store_path]) == 0
    assert "no coordinated campaigns" in capsys.readouterr().out


def test_coord_status_unknown_name_errors(tmp_path, capsys):
    store_path = str(tmp_path / "empty.db")
    assert main(["coord", "status", "ghost", "--store", store_path]) == 1
    assert "unknown coordinated campaign" in capsys.readouterr().err


def test_campaign_status_groups_partition_journals(tmp_path, capsys):
    """Satellite view: NAME@pIofN journals fold under their parent."""
    store = ResultStore(tmp_path / "grouped.db")
    scenarios = manifest_scenarios(_manifest(n=4, seed=3))
    Campaign.create(store, "camp", scenarios)
    Campaign.create(store, "camp@p1of2", scenarios[:2]).run(jobs=1)
    Campaign.create(store, "camp@p2of2", scenarios[2:])
    assert main(["campaign", "status", "--store", str(store.path)]) == 0
    out = capsys.readouterr().out
    assert "partitions: 1/2 complete" in out
    assert "p1: camp@p1of2" in out and "2/2 done" in out
    assert out.index("camp:") < out.index("p1:")  # grouped under parent


# -- the real processes --------------------------------------------------------


def _spawn_serve(db, extra=()):
    env = dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONUNBUFFERED="1")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--store", db, "--port", "0", "--workers", "1",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = process.stdout.readline()
    assert "serving on http://127.0.0.1:" in banner, banner
    port = int(banner.split("http://127.0.0.1:")[1].split(" ")[0].split("/")[0])
    return process, f"http://127.0.0.1:{port}"


def test_sigkill_mid_campaign_recovers_on_survivor(tmp_path):
    manifest = _manifest(n=4, seed=3)
    # The victim polls its queue every 600 s: it accepts the partition
    # job but will never start it, so SIGKILL provably lands while the
    # partition is unfinished -- no timing luck involved.
    survivor, survivor_url = _spawn_serve(
        str(tmp_path / "survivor.db"), extra=("--poll", "0.1")
    )
    victim, victim_url = _spawn_serve(
        str(tmp_path / "victim.db"), extra=("--poll", "600")
    )
    local = ResultStore(tmp_path / "local.db")
    try:
        coord = Coordinator(
            local,
            manifest,
            [survivor_url, victim_url],
            poll_interval_s=0.05,
            breaker_threshold=1,
            breaker_cooldown_s=120.0,
        )
        status = coord.step()  # one partition per worker
        victims = [p for p in status.states if p.worker == victim_url]
        assert len(victims) == 1

        victim.send_signal(signal.SIGKILL)
        victim.communicate(timeout=30)

        deadline = time.monotonic() + 120.0
        while True:
            status = coord.step()
            if status.complete:
                break
            assert time.monotonic() < deadline, f"no recovery: {status}"
            time.sleep(0.05)

        recovered = status.states[victims[0].index - 1]
        assert recovered.worker == survivor_url
        assert recovered.attempts == 2
    finally:
        for process in (survivor, victim):
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=10)

    # Byte-identity vs the single-process run: rows and journal.
    reference = ResultStore(tmp_path / "reference.db")
    Campaign.create(
        reference, coord.name, manifest_scenarios(manifest)
    ).run(jobs=1)
    assert set(local.keys()) == set(reference.keys())
    for key in reference.keys():
        assert local.get_payload_text(key) == reference.get_payload_text(key)
        assert local.get_scenario(key) == reference.get_scenario(key)
    journal_sql = (
        "SELECT idx, key, scenario FROM campaign_scenarios "
        "WHERE campaign=? ORDER BY idx"
    )
    assert (
        local._conn().execute(journal_sql, (coord.name,)).fetchall()
        == reference._conn().execute(journal_sql, (coord.name,)).fetchall()
    )
