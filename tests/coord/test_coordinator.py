"""The distributed coordinator against real in-process workers.

The acceptance properties under test:

- the final local store is **byte-identical** to a single-process
  ``Campaign.run()`` of the same manifest (rows and campaign journal);
- merge is **streaming**: a finished partition's rows are queryable in
  the local store while other partitions are still queued/running;
- a dead worker's partition is detected, resubmitted to a survivor,
  and the result still byte-identical;
- ``resume()`` of a completed (or killed) run re-fetches **nothing**
  already merged.
"""

import time
from dataclasses import replace

import pytest

from repro.coord import CoordJournal, Coordinator, coord_names, coord_status
from repro.errors import ConfigError, CoordinationError
from repro.service import (
    ServiceApp,
    ServiceClient,
    ServiceServer,
    WorkerPool,
)
from repro.store import Campaign, ResultStore
from repro.system.stochastic import manifest_scenarios, named_family


def _manifest(n=4, seed=3, horizon=120.0):
    family = replace(
        named_family("factory-floor"), horizon=horizon, backend="envelope"
    )
    return family.manifest(n=n, seed=seed)


class _Worker:
    """One in-process serve stack: store + pool + HTTP server."""

    def __init__(self, tmp_path, tag, pool_workers=1):
        self.store = ResultStore(tmp_path / f"worker-{tag}.db")
        self.pool = None
        if pool_workers:
            self.pool = WorkerPool(
                self.store, workers=pool_workers, poll_interval=0.05
            )
            self.pool.start()
        self.server = ServiceServer(ServiceApp(self.store, pool=self.pool))
        self.server.start()
        self.url = self.server.url

    def stop(self):
        self.server.shutdown()
        if self.pool is not None:
            self.pool.stop(drain=False, timeout=5)


@pytest.fixture
def local(tmp_path):
    return ResultStore(tmp_path / "local.db")


def _workers(tmp_path, request, specs):
    out = []
    for tag, pool_workers in specs:
        worker = _Worker(tmp_path, tag, pool_workers=pool_workers)
        request.addfinalizer(worker.stop)
        out.append(worker)
    return out


def _reference_store(tmp_path, manifest, name):
    store = ResultStore(tmp_path / "reference.db")
    Campaign.create(store, name, manifest_scenarios(manifest)).run(jobs=1)
    return store


def _assert_stores_identical(local, reference, name):
    """Rows AND campaign journal, compared on canonical bytes."""
    assert set(local.keys()) == set(reference.keys())
    for key in reference.keys():
        assert local.get_payload_text(key) == reference.get_payload_text(key)
        assert local.get_scenario(key) == reference.get_scenario(key)
    journal_sql = (
        "SELECT idx, key, scenario FROM campaign_scenarios "
        "WHERE campaign=? ORDER BY idx"
    )
    assert (
        local._conn().execute(journal_sql, (name,)).fetchall()
        == reference._conn().execute(journal_sql, (name,)).fetchall()
    )


# -- construction --------------------------------------------------------------


def test_validates_workers_and_manifest(local):
    with pytest.raises(ConfigError, match="at least one worker"):
        Coordinator(local, _manifest(), [])
    with pytest.raises(ConfigError, match="distinct"):
        Coordinator(local, _manifest(), ["http://a", "http://a/"])
    with pytest.raises(ConfigError, match="partition"):
        Coordinator(
            local, {**_manifest(), "partition": 1}, ["http://a"]
        )
    with pytest.raises(ConfigError, match="max_attempts"):
        Coordinator(local, _manifest(), ["http://a"], max_attempts=0)


def test_defaults_name_and_partitions(local):
    coord = Coordinator(
        local, _manifest(n=4, seed=3), ["http://a", "http://b", "http://c"]
    )
    assert coord.name == "factory-floor-n4-s3"  # queue's own derivation
    assert coord.partitions == 3  # min(workers, scenarios)
    # The canonical campaign is journaled up front, full-list seeds.
    assert Campaign(local, coord.name).status().total == 4


def test_partition_count_never_exceeds_scenarios(local):
    coord = Coordinator(
        local, _manifest(n=2), ["http://a", "http://b", "http://c"]
    )
    assert coord.partitions == 2


def test_mismatched_rerun_refuses(local):
    Coordinator(local, _manifest(), ["http://a", "http://b"])
    with pytest.raises(ConfigError, match="different manifest or partition"):
        Coordinator(local, _manifest(), ["http://a"], partitions=1)


# -- the happy path ------------------------------------------------------------


def test_run_merges_byte_identical_to_direct_run(tmp_path, request, local):
    workers = _workers(tmp_path, request, [("a", 1), ("b", 1)])
    manifest = _manifest(n=4, seed=3)
    coord = Coordinator(
        local, manifest, [w.url for w in workers], poll_interval_s=0.05
    )
    status = coord.run()
    assert status.complete and status.merged == 2
    assert status.campaign.done == 4
    parts = status.states
    assert all(p.state == "merged" and p.attempts == 1 for p in parts)
    assert {p.worker for p in parts} == {w.url for w in workers}  # spread
    assert sum(p.rows_merged for p in parts) == 4
    reference = _reference_store(tmp_path, manifest, coord.name)
    _assert_stores_identical(local, reference, coord.name)


def test_streaming_merge_rows_queryable_before_completion(
    tmp_path, request, local
):
    # Worker "b" has no pool: its partition stays queued on the worker,
    # so only one partition can finish -- the point where we assert the
    # merged rows are already queryable locally.
    workers = _workers(tmp_path, request, [("a", 1), ("b", 0)])
    manifest = _manifest(n=4, seed=3)
    coord = Coordinator(
        local,
        manifest,
        [w.url for w in workers],
        poll_interval_s=0.05,
        stall_timeout_s=60.0,
    )
    deadline = time.monotonic() + 60.0
    while True:
        status = coord.step()
        merged = [p for p in status.states if p.state == "merged"]
        if merged:
            break
        assert time.monotonic() < deadline, f"no partition merged: {status}"
        time.sleep(0.05)

    assert not status.complete  # the other partition still pending
    merged_keys = coord.partition_keys(merged[0].index)
    # Streaming: those rows are in the local store and queryable NOW.
    assert local.have_keys(merged_keys) == set(merged_keys)
    assert all(local.get_payload_text(k) is not None for k in merged_keys)
    # ...and visible in coord status (fresh reader, journal-only).
    snapshot = coord_status(local, coord.name)
    assert snapshot.merged == 1 and not snapshot.complete
    assert snapshot.campaign.done == len(merged_keys)

    # Un-wedge worker b and finish; the full store must still be exact.
    workers[1].pool = WorkerPool(
        workers[1].store, workers=1, poll_interval=0.05
    )
    workers[1].pool.start()
    coord.run()
    reference = _reference_store(tmp_path, manifest, coord.name)
    _assert_stores_identical(local, reference, coord.name)


# -- fault injection -----------------------------------------------------------


def test_dead_worker_partition_resubmitted_to_survivor(
    tmp_path, request, local
):
    """Kill a worker mid-campaign: its partition must be detected as
    lost (circuit breaker), resubmitted to the survivor, and the final
    store byte-identical to the single-process run."""
    # "b" never processes its job (no pool), so its partition is still
    # open when the server dies.
    workers = _workers(tmp_path, request, [("a", 1), ("b", 0)])
    manifest = _manifest(n=4, seed=3)
    coord = Coordinator(
        local,
        manifest,
        [w.url for w in workers],
        poll_interval_s=0.05,
        breaker_threshold=1,     # first connection failure opens it
        breaker_cooldown_s=60.0,  # ...and it stays open for the test
    )
    status = coord.step()  # both partitions submitted, one per worker
    by_worker = {p.worker: p for p in status.states}
    assert set(by_worker) == {w.url for w in workers}
    victim = by_worker[workers[1].url]

    workers[1].stop()  # SIGKILL-equivalent: the endpoint vanishes

    deadline = time.monotonic() + 60.0
    while True:
        status = coord.step()
        if status.complete:
            break
        assert time.monotonic() < deadline, f"never recovered: {status}"
        time.sleep(0.05)

    part = status.states[victim.index - 1]
    assert part.state == "merged"
    assert part.worker == workers[0].url  # retried on the survivor
    assert part.attempts == 2
    reference = _reference_store(tmp_path, manifest, coord.name)
    _assert_stores_identical(local, reference, coord.name)


def test_all_workers_dead_hits_the_deadline(tmp_path, local):
    coord = Coordinator(
        local,
        _manifest(n=2),
        ["http://127.0.0.1:1", "http://127.0.0.1:2"],  # nothing listens
        poll_interval_s=0.01,
        breaker_threshold=1,
        breaker_cooldown_s=0.01,
        max_attempts=2,
        deadline_s=0.2,
        client_factory=lambda url: ServiceClient(
            url, retries=0, sleep=lambda s: None
        ),
    )
    with pytest.raises(CoordinationError, match="deadline"):
        coord.run()
    # Nothing merged, nothing failed terminally -- resumable later.
    assert coord_status(local, coord.name).merged == 0


def test_worker_rejecting_the_manifest_is_terminal(local):
    """A worker that *answers* 400 means no worker will take the job;
    the coordinator must fail loudly instead of spinning retries."""
    import json as _json
    import threading
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class _Reject(BaseHTTPRequestHandler):
        def do_POST(self):
            self.rfile.read(int(self.headers.get("Content-Length") or 0))
            body = _json.dumps(
                {"error": "manifest carries no scenarios", "status": 400}
            ).encode()
            self.send_response(400)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):
            pass

    server = ThreadingHTTPServer(("127.0.0.1", 0), _Reject)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        coord = Coordinator(
            local,
            _manifest(n=2),
            [f"http://127.0.0.1:{server.server_port}"],
            poll_interval_s=0.01,
        )
        with pytest.raises(CoordinationError, match="rejected partition"):
            coord.run()
    finally:
        server.shutdown()
        server.server_close()


# -- resume --------------------------------------------------------------------


class _CountingClient(ServiceClient):
    calls = None  # type: list

    def request(self, method, path, payload=None, query=None):
        type(self).calls.append((method, path))
        return super().request(method, path, payload=payload, query=query)


def test_resume_of_complete_run_makes_zero_requests(tmp_path, request, local):
    workers = _workers(tmp_path, request, [("a", 1), ("b", 1)])
    manifest = _manifest(n=4, seed=3)
    urls = [w.url for w in workers]
    Coordinator(local, manifest, urls, poll_interval_s=0.05).run()

    _CountingClient.calls = []
    resumed = Coordinator(
        local, manifest, urls,
        client_factory=lambda url: _CountingClient(url, retries=0),
    )
    assert resumed._resumed is True
    status = resumed.resume()
    assert status.complete
    assert _CountingClient.calls == []  # zero re-fetch of merged partitions


def test_resume_mid_run_refetches_only_unmerged(tmp_path, request, local):
    # Worker "b" starts poolless so exactly one partition can merge
    # before the coordinator "dies"; its pool starts for the resume.
    workers = _workers(tmp_path, request, [("a", 1), ("b", 0)])
    manifest = _manifest(n=4, seed=3)
    urls = [w.url for w in workers]
    first = Coordinator(local, manifest, urls, poll_interval_s=0.05)
    deadline = time.monotonic() + 60.0
    while True:  # drive until one partition merged, then "die"
        status = first.step()
        if any(p.state == "merged" for p in status.states):
            break
        assert time.monotonic() < deadline
        time.sleep(0.05)
    merged_before = {p.index for p in status.states if p.state == "merged"}
    assert len(merged_before) == 1
    workers[1].pool = WorkerPool(
        workers[1].store, workers=1, poll_interval=0.05
    )
    workers[1].pool.start()

    _CountingClient.calls = []
    resumed = Coordinator(
        local, manifest, urls,
        poll_interval_s=0.05,
        client_factory=lambda url: _CountingClient(url, retries=0),
    )
    assert resumed._resumed
    final = resumed.resume()
    assert final.complete
    # No result page of an already-merged partition was fetched again.
    merged_jobs = {
        status.states[i - 1].job_id for i in merged_before
    }
    fetched = [
        path for _, path in _CountingClient.calls if "/results" in path
    ]
    assert fetched  # the unmerged partitions were fetched...
    assert not [
        p for p in fetched if any(j in p for j in merged_jobs)
    ]  # ...the merged ones were not


def test_resume_adopts_job_submitted_before_crash(tmp_path, request, local):
    """A coordinator killed between submit and journal write must not
    duplicate the job: the resumed run rediscovers it by name."""
    workers = _workers(tmp_path, request, [("a", 1)])
    manifest = _manifest(n=2, seed=3)
    first = Coordinator(
        local, manifest, [workers[0].url], partitions=1, poll_interval_s=0.05
    )
    # Simulate the crash window: the job reached the worker, but the
    # journal still says queued with no job id.
    client = ServiceClient(workers[0].url)
    submitted = client.submit(
        manifest, kind="campaign", name=first.name, partition=(1, 1)
    )
    resumed = Coordinator(
        local, manifest, [workers[0].url], partitions=1, poll_interval_s=0.05
    )
    assert resumed._resumed
    status = resumed.run()
    assert status.complete
    assert status.states[0].job_id == submitted["id"]  # adopted, not re-sent
    jobs = client.jobs(kind="campaign")
    assert jobs["total"] == 1  # no duplicate submission


# -- module-level status -------------------------------------------------------


def test_coord_status_and_names(tmp_path, request, local):
    workers = _workers(tmp_path, request, [("a", 1)])
    manifest = _manifest(n=2, seed=3)
    coord = Coordinator(
        local, manifest, [workers[0].url], poll_interval_s=0.05
    )
    coord.run()
    assert coord_names(local) == [coord.name]
    snapshot = coord_status(local, coord.name)
    assert snapshot.complete
    text = snapshot.summary()
    assert f"coordinated campaign {coord.name}: 1/1" in text
    assert "rows:" in text and "p1: merged" in text
    with pytest.raises(ConfigError, match="unknown coordinated campaign"):
        coord_status(local, "ghost")
