"""The coordinator's durable partition journal."""

import pytest

from repro.coord import CoordJournal, PARTITION_STATES
from repro.errors import ConfigError
from repro.store import ResultStore


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "journal.db")


@pytest.fixture
def journal(store):
    return CoordJournal(store)


MANIFEST = {"family": "factory-floor", "n": 4, "seed": 0}


def test_create_journals_run_and_partitions(journal):
    assert journal.create("camp", MANIFEST, 3) is True
    run = journal.get("camp")
    assert run.manifest == MANIFEST and run.partitions == 3
    parts = journal.partitions("camp")
    assert [p.index for p in parts] == [1, 2, 3]
    assert all(p.state == "queued" and p.attempts == 0 for p in parts)
    assert journal.names() == ["camp"]


def test_recreate_with_matching_arguments_is_a_resume(journal):
    assert journal.create("camp", MANIFEST, 2) is True
    journal.update("camp", 1, "merged", rows_merged=7)
    assert journal.create("camp", MANIFEST, 2) is False  # resume
    # ...and the journaled state survived untouched.
    assert journal.partitions("camp")[0].state == "merged"


def test_recreate_with_different_arguments_refuses(journal):
    journal.create("camp", MANIFEST, 2)
    with pytest.raises(ConfigError, match="different manifest or partition"):
        journal.create("camp", MANIFEST, 3)
    with pytest.raises(ConfigError, match="different manifest or partition"):
        journal.create("camp", {**MANIFEST, "seed": 9}, 2)


def test_manifest_comparison_is_canonical_not_textual(journal):
    journal.create("camp", {"b": 1, "a": 2}, 1)
    assert journal.create("camp", {"a": 2, "b": 1}, 1) is False  # same value


def test_update_transitions_and_selective_fields(journal):
    journal.create("camp", MANIFEST, 1)
    journal.update(
        "camp", 1, "running", worker="http://w", job_id="j-1",
        bump_attempts=True,
    )
    part = journal.partitions("camp")[0]
    assert (part.state, part.worker, part.job_id, part.attempts) == (
        "running", "http://w", "j-1", 1,
    )
    # None keeps columns; bump is atomic and cumulative.
    journal.update("camp", 1, "lost", error="worker-dead: gone")
    part = journal.partitions("camp")[0]
    assert part.worker == "http://w" and part.attempts == 1
    assert "worker-dead" in part.error
    journal.update("camp", 1, "running", bump_attempts=True)
    assert journal.partitions("camp")[0].attempts == 2


def test_update_validates_state_and_target(journal):
    journal.create("camp", MANIFEST, 1)
    with pytest.raises(ConfigError, match="unknown partition state"):
        journal.update("camp", 1, "exploded")
    with pytest.raises(ConfigError, match="no partition 5"):
        journal.update("camp", 5, "running")
    with pytest.raises(ConfigError, match="no partition"):
        journal.update("ghost", 1, "running")


def test_counts_cover_every_state_with_zeros(journal):
    journal.create("camp", MANIFEST, 3)
    journal.update("camp", 1, "merged")
    journal.update("camp", 2, "running")
    counts = journal.counts("camp")
    assert set(counts) == set(PARTITION_STATES)
    assert counts["merged"] == 1 and counts["running"] == 1
    assert counts["queued"] == 1 and counts["failed"] == 0


def test_partition_summary_lines(journal):
    journal.create("camp", MANIFEST, 1)
    journal.update(
        "camp", 1, "merged", worker="http://w", rows_merged=16,
        bump_attempts=True,
    )
    line = journal.partitions("camp")[0].summary()
    assert "p1: merged" in line and "worker=http://w" in line
    assert "attempts=1" in line and "rows=16" in line


def test_create_validates_inputs(journal):
    with pytest.raises(ConfigError):
        journal.create("", MANIFEST, 1)
    with pytest.raises(ConfigError):
        journal.create("camp", MANIFEST, 0)
