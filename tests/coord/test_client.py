"""ServiceClient transport policy: timeouts, retries, backoff, Retry-After.

The retry contract is wire-level, so these tests run a scripted stub
HTTP server (each test enqueues the exact status/header/body sequence
the server should answer with) and inject a recording ``sleep`` -- the
backoff schedule is asserted, never waited for.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.errors import ConfigError
from repro.service import ServiceClient, ServiceError, ServiceUnavailable
from repro.service.client import MAX_RETRY_AFTER_S, _retry_after_seconds


class _StubHandler(BaseHTTPRequestHandler):
    def _serve(self):
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        self.server.seen.append((self.command, self.path, body))
        if not self.server.script:
            status, headers, payload = 500, {}, {"error": "script exhausted"}
        else:
            status, headers, payload = self.server.script.pop(0)
        data = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for key, value in headers.items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(data)

    do_GET = do_POST = do_DELETE = _serve

    def log_message(self, *args):  # keep test output clean
        pass


class _Stub:
    """A scripted HTTP server: answers `script` entries in order."""

    def __init__(self):
        self.server = ThreadingHTTPServer(("127.0.0.1", 0), _StubHandler)
        self.server.script = []
        self.server.seen = []
        self.url = f"http://127.0.0.1:{self.server.server_port}"
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()

    @property
    def script(self):
        return self.server.script

    @property
    def seen(self):
        return self.server.seen

    def close(self):
        self.server.shutdown()
        self.server.server_close()


@pytest.fixture
def stub():
    server = _Stub()
    yield server
    server.close()


def _client(stub, sleeps=None, **kwargs):
    kwargs.setdefault("retries", 3)
    kwargs.setdefault("backoff_s", 0.25)
    sleep = sleeps.append if sleeps is not None else (lambda s: None)
    return ServiceClient(stub.url, sleep=sleep, **kwargs)


# -- construction --------------------------------------------------------------


def test_rejects_bad_base_url_and_params():
    with pytest.raises(ConfigError):
        ServiceClient("127.0.0.1:8080")  # no scheme
    with pytest.raises(ConfigError):
        ServiceClient("http://x", retries=-1)
    with pytest.raises(ConfigError):
        ServiceClient("http://x", timeout_s=0)


def test_trailing_slash_is_normalised(stub):
    stub.script.append((200, {}, {"status": "ok"}))
    client = ServiceClient(stub.url + "/", retries=0)
    assert client.healthz() == {"status": "ok"}
    assert stub.seen[0][1] == "/v1/healthz"


# -- success and non-retryable errors ------------------------------------------


def test_get_parses_json(stub):
    stub.script.append((200, {}, {"jobs": [], "total": 0}))
    assert _client(stub).jobs() == {"jobs": [], "total": 0}


def test_4xx_raises_immediately_with_server_message(stub):
    stub.script.append((404, {}, {"error": "unknown job j-1", "status": 404}))
    client = _client(stub)
    with pytest.raises(ServiceError) as excinfo:
        client.job("j-1")
    assert excinfo.value.status == 404
    assert "unknown job j-1" in str(excinfo.value)
    assert len(stub.seen) == 1  # client mistakes never retry


def test_token_and_json_body_are_sent(stub):
    stub.script.append((201, {}, {"id": "j-1"}))
    client = ServiceClient(stub.url, token="s3cret", retries=0)
    client.submit({"family": "f"}, kind="campaign", name="n", partition=(2, 4))
    method, path, body = stub.seen[0]
    assert (method, path) == ("POST", "/v1/jobs")
    doc = json.loads(body)
    assert doc == {
        "payload": {"family": "f"},
        "kind": "campaign",
        "name": "n",
        "partition": 2,
        "partitions": 4,
    }


# -- the retry schedule --------------------------------------------------------


def test_5xx_retries_with_exponential_backoff_then_succeeds(stub):
    stub.script.extend(
        [
            (500, {}, {"error": "boom"}),
            (503, {}, {"error": "still warming up"}),
            (200, {}, {"status": "ok"}),
        ]
    )
    sleeps = []
    assert _client(stub, sleeps=sleeps).healthz() == {"status": "ok"}
    assert len(stub.seen) == 3
    assert sleeps == [0.25, 0.5]  # backoff_s * 2**attempt


def test_backoff_is_capped(stub):
    stub.script.extend([(500, {}, {})] * 5)
    sleeps = []
    client = _client(stub, sleeps=sleeps, retries=4, max_backoff_s=0.6)
    with pytest.raises(ServiceUnavailable):
        client.healthz()
    assert sleeps == [0.25, 0.5, 0.6, 0.6]


def test_persistent_5xx_exhausts_into_service_unavailable(stub):
    stub.script.extend([(500, {}, {"error": "down"})] * 2)
    client = _client(stub, sleeps=[], retries=1)
    with pytest.raises(ServiceUnavailable) as excinfo:
        client.healthz()
    assert excinfo.value.status == 500
    assert "2 attempt(s)" in str(excinfo.value)
    assert len(stub.seen) == 2


def test_connection_failure_exhausts_into_service_unavailable(stub):
    url = stub.url
    stub.close()  # nothing listens any more
    sleeps = []
    client = ServiceClient(url, retries=2, sleep=sleeps.append)
    with pytest.raises(ServiceUnavailable) as excinfo:
        client.healthz()
    assert excinfo.value.status == 0  # never got an HTTP response
    assert len(sleeps) == 2


def test_429_honours_retry_after_instead_of_backoff(stub):
    stub.script.extend(
        [
            (429, {"Retry-After": "3"}, {"error": "rate limited"}),
            (200, {}, {"status": "ok"}),
        ]
    )
    sleeps = []
    assert _client(stub, sleeps=sleeps).healthz() == {"status": "ok"}
    assert sleeps == [3.0]


def test_retry_after_parsing_clamps_and_tolerates_garbage():
    assert _retry_after_seconds({"Retry-After": "2.5"}) == 2.5
    assert _retry_after_seconds({"Retry-After": "-4"}) == 0.0
    assert _retry_after_seconds({"Retry-After": "99999"}) == MAX_RETRY_AFTER_S
    assert _retry_after_seconds({"Retry-After": "soon"}) is None
    assert _retry_after_seconds({}) is None


# -- pagination helpers --------------------------------------------------------


def test_iter_results_pages_through(stub):
    entries = [{"key": f"k{i}", "result": {}} for i in range(5)]
    stub.script.extend(
        [
            (200, {}, {"count": 5, "results": entries[:2]}),
            (200, {}, {"count": 5, "results": entries[2:4]}),
            (200, {}, {"count": 5, "results": entries[4:]}),
        ]
    )
    got = list(_client(stub).iter_results("j-1", page_size=2))
    assert got == entries
    paths = [path for _, path, _ in stub.seen]
    assert all(path.startswith("/v1/jobs/j-1/results?") for path in paths)
    assert "offset=2" in paths[1] and "offset=4" in paths[2]


def test_iter_results_raw_flag_rides_the_query(stub):
    stub.script.append((200, {}, {"count": 0, "results": []}))
    list(_client(stub).iter_results("j-1", raw=True))
    assert "raw=1" in stub.seen[0][1]


def test_find_job_pages_until_match(stub):
    stub.script.extend(
        [
            (200, {}, {"total": 3, "jobs": [{"name": "a", "id": "j-a"},
                                            {"name": "b", "id": "j-b"}]}),
            (200, {}, {"total": 3, "jobs": [{"name": "c", "id": "j-c"}]}),
        ]
    )
    assert _client(stub).find_job("c", page_size=2)["id"] == "j-c"


def test_find_job_returns_none_when_absent(stub):
    stub.script.append((200, {}, {"total": 1, "jobs": [{"name": "a"}]}))
    assert _client(stub).find_job("zzz", page_size=10) is None


def test_non_json_response_is_a_service_error(stub):
    class _RawHandler(BaseHTTPRequestHandler):
        def do_GET(self):
            self.send_response(200)
            self.send_header("Content-Length", "9")
            self.end_headers()
            self.wfile.write(b"<html!!!>")

        def log_message(self, *args):
            pass

    server = ThreadingHTTPServer(("127.0.0.1", 0), _RawHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_port}", retries=0
        )
        with pytest.raises(ServiceError, match="non-JSON"):
            client.healthz()
    finally:
        server.shutdown()
        server.server_close()
