"""Unit helpers and RNG utilities."""

import math

import numpy as np
import pytest

from repro import units
from repro.rng import derive_seed, ensure_rng, spawn


class TestUnits:
    def test_mg_roundtrip(self):
        assert units.mps2_to_mg(units.mg_to_mps2(60.0)) == pytest.approx(60.0)
        assert units.mg_to_mps2(1000.0) == pytest.approx(units.G0)

    def test_angular_frequency(self):
        assert units.hz_to_rad(1.0) == pytest.approx(2 * math.pi)
        assert units.rad_to_hz(units.hz_to_rad(64.0)) == pytest.approx(64.0)

    def test_time_helpers(self):
        assert units.ms(5) == pytest.approx(5e-3)
        assert units.us(100) == pytest.approx(1e-4)
        assert units.minutes(2) == pytest.approx(120.0)
        assert units.hours(1.5) == pytest.approx(5400.0)

    def test_electrical_helpers(self):
        assert units.mA(26.8) == pytest.approx(26.8e-3)
        assert units.uA(0.5) == pytest.approx(0.5e-6)
        assert units.mW(13.2) == pytest.approx(13.2e-3)
        assert units.uJ(227) == pytest.approx(227e-6)
        assert units.MHz(8) == 8e6
        assert units.kHz(125) == 125e3

    def test_thermal_voltage_room_temperature(self):
        assert units.thermal_voltage(300.15) == pytest.approx(0.02585, rel=1e-3)

    def test_capacitor_energy_voltage(self):
        e = units.capacitor_energy(0.55, 2.8)
        assert e == pytest.approx(0.5 * 0.55 * 2.8**2)
        assert units.capacitor_voltage(0.55, e) == pytest.approx(2.8)
        assert units.capacitor_voltage(0.55, 0.0) == 0.0


class TestRng:
    def test_ensure_rng_accepts_int(self):
        a = ensure_rng(42)
        b = ensure_rng(42)
        assert a.uniform() == b.uniform()

    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_spawn_children_independent(self):
        parent = ensure_rng(1)
        children = spawn(parent, 3)
        values = [c.uniform() for c in children]
        assert len(set(values)) == 3

    def test_spawn_reproducible(self):
        a = [c.uniform() for c in spawn(ensure_rng(7), 3)]
        b = [c.uniform() for c in spawn(ensure_rng(7), 3)]
        assert a == b

    def test_derive_seed_deterministic(self):
        assert derive_seed(5, 1, 2) == derive_seed(5, 1, 2)
        assert derive_seed(5, 1, 2) != derive_seed(5, 2, 1)
        assert derive_seed(None, 3) == derive_seed(None, 3)

    def test_derive_seed_range(self):
        for base in (0, 1, 2**40):
            for comp in range(5):
                s = derive_seed(base, comp)
                assert 0 <= s < 2**63
