"""Sensor node model tests (paper Tables II & III)."""

import pytest

from repro.errors import ModelError
from repro.node.ez430 import SensorNode, TransmissionPhases
from repro.node.policy import TransmissionPolicy
from repro.node.radio import Transmission, TransmissionLog
from repro.node.temperature import TemperatureSource


class TestSensorNode:
    def test_table_iii_total_time(self):
        node = SensorNode()
        assert node.transmission_duration() == pytest.approx(4.5e-3)

    def test_transmission_energy_near_paper_value(self):
        # Paper quotes ~227 uJ at 2.8 V; the charge-based model gives
        # 78.2 uC * 2.8 V = 219 uJ (within 4%).
        node = SensorNode()
        e = node.transmission_energy(2.8)
        assert e == pytest.approx(227e-6, rel=0.05)

    def test_energy_scales_with_voltage(self):
        node = SensorNode()
        assert node.transmission_energy(2.6) < node.transmission_energy(2.9)

    def test_equation_8_equivalent_resistances(self):
        node = SensorNode()
        r_tx, r_sleep = node.equivalent_resistances(2.8)
        assert r_tx == pytest.approx(167.0, rel=0.05)
        assert r_sleep == pytest.approx(5.8e6, rel=0.05)

    def test_sleep_power(self):
        node = SensorNode()
        assert node.sleep_power(2.8) == pytest.approx(0.5e-6 * 2.8)

    def test_phase_charge_sum(self):
        phases = TransmissionPhases()
        q = phases.total_charge
        assert q == pytest.approx(
            1e-3 * 4.5e-3 + 1.5e-3 * 13.4e-3 + 2e-3 * 26.8e-3
        )

    def test_validation(self):
        with pytest.raises(ModelError):
            TransmissionPhases(wakeup_time=0.0)
        with pytest.raises(ModelError):
            SensorNode(sleep_current=-1.0)
        node = SensorNode()
        with pytest.raises(ModelError):
            node.transmission_energy(-1.0)


class TestPolicy:
    def test_table_ii_bands(self):
        p = TransmissionPolicy(fast_interval=5.0)
        assert p.interval(2.65) is None
        assert p.interval(2.75) == 60.0
        assert p.interval(2.85) == 5.0

    def test_band_names(self):
        p = TransmissionPolicy()
        assert p.band(2.0) == "off"
        assert p.band(2.75) == "mid"
        assert p.band(3.0) == "fast"

    def test_boundary_semantics(self):
        # Exactly at a threshold the higher band applies (>= comparisons).
        p = TransmissionPolicy(fast_interval=5.0)
        assert p.interval(2.7) == 60.0
        assert p.interval(2.8) == 5.0

    def test_drain_rate(self):
        p = TransmissionPolicy(fast_interval=2.0)
        assert p.drain_rate(2.9, 200e-6) == pytest.approx(100e-6)
        assert p.drain_rate(2.5, 200e-6) == 0.0

    def test_rate(self):
        p = TransmissionPolicy(fast_interval=0.5)
        assert p.rate(3.0) == pytest.approx(2.0)
        assert p.rate(2.75) == pytest.approx(1.0 / 60.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            TransmissionPolicy(fast_interval=0.0)
        with pytest.raises(ModelError):
            TransmissionPolicy(v_off=2.9, v_fast=2.8)


class TestTransmissionLog:
    def test_discrete_records(self):
        log = TransmissionLog()
        log.record(Transmission(1.0, 2.8, 25.0, 220e-6))
        log.record(Transmission(2.0, 2.79, 25.1, 219e-6))
        assert log.count == 2
        assert log.times() == [1.0, 2.0]
        assert log.total_energy == pytest.approx(439e-6)

    def test_fractional_accumulation(self):
        log = TransmissionLog(keep_records=False)
        for _ in range(10):
            log.accumulate(0.4, 0.0, 2.8, 0.0)
        assert log.count == 4

    def test_fractional_remainder_carries(self):
        log = TransmissionLog(keep_records=False)
        whole = log.accumulate(1.7, 0.0, 2.8, 0.0)
        assert whole == 1
        whole = log.accumulate(0.4, 0.0, 2.8, 0.0)
        assert whole == 1  # 0.7 + 0.4 = 1.1
        assert log.count == 2

    def test_negative_rejected(self):
        log = TransmissionLog()
        with pytest.raises(ModelError):
            log.accumulate(-0.1, 0.0, 2.8, 0.0)

    def test_record_cap(self):
        log = TransmissionLog(max_records=3)
        for i in range(10):
            log.record(Transmission(float(i), 2.8, 25.0, 0.0))
        assert log.count == 10
        assert len(log.records) == 3


class TestTemperature:
    def test_diurnal_cycle(self):
        src = TemperatureSource(mean_c=20.0, swing_c=5.0, noise_c=0.0)
        assert src.value(0.0) == pytest.approx(15.0)  # dawn minimum
        assert src.value(43200.0) == pytest.approx(25.0)  # midday max

    def test_noise_is_seedable(self):
        a = TemperatureSource(seed=7)
        b = TemperatureSource(seed=7)
        assert a.value(100.0) == b.value(100.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            TemperatureSource(period=0.0)
        with pytest.raises(ModelError):
            TemperatureSource(swing_c=-1.0)
