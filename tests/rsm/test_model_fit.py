"""Response-surface fitting: exact recovery, diagnostics, ANOVA, CV."""

import numpy as np
import pytest

from repro.errors import FitError
from repro.rsm.anova import anova
from repro.rsm.basis import PolynomialBasis
from repro.rsm.coding import Parameter, ParameterSpace
from repro.rsm.crossval import kfold_rmse, loocv_rmse
from repro.rsm.diagnostics import diagnostics
from repro.rsm.model import ResponseSurface, fit_response_surface
from repro.rsm.regression import d_criterion, ols


def _true_quadratic(x):
    # y = 3 + 2 x1 - x2 + 0.5 x1^2 + x2^2 - 1.5 x1 x2
    return (
        3.0 + 2.0 * x[:, 0] - x[:, 1] + 0.5 * x[:, 0] ** 2 + x[:, 1] ** 2
        - 1.5 * x[:, 0] * x[:, 1]
    )


@pytest.fixture
def grid_points():
    lv = np.linspace(-1, 1, 3)
    return np.array([[a, b] for a in lv for b in lv])


def test_exact_quadratic_recovery(grid_points):
    y = _true_quadratic(grid_points)
    model = fit_response_surface(grid_points, y, kind="quadratic")
    assert np.allclose(
        model.coefficients, [3.0, 2.0, -1.0, 0.5, 1.0, -1.5], atol=1e-9
    )


def test_prediction_at_new_points(grid_points):
    y = _true_quadratic(grid_points)
    model = fit_response_surface(grid_points, y)
    test_pts = np.array([[0.3, -0.7], [0.9, 0.2]])
    assert np.allclose(model.predict_coded(test_pts), _true_quadratic(test_pts))


def test_single_point_prediction_returns_scalar(grid_points):
    y = _true_quadratic(grid_points)
    model = fit_response_surface(grid_points, y)
    val = model.predict_coded(np.array([0.1, 0.1]))
    assert isinstance(val, float)


def test_predict_natural_via_space(grid_points):
    space = ParameterSpace([Parameter("a", 0, 10), Parameter("b", -5, 5)])
    y = _true_quadratic(grid_points)
    model = fit_response_surface(grid_points, y, space=space)
    natural = space.to_natural(np.array([[0.5, 0.5]]))
    coded_val = model.predict_coded(np.array([[0.5, 0.5]]))
    assert np.allclose(model.predict_natural(natural), coded_val)


def test_quadratic_parts_and_stationary_point(grid_points):
    y = _true_quadratic(grid_points)
    model = fit_response_surface(grid_points, y)
    b0, b, B = model.quadratic_parts()
    assert b0 == pytest.approx(3.0)
    assert np.allclose(b, [2.0, -1.0])
    assert np.allclose(B, [[0.5, -0.75], [-0.75, 1.0]])
    x_star = model.stationary_point()
    grad = model.gradient_coded(x_star)
    assert np.allclose(grad, 0.0, atol=1e-6)


def test_to_string_eq9_format(grid_points):
    y = _true_quadratic(grid_points)
    model = fit_response_surface(grid_points, y)
    text = model.to_string(["x1", "x2"])
    assert text.startswith("3.00")
    assert "- 1.00*x2" in text
    assert "x1*x2" in text


def test_underdetermined_fit_rejected():
    pts = np.array([[0.0, 0.0], [1.0, 1.0]])
    with pytest.raises(FitError):
        fit_response_surface(pts, np.array([1.0, 2.0]), kind="quadratic")


def test_rank_deficient_design_rejected():
    pts = np.zeros((10, 2))  # all runs identical
    with pytest.raises(FitError):
        fit_response_surface(pts, np.arange(10.0), kind="linear")


def test_noise_fit_r2_reasonable(grid_points):
    rng = np.random.default_rng(5)
    pts = np.repeat(grid_points, 3, axis=0)
    y = _true_quadratic(pts) + rng.normal(0, 0.1, len(pts))
    model = fit_response_surface(pts, y)
    X = PolynomialBasis(2, "quadratic").expand(pts)
    diag = diagnostics(X, y, model.fit)
    assert diag.r2 > 0.98
    assert diag.adj_r2 <= diag.r2
    assert diag.press_rmse < 0.3


def test_saturated_fit_has_unit_leverage(grid_points):
    # 10 coefficients from 10 well-chosen points... here: 6 coefficients
    # from 6 points in 2 variables.
    pts = np.array(
        [[-1, -1], [1, -1], [-1, 1], [1, 1], [0.5, 0.0], [0.0, -0.5]]
    )
    y = _true_quadratic(pts)
    fit = ols(PolynomialBasis(2, "quadratic").expand(pts), y)
    assert np.allclose(fit.leverage, 1.0, atol=1e-8)
    assert fit.dof == 0


def test_anova_strong_signal(grid_points):
    rng = np.random.default_rng(6)
    pts = np.repeat(grid_points, 3, axis=0)
    y = _true_quadratic(pts) + rng.normal(0, 0.05, len(pts))
    X = PolynomialBasis(2, "quadratic").expand(pts)
    table = anova(X, y)
    assert table.f_statistic > 100.0
    assert table.p_value < 1e-6
    assert table.ss_total == pytest.approx(
        table.ss_model + table.ss_residual, rel=1e-9
    )
    assert "model" in table.to_string()


def test_loocv_near_noise_level(grid_points):
    rng = np.random.default_rng(7)
    pts = np.repeat(grid_points, 4, axis=0)
    noise = 0.1
    y = _true_quadratic(pts) + rng.normal(0, noise, len(pts))
    X = PolynomialBasis(2, "quadratic").expand(pts)
    assert loocv_rmse(X, y) == pytest.approx(noise, rel=0.5)


def test_kfold_cv_runs(grid_points):
    rng = np.random.default_rng(8)
    pts = np.repeat(grid_points, 4, axis=0)
    y = _true_quadratic(pts) + rng.normal(0, 0.1, len(pts))
    X = PolynomialBasis(2, "quadratic").expand(pts)
    rmse = kfold_rmse(X, y, n_folds=4, seed=0)
    assert 0.0 < rmse < 0.5


def test_d_criterion_positive_for_good_design(grid_points):
    X = PolynomialBasis(2, "quadratic").expand(grid_points)
    assert d_criterion(X) > 0.0


def test_coefficient_count_mismatch():
    basis = PolynomialBasis(2, "quadratic")
    with pytest.raises(FitError):
        ResponseSurface(basis, np.zeros(3))
