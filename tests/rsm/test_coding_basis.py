"""Coded transforms and polynomial bases."""

import numpy as np
import pytest

from repro.errors import DesignError
from repro.rsm.basis import PolynomialBasis
from repro.rsm.coding import CodedTransform, Parameter, ParameterSpace


class TestParameter:
    def test_endpoints_code_to_unit(self):
        p = Parameter("w", 60.0, 600.0)
        assert p.to_coded(60.0) == pytest.approx(-1.0)
        assert p.to_coded(600.0) == pytest.approx(1.0)
        assert p.to_coded(330.0) == pytest.approx(0.0)

    def test_roundtrip(self):
        p = Parameter("w", 0.005, 10.0)
        for v in (0.005, 1.0, 5.0, 10.0):
            assert p.to_natural(p.to_coded(v)) == pytest.approx(v)

    def test_contains(self):
        p = Parameter("w", 0.0, 1.0)
        assert p.contains(0.5)
        assert not p.contains(1.5)

    def test_validation(self):
        with pytest.raises(DesignError):
            Parameter("w", 10.0, 1.0)


class TestSpace:
    @pytest.fixture
    def space(self):
        return ParameterSpace(
            [Parameter("a", 0.0, 10.0), Parameter("b", -1.0, 3.0)]
        )

    def test_vectorised_roundtrip(self, space):
        pts = np.array([[0.0, -1.0], [5.0, 1.0], [10.0, 3.0]])
        assert np.allclose(space.to_natural(space.to_coded(pts)), pts)

    def test_grid(self, space):
        grid = space.grid_coded(3)
        assert grid.shape == (9, 2)
        assert {tuple(r) for r in grid} >= {(-1.0, -1.0), (0.0, 0.0), (1.0, 1.0)}

    def test_clip(self, space):
        clipped = space.clip_coded([[2.0, -3.0]])
        assert np.allclose(clipped, [[1.0, -1.0]])

    def test_parameter_lookup(self, space):
        assert space.parameter("a").high == 10.0
        with pytest.raises(DesignError):
            space.parameter("zzz")

    def test_empty_rejected(self):
        with pytest.raises(DesignError):
            ParameterSpace([])


class TestBasis:
    def test_term_counts(self):
        assert PolynomialBasis(3, "linear").n_terms == 4
        assert PolynomialBasis(3, "interaction").n_terms == 7
        assert PolynomialBasis(3, "pure_quadratic").n_terms == 7
        assert PolynomialBasis(3, "quadratic").n_terms == 10
        assert PolynomialBasis(2, "cubic").n_terms == 1 + 4 + 1 + 2 + 2

    def test_expand_matches_names(self):
        basis = PolynomialBasis(2, "quadratic")
        names = basis.term_names(["u", "v"])
        assert names == ["1", "u", "v", "u^2", "v^2", "u*v"]
        X = basis.expand(np.array([[2.0, 3.0]]))
        assert list(X[0]) == [1.0, 2.0, 3.0, 4.0, 9.0, 6.0]

    def test_quadratic_matches_eq4_structure(self):
        # eq (4): intercept, k linear, k quadratic, k(k-1)/2 interactions
        basis = PolynomialBasis(3, "quadratic")
        X = basis.expand(np.array([[1.0, -1.0, 0.5]]))
        assert X.shape == (1, 10)
        assert X[0, 0] == 1.0
        assert list(X[0, 1:4]) == [1.0, -1.0, 0.5]
        assert list(X[0, 4:7]) == [1.0, 1.0, 0.25]
        assert list(X[0, 7:]) == [-1.0, 0.5, -0.5]

    def test_cubic_terms(self):
        basis = PolynomialBasis(2, "cubic")
        X = basis.expand(np.array([[2.0, 3.0]]))
        names = basis.term_names()
        assert "x1^3" in names and "x1^2*x2" in names
        idx = names.index("x1^3")
        assert X[0, idx] == 8.0

    def test_wrong_width_rejected(self):
        basis = PolynomialBasis(3)
        with pytest.raises(DesignError):
            basis.expand(np.zeros((5, 2)))

    def test_unknown_kind_rejected(self):
        with pytest.raises(DesignError):
            PolynomialBasis(3, "septic")
