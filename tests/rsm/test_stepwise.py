"""Stepwise term selection."""

import numpy as np
import pytest

from repro.errors import FitError
from repro.rsm.basis import PolynomialBasis
from repro.rsm.stepwise import backward_elimination, forward_selection


def _sparse_data(noise=0.05, reps=3, seed=0):
    """True model uses only intercept, x1 and x1*x2."""
    rng = np.random.default_rng(seed)
    lv = np.linspace(-1, 1, 3)
    pts = np.array([[a, b] for a in lv for b in lv])
    pts = np.repeat(pts, reps, axis=0)
    y = 2.0 + 3.0 * pts[:, 0] + 1.5 * pts[:, 0] * pts[:, 1]
    y = y + rng.normal(0, noise, len(y))
    return pts, y


def test_backward_drops_inactive_terms():
    pts, y = _sparse_data()
    result = backward_elimination(pts, y)
    assert "1" in result.term_names
    assert "x1" in result.term_names
    assert "x1*x2" in result.term_names
    # The search keeps at most one spurious term beyond the active set
    # (greedy AICc is not an oracle, but it must prune most of the noise).
    assert len(result.term_names) <= 4


def test_forward_finds_same_active_set():
    pts, y = _sparse_data()
    result = forward_selection(pts, y)
    assert {"1", "x1", "x1*x2"} <= set(result.term_names)
    assert len(result.term_names) <= 5


def test_selected_model_predicts_well():
    pts, y = _sparse_data()
    result = backward_elimination(pts, y)
    basis = PolynomialBasis(2, "quadratic")
    test_pts = np.array([[0.5, -0.5], [-0.3, 0.8]])
    truth = 2.0 + 3.0 * test_pts[:, 0] + 1.5 * test_pts[:, 0] * test_pts[:, 1]
    pred = result.predict(basis, test_pts)
    assert np.allclose(pred, truth, atol=0.15)


def test_history_scores_monotone_nonincreasing():
    pts, y = _sparse_data()
    for search in (backward_elimination, forward_selection):
        result = search(pts, y)
        scores = [s for _, s in result.history]
        assert all(b <= a + 1e-9 for a, b in zip(scores, scores[1:]))


def test_bic_selects_no_more_terms_than_aic():
    pts, y = _sparse_data(noise=0.2)
    aic = backward_elimination(pts, y, criterion="aic")
    bic = backward_elimination(pts, y, criterion="bic")
    assert len(bic.selected) <= len(aic.selected)


def test_intercept_always_kept():
    pts, y = _sparse_data()
    result = backward_elimination(pts, y, min_terms=1)
    assert 0 in result.selected


def test_unknown_criterion_rejected():
    pts, y = _sparse_data()
    with pytest.raises(FitError):
        backward_elimination(pts, y, criterion="banana")


def test_forward_respects_max_terms():
    pts, y = _sparse_data()
    result = forward_selection(pts, y, max_terms=2)
    assert len(result.selected) <= 2
