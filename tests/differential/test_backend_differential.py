"""Differential testing: the vectorized backend against its references.

The vectorized backend's licence to exist is that it is *the same
simulation* as the scalar envelope backend, just amortised over a batch.
This harness machine-checks that claim instead of assuming it:

- every **named scenario** runs through envelope and vectorized at its
  full horizon,
- ``expand(n, seed)`` samples of **all five stochastic families** run
  through both backends as one batch per backend,
- a **detailed** cross-check runs where it is cheap (a short window with
  tuning sessions excluded, as in the conformance suite),

and every comparison is judged against one explicit table of per-metric
tolerance envelopes (:data:`TOLERANCES` / :data:`DETAILED_TOLERANCES`).
The envelope-vs-vectorized envelopes are deliberately tight -- the
vectorized integrator re-expresses the scalar arithmetic operation for
operation, so agreement is at rounding level (byte-identical payloads on
the development platform); the detailed envelopes are loose, mirroring
the conformance suite's model-fidelity bands.

Failures print a full metric diff table, not just the first bad number.
"""

from dataclasses import dataclass, replace
from typing import Dict

import pytest

from repro.backends import quiet_options, run, run_batch
from repro.scenario import Scenario, named_scenario, scenario_names
from repro.system.result import SystemResult
from repro.system.stochastic import family_names, named_family
from repro.system.vectorized import numpy_available

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="vectorized backend needs NumPy"
)

#: Replicates per stochastic-family grid point and the expansion seed.
FAMILY_N = 2
FAMILY_SEED = 123


@dataclass(frozen=True)
class Tolerance:
    """Two-sided agreement envelope: ``|got - ref| <= abs + rel*|ref|``."""

    rel: float = 0.0
    abs: float = 0.0

    def holds(self, ref: float, got: float) -> bool:
        return abs(got - ref) <= self.abs + self.rel * abs(ref)


#: The single tolerance table for envelope vs vectorized.  These are
#: *rounding-level* envelopes: both backends execute the same arithmetic
#: per scenario, so anything beyond the last few ulps is a real bug.
TOLERANCES: Dict[str, Tolerance] = {
    "lifetime_s": Tolerance(rel=1e-9, abs=1e-6),
    "transmissions": Tolerance(abs=1.0),
    "final_voltage": Tolerance(abs=1e-6),
    "harvested_j": Tolerance(rel=1e-6, abs=1e-9),
    "consumed_j": Tolerance(rel=1e-6, abs=1e-9),
}

#: Model-fidelity envelopes for the detailed cross-check (the MNA model
#: keeps the ring-up transient and discrete transmission notches the
#: envelope physics averages away) -- mirrors the conformance suite.
DETAILED_TOLERANCES: Dict[str, Tolerance] = {
    "transmissions": Tolerance(rel=0.5, abs=2.0),
    "final_voltage": Tolerance(abs=0.01),
}


def _metrics(result: SystemResult) -> Dict[str, float]:
    return {
        "lifetime_s": float(result.horizon),
        "transmissions": float(result.transmissions),
        "final_voltage": float(result.final_voltage),
        "harvested_j": float(result.breakdown.harvested),
        "consumed_j": float(result.breakdown.consumed),
    }


def assert_agreement(
    label: str,
    reference: SystemResult,
    candidate: SystemResult,
    tolerances: Dict[str, Tolerance],
    ref_name: str = "envelope",
    got_name: str = "vectorized",
) -> None:
    """Assert every tabled metric agrees; on failure, show them all."""
    ref = _metrics(reference)
    got = _metrics(candidate)
    rows = []
    failed = False
    for metric, tol in tolerances.items():
        ok = tol.holds(ref[metric], got[metric])
        failed = failed or not ok
        rows.append(
            f"  {'ok ' if ok else 'FAIL'} {metric:<14s} "
            f"{ref_name}={ref[metric]:.9g} {got_name}={got[metric]:.9g} "
            f"delta={got[metric] - ref[metric]:+.3e} "
            f"(allowed abs={tol.abs:g} rel={tol.rel:g})"
        )
    assert not failed, (
        f"{label}: {got_name} disagrees with {ref_name} beyond the "
        f"declared tolerance envelope:\n" + "\n".join(rows)
    )


def _pair(scenario: Scenario):
    """Run one scenario on envelope and vectorized, traces off."""
    base = replace(scenario, options=quiet_options("envelope"))
    return run(base), run(replace(base, backend="vectorized"))


@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_named_scenarios_differential(name):
    envelope, vectorized = _pair(named_scenario(name))
    assert_agreement(name, envelope, vectorized, TOLERANCES)


@pytest.mark.parametrize("name", sorted(family_names()))
def test_stochastic_families_differential(name):
    """Family expansions agree scenario-for-scenario across backends.

    Both sides run as *batches* (the vectorized side through one
    ``run_batch`` call), so this also pins that lockstep batching does
    not leak state between lanes.
    """
    family = named_family(name)
    scenarios = [
        replace(s, options=quiet_options("envelope"))
        for s in family.expand(n=FAMILY_N, seed=FAMILY_SEED)
    ]
    envelope = [run(s) for s in scenarios]
    vectorized = run_batch(
        [replace(s, backend="vectorized") for s in scenarios]
    )
    for scenario, env, vec in zip(scenarios, envelope, vectorized):
        assert_agreement(scenario.name or name, env, vec, TOLERANCES)


def test_batch_order_and_duplicates():
    """A shuffled batch with duplicates returns per-slot exact results."""
    family = named_family("intermittent")
    base = [
        replace(s, backend="vectorized", options=quiet_options("vectorized"))
        for s in family.expand(n=2, seed=7)
    ]
    batch = [base[1], base[0], base[1], base[0]]
    results = run_batch(batch)
    singles = [run(s) for s in batch]
    for i, (got, want) in enumerate(zip(results, singles)):
        assert_agreement(
            f"slot {i}", want, got, TOLERANCES,
            ref_name="single", got_name="batched",
        )


@pytest.mark.slow
@pytest.mark.parametrize("name", ["paper", "cold-start"])
def test_detailed_cross_check(name):
    """Where the detailed backend is cheap (short window, no sessions),
    the vectorized backend must sit inside the same fidelity band the
    envelope backend is held to."""
    scenario = named_scenario(name)
    short = replace(
        scenario,
        config=replace(scenario.config, watchdog_s=1e4),
        horizon=2.0,
        seed=1,
        options={},
    )
    detailed = run(replace(short, backend="detailed"))
    vectorized = run(replace(short, backend="vectorized"))
    assert_agreement(
        name,
        detailed,
        vectorized,
        DETAILED_TOLERANCES,
        ref_name="detailed",
        got_name="vectorized",
    )


def test_tolerance_table_is_complete():
    """Every metric the harness compares has a declared envelope."""
    result = run(
        replace(named_scenario("low-vibration"), horizon=60.0, options={})
    )
    assert set(_metrics(result)) == set(TOLERANCES)
