"""Differential testing: the vectorized backend against its references.

The vectorized backend's licence to exist is that it is *the same
simulation* as the scalar envelope backend, just amortised over a batch.
This harness machine-checks that claim instead of assuming it:

- every **named scenario** runs through envelope and vectorized at its
  full horizon,
- ``expand(n, seed)`` samples of **all five stochastic families** run
  through both backends as one batch per backend,
- a **detailed** cross-check runs where it is cheap (a short window with
  tuning sessions excluded, as in the conformance suite),

and every comparison is judged against one explicit table of per-metric
tolerance envelopes (:data:`TOLERANCES` / :data:`DETAILED_TOLERANCES`).
The envelope-vs-vectorized envelopes are deliberately tight -- the
vectorized integrator re-expresses the scalar arithmetic operation for
operation, so agreement is at rounding level (byte-identical payloads on
the development platform); the detailed envelopes are loose, mirroring
the conformance suite's model-fidelity bands.

Failures print a full metric diff table, not just the first bad number.
"""

from dataclasses import dataclass, replace
from typing import Dict

import pytest

from repro.backends import quiet_options, run, run_batch
from repro.scenario import Scenario, named_scenario, scenario_names
from repro.system.result import SystemResult
from repro.system.stochastic import family_names, named_family
from repro.system.vectorized import numpy_available

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="vectorized backend needs NumPy"
)

#: Replicates per stochastic-family grid point and the expansion seed.
FAMILY_N = 2
FAMILY_SEED = 123


@dataclass(frozen=True)
class Tolerance:
    """Two-sided agreement envelope: ``|got - ref| <= abs + rel*|ref|``."""

    rel: float = 0.0
    abs: float = 0.0

    def holds(self, ref: float, got: float) -> bool:
        return abs(got - ref) <= self.abs + self.rel * abs(ref)


#: The single tolerance table for envelope vs vectorized.  These are
#: *rounding-level* envelopes: both backends execute the same arithmetic
#: per scenario, so anything beyond the last few ulps is a real bug.
TOLERANCES: Dict[str, Tolerance] = {
    "lifetime_s": Tolerance(rel=1e-9, abs=1e-6),
    "transmissions": Tolerance(abs=1.0),
    "final_voltage": Tolerance(abs=1e-6),
    "harvested_j": Tolerance(rel=1e-6, abs=1e-9),
    "consumed_j": Tolerance(rel=1e-6, abs=1e-9),
}

#: Model-fidelity envelopes for the detailed cross-check (the MNA model
#: keeps the ring-up transient and discrete transmission notches the
#: envelope physics averages away) -- mirrors the conformance suite.
DETAILED_TOLERANCES: Dict[str, Tolerance] = {
    "transmissions": Tolerance(rel=0.5, abs=2.0),
    "final_voltage": Tolerance(abs=0.01),
}


def _metrics(result: SystemResult) -> Dict[str, float]:
    return {
        "lifetime_s": float(result.horizon),
        "transmissions": float(result.transmissions),
        "final_voltage": float(result.final_voltage),
        "harvested_j": float(result.breakdown.harvested),
        "consumed_j": float(result.breakdown.consumed),
    }


def assert_agreement(
    label: str,
    reference: SystemResult,
    candidate: SystemResult,
    tolerances: Dict[str, Tolerance],
    ref_name: str = "envelope",
    got_name: str = "vectorized",
) -> None:
    """Assert every tabled metric agrees; on failure, show them all."""
    ref = _metrics(reference)
    got = _metrics(candidate)
    rows = []
    failed = False
    for metric, tol in tolerances.items():
        ok = tol.holds(ref[metric], got[metric])
        failed = failed or not ok
        rows.append(
            f"  {'ok ' if ok else 'FAIL'} {metric:<14s} "
            f"{ref_name}={ref[metric]:.9g} {got_name}={got[metric]:.9g} "
            f"delta={got[metric] - ref[metric]:+.3e} "
            f"(allowed abs={tol.abs:g} rel={tol.rel:g})"
        )
    assert not failed, (
        f"{label}: {got_name} disagrees with {ref_name} beyond the "
        f"declared tolerance envelope:\n" + "\n".join(rows)
    )


def _pair(scenario: Scenario):
    """Run one scenario on envelope and vectorized, traces off."""
    base = replace(scenario, options=quiet_options("envelope"))
    return run(base), run(replace(base, backend="vectorized"))


@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_named_scenarios_differential(name):
    envelope, vectorized = _pair(named_scenario(name))
    assert_agreement(name, envelope, vectorized, TOLERANCES)


@pytest.mark.parametrize("name", sorted(family_names()))
def test_stochastic_families_differential(name):
    """Family expansions agree scenario-for-scenario across backends.

    Both sides run as *batches* (the vectorized side through one
    ``run_batch`` call), so this also pins that lockstep batching does
    not leak state between lanes.
    """
    family = named_family(name)
    scenarios = [
        replace(s, options=quiet_options("envelope"))
        for s in family.expand(n=FAMILY_N, seed=FAMILY_SEED)
    ]
    envelope = [run(s) for s in scenarios]
    vectorized = run_batch(
        [replace(s, backend="vectorized") for s in scenarios]
    )
    for scenario, env, vec in zip(scenarios, envelope, vectorized):
        assert_agreement(scenario.name or name, env, vec, TOLERANCES)


def test_batch_order_and_duplicates():
    """A shuffled batch with duplicates returns per-slot exact results."""
    family = named_family("intermittent")
    base = [
        replace(s, backend="vectorized", options=quiet_options("vectorized"))
        for s in family.expand(n=2, seed=7)
    ]
    batch = [base[1], base[0], base[1], base[0]]
    results = run_batch(batch)
    singles = [run(s) for s in batch]
    for i, (got, want) in enumerate(zip(results, singles)):
        assert_agreement(
            f"slot {i}", want, got, TOLERANCES,
            ref_name="single", got_name="batched",
        )


@pytest.mark.slow
@pytest.mark.parametrize("name", ["paper", "cold-start"])
def test_detailed_cross_check(name):
    """Where the detailed backend is cheap (short window, no sessions),
    the vectorized backend must sit inside the same fidelity band the
    envelope backend is held to."""
    scenario = named_scenario(name)
    short = replace(
        scenario,
        config=replace(scenario.config, watchdog_s=1e4),
        horizon=2.0,
        seed=1,
        options={},
    )
    detailed = run(replace(short, backend="detailed"))
    vectorized = run(replace(short, backend="vectorized"))
    assert_agreement(
        name,
        detailed,
        vectorized,
        DETAILED_TOLERANCES,
        ref_name="detailed",
        got_name="vectorized",
    )


def _payload_json(result: SystemResult) -> str:
    import json

    return json.dumps(result.to_payload(), sort_keys=True)


class TestByteIdentity:
    """Canonical-JSON payload equality -- not tolerance bands.

    ``SystemResult.to_payload`` carries the config, headline metrics,
    the full energy audit, **every tuning event and every recorded
    trace**, so one string comparison pins all of them at once.  These
    are the paths this release batched; each must be a pure
    re-expression of the scalar reference.
    """

    def test_batched_sessions_with_traces_and_tuning_log(self):
        # factory-floor lanes enter tuning sessions every few minutes;
        # traces stay ON (the family default), so the comparison covers
        # the batched session machinery, the tuning log and the traces.
        family = named_family("factory-floor")
        scenarios = [
            replace(s, horizon=900.0)
            for s in family.expand(n=FAMILY_N, seed=FAMILY_SEED)
        ]
        envelope = [run(s) for s in scenarios]
        vectorized = run_batch(
            [replace(s, backend="vectorized") for s in scenarios]
        )
        for scenario, env, vec in zip(scenarios, envelope, vectorized):
            assert _payload_json(env) == _payload_json(vec), scenario.name

    def test_jobs_compose_with_run_batch(self):
        """serial == one batch == N-worker sharded batch, byte for byte,
        on both executors."""
        from repro.core.batch import BatchRunner

        family = named_family("vehicle")
        scenarios = [
            replace(s, horizon=600.0, options=quiet_options("envelope"))
            for s in family.expand(n=5, seed=11)
        ]
        serial = [run(replace(s, backend="vectorized")) for s in scenarios]
        batched = BatchRunner(
            jobs=1, cache_size=0, backend="vectorized"
        ).run(scenarios)
        threaded = BatchRunner(
            jobs=3, cache_size=0, backend="vectorized", executor="thread"
        ).run(scenarios)
        forked = BatchRunner(
            jobs=2, cache_size=0, backend="vectorized", executor="process"
        ).run(scenarios)
        want = [_payload_json(r) for r in serial]
        assert want == [_payload_json(r) for r in batched]
        assert want == [_payload_json(r) for r in threaded]
        assert want == [_payload_json(r) for r in forked]

    def test_monte_carlo_batched_path(self):
        """A whole Monte Carlo run through the batched dispatcher equals
        the scalar-envelope run sample for sample."""
        from repro.core.montecarlo import monte_carlo
        from repro.system.config import ORIGINAL_DESIGN

        scalar = monte_carlo(
            ORIGINAL_DESIGN, n_samples=4, horizon=600.0, seed=5,
            backend="envelope",
        )
        batched = monte_carlo(
            ORIGINAL_DESIGN, n_samples=4, horizon=600.0, seed=5,
            backend="vectorized", jobs=2,
        )
        assert list(scalar.transmissions) == list(batched.transmissions)
        assert list(scalar.final_voltages) == list(batched.final_voltages)

    def test_study_design_stage_batched_path(self):
        """A DoE design-matrix evaluation through the batched dispatcher
        equals the scalar-envelope evaluation point for point."""
        import numpy as np

        from repro.core.objective import SimulationObjective

        points = np.array(
            [[0.0, 0.0, 0.0], [1.0, -1.0, 0.5], [-1.0, 1.0, -0.5]]
        )
        scalar = SimulationObjective(
            horizon=600.0, seed=3, backend="envelope"
        ).evaluate_design(points)
        batched = SimulationObjective(
            horizon=600.0, seed=3, backend="vectorized", jobs=2
        ).evaluate_design(points)
        assert list(scalar) == list(batched)


def test_tolerance_table_is_complete():
    """Every metric the harness compares has a declared envelope."""
    result = run(
        replace(named_scenario("low-vibration"), horizon=60.0, options={})
    )
    assert set(_metrics(result)) == set(TOLERANCES)
