"""Envelope system simulator: dynamics, policy bands, energy audit."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.system.components import paper_system
from repro.system.config import ORIGINAL_DESIGN, SystemConfig
from repro.system.envelope import EnvelopeSimulator, simulate
from repro.system.vibration import VibrationProfile


def test_energy_balance_closes():
    res = simulate(ORIGINAL_DESIGN, seed=3)
    assert abs(res.breakdown.imbalance()) < 1e-9


def test_charges_from_initial_voltage():
    res = simulate(ORIGINAL_DESIGN, horizon=600.0, seed=3)
    assert res.traces["v_store"].values[0] == pytest.approx(2.65, abs=1e-6)
    assert res.final_voltage > 2.65


def test_no_transmissions_below_off_threshold():
    parts = paper_system(v_init=2.55)
    profile = VibrationProfile.constant(64.0)
    sim = EnvelopeSimulator(ORIGINAL_DESIGN, parts=parts, profile=profile, seed=0)
    res = sim.run(100.0)  # too short to charge past 2.7 V
    assert res.transmissions == 0


def test_mid_band_transmits_once_per_minute():
    parts = paper_system(v_init=2.75)
    profile = VibrationProfile.constant(64.0)
    # Huge watchdog: no tuning interference.
    cfg = SystemConfig(clock_hz=4e6, watchdog_s=10000.0, tx_interval_s=5.0)
    sim = EnvelopeSimulator(cfg, parts=parts, profile=profile, seed=0)
    res = sim.run(240.0)
    # ~4 minutes in the mid band before reaching 2.8 V (charging is slow
    # from 2.75): expect around 240/60 = 4 transmissions, allow charge-out.
    assert 2 <= res.transmissions <= 8


def test_fast_band_rate_matches_interval():
    parts = paper_system(v_init=2.85)
    profile = VibrationProfile.constant(64.0)
    cfg = SystemConfig(clock_hz=4e6, watchdog_s=10000.0, tx_interval_s=2.0)
    res = EnvelopeSimulator(cfg, parts=parts, profile=profile, seed=0).run(200.0)
    assert res.transmissions == pytest.approx(100, abs=5)


def test_sliding_mode_pins_voltage_at_fast_threshold():
    # A 5 ms interval drains far faster than harvest: once 2.8 V is hit the
    # voltage must pin there and transmissions proceed at the
    # energy-limited rate.
    parts = paper_system(v_init=2.79)
    profile = VibrationProfile.constant(64.0)
    cfg = SystemConfig(clock_hz=4e6, watchdog_s=10000.0, tx_interval_s=0.005)
    sim = EnvelopeSimulator(cfg, parts=parts, profile=profile, seed=0)
    res = sim.run(600.0)
    v = res.traces["v_store"]
    late = v.resample(np.linspace(300, 600, 50))
    assert np.all(np.abs(late - 2.8) < 1e-3)
    # Energy-limited transmission rate ~= harvest / energy-per-tx.
    p_harvest = parts.microgenerator.charging_power(
        64.0, profile.acceleration(0.0), 2.8
    )
    e_tx = parts.node.transmission_energy(2.8)
    expected_rate = p_harvest / e_tx
    measured_rate = res.transmissions / 600.0
    assert measured_rate == pytest.approx(expected_rate, rel=0.25)


def test_detuned_input_kills_harvest():
    parts = paper_system(initial_frequency=64.0)
    profile = VibrationProfile.constant(74.0)  # 10 Hz off, no retune allowed
    cfg = SystemConfig(clock_hz=4e6, watchdog_s=10000.0, tx_interval_s=5.0)
    res = EnvelopeSimulator(cfg, parts=parts, profile=profile, seed=0).run(300.0)
    assert res.breakdown.harvested < 1e-4


def test_watchdog_triggers_retune_after_frequency_step():
    res = simulate(ORIGINAL_DESIGN, seed=3)
    # Profile steps at 1500 s and 3000 s; the controller must retune twice.
    assert res.retune_count() == 2
    retune_times = [ev.time for ev in res.tuning_events if ev.result.retuned]
    assert any(1500.0 < t < 1500.0 + 2 * 320.0 for t in retune_times)
    assert any(3000.0 < t < 3000.0 + 2 * 320.0 for t in retune_times)


def test_retunes_move_position_toward_lut_optimum():
    res = simulate(ORIGINAL_DESIGN, seed=3)
    parts = paper_system()
    expected = parts.lut.lookup(74.0)
    assert res.final_position == pytest.approx(expected, abs=2)


def test_tuning_skipped_when_storage_low():
    parts = paper_system(v_init=2.5)
    profile = VibrationProfile.constant(74.0)  # detuned: no recharge either
    cfg = SystemConfig(clock_hz=4e6, watchdog_s=300.0, tx_interval_s=5.0)
    res = EnvelopeSimulator(cfg, parts=parts, profile=profile, seed=0).run(1000.0)
    assert all(ev.result.skipped_low_energy for ev in res.tuning_events)
    assert res.breakdown.actuator == 0.0


def test_actuator_energy_accounted_per_retune():
    res = simulate(ORIGINAL_DESIGN, seed=3)
    # Two ~64-position coarse moves plus fine steps: order 100-300 mJ.
    assert 0.1 < res.breakdown.actuator < 0.4


def test_transmissions_decrease_with_interval():
    counts = []
    for interval in (0.1, 2.0, 10.0):
        cfg = SystemConfig(clock_hz=4e6, watchdog_s=320.0, tx_interval_s=interval)
        counts.append(simulate(cfg, seed=3, record_traces=False).transmissions)
    assert counts[0] > counts[1] > counts[2]


def test_deterministic_given_seed():
    a = simulate(ORIGINAL_DESIGN, seed=11, record_traces=False)
    b = simulate(ORIGINAL_DESIGN, seed=11, record_traces=False)
    assert a.transmissions == b.transmissions
    assert a.final_voltage == pytest.approx(b.final_voltage, abs=1e-12)


def test_result_summary_and_rows():
    res = simulate(ORIGINAL_DESIGN, horizon=600.0, seed=3)
    text = res.summary()
    assert "transmissions" in text
    assert "imbalance" in text
    labels = [label for label, _ in res.breakdown.rows()]
    assert "harvested" in labels and "actuator" in labels


def test_bad_arguments_rejected():
    with pytest.raises(SimulationError):
        EnvelopeSimulator(ORIGINAL_DESIGN, dt_max=0.0)
    sim = EnvelopeSimulator(ORIGINAL_DESIGN)
    with pytest.raises(SimulationError):
        sim.run(0.0)
