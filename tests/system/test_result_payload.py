"""SystemResult JSON round-trip: the canonical persisted form."""

from dataclasses import replace

import pytest

from repro.backends import run
from repro.errors import DesignError, SimulationError
from repro.scenario import Scenario, named_scenario
from repro.sim.trace import Trace, TraceSet
from repro.system.result import RESULT_SCHEMA, EnergyBreakdown, SystemResult


@pytest.fixture(scope="module")
def paper_result():
    scenario = replace(named_scenario("paper"), horizon=900.0, seed=1)
    return run(scenario)


def test_full_round_trip_is_byte_stable(paper_result):
    text = paper_result.to_json()
    rebuilt = SystemResult.from_json(text)
    assert rebuilt.to_json() == text


def test_round_trip_preserves_everything(paper_result):
    rebuilt = SystemResult.from_payload(paper_result.to_payload())
    assert rebuilt.transmissions == paper_result.transmissions
    assert rebuilt.horizon == paper_result.horizon
    assert rebuilt.final_voltage == paper_result.final_voltage
    assert rebuilt.final_position == paper_result.final_position
    assert rebuilt.config == paper_result.config
    assert rebuilt.breakdown.imbalance() == paper_result.breakdown.imbalance()
    assert rebuilt.traces.names() == paper_result.traces.names()
    for name in paper_result.traces.names():
        assert list(rebuilt.traces[name].times) == list(
            paper_result.traces[name].times
        )
    assert len(rebuilt.tuning_events) == len(paper_result.tuning_events)
    for mine, theirs in zip(rebuilt.tuning_events, paper_result.tuning_events):
        assert mine.time == theirs.time
        assert mine.energy == theirs.energy
        assert mine.result == theirs.result
    assert rebuilt.retune_count() == paper_result.retune_count()
    assert rebuilt.summary() == paper_result.summary()


def test_payload_is_schema_stamped(paper_result):
    assert paper_result.to_payload()["schema"] == RESULT_SCHEMA


def test_unknown_schema_rejected(paper_result):
    payload = paper_result.to_payload()
    payload["schema"] = 99
    with pytest.raises(DesignError):
        SystemResult.from_payload(payload)


def test_non_object_payload_rejected():
    with pytest.raises(DesignError):
        SystemResult.from_payload([1, 2, 3])
    with pytest.raises(DesignError):
        SystemResult.from_json("not json at all {")


def test_save_load_file(tmp_path, paper_result):
    path = tmp_path / "result.json"
    paper_result.save(path)
    assert SystemResult.load(path).to_json() == paper_result.to_json()


def test_detailed_backend_alias_traces_round_trip():
    scenario = Scenario(horizon=0.2, backend="detailed", seed=1)
    result = run(scenario)
    rebuilt = SystemResult.from_payload(result.to_payload())
    # The adapter aliases "v_store" onto the native "v(vdc)" trace;
    # after a round trip the two names still share one sample list.
    assert rebuilt.to_json() == result.to_json()
    assert rebuilt.traces["v_store"] is rebuilt.traces["v(vdc)"]


def test_energy_breakdown_round_trip():
    breakdown = EnergyBreakdown(
        initial_stored=1.0, harvested=2.5, node_tx=0.5, shortfall=0.125
    )
    rebuilt = EnergyBreakdown.from_payload(breakdown.to_payload())
    assert rebuilt == breakdown


def test_trace_payload_length_mismatch_rejected():
    with pytest.raises(SimulationError):
        Trace.from_payload("bad", {"times": [0.0, 1.0], "values": [1.0]})


def test_traceset_alias_round_trip():
    traces = TraceSet()
    t = traces.trace("native")
    t.append(0.0, 1.0)
    t.append(1.0, 2.0)
    traces.alias("canonical", "native")
    payload = traces.to_payload()
    # The alphabetically first name owns the samples; the other aliases.
    assert payload["native"] == {"alias": "canonical"}
    assert payload["canonical"] == {"times": [0.0, 1.0], "values": [1.0, 2.0]}
    rebuilt = TraceSet.from_payload(payload)
    assert rebuilt["canonical"] is rebuilt["native"]
    assert list(rebuilt["native"].values) == [1.0, 2.0]
