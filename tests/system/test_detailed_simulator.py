"""Detailed (MNA) system backend: construction and node firmware."""

import pytest

from repro.errors import SimulationError
from repro.system.components import paper_system
from repro.system.config import SystemConfig
from repro.system.detailed import DetailedSimulator
from repro.system.vibration import VibrationProfile

pytestmark = pytest.mark.slow


def _sim(v_init=2.85, interval=0.3, f=64.0, points_per_cycle=40):
    parts = paper_system()
    cfg = SystemConfig(clock_hz=4e6, watchdog_s=1e4, tx_interval_s=interval)
    return DetailedSimulator(
        cfg,
        parts=parts,
        profile=VibrationProfile.constant(f),
        v_init=v_init,
        points_per_cycle=points_per_cycle,
    )


def test_node_transmits_at_configured_interval():
    sim = _sim(v_init=2.9, interval=0.25)
    res = sim.run(1.5)
    # ~6 transmissions in 1.5 s at 0.25 s interval (first after one interval).
    assert 4 <= res.transmissions <= 7


def test_node_silent_below_off_threshold():
    sim = _sim(v_init=2.60, interval=0.25, f=74.0)  # detuned: stays low
    res = sim.run(1.5)
    assert res.transmissions == 0


def test_transmission_energy_drains_storage():
    # Duration chosen so the run ends mid-sleep (a read at the instant a
    # burst ends would still show the ESR drop, not the stored energy).
    burst = _sim(v_init=2.9, interval=0.1, f=74.0)  # detuned: no harvest
    res_burst = burst.run(1.23)
    idle = _sim(v_init=2.9, interval=1e3, f=74.0)
    res_idle = idle.run(1.23)
    assert res_burst.transmissions >= 8
    assert res_burst.final_voltage < res_idle.final_voltage
    # Each transmission draws V^2/R_tx for 4.5 ms (~235 uJ at 2.9 V).
    dv = res_idle.final_voltage - res_burst.final_voltage
    e_tx = 2.9**2 / 161.0 * 4.5e-3
    expected = res_burst.transmissions * e_tx / (0.55 * 2.9)
    assert dv == pytest.approx(expected, rel=0.25)


def test_waveform_trace_contains_ripple():
    sim = _sim(v_init=2.85, interval=1e3)
    res = sim.run(0.5)
    v = res.traces["v(vdc)"]
    assert len(v) > 500
    assert v.max() < 3.6 and v.min() > 2.0


def test_run_duration_validation():
    sim = _sim()
    with pytest.raises(SimulationError):
        sim.run(0.0)


def test_supercap_voltage_probe_matches_trace():
    sim = _sim(v_init=2.85, interval=1e3)
    res = sim.run(0.3)
    assert sim.supercap_voltage() == pytest.approx(
        res.traces["v(vdc)"].values[-1], abs=1e-9
    )
