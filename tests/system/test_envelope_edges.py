"""Envelope simulator edge cases: clipping, ceilings, sliding at 2.7 V."""

import numpy as np
import pytest

from repro.system.components import paper_system
from repro.system.config import SystemConfig
from repro.system.envelope import EnvelopeSimulator
from repro.system.vibration import VibrationProfile


def _quiet_config(interval=1e3):
    # Huge watchdog and interval: isolate the continuous energy balance.
    return SystemConfig(clock_hz=4e6, watchdog_s=1e5, tx_interval_s=interval)


def test_voltage_saturates_at_rectifier_ceiling():
    parts = paper_system(v_init=2.9)
    sim = EnvelopeSimulator(
        _quiet_config(), parts=parts, profile=VibrationProfile.constant(64.0),
        seed=0,
    )
    res = sim.run(7200.0)
    ceiling = parts.microgenerator.envelope.ceiling_voltage(
        64.0, VibrationProfile.constant(64.0).acceleration(0.0),
        parts.microgenerator.position,
    )
    # Charging tapers to zero at the ceiling: the approach is asymptotic,
    # so two hours land close below it but never at it.
    assert res.final_voltage <= ceiling + 1e-6
    assert res.final_voltage > ceiling - 0.15


def test_store_vmax_clamp_records_clipped_energy():
    # Force the clamp below the rectifier ceiling to exercise clipping.
    from repro.harvester.storage import EnergyStore

    parts = paper_system(v_init=2.9)
    parts.store = EnergyStore(capacitance=0.55, v_init=2.9, v_max=2.95)
    sim = EnvelopeSimulator(
        _quiet_config(), parts=parts, profile=VibrationProfile.constant(64.0),
        seed=0,
    )
    res = sim.run(3600.0)
    assert res.final_voltage <= 2.95 + 1e-9
    assert res.breakdown.clipped > 0.0
    assert abs(res.breakdown.imbalance()) < 1e-9


def test_sliding_at_mid_threshold_when_mid_drain_exceeds_harvest():
    # A pathologically expensive mid band cannot happen with Table II
    # (60 s interval), so emulate it by a tiny fast interval AND starting
    # exactly at 2.7 with near-zero harvest: the node must not oscillate.
    parts = paper_system(v_init=2.7, initial_frequency=64.0)
    sim = EnvelopeSimulator(
        SystemConfig(clock_hz=4e6, watchdog_s=1e5, tx_interval_s=0.005),
        parts=parts,
        profile=VibrationProfile.constant(74.0),  # detuned: harvest ~ 0
        seed=0,
    )
    res = sim.run(1200.0)
    # Mid-band drain (1/min) exceeds zero harvest: voltage decays below
    # 2.7 and transmissions stop; energy accounting stays closed.
    assert res.final_voltage < 2.7
    assert abs(res.breakdown.imbalance()) < 1e-9


def test_transmission_counts_scale_with_horizon():
    parts = paper_system(v_init=2.85)
    counts = []
    for horizon in (600.0, 1200.0):
        sim = EnvelopeSimulator(
            _quiet_config(interval=2.0),
            parts=paper_system(v_init=2.85),
            profile=VibrationProfile.constant(64.0),
            seed=0,
            record_traces=False,
        )
        counts.append(sim.run(horizon).transmissions)
    assert counts[1] == pytest.approx(2 * counts[0], rel=0.1)


def test_traces_cover_full_horizon():
    sim = EnvelopeSimulator(
        _quiet_config(), parts=paper_system(),
        profile=VibrationProfile.paper_profile(), seed=0,
    )
    res = sim.run(3600.0)
    v = res.traces["v_store"]
    assert v.times[0] == 0.0
    assert v.times[-1] == pytest.approx(3600.0, abs=1.0)
    freq_trace = res.traces["input_frequency"]
    assert freq_trace.at(100.0) == 64.0
    assert freq_trace.at(2000.0) == 69.0


def test_wakeups_match_watchdog_schedule():
    cfg = SystemConfig(clock_hz=4e6, watchdog_s=500.0, tx_interval_s=5.0)
    sim = EnvelopeSimulator(
        cfg, parts=paper_system(), profile=VibrationProfile.constant(64.0),
        seed=0, record_traces=False,
    )
    res = sim.run(3600.0)
    times = [ev.time for ev in res.tuning_events]
    assert times == pytest.approx([500.0 * i for i in range(1, 8)], abs=1.0)
