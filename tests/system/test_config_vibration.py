"""System configuration, parameter space and vibration profiles."""

import pytest

from repro.errors import ConfigError, ModelError
from repro.system.config import (
    ORIGINAL_DESIGN,
    SystemConfig,
    config_from_coded,
    paper_parameter_space,
)
from repro.system.vibration import VibrationProfile, VibrationSegment
from repro.units import mg_to_mps2


class TestConfig:
    def test_original_design_matches_table_vi(self):
        assert ORIGINAL_DESIGN.clock_hz == 4e6
        assert ORIGINAL_DESIGN.watchdog_s == 320.0
        assert ORIGINAL_DESIGN.tx_interval_s == 5.0

    def test_vector_roundtrip(self):
        cfg = SystemConfig(1e6, 100.0, 2.0)
        assert SystemConfig.from_vector(cfg.as_vector()) == cfg

    def test_from_vector_length_check(self):
        with pytest.raises(ConfigError):
            SystemConfig.from_vector([1.0, 2.0])

    def test_validation(self):
        with pytest.raises(ConfigError):
            SystemConfig(clock_hz=0.0)
        with pytest.raises(ConfigError):
            SystemConfig(watchdog_s=-1.0)
        with pytest.raises(ConfigError):
            SystemConfig(tx_interval_s=0.0)

    def test_describe(self):
        assert "4 MHz" in ORIGINAL_DESIGN.describe()


class TestParameterSpace:
    def test_table_v_ranges(self):
        space = paper_parameter_space()
        bounds = dict(zip(space.names(), space.bounds_natural()))
        assert bounds["clock_hz"] == (125e3, 8e6)
        assert bounds["watchdog_s"] == (60.0, 600.0)
        assert bounds["tx_interval_s"] == (0.005, 10.0)

    def test_coded_symbols(self):
        space = paper_parameter_space()
        assert [p.coded_symbol for p in space.parameters] == ["x1", "x2", "x3"]

    def test_coding_endpoints(self):
        space = paper_parameter_space()
        coded = space.to_coded([125e3, 600.0, 0.005])
        assert coded[0] == pytest.approx(-1.0)
        assert coded[1] == pytest.approx(1.0)
        assert coded[2] == pytest.approx(-1.0)

    def test_center_codes_to_zero(self):
        space = paper_parameter_space()
        center = [(125e3 + 8e6) / 2, 330.0, (0.005 + 10.0) / 2]
        assert space.to_coded(center) == pytest.approx([0.0, 0.0, 0.0])

    def test_config_from_coded_clips(self):
        cfg = config_from_coded([-2.0, 0.0, 2.0])
        assert cfg.clock_hz == pytest.approx(125e3)
        assert cfg.tx_interval_s == pytest.approx(10.0)


class TestVibrationProfile:
    def test_constant_profile(self):
        p = VibrationProfile.constant(64.0, accel_mg=60.0)
        assert p.frequency(0.0) == 64.0
        assert p.frequency(1e6) == 64.0
        assert p.acceleration(0.0) == pytest.approx(mg_to_mps2(60.0))

    def test_paper_profile_steps(self):
        p = VibrationProfile.paper_profile()
        assert p.frequency(0.0) == 64.0
        assert p.frequency(1500.0) == 69.0
        assert p.frequency(2999.0) == 69.0
        assert p.frequency(3000.0) == 74.0

    def test_change_times(self):
        p = VibrationProfile.paper_profile()
        assert p.change_times(0.0, 3600.0) == [1500.0, 3000.0]
        assert p.change_times(1600.0, 2900.0) == []

    def test_frequency_span(self):
        p = VibrationProfile.paper_profile()
        assert p.frequency_span() == (64.0, 74.0)

    def test_segment_validation(self):
        with pytest.raises(ModelError):
            VibrationSegment(0.0, -1.0, 0.5)
        with pytest.raises(ModelError):
            VibrationProfile([])
        with pytest.raises(ModelError):
            VibrationProfile([VibrationSegment(10.0, 64.0, 0.5)])

    def test_duplicate_starts_rejected(self):
        with pytest.raises(ModelError):
            VibrationProfile(
                [VibrationSegment(0.0, 64.0, 0.5), VibrationSegment(0.0, 65.0, 0.5)]
            )

    def test_payload_roundtrip(self):
        p = VibrationProfile.paper_profile()
        assert VibrationProfile.from_payload(p.to_payload()) == p

    def test_payload_unsorted_starts_rejected(self):
        # A serialised profile is an ordered document: out-of-order
        # segments almost always mean a corrupted or hand-mangled file,
        # so reject instead of silently re-sorting into a different
        # excitation than the author wrote.
        payload = [
            {"t_start": 1500.0, "frequency_hz": 69.0, "accel_mps2": 0.6},
            {"t_start": 0.0, "frequency_hz": 64.0, "accel_mps2": 0.6},
        ]
        with pytest.raises(ModelError, match="sorted"):
            VibrationProfile.from_payload(payload)

    def test_payload_overlapping_starts_rejected(self):
        payload = [
            {"t_start": 0.0, "frequency_hz": 64.0, "accel_mps2": 0.6},
            {"t_start": 750.0, "frequency_hz": 66.0, "accel_mps2": 0.6},
            {"t_start": 750.0, "frequency_hz": 69.0, "accel_mps2": 0.6},
        ]
        with pytest.raises(ModelError, match="t_start"):
            VibrationProfile.from_payload(payload)


class TestComponentsRegistry:
    def test_table_i_registry(self):
        from repro.system.components import COMPONENT_REGISTRY

        assert COMPONENT_REGISTRY["microcontroller"]["type"] == "PIC16F884"
        assert COMPONENT_REGISTRY["sensor_node"]["type"] == "eZ430-RF2500"
        assert COMPONENT_REGISTRY["accelerometer"]["make"] == "STMicroelectronics"
        assert "Haydon" in COMPONENT_REGISTRY["linear_actuator"]["make"]

    def test_paper_system_initially_tuned(self):
        from repro.system.components import paper_system

        parts = paper_system(initial_frequency=64.0)
        f_r = parts.microgenerator.resonant_frequency()
        assert f_r == pytest.approx(64.0, abs=0.2)

    def test_paper_system_store_defaults(self):
        from repro.system.components import paper_system

        parts = paper_system()
        assert parts.store.capacitance == pytest.approx(0.55)
        assert parts.store.voltage == pytest.approx(2.65)
