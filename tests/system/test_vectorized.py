"""Unit tests for the vectorized batch envelope backend."""

import json
from dataclasses import replace

import pytest

from repro.backends import get_backend, quiet_options, run, run_batch
from repro.errors import ConfigError
from repro.scenario import PartsSpec, Scenario, named_scenario
from repro.system.components import paper_system
from repro.system.config import SystemConfig
from repro.system.vectorized import (
    DISABLE_ENV_VAR,
    _build_parts,
    numpy_available,
    simulate_batch,
)
from repro.system.vibration import VibrationProfile

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="vectorized backend needs NumPy"
)


def _canonical(result) -> str:
    return json.dumps(result.to_payload(), sort_keys=True)


def _short(**overrides) -> Scenario:
    base = dict(
        config=SystemConfig(clock_hz=4e6, watchdog_s=120.0, tx_interval_s=2.0),
        profile=VibrationProfile.paper_profile(horizon=600.0),
        horizon=600.0,
        seed=5,
        backend="vectorized",
        options=quiet_options("vectorized"),
    )
    base.update(overrides)
    return Scenario(**base)


class TestSharedPhysicsParts:
    def test_matches_paper_system(self):
        spec = PartsSpec(v_init=2.72, initial_frequency=66.0)
        fast = _build_parts(spec)
        slow = paper_system(v_init=2.72, initial_frequency=66.0)
        assert fast.store.energy == slow.store.energy
        assert fast.microgenerator.position == slow.microgenerator.position
        assert fast.lut.positions == slow.lut.positions
        assert fast.microgenerator.tuning_map.resonant_frequency(
            100
        ) == slow.microgenerator.tuning_map.resonant_frequency(100)

    def test_explicit_position_override(self):
        fast = _build_parts(PartsSpec(initial_position=37))
        assert fast.microgenerator.position == 37

    def test_lanes_do_not_share_mutable_state(self):
        a = _build_parts(PartsSpec())
        b = _build_parts(PartsSpec())
        a.microgenerator.actuator.move_steps(5)
        a.store.draw(0.1)
        assert b.microgenerator.actuator.total_steps_moved == 0
        assert b.store.energy != a.store.energy
        # The heavyweight immutable physics *is* shared.
        assert a.lut is b.lut
        assert a.microgenerator.tuning_map is b.microgenerator.tuning_map


class TestBackendContract:
    def test_simulate_equals_batch_of_one(self):
        scenario = _short()
        backend = get_backend("vectorized")
        assert _canonical(backend.simulate(scenario)) == _canonical(
            backend.run_batch([scenario])[0]
        )

    def test_empty_batch(self):
        assert simulate_batch([]) == []

    def test_heterogeneous_batch_matches_scalar(self):
        scenarios = [
            _short(),
            _short(
                config=SystemConfig(
                    clock_hz=1e6, watchdog_s=300.0, tx_interval_s=0.5
                ),
                seed=9,
            ),
            _short(
                parts=PartsSpec(v_init=2.45),
                horizon=450.0,
                profile=None,
            ),
        ]
        batched = run_batch(scenarios)
        for scenario, got in zip(scenarios, batched):
            want = run(replace(scenario, backend="envelope"))
            assert _canonical(got) == _canonical(want)

    def test_dt_max_option_matches_envelope(self):
        scenario = _short(options={"dt_max": 0.5, "record_traces": False})
        got = run(scenario)
        want = run(replace(scenario, backend="envelope"))
        assert _canonical(got) == _canonical(want)

    def test_traces_match_envelope(self):
        scenario = _short(options={})
        got = run(scenario)
        want = run(replace(scenario, backend="envelope"))
        assert json.dumps(got.traces.to_payload(), sort_keys=True) == json.dumps(
            want.traces.to_payload(), sort_keys=True
        )

    def test_unknown_option_is_config_error(self):
        scenario = _short(options={"points_per_cycle": 10})
        with pytest.raises(ConfigError, match="vectorized.*points_per_cycle"):
            run(scenario)

    def test_bad_dt_max_propagates(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="dt_max"):
            run(_short(options={"dt_max": -1.0}))

    def test_deterministic_across_calls(self):
        scenario = _short(seed=11)
        assert _canonical(run(scenario)) == _canonical(run(scenario))

    def test_cache_keys_are_backend_specific(self):
        """Vectorized rows never squat an envelope row (and vice versa):
        the backend is part of the scenario identity."""
        scenario = named_scenario("paper")
        assert (
            replace(scenario, backend="vectorized").cache_key()
            != scenario.cache_key()
        )


class TestNumpyGuard:
    def test_disable_env_var_raises_config_error(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV_VAR, "1")
        assert not numpy_available()
        with pytest.raises(ConfigError, match=r"vectorized.*NumPy"):
            run(_short(horizon=30.0))

    def test_error_names_the_extra_and_an_alternative(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV_VAR, "1")
        with pytest.raises(ConfigError, match=r"repro-wsn\[vectorized\]"):
            simulate_batch([_short(horizon=30.0)])
        with pytest.raises(ConfigError, match="envelope"):
            simulate_batch([_short(horizon=30.0)])

    def test_envelope_backend_unaffected(self, monkeypatch):
        """Tier-1 physics must keep working with NumPy 'absent' for the
        vectorized backend: the guard gates only the batch engine."""
        monkeypatch.setenv(DISABLE_ENV_VAR, "1")
        result = run(
            replace(_short(horizon=30.0), backend="envelope")
        )
        assert result.horizon >= 30.0

    def test_registry_still_lists_vectorized(self, monkeypatch):
        """The name stays registered (and advertised in error listings)
        even when the dependency is missing -- failing at *use* with a
        good message beats silently vanishing from the registry."""
        from repro.backends import backend_names

        monkeypatch.setenv(DISABLE_ENV_VAR, "1")
        assert "vectorized" in backend_names()


def test_runaway_guard_resets_per_event_stretch(monkeypatch):
    """Regression: the iteration guard must bound one inter-event
    stretch (like the scalar integrator's per-_integrate_until guard),
    not the whole run -- otherwise legitimately long runs with small
    dt_max abort on vectorized while envelope completes them."""
    import repro.system.vectorized as vec

    monkeypatch.setattr(vec, "_MAX_ITERATIONS", 100)
    # ~60 steps per watchdog stretch (< 100), ~5 stretches (> 100 total).
    scenario = _short(
        config=SystemConfig(clock_hz=4e6, watchdog_s=60.0, tx_interval_s=2.0),
        horizon=300.0,
        options={"dt_max": 1.0, "record_traces": False},
    )
    result = run(scenario)
    assert result.horizon >= 300.0 - 1e-9
