"""Stochastic vibration generators and scenario families."""

from dataclasses import replace

import pytest

from repro.core.batch import BatchRunner
from repro.errors import ConfigError, DesignError, ModelError
from repro.scenario import Scenario, named_scenario
from repro.system.stochastic import (
    FAMILY_LIBRARY,
    EnvironmentState,
    FixedFamily,
    RegimeSwitchingVibration,
    StochasticFamily,
    family_names,
    manifest_scenarios,
    named_family,
)

STATE = EnvironmentState("on", (63.0, 66.0), (40.0, 80.0), (60.0, 300.0))


def _generator(**kwargs) -> RegimeSwitchingVibration:
    return RegimeSwitchingVibration(states=(STATE,), **kwargs)


class TestEnvironmentState:
    def test_scalar_ranges_accepted(self):
        s = EnvironmentState("x", 64.0, 60.0, 100.0)
        assert s.frequency_hz == (64.0, 64.0)
        assert s.accel_mg == (60.0, 60.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            EnvironmentState("x", (66.0, 63.0), (0.0, 1.0), (1.0, 2.0))
        with pytest.raises(ModelError):
            EnvironmentState("x", (0.0, 64.0), (0.0, 1.0), (1.0, 2.0))
        with pytest.raises(ModelError):
            EnvironmentState("x", (63.0, 64.0), (-1.0, 1.0), (1.0, 2.0))
        with pytest.raises(ModelError):
            EnvironmentState("x", (63.0, 64.0), (0.0, 1.0), (0.0, 2.0))


class TestRegimeSwitchingVibration:
    def test_same_seed_same_profile(self):
        gen = _generator(jitter_mg=5.0, drift_hz_per_hour=1.0, dropout_prob=0.1)
        assert gen.generate(3600.0, seed=7) == gen.generate(3600.0, seed=7)

    def test_different_seeds_differ(self):
        gen = _generator(jitter_mg=5.0)
        assert gen.generate(3600.0, seed=1) != gen.generate(3600.0, seed=2)

    def test_segments_cover_horizon_on_resolution_grid(self):
        gen = _generator(resolution_s=30.0)
        profile = gen.generate(600.0, seed=0)
        starts = [s.t_start for s in profile.segments]
        assert starts[0] == 0.0
        assert starts == sorted(starts)
        assert starts[-1] < 600.0

    def test_frequencies_respect_drift_band(self):
        gen = _generator(drift_hz_per_hour=50.0, drift_band_hz=(60.0, 70.0))
        profile = gen.generate(3600.0, seed=3)
        lo, hi = profile.frequency_span()
        assert lo >= 60.0 and hi <= 70.0

    def test_dropout_produces_zero_accel_segments(self):
        gen = _generator(dropout_prob=0.5)
        profile = gen.generate(3600.0, seed=1)
        assert any(s.accel_mps2 == 0.0 for s in profile.segments)

    def test_burst_amplifies(self):
        quiet = _generator()
        loud = _generator(burst_prob=1.0, burst_gain=3.0)
        a = max(s.accel_mps2 for s in quiet.generate(600.0, seed=5).segments)
        b = max(s.accel_mps2 for s in loud.generate(600.0, seed=5).segments)
        assert b == pytest.approx(3.0 * a)

    def test_markov_transitions_visit_states(self):
        gen = RegimeSwitchingVibration(
            states=(
                EnvironmentState("a", 63.0, 10.0, (30.0, 30.0)),
                EnvironmentState("b", 70.0, 10.0, (30.0, 30.0)),
            ),
            transitions=((0.0, 1.0), (1.0, 0.0)),
            resolution_s=30.0,
        )
        profile = gen.generate(600.0, seed=0)
        freqs = {s.frequency_hz for s in profile.segments}
        assert freqs == {63.0, 70.0}

    def test_validation(self):
        with pytest.raises(ModelError):
            RegimeSwitchingVibration(states=())
        with pytest.raises(ModelError):
            _generator(dropout_prob=0.7, burst_prob=0.7)
        with pytest.raises(ModelError):
            _generator(resolution_s=0.0)
        with pytest.raises(ModelError):
            RegimeSwitchingVibration(states=(STATE,), transitions=((0.5, 0.5),))
        with pytest.raises(ModelError):
            RegimeSwitchingVibration(states=(STATE, STATE), transitions=((0.9, 0.0), (0.5, 0.5)))
        with pytest.raises(ModelError):
            _generator().generate(0.0, seed=1)

    def test_regime_outside_drift_band_rejected(self):
        # The band clamps base + drift; an out-of-band regime would be
        # silently rewritten to the band edge, so it must be rejected.
        motor = EnvironmentState("motor", (100.0, 120.0), (50.0, 80.0), (60.0, 300.0))
        with pytest.raises(ModelError, match="drift_band_hz"):
            RegimeSwitchingVibration(states=(motor,))
        # Widening the band makes the same regime legal.
        gen = RegimeSwitchingVibration(states=(motor,), drift_band_hz=(90.0, 130.0))
        lo, hi = gen.generate(600.0, seed=0).frequency_span()
        assert 100.0 <= lo and hi <= 120.0


class TestStochasticFamily:
    def _family(self, **kwargs) -> StochasticFamily:
        defaults = dict(name="fam", generator=_generator(), horizon=600.0)
        defaults.update(kwargs)
        return StochasticFamily(**defaults)

    def test_expansion_is_bit_identical(self):
        fam = self._family()
        a = fam.expand(n=3, seed=11)
        b = fam.expand(n=3, seed=11)
        assert [s.to_json() for s in a] == [s.to_json() for s in b]

    def test_expansion_differs_across_seeds_and_replicates(self):
        fam = self._family()
        a, b = fam.expand(n=2, seed=1)
        assert a.profile != b.profile
        assert a.seed != b.seed
        (c,) = fam.expand(n=1, seed=2)
        assert c.profile != a.profile

    def test_grid_crosses_config_axes(self):
        fam = self._family(
            grid={"tx_interval_s": (1.0, 5.0), "watchdog_s": (120.0, 320.0)}
        )
        scenarios = fam.expand(n=2, seed=0)
        assert len(scenarios) == 8  # 2 x 2 grid points x 2 replicates
        combos = {(s.config.tx_interval_s, s.config.watchdog_s) for s in scenarios}
        assert len(combos) == 4

    def test_unknown_grid_axis_rejected(self):
        with pytest.raises(ConfigError, match="grid axis"):
            self._family(grid={"not_a_field": (1.0,)})

    def test_v_init_sampled_in_range(self):
        fam = self._family(v_init=(2.70, 2.80))
        for s in fam.expand(n=5, seed=9):
            assert 2.70 <= s.parts.v_init <= 2.80

    def test_manifest_roundtrip(self):
        fam = self._family()
        manifest = fam.manifest(n=2, seed=4)
        scenarios = manifest_scenarios(manifest)
        assert scenarios == fam.expand(n=2, seed=4)

    def test_manifest_schema_guard(self):
        with pytest.raises(DesignError):
            manifest_scenarios({"schema": 99, "scenarios": []})
        with pytest.raises(DesignError):
            manifest_scenarios({"no": "scenarios"})

    def test_expand_validation(self):
        with pytest.raises(ConfigError):
            self._family().expand(n=0, seed=1)


class TestFixedFamily:
    def test_replicates_derive_seeds(self):
        base = Scenario(horizon=60.0, seed=None, name="s")
        fam = FixedFamily(name="fixed", scenarios=(base,))
        r0, r1, r2 = fam.expand(n=3, seed=5)
        assert r0.seed == 5  # family seed verbatim for the canonical replicate
        assert r1.seed not in (None, 5)
        assert r1.seed != r2.seed

    def test_canonical_replicate_keeps_explicit_seed(self):
        base = Scenario(horizon=60.0, seed=77)
        fam = FixedFamily(name="fixed", scenarios=(base,))
        assert fam.expand(n=1, seed=5)[0].seed == 77

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            FixedFamily(name="fixed", scenarios=())


class TestFamilyLibrary:
    def test_five_families_ship(self):
        assert set(family_names()) == {
            "factory-floor",
            "vehicle",
            "hvac",
            "intermittent",
            "worst-case-drift",
        }

    def test_every_family_expands(self):
        for name in family_names():
            (s,) = named_family(name).expand(n=1, seed=0)
            assert s.profile is not None
            assert s.name.startswith(name)

    def test_unknown_family(self):
        with pytest.raises(ConfigError, match="unknown scenario family"):
            named_family("does-not-exist")

    def test_named_scenario_accepts_family_names(self):
        s = named_scenario("factory-floor")
        assert s == named_family("factory-floor").expand(n=1, seed=0)[0]

    def test_named_scenario_error_mentions_families(self):
        with pytest.raises(ConfigError, match="stochastic families"):
            named_scenario("does-not-exist")

    def test_library_returns_fresh_values(self):
        assert named_family("hvac") is not FAMILY_LIBRARY["hvac"]()


class TestBatchDeterminism:
    def test_serial_equals_parallel(self):
        # Acceptance: same family + seed -> bit-identical batch results
        # whether run serially or on 4 workers.
        fam = replace(named_family("intermittent"), horizon=300.0)
        scenarios = fam.expand(n=4, seed=13)
        serial = BatchRunner(jobs=1).run(scenarios)
        parallel = BatchRunner(jobs=4).run(scenarios)
        for a, b in zip(serial, parallel):
            assert a.transmissions == b.transmissions
            assert a.final_voltage == b.final_voltage
            assert a.breakdown.harvested == b.breakdown.harvested

    def test_run_family_uses_runner_seed(self):
        fam = replace(named_family("hvac"), horizon=120.0)
        runner = BatchRunner(jobs=1, seed=3)
        results = runner.run_family(fam, n=1)
        again = BatchRunner(jobs=1, seed=3).run(fam.expand(n=1, seed=3))
        assert [r.final_voltage for r in results] == [
            r.final_voltage for r in again
        ]
