"""Scenario value semantics, JSON round-trip and the named library."""

import json

import pytest

from repro.errors import ConfigError, DesignError
from repro.scenario import (
    SCENARIO_LIBRARY,
    PartsSpec,
    Scenario,
    named_scenario,
    scenario_names,
)
from repro.system.config import SystemConfig
from repro.system.vibration import VibrationProfile


def _sample_scenario() -> Scenario:
    return Scenario(
        config=SystemConfig(clock_hz=2e6, watchdog_s=120.0, tx_interval_s=0.5),
        parts=PartsSpec(v_init=2.7, initial_frequency=66.0, initial_position=131),
        profile=VibrationProfile.paper_profile(f_start=66.0),
        horizon=1800.0,
        seed=42,
        backend="envelope",
        options={"record_traces": False, "dt_max": 1.0},
        name="sample",
    )


def test_json_round_trip_preserves_equality_and_hash():
    s = _sample_scenario()
    back = Scenario.from_json(s.to_json())
    assert back == s
    assert hash(back) == hash(s)
    assert back.cache_key() == s.cache_key()


def test_round_trip_defaults_and_none_fields():
    s = Scenario()
    back = Scenario.from_json(s.to_json())
    assert back == s
    assert back.parts is None and back.profile is None


def test_save_load_file(tmp_path):
    path = tmp_path / "scenario.json"
    s = _sample_scenario()
    s.save(path)
    assert Scenario.load(path) == s


def test_payload_carries_schema_version():
    assert _sample_scenario().to_dict()["schema"] == 1


def test_unversioned_payload_loads_as_schema_1():
    payload = _sample_scenario().to_dict()
    del payload["schema"]
    assert Scenario.from_dict(payload) == _sample_scenario()


def test_unknown_schema_rejected():
    payload = _sample_scenario().to_dict()
    payload["schema"] = 99
    with pytest.raises(DesignError):
        Scenario.from_dict(payload)


def test_cache_key_distinguishes_scenarios():
    s = _sample_scenario()
    assert s.cache_key() != s.with_seed(43).cache_key()
    assert s.cache_key() == _sample_scenario().cache_key()


def test_name_is_cosmetic_for_equality_and_cache():
    """Re-labelled copies of the same simulation dedupe and compare equal."""
    from dataclasses import replace

    a = _sample_scenario()
    b = replace(a, name="other-label")
    assert a == b
    assert a.cache_key() == b.cache_key()
    assert hash(a) == hash(b)
    # ...but the label still round-trips through JSON.
    assert Scenario.from_json(b.to_json()).name == "other-label"


def test_options_copied_at_construction():
    opts = {"dt_max": 1.0}
    s = Scenario(options=opts)
    key = s.cache_key()
    opts["dt_max"] = 99.0  # caller-side mutation must not reach the scenario
    assert s.options["dt_max"] == 1.0
    assert s.cache_key() == key


def test_scenarios_usable_as_dict_keys():
    s = _sample_scenario()
    table = {s: 1, s.with_seed(43): 2}
    assert table[_sample_scenario()] == 1


def test_validation():
    with pytest.raises(ConfigError):
        Scenario(horizon=0.0)
    with pytest.raises(ConfigError):
        Scenario(backend="")
    with pytest.raises(ConfigError):
        Scenario(options={"dt_max": [1.0]})
    with pytest.raises(ConfigError):
        PartsSpec(v_init=-1.0)


def test_parts_spec_builds_fresh_default_system():
    from repro.system.components import paper_system

    spec = PartsSpec()
    a, b = spec.build(), spec.build()
    assert a is not b
    reference = paper_system()
    assert a.store.voltage == reference.store.voltage
    assert a.microgenerator.position == reference.microgenerator.position


def test_named_library_complete_and_round_trippable():
    assert scenario_names() == sorted(SCENARIO_LIBRARY)
    assert set(scenario_names()) == {
        "paper",
        "bursty",
        "low-vibration",
        "cold-start",
        "long-horizon",
    }
    for name in scenario_names():
        s = named_scenario(name)
        assert s.name == name
        assert Scenario.from_json(s.to_json()) == s
        # Every library scenario is self-contained (explicit profile).
        assert s.profile is not None


def test_unknown_named_scenario():
    with pytest.raises(ConfigError, match="unknown scenario"):
        named_scenario("does-not-exist")


def test_numpy_scalars_normalised():
    import numpy as np

    s = Scenario(
        seed=np.int64(3),
        horizon=np.float64(60.0),
        parts=PartsSpec(v_init=np.float64(2.8), initial_position=np.int64(5)),
    )
    assert type(s.seed) is int and type(s.horizon) is float
    s.cache_key()  # JSON-serialisable, would raise TypeError otherwise
    assert Scenario.from_json(s.to_json()) == s


def test_invalid_json_text_raises_design_error():
    with pytest.raises(DesignError, match="not valid JSON"):
        Scenario.from_json("not json {")
    with pytest.raises(DesignError, match="JSON object"):
        Scenario.from_json("[1, 2, 3]")


def test_json_is_plain_types():
    payload = json.loads(_sample_scenario().to_json())
    assert isinstance(payload, dict)
    assert isinstance(payload["profile"], list)
    assert isinstance(payload["config"]["clock_hz"], float)
