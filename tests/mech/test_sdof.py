"""SDOF resonator theory checks against closed forms."""

import math

import pytest

from repro.errors import ModelError
from repro.mech.sdof import SdofResonator


@pytest.fixture
def resonator():
    # 50 g, 64 Hz, Q ~ 41.7
    m = 0.05
    k = m * (2 * math.pi * 64.0) ** 2
    return SdofResonator(mass=m, stiffness=k, zeta_mech=0.004, zeta_elec=0.008)


def test_natural_frequency(resonator):
    assert resonator.natural_frequency == pytest.approx(64.0)
    assert resonator.omega_n == pytest.approx(2 * math.pi * 64.0)


def test_quality_factor(resonator):
    assert resonator.quality_factor == pytest.approx(1.0 / (2 * 0.012))


def test_damping_coefficients(resonator):
    c_m = resonator.damping_mech
    c_e = resonator.damping_elec
    assert c_e / c_m == pytest.approx(2.0)  # zeta ratio
    assert c_m == pytest.approx(2 * 0.05 * resonator.omega_n * 0.004)


def test_displacement_peaks_at_resonance(resonator):
    A = 0.5886
    z_res = resonator.displacement_amplitude(64.0, A)
    assert z_res > resonator.displacement_amplitude(63.0, A)
    assert z_res > resonator.displacement_amplitude(65.0, A)
    # closed form at resonance: A / (2 zeta wn^2)
    expected = A / (2 * 0.012 * resonator.omega_n**2)
    assert z_res == pytest.approx(expected, rel=1e-9)


def test_resonant_power_closed_form(resonator):
    A = 0.5886
    p_formula = resonator.resonant_power(A)
    p_direct = resonator.electrical_power(64.0, A)
    assert p_formula == pytest.approx(p_direct, rel=1e-9)


def test_power_ratio_detuning_penalty(resonator):
    # 5 Hz detune at Q~42 should cost >95% of the output (the paper's
    # motivation for tuning).
    ratio = resonator.power_ratio(69.0)
    assert ratio < 0.05
    assert resonator.power_ratio(64.0) == pytest.approx(1.0, rel=1e-9)


def test_power_ratio_monotone_in_detune(resonator):
    ratios = [resonator.power_ratio(64.0 + d) for d in (0.0, 0.5, 1.0, 2.0, 5.0)]
    assert all(a > b for a, b in zip(ratios, ratios[1:]))


def test_phase_crosses_quarter_period_at_resonance(resonator):
    assert resonator.phase_lag(64.0) == pytest.approx(-math.pi / 2, abs=1e-9)
    assert resonator.phase_difference_seconds(64.0) == pytest.approx(0.0, abs=1e-12)
    # below resonance the phase error is positive, above negative
    assert resonator.phase_difference_seconds(63.0) > 0
    assert resonator.phase_difference_seconds(65.0) < 0


def test_phase_difference_scale(resonator):
    # Near resonance: dt ~= delta_f / (zeta_T f_n) / (2 pi f)
    delta = 0.05
    dt = resonator.phase_difference_seconds(64.0 - delta)
    approx = delta / (0.012 * 64.0) / (2 * math.pi * 64.0)
    assert dt == pytest.approx(approx, rel=0.05)


def test_half_power_bandwidth(resonator):
    bw = resonator.half_power_bandwidth()
    assert bw == pytest.approx(64.0 / resonator.quality_factor)
    # power at fn +- bw/2 should be roughly half
    assert resonator.power_ratio(64.0 + bw / 2) == pytest.approx(0.5, abs=0.1)


def test_with_stiffness_retunes(resonator):
    stiffer = resonator.with_stiffness(resonator.stiffness * 4.0)
    assert stiffer.natural_frequency == pytest.approx(128.0)
    assert stiffer.zeta_mech == resonator.zeta_mech


def test_validation():
    with pytest.raises(ModelError):
        SdofResonator(mass=0.0, stiffness=1.0, zeta_mech=0.01)
    with pytest.raises(ModelError):
        SdofResonator(mass=1.0, stiffness=-1.0, zeta_mech=0.01)
    with pytest.raises(ModelError):
        SdofResonator(mass=1.0, stiffness=1.0, zeta_mech=0.0)
    with pytest.raises(ModelError):
        SdofResonator(mass=1.0, stiffness=1.0, zeta_mech=0.01, zeta_elec=-0.1)
