"""Magnetic tuner and cantilever beam models."""

import math

import pytest

from repro.errors import ModelError
from repro.mech.cantilever import CantileverBeam
from repro.mech.coupling import ElectromagneticCoupling
from repro.mech.magnetics import MagneticTuner


class TestMagneticTuner:
    def test_force_inverse_fourth_power(self):
        t = MagneticTuner(1.0, 1.0, 0.005, 0.02)
        assert t.force(0.01) / t.force(0.02) == pytest.approx(16.0)

    def test_stiffness_inverse_fifth_power(self):
        t = MagneticTuner(1.0, 1.0, 0.005, 0.02)
        assert t.added_stiffness(0.01) / t.added_stiffness(0.02) == pytest.approx(32.0)

    def test_gap_stiffness_roundtrip(self):
        t = MagneticTuner(2.0, 3.0, 0.005, 0.02)
        k = t.added_stiffness(0.012)
        assert t.gap_for_stiffness(k) == pytest.approx(0.012, rel=1e-9)

    def test_travel_mapping_monotone(self):
        t = MagneticTuner(1.0, 1.0, 0.01, 0.013)
        ks = [t.stiffness_from_travel(f / 10) for f in range(11)]
        assert all(b > a for a, b in zip(ks, ks[1:]))

    def test_travel_bounds(self):
        t = MagneticTuner(1.0, 1.0, 0.01, 0.013)
        with pytest.raises(ModelError):
            t.gap_from_travel(1.5)
        with pytest.raises(ModelError):
            t.added_stiffness(0.0)

    def test_design_for_frequency_range(self):
        m, f0 = 0.05, 50.0
        k0 = m * (2 * math.pi * f0) ** 2
        t = MagneticTuner.for_frequency_range(m, k0, 60.0, 80.0, 0.010, 0.013)
        f_high = math.sqrt((k0 + t.stiffness_from_travel(1.0)) / m) / (2 * math.pi)
        f_low = math.sqrt((k0 + t.stiffness_from_travel(0.0)) / m) / (2 * math.pi)
        assert f_high == pytest.approx(80.0, rel=1e-6)
        assert f_low <= 60.0  # travel reaches below the band bottom

    def test_design_rejects_too_stiff_base(self):
        m = 0.05
        k0 = m * (2 * math.pi * 70.0) ** 2  # untuned already above f_low
        with pytest.raises(ModelError):
            MagneticTuner.for_frequency_range(m, k0, 60.0, 80.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            MagneticTuner(0.0, 1.0, 0.01, 0.02)
        with pytest.raises(ModelError):
            MagneticTuner(1.0, 1.0, 0.02, 0.01)


class TestCantilever:
    def test_textbook_formulas(self):
        beam = CantileverBeam(
            length=30e-3,
            width=10e-3,
            thickness=1e-3,
            youngs_modulus=200e9,
            density=7850.0,
            tip_mass=0.01,
        )
        I = 10e-3 * (1e-3) ** 3 / 12
        assert beam.moment_of_inertia == pytest.approx(I)
        assert beam.stiffness == pytest.approx(3 * 200e9 * I / 30e-3**3)
        assert beam.beam_mass == pytest.approx(7850 * 30e-3 * 10e-3 * 1e-3)
        assert beam.effective_mass == pytest.approx(0.01 + 33 / 140 * beam.beam_mass)

    def test_design_for_target_frequency(self):
        beam = CantileverBeam.for_frequency(64.0, tip_mass=0.05)
        assert beam.natural_frequency == pytest.approx(64.0, rel=1e-6)

    def test_to_resonator(self):
        beam = CantileverBeam.for_frequency(70.0, tip_mass=0.02)
        res = beam.to_resonator(zeta_mech=0.005, zeta_elec=0.01)
        assert res.natural_frequency == pytest.approx(70.0, rel=1e-6)
        assert res.zeta_total == pytest.approx(0.015)

    def test_validation(self):
        with pytest.raises(ModelError):
            CantileverBeam(0.0, 1e-2, 1e-3, 200e9, 7850, 0.01)
        with pytest.raises(ModelError):
            CantileverBeam(3e-2, 1e-2, 1e-3, 200e9, 7850, -0.01)


class TestCoupling:
    def test_electrical_damping_formula(self):
        c = ElectromagneticCoupling(theta=50.0, coil_resistance=1000.0)
        assert c.electrical_damping(1000.0) == pytest.approx(50.0**2 / 2000.0)

    def test_damping_ratio(self):
        c = ElectromagneticCoupling(theta=50.0, coil_resistance=1000.0)
        zeta = c.electrical_damping_ratio(0.05, 400.0, 1000.0)
        assert zeta == pytest.approx(50.0**2 / 2000.0 / (2 * 0.05 * 400.0))

    def test_matched_load_and_power(self):
        c = ElectromagneticCoupling(theta=10.0, coil_resistance=500.0)
        assert c.matched_load() == 500.0
        v = 0.1
        # matched load receives e^2/(8 R_c)
        assert c.delivered_power(v, 500.0) == pytest.approx((10 * v) ** 2 / (8 * 500))

    def test_emf(self):
        c = ElectromagneticCoupling(theta=44.0, coil_resistance=1000.0)
        assert c.emf_amplitude(0.1) == pytest.approx(4.4)

    def test_validation(self):
        with pytest.raises(ModelError):
            ElectromagneticCoupling(theta=0.0, coil_resistance=100.0)
        c = ElectromagneticCoupling(theta=1.0, coil_resistance=100.0)
        with pytest.raises(ModelError):
            c.electrical_damping(0.0)
