"""Report rendering and campaign persistence edge cases."""

import json

import numpy as np
import pytest

from repro.core.campaign import load_outcome, save_outcome
from repro.core.report import design_space_sweep, format_table, series_to_csv
from repro.errors import DesignError
from repro.rsm.basis import PolynomialBasis
from repro.rsm.model import ResponseSurface
from repro.system.config import paper_parameter_space


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        lines = text.splitlines()
        assert len(lines) == 2  # header + rule

    def test_column_width_from_longest_cell(self):
        text = format_table(["x"], [["short"], ["a-much-longer-cell"]])
        header = text.splitlines()[0]
        assert len(header) >= len("a-much-longer-cell")

    def test_numeric_cells_stringified(self):
        text = format_table(["n"], [[42], [3.5]])
        assert "42" in text and "3.5" in text


class TestSweepWithoutSpace:
    def test_sweep_names_fall_back_to_x_symbols(self):
        basis = PolynomialBasis(2, "quadratic")
        model = ResponseSurface(basis, np.zeros(6))
        sweeps = design_space_sweep(model, n_points=5)
        assert set(sweeps) == {"x1", "x2"}
        assert "natural" not in sweeps["x1"]


class TestSeriesCsv:
    def test_single_column(self):
        csv = series_to_csv({"only": np.array([1.0, 2.0, 3.0])})
        assert csv.splitlines() == ["only", "1", "2", "3"]


class TestCampaignEdges:
    def _minimal_outcome(self):
        from repro.core.explorer import ExplorationOutcome
        from repro.doe.design import Design
        from repro.rsm.diagnostics import FitDiagnostics
        from repro.system.config import ORIGINAL_DESIGN

        space = paper_parameter_space()
        pts = np.zeros((10, 3))
        pts[:9] = np.array(
            [
                [-1, -1, -1], [1, -1, -1], [-1, 1, -1], [-1, -1, 1],
                [1, 1, -1], [1, -1, 1], [-1, 1, 1], [1, 1, 1], [0, 0, 0],
            ]
        )
        basis = PolynomialBasis(3, "quadratic")
        model = ResponseSurface(basis, np.arange(10, dtype=float), space=space)
        diag = FitDiagnostics(
            n=10, p=10, r2=1.0, adj_r2=1.0, rmse=0.0, press=0.0,
            press_rmse=0.0, max_leverage=1.0, vif=None,
        )
        return ExplorationOutcome(
            space=space,
            design=Design(pts, space=space, name="mini"),
            responses=np.arange(10, dtype=float),
            model=model,
            fit_diagnostics=diag,
            original_config=ORIGINAL_DESIGN,
            original_transmissions=400.0,
            optima=[],
        )

    def test_roundtrip_without_optima(self, tmp_path):
        outcome = self._minimal_outcome()
        path = tmp_path / "o.json"
        save_outcome(outcome, path)
        loaded = load_outcome(path)
        assert loaded.optima == []
        assert loaded.original_transmissions == 400.0

    def test_load_rejects_bad_design_shape(self, tmp_path):
        outcome = self._minimal_outcome()
        path = tmp_path / "o.json"
        save_outcome(outcome, path)
        raw = json.loads(path.read_text())
        raw["design"]["points"] = [[0.0, 0.0]]  # wrong width
        path.write_text(json.dumps(raw))
        with pytest.raises(DesignError):
            load_outcome(path)

    def test_saved_json_is_human_readable(self, tmp_path):
        outcome = self._minimal_outcome()
        path = tmp_path / "o.json"
        save_outcome(outcome, path)
        raw = json.loads(path.read_text())
        assert set(raw) >= {"design", "responses", "model", "original"}

    def test_saved_json_carries_schema_version(self, tmp_path):
        path = tmp_path / "o.json"
        save_outcome(self._minimal_outcome(), path)
        assert json.loads(path.read_text())["schema"] == 1

    def test_unversioned_file_loads_as_schema_1(self, tmp_path):
        path = tmp_path / "o.json"
        save_outcome(self._minimal_outcome(), path)
        raw = json.loads(path.read_text())
        del raw["schema"]  # pre-versioning file layout
        path.write_text(json.dumps(raw))
        loaded = load_outcome(path)
        assert loaded.original_transmissions == 400.0

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "o.json"
        save_outcome(self._minimal_outcome(), path)
        raw = json.loads(path.read_text())
        raw["schema"] = 99
        path.write_text(json.dumps(raw))
        with pytest.raises(DesignError, match="schema"):
            load_outcome(path)
