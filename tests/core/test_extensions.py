"""Extension modules: multi-objective trade-off, sensitivity, CLI."""

import numpy as np
import pytest

from repro.core.multiobjective import (
    MultiObjectiveSimulation,
    explore_tradeoff,
)
from repro.core.objective import SimulationObjective
from repro.core.sensitivity import morris_screening, robustness_study
from repro.system.config import ORIGINAL_DESIGN


def _fast_objective(seed=0, horizon=1800.0):
    # Long enough that the node reaches the fast band (the trade-off and
    # the x3 sensitivity only exist once transmissions are energy-bound).
    return SimulationObjective(seed=seed, horizon=horizon)


class TestMultiObjective:
    def test_evaluation_returns_both_objectives(self):
        sim = MultiObjectiveSimulation(objective=_fast_objective())
        tx, energy = sim(np.zeros(3))
        assert tx >= 0
        assert energy > 0  # the store never fully empties

    def test_cache(self):
        sim = MultiObjectiveSimulation(objective=_fast_objective())
        sim(np.zeros(3))
        sim(np.zeros(3))
        assert sim.n_simulations == 1

    def test_tradeoff_front_shape(self):
        sim = MultiObjectiveSimulation(objective=_fast_objective(seed=2))
        entries, result = explore_tradeoff(
            seed=2, population_size=12, n_generations=4, simulation=sim
        )
        assert len(entries) >= 2
        # Sorted ascending in transmissions; energy must then descend
        # (mutual non-domination).
        tx = [e.transmissions for e in entries]
        en = [e.final_energy for e in entries]
        assert tx == sorted(tx)
        for a, b in zip(en, en[1:]):
            assert b <= a + 1e-9

    def test_tradeoff_spans_regimes(self):
        sim = MultiObjectiveSimulation(objective=_fast_objective(seed=3))
        entries, _ = explore_tradeoff(
            seed=3, population_size=12, n_generations=4, simulation=sim
        )
        tx = [e.transmissions for e in entries]
        assert max(tx) > min(tx)  # a real trade-off, not a single point


class TestSensitivity:
    def test_morris_ranks_tx_interval_first(self):
        effects = morris_screening(
            objective=_fast_objective(seed=4), n_trajectories=4, seed=4
        )
        by_name = {e.name: e for e in effects}
        assert set(by_name) == {"clock_hz", "watchdog_s", "tx_interval_s"}
        # The transmission interval dominates the response (Fig. 4 shape).
        assert by_name["tx_interval_s"].mu_star == max(
            e.mu_star for e in effects
        )
        assert all(e.mu_star >= 0 and e.sigma >= 0 for e in effects)

    def test_morris_budget(self):
        obj = _fast_objective(seed=5)
        morris_screening(objective=obj, n_trajectories=3, seed=5)
        # (k + 1) points per trajectory, some may collide in cache.
        assert obj.n_simulations <= 3 * 4

    def test_robustness_study_structure(self):
        report = robustness_study(
            ORIGINAL_DESIGN, seed=6, horizon=600.0,
            accel_levels_mg=(45.0, 60.0),
            f_starts=(64.0,),
            v_inits=(2.65,),
        )
        assert len(report.entries) == 4
        assert report.worst <= report.mean
        assert report.spread() >= 0.0

    def test_robustness_more_acceleration_helps(self):
        report = robustness_study(
            ORIGINAL_DESIGN, seed=7, horizon=1800.0,
            accel_levels_mg=(40.0, 90.0),
            f_starts=(), v_inits=(),
        )
        low, high = report.entries
        assert high.transmissions >= low.transmissions


class TestCli:
    def test_simulate_command(self, capsys):
        from repro.cli import main

        code = main(
            [
                "simulate",
                "--clock", "4e6",
                "--watchdog", "320",
                "--interval", "5",
                "--horizon", "600",
                "--seed", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "transmissions" in out

    def test_simulate_trace_file(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "v.csv"
        code = main(
            ["simulate", "--horizon", "300", "--trace", str(trace)]
        )
        assert code == 0
        lines = trace.read_text().strip().splitlines()
        assert lines[0] == "time_s,v_store"
        assert len(lines) > 100

    def test_sweep_command(self, capsys):
        from repro.cli import main

        code = main(["sweep", "--parameter", "watchdog_s", "--points", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "watchdog_s" in out
        assert out.count("\n") >= 5

    def test_explore_and_report_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "outcome.json"
        code = main(
            ["explore", "--runs", "10", "--seed", "2", "--horizon", "600",
             "--save", str(path)]
        )
        assert code == 0
        assert path.exists()
        capsys.readouterr()
        code = main(["report", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table VI" in out

    def test_unknown_command_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["banana"])


class TestGenScenariosCli:
    def test_gen_and_run_manifest(self, tmp_path, capsys):
        from repro.cli import main

        manifest = tmp_path / "m.json"
        code = main(
            ["gen-scenarios", "hvac", "--n", "2", "--seed", "3",
             "--horizon", "120", "--out", str(manifest)]
        )
        assert code == 0
        assert manifest.exists()
        capsys.readouterr()
        code = main(["run-scenario", str(manifest), "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hvac: 2 scenarios" in out
        assert "total transmissions:" in out

    def test_gen_scenarios_list(self, capsys):
        from repro.cli import main

        assert main(["gen-scenarios", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("factory-floor", "vehicle", "hvac", "intermittent",
                     "worst-case-drift"):
            assert name in out

    def test_manifest_seed_override_stays_per_scenario(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.rng import derive_seed
        from repro.system.stochastic import manifest_scenarios, named_family

        manifest = tmp_path / "m.json"
        main(["gen-scenarios", "intermittent", "--n", "3", "--seed", "1",
              "--horizon", "60", "--out", str(manifest)])
        capsys.readouterr()
        assert main(["run-scenario", str(manifest), "--seed", "7"]) == 0
        capsys.readouterr()
        # --seed must re-seed with *distinct* derived seeds per scenario,
        # never one shared stream for every replicate.
        scenarios = manifest_scenarios(json.loads(manifest.read_text()))
        reseeded = [derive_seed(7, i) for i in range(len(scenarios))]
        assert len(set(reseeded)) == len(scenarios)

    def test_gen_scenarios_requires_family(self, capsys):
        from repro.cli import main

        assert main(["gen-scenarios"]) == 2
        assert main(["gen-scenarios", "not-a-family"]) == 1
