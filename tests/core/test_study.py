"""Declarative studies: spec round trips, fail-fast validation, journaled
store-backed execution, and the kill/resume acceptance property.

The centrepiece mirrors the campaign acceptance test one layer up: a
store-backed study killed mid-design resumes with **zero** re-simulation
of stored design points and reproduces a byte-identical
``ExplorationOutcome.summary()`` versus an uninterrupted run.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.backends import EnvelopeBackend, register_backend
from repro.core.explorer import ExplorationOutcome, OptimaEntry
from repro.core.paper import paper_explorer, run_paper_flow
from repro.core.sensitivity import robustness_study
from repro.core.study import (
    Study,
    StudySpec,
    named_study,
    paper_study_spec,
    study_names,
    study_statuses,
)
from repro.errors import ConfigError, DesignError, SimulationError
from repro.optimize.result import OptimizationResult
from repro.store import ResultStore
from repro.system.config import ORIGINAL_DESIGN

#: Short horizon: every stage still runs, simulations stay cheap.
HORIZON = 600.0


class CountingStudyBackend:
    """Envelope backend that logs (and can crash after) N simulations."""

    name = "counting-study"

    simulated = []
    crash_after = None

    def simulate(self, scenario):
        if (
            CountingStudyBackend.crash_after is not None
            and len(CountingStudyBackend.simulated)
            >= CountingStudyBackend.crash_after
        ):
            raise SimulationError("simulated crash (power loss)")
        CountingStudyBackend.simulated.append(scenario.cache_key())
        return EnvelopeBackend().simulate(replace(scenario, backend="envelope"))


register_backend("counting-study", CountingStudyBackend, overwrite=True)


@pytest.fixture(autouse=True)
def _reset_counting_backend():
    CountingStudyBackend.simulated = []
    CountingStudyBackend.crash_after = None
    yield
    CountingStudyBackend.simulated = []
    CountingStudyBackend.crash_after = None


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "study.db")


def _tiny_spec(**overrides):
    base = dict(name="tiny", seed=3, horizon=HORIZON)
    base.update(overrides)
    return replace(paper_study_spec(), **base)


# -- spec value semantics ------------------------------------------------------


class TestStudySpec:
    def test_json_round_trip(self, tmp_path):
        spec = _tiny_spec(
            design="lhs",
            design_options={"criterion": "maximin"},
            optimizers=("nelder-mead", "pattern"),
            optimizer_options={"pattern": {"max_evaluations": 500}},
        )
        path = tmp_path / "spec.json"
        spec.save(path)
        loaded = StudySpec.load(path)
        assert loaded == spec
        assert loaded.cache_key() == spec.cache_key()
        assert loaded.optimizer_options == {"pattern": {"max_evaluations": 500}}

    def test_name_and_jobs_excluded_from_cache_key(self):
        spec = _tiny_spec()
        assert replace(spec, name="other").cache_key() == spec.cache_key()
        assert replace(spec, jobs=4).cache_key() == spec.cache_key()
        assert replace(spec, seed=99).cache_key() != spec.cache_key()

    def test_unknown_schema_rejected(self):
        payload = _tiny_spec().to_dict()
        payload["schema"] = 99
        with pytest.raises(DesignError):
            StudySpec.from_dict(payload)

    def test_malformed_numeric_values_rejected_cleanly(self):
        """Regression: int('ten') must surface as DesignError, not a
        raw ValueError traceback through the CLI."""
        for field, value in (
            ("n_runs", "ten"),
            ("horizon", "long"),
            ("seed", []),
            ("space", "paper"),
            ("parts", "x"),
        ):
            payload = _tiny_spec().to_dict()
            payload[field] = value
            with pytest.raises(DesignError, match="malformed value"):
                StudySpec.from_dict(payload)

    def test_unknown_field_names_rejected(self):
        """Regression: a misspelled field must not silently run defaults."""
        payload = _tiny_spec().to_dict()
        payload["optimiser"] = payload.pop("optimizers")
        with pytest.raises(DesignError, match="optimiser"):
            StudySpec.from_dict(payload)

    def test_named_library(self):
        spec = named_study("paper")
        assert spec.name == "paper"
        assert spec.design == "d-optimal"
        assert spec.optimizers == ("simulated-annealing", "genetic-algorithm")
        with pytest.raises(ConfigError):
            named_study("nope")


class TestSpecValidation:
    """Satellite: typos and bad counts fail at spec-load time."""

    def test_unknown_design_lists_alternatives(self):
        with pytest.raises(ConfigError, match="d-optimal"):
            _tiny_spec(design="d-optimal-typo")

    def test_unknown_surrogate_lists_alternatives(self):
        with pytest.raises(ConfigError, match="quadratic"):
            _tiny_spec(surrogate="kriging")

    def test_unknown_optimizer_lists_alternatives(self):
        with pytest.raises(ConfigError, match="simulated-annealing"):
            _tiny_spec(optimizers=("simulated-annealing", "genetic-algoritm"))

    def test_unknown_metric_lists_alternatives(self):
        with pytest.raises(ConfigError, match="transmissions"):
            _tiny_spec(metric="throughput")

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigError, match="jobs"):
            _tiny_spec(jobs=0)

    def test_validation_happens_on_json_load_too(self):
        payload = _tiny_spec().to_dict()
        payload["optimizers"] = ["genetic-algoritm"]
        with pytest.raises(ConfigError, match="genetic-algorithm"):
            StudySpec.from_dict(payload)
        payload = _tiny_spec().to_dict()
        payload["jobs"] = 0
        with pytest.raises(ConfigError):
            StudySpec.from_dict(payload)

    def test_options_for_unlisted_optimizer_rejected(self):
        with pytest.raises(ConfigError, match="pattern"):
            _tiny_spec(optimizer_options={"pattern": {"tol": 1e-3}})

    def test_multistart_local_method_accepts_registry_name(self, tmp_path):
        """A JSON spec can only name the local method; the wrapper must
        resolve it instead of calling the string."""
        from repro.optimize.problem import Problem
        from repro.optimize.registry import get_optimizer

        problem = Problem(
            lambda x: -float(np.sum(x**2)), [(-1, 1)] * 3, maximize=True
        )
        result = get_optimizer("multistart")(
            problem, seed=1, local_method="pattern", n_starts=2
        )
        assert result.method.startswith("multistart(pattern")
        with pytest.raises(ConfigError, match="nelder-mead"):
            get_optimizer("multistart")(problem, seed=1, local_method="nope")

    def test_needs_an_optimizer(self):
        with pytest.raises(ConfigError):
            _tiny_spec(optimizers=())

    def test_non_scalar_option_rejected(self):
        with pytest.raises(ConfigError):
            _tiny_spec(design_options={"levels": [1, 2, 3]})

    def test_reordered_space_rejected(self):
        """Regression: SystemConfig binds the space positionally, so a
        reordered space must fail at spec time, not corrupt results."""
        from repro.system.config import paper_parameter_space

        space = paper_parameter_space()
        swapped = type(space)(
            [space.parameters[1], space.parameters[0], space.parameters[2]]
        )
        with pytest.raises(ConfigError, match="clock_hz"):
            _tiny_spec(space=swapped)

    def test_json_null_options_are_empty_not_a_crash(self):
        """Regression: hand-written specs with null option blocks load."""
        payload = _tiny_spec().to_dict()
        payload["design_options"] = None
        payload["surrogate_options"] = None
        payload["optimizer_options"] = None
        spec = StudySpec.from_dict(payload)
        assert spec.design_options == {}
        assert spec.optimizer_options == {}

    def test_non_object_options_rejected_cleanly(self):
        payload = _tiny_spec().to_dict()
        payload["design_options"] = "fedorov"
        with pytest.raises(ConfigError, match="JSON object"):
            StudySpec.from_dict(payload)
        payload = _tiny_spec().to_dict()
        payload["optimizers"] = None
        with pytest.raises(ConfigError, match="optimizers"):
            StudySpec.from_dict(payload)
        payload = _tiny_spec().to_dict()
        payload["optimizers"] = "simulated-annealing"
        with pytest.raises(ConfigError, match="optimizers"):
            StudySpec.from_dict(payload)


# -- execution -----------------------------------------------------------------


class TestStudyExecution:
    def test_paper_study_matches_run_paper_flow(self, store):
        """`study run` on the "paper" spec == the legacy imperative flow."""
        outcome = Study(paper_study_spec(seed=3, horizon=HORIZON), store=store).run()
        legacy = paper_explorer(seed=3, horizon=HORIZON).run(n_runs=10, seed=3)
        assert outcome.summary() == legacy.summary()
        assert np.array_equal(outcome.design.points, legacy.design.points)
        assert np.array_equal(outcome.responses, legacy.responses)
        assert np.array_equal(
            outcome.model.coefficients, legacy.model.coefficients
        )

    def test_run_paper_flow_journals_when_stored(self, store):
        # A non-canonical variant (short horizon) journals under a
        # key-qualified name, leaving the bare "paper" name free for
        # the canonical spec.
        run_paper_flow(seed=3, horizon=HORIZON, store=store)
        names = study_names(store)
        assert len(names) == 1 and names[0].startswith("paper@")
        status = Study.load(store, names[0]).status()
        assert status.complete
        assert status.total == 11  # 10 design points + the original design

    def test_custom_stages_execute(self, store):
        spec = _tiny_spec(
            design="ccd",
            surrogate="quadratic",
            optimizers=("nelder-mead", "grid"),
        )
        outcome = Study(spec, store=store).run()
        assert outcome.design.name.startswith("ccd")
        assert [e.method for e in outcome.optima] == ["nelder-mead", "grid"]

    def test_rerun_costs_no_simulation(self, store):
        spec = _tiny_spec(backend="counting-study")
        Study(spec, store=store).run()
        simulated_first = list(CountingStudyBackend.simulated)
        CountingStudyBackend.simulated = []
        again = Study(spec, store=store).run()
        assert CountingStudyBackend.simulated == []
        assert again.n_simulations >= len(simulated_first)  # counted, not run

    def test_journal_rejects_same_name_different_spec(self, store):
        Study(_tiny_spec(), store=store).run()
        other = _tiny_spec(seed=4)
        with pytest.raises(ConfigError, match="different spec"):
            Study(other, store=store).run()
        # status() must not masquerade as the other study's progress.
        with pytest.raises(ConfigError, match="different spec"):
            Study(other, store=store).status()

    def test_suffix_mode_keeps_cache_style_reuse_working(self, store):
        """Regression: run_paper_flow twice against one store with
        different settings must not ConfigError -- each variant journals
        under its own key-qualified name."""
        run_paper_flow(seed=3, horizon=HORIZON, store=store)
        run_paper_flow(seed=4, horizon=HORIZON, store=store)  # must not raise
        names = study_names(store)
        assert len(names) == 2 and all(n.startswith("paper@") for n in names)
        # Same spec again reuses its journal instead of suffixing anew.
        run_paper_flow(seed=4, horizon=HORIZON, store=store)
        assert study_names(store) == names
        # Qualified studies load, resume and list like any other.
        assert Study.load(store, names[0]).status().complete
        Study.resume(store, names[0])
        assert [s.name for s in study_statuses(store)] == names
        # The canonical name stays free for an explicit `study run paper`
        # (only the full-horizon canonical spec may claim it).
        assert "paper" not in names

    def test_journal_total_matches_status_total(self, store):
        # ccd with centre replicates dedupes repeated points; the
        # journaled total must agree with what status() reports.
        spec = _tiny_spec(design="ccd", design_options={"n_center": 3})
        study = Study(spec, store=store)
        study.run()
        journaled = store.get_study(study.name).total
        assert journaled == study.status().total
        assert journaled < 17 + 1  # 15 distinct ccd points + original

    def test_resume_unknown_name(self, store):
        with pytest.raises(ConfigError, match="unknown study"):
            Study.resume(store, "missing")

    def test_status_without_store(self):
        study = Study(_tiny_spec())
        status = study.status()
        assert status.done == 0
        assert status.total == 11

    def test_status_is_read_only(self, store):
        """Regression: peeking at progress must not journal anything."""
        Study(_tiny_spec(), store=store).status()
        assert study_names(store) == []
        # ...so a later run with a *different* spec under the same name
        # is not blocked by a phantom journal row.
        Study(_tiny_spec(seed=4), store=store).run()
        assert study_names(store) == ["tiny"]

    def test_non_default_metric_labels_outputs(self, store):
        from repro.core.report import render_table_vi

        spec = _tiny_spec(metric="final-voltage")
        outcome = Study(spec, store=store).run()
        assert outcome.metric == "final-voltage"
        text = outcome.summary()
        assert "final-voltage" in text
        assert " transmissions" not in text
        # Voltages keep their resolution instead of rounding to ints.
        assert outcome.original_transmissions == pytest.approx(
            float(outcome.format_value(outcome.original_transmissions)), rel=1e-3
        )
        assert "final-voltage" in render_table_vi(outcome)

    def test_metric_survives_outcome_save_load(self, store, tmp_path):
        from repro.core.campaign import load_outcome, save_outcome

        outcome = Study(_tiny_spec(metric="final-voltage"), store=store).run()
        path = tmp_path / "outcome.json"
        save_outcome(outcome, path)
        assert load_outcome(path).metric == "final-voltage"


class TestKillResumeAcceptance:
    """The issue's acceptance property, end to end."""

    def test_kill_mid_design_resume_zero_resimulation(self, store, tmp_path):
        spec = _tiny_spec(backend="counting-study")

        # Reference: the same spec, uninterrupted, in a separate store.
        reference_store = ResultStore(tmp_path / "reference.db")
        reference = Study(spec, store=reference_store).run()
        CountingStudyBackend.simulated = []

        # Kill the real run after 4 simulations (chunk_size=1 makes
        # every completed design point durable).
        CountingStudyBackend.crash_after = 4
        study = Study(spec, store=store, chunk_size=1)
        with pytest.raises(SimulationError):
            study.run()
        stored_before = set(store.keys())
        assert len(stored_before) == 4
        assert not Study.load(store, spec.name).status().complete

        # Resume: only missing points simulate, nothing stored re-runs.
        CountingStudyBackend.crash_after = None
        CountingStudyBackend.simulated = []
        outcome = Study.resume(store, spec.name)
        resumed = set(CountingStudyBackend.simulated)
        assert resumed & stored_before == set()
        assert len(CountingStudyBackend.simulated) == len(resumed)  # no dupes
        assert Study.load(store, spec.name).status().complete

        # Bit-identical outcome versus the uninterrupted run.
        assert outcome.summary() == reference.summary()
        assert np.array_equal(outcome.responses, reference.responses)
        assert np.array_equal(
            outcome.model.coefficients, reference.model.coefficients
        )
        assert [
            (e.method, e.rsm_value, e.simulated_value) for e in outcome.optima
        ] == [
            (e.method, e.rsm_value, e.simulated_value) for e in reference.optima
        ]

    def test_statuses_listing(self, store):
        Study(_tiny_spec(), store=store).run()
        statuses = study_statuses(store)
        assert len(statuses) == 1
        assert statuses[0].complete
        assert "tiny" in statuses[0].summary()

    def test_status_listing_survives_unregistered_stages(self, store):
        """Regression: a journaled study whose spec names a plugin stage
        must not make `study status` crash for the whole store."""
        from repro.core.study import study_status
        from repro.doe import registry as doe_registry
        from repro.doe.registry import get_design, register_design

        Study(_tiny_spec(), store=store).run()
        register_design(
            "plugin-lhs",
            lambda space, n, seed, **o: get_design("lhs")(space, n, seed, **o),
            overwrite=True,
        )
        try:
            Study(
                _tiny_spec(name="plugged", design="plugin-lhs"), store=store
            ).run()
        finally:
            doe_registry._REGISTRY.pop("plugin-lhs", None)
        # The plugin is now gone (a fresh process): listing and per-name
        # status still work from the journal alone...
        statuses = study_statuses(store)
        assert [s.name for s in statuses] == ["plugged", "tiny"]
        assert all(s.complete for s in statuses)
        assert study_status(store, "plugged").complete
        # ...while *executing* it fails with the registry's clear error.
        with pytest.raises(ConfigError, match="unknown design"):
            Study.resume(store, "plugged")


# -- satellites ----------------------------------------------------------------


class TestSummaryZeroOriginal:
    """Satellite regression: no more 'infx' improvement factor."""

    def _outcome(self, original_transmissions):
        base = paper_explorer(seed=3, horizon=HORIZON)
        design = base.build_design(n_runs=10, seed=3)
        model = base.fit_model(design, np.zeros(design.n_runs))
        from repro.rsm.diagnostics import diagnostics

        diag = diagnostics(
            model.basis.expand(design.points), np.zeros(design.n_runs), model.fit
        )
        entry = OptimaEntry(
            method="simulated-annealing",
            coded=np.zeros(3),
            config=ORIGINAL_DESIGN,
            rsm_value=12.0,
            simulated_value=34.0,
            optimizer_result=OptimizationResult(
                x=np.zeros(3), value=12.0, n_evaluations=1, method="sa"
            ),
        )
        return ExplorationOutcome(
            space=base.space,
            design=design,
            responses=np.zeros(design.n_runs),
            model=model,
            fit_diagnostics=diag,
            original_config=ORIGINAL_DESIGN,
            original_transmissions=original_transmissions,
            optima=[entry],
        )

    def test_zero_original_renders_na(self):
        outcome = self._outcome(0.0)
        assert outcome.improvement_factor() == float("inf")
        text = outcome.summary()
        assert "n/a (original design produced 0 transmissions)" in text
        assert "infx" not in text

    def test_positive_original_still_renders_factor(self):
        text = self._outcome(17.0).summary()
        assert "improvement factor: 2.00x" in text


class TestRobustnessRewire:
    def test_accepts_exploration_outcome(self, store):
        outcome = Study(_tiny_spec(), store=store).run()
        report = robustness_study(
            outcome, seed=1, horizon=60.0, store=store
        )
        assert report.config == outcome.best().config
        assert len(report.entries) == 9
