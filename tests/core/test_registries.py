"""Stage-registry conformance: every named design, surrogate and
optimizer is seed-deterministic -- same inputs + seed, identical design
matrix / fit / optimum -- which is the property store-backed study
resumption stands on.  Also covers the shared registry contract
(unknown-name errors list alternatives, no silent overwrites).
"""

import numpy as np
import pytest

from repro.doe.registry import design_names, get_design, register_design
from repro.errors import ConfigError
from repro.optimize.problem import Problem
from repro.optimize.registry import (
    get_optimizer,
    optimizer_names,
    register_optimizer,
)
from repro.rsm.registry import get_surrogate, register_surrogate, surrogate_names
from repro.system.config import paper_parameter_space

SPACE = paper_parameter_space()


def _fit_data(n=30, seed=9):
    """Enough points for every polynomial basis (cubic has 19 terms)."""
    rng = np.random.default_rng(seed)
    points = rng.uniform(-1.0, 1.0, size=(n, SPACE.k))
    responses = rng.normal(size=n)
    return points, responses


def _problem():
    return Problem(
        objective=lambda x: -float(np.sum((x - 0.3) ** 2)),
        bounds=SPACE.bounds_coded(),
        maximize=True,
    )


@pytest.mark.parametrize("name", design_names())
def test_design_generators_are_seed_deterministic(name):
    a = get_design(name)(SPACE, 10, 42)
    b = get_design(name)(SPACE, 10, 42)
    assert a.name == b.name
    assert np.array_equal(a.points, b.points)
    assert a.space is SPACE
    assert np.all(np.abs(a.points) <= 1.0 + 1e-9)


@pytest.mark.parametrize("name", surrogate_names())
def test_surrogate_fitters_are_deterministic(name):
    points, responses = _fit_data()
    a = get_surrogate(name)(points, responses, space=SPACE)
    b = get_surrogate(name)(points, responses, space=SPACE)
    assert np.array_equal(a.coefficients, b.coefficients)
    x = np.array([0.2, -0.4, 0.6])
    assert a.predict_coded(x) == b.predict_coded(x)


@pytest.mark.parametrize("name", optimizer_names())
def test_optimizers_are_seed_deterministic(name):
    a = get_optimizer(name)(_problem(), seed=42)
    b = get_optimizer(name)(_problem(), seed=42)
    assert np.array_equal(a.x, b.x)
    assert a.value == b.value
    assert a.n_evaluations == b.n_evaluations
    # Sanity: every method lands near the true optimum of this easy bowl.
    assert a.value > -0.3


@pytest.mark.parametrize(
    ("getter", "known"),
    [
        (get_design, "d-optimal"),
        (get_surrogate, "quadratic"),
        (get_optimizer, "simulated-annealing"),
    ],
)
def test_unknown_name_lists_alternatives(getter, known):
    with pytest.raises(ConfigError, match=known):
        getter("definitely-not-registered")


@pytest.mark.parametrize(
    ("register", "taken"),
    [
        (register_design, "d-optimal"),
        (register_surrogate, "quadratic"),
        (register_optimizer, "simulated-annealing"),
    ],
)
def test_no_silent_overwrite(register, taken):
    with pytest.raises(ConfigError, match="already registered"):
        register(taken, lambda *a, **k: None)


def test_custom_registration_and_overwrite():
    def custom(space, n_runs, seed, **options):
        from repro.doe.registry import get_design as gd

        return gd("lhs")(space, n_runs, seed, **options)

    register_design("custom-lhs", custom, overwrite=True)
    try:
        assert "custom-lhs" in design_names()
        d = get_design("custom-lhs")(SPACE, 8, 1)
        assert d.n_runs == 8
        register_design("custom-lhs", custom, overwrite=True)  # allowed
    finally:
        from repro.doe import registry

        registry._REGISTRY.pop("custom-lhs", None)
