"""Monte Carlo environment-uncertainty analysis."""

import numpy as np
import pytest

from repro.core.montecarlo import (
    EnvironmentFamily,
    EnvironmentModel,
    MonteCarloResult,
    monte_carlo,
)
from repro.errors import ConfigError
from repro.system.config import ORIGINAL_DESIGN, SystemConfig


def test_environment_sampling_within_ranges():
    env = EnvironmentModel()
    rng = np.random.default_rng(0)
    for _ in range(20):
        profile, v_init = env.sample(rng)
        assert 2.60 <= v_init <= 2.75
        f0 = profile.frequency(0.0)
        assert 62.0 <= f0 <= 72.0
        # the two later segments stay inside the tunable band
        for t in (2000.0, 3500.0):
            assert 55.0 <= profile.frequency(t) <= 85.0


def test_monte_carlo_distribution_statistics():
    result = monte_carlo(ORIGINAL_DESIGN, n_samples=6, horizon=1200.0, seed=1)
    assert result.n_samples == 6
    assert result.quantile(0.1) <= result.quantile(0.5) <= result.quantile(0.9)
    assert result.std >= 0.0
    assert "tx" in result.summary()


def test_monte_carlo_reproducible():
    a = monte_carlo(ORIGINAL_DESIGN, n_samples=4, horizon=900.0, seed=3)
    b = monte_carlo(ORIGINAL_DESIGN, n_samples=4, horizon=900.0, seed=3)
    assert np.allclose(a.transmissions, b.transmissions)


def test_monte_carlo_spreads_across_environments():
    result = monte_carlo(ORIGINAL_DESIGN, n_samples=8, horizon=1800.0, seed=2)
    # Different environments must actually change the outcome.
    assert result.std > 0.0


def test_validation():
    with pytest.raises(ConfigError):
        monte_carlo(ORIGINAL_DESIGN, n_samples=0)


class TestEnvironmentFamily:
    def test_expansion_is_bit_identical(self):
        fam = EnvironmentFamily(config=ORIGINAL_DESIGN, horizon=900.0)
        a = fam.expand(n=3, seed=4)
        b = fam.expand(n=3, seed=4)
        assert [s.to_json() for s in a] == [s.to_json() for s in b]

    def test_growing_n_extends_the_prefix(self):
        # Serial sampling: sample i only depends on samples before it.
        fam = EnvironmentFamily(config=ORIGINAL_DESIGN)
        assert fam.expand(n=5, seed=2)[:3] == fam.expand(n=3, seed=2)

    def test_scenarios_carry_derived_seeds(self):
        fam = EnvironmentFamily(config=ORIGINAL_DESIGN)
        seeds = [s.seed for s in fam.expand(n=4, seed=0)]
        assert None not in seeds
        assert len(set(seeds)) == 4

    def test_seed_derivation_is_pinned(self):
        # The documented (seed, index, stream) derivation, unified with
        # StochasticFamily: an integer family seed is the derivation
        # base directly, sample i runs its measurement noise on
        # derive_seed(seed, i, 1).  Pinned digests turn any future
        # derivation drift (which would invalidate every stored mc-*
        # result row) into a loud diff.
        from repro.rng import derive_seed

        fam = EnvironmentFamily(config=ORIGINAL_DESIGN)
        scens = fam.expand(n=3, seed=42)
        assert [s.seed for s in scens] == [
            derive_seed(42, i, 1) for i in range(3)
        ]
        assert [s.cache_key() for s in scens] == [
            "2f729604bbea44f64de58f3d8a0d3bce48288174eba6183f78dee5827fb4caaa",
            "93aa498237cf08788ad894edb1569e1b7985390a29385018bdfe3d758f8c1d84",
            "03627c6bff78c7523640f2374a101feec15151f65eb88d1881385aa39f551302",
        ]

    def test_generator_seed_collapses_once(self):
        # A live generator is accepted (SeedLike) and collapsed to one
        # integer base, so expansion stays deterministic given the
        # generator state.
        a = EnvironmentFamily(config=ORIGINAL_DESIGN).expand(
            n=2, seed=np.random.default_rng(7)
        )
        b = EnvironmentFamily(config=ORIGINAL_DESIGN).expand(
            n=2, seed=np.random.default_rng(7)
        )
        assert [s.to_json() for s in a] == [s.to_json() for s in b]


def test_monte_carlo_accepts_stochastic_family():
    from dataclasses import replace

    from repro.system.stochastic import named_family

    fam = replace(named_family("hvac"), horizon=300.0)
    result = monte_carlo(ORIGINAL_DESIGN, n_samples=3, seed=5, family=fam)
    assert result.n_samples == 3
    again = monte_carlo(ORIGINAL_DESIGN, n_samples=3, seed=5, family=fam)
    assert np.allclose(result.transmissions, again.transmissions)
    assert np.allclose(result.final_voltages, again.final_voltages)


def test_monte_carlo_rebinds_config_onto_family():
    # The study must evaluate the *caller's* configuration under the
    # family's environment, not the family's default config.
    from dataclasses import replace

    from repro.system.stochastic import named_family

    fam = replace(named_family("hvac"), horizon=300.0)
    tuned = SystemConfig(clock_hz=1e6, watchdog_s=120.0, tx_interval_s=1.0)
    rebound = monte_carlo(tuned, n_samples=2, seed=1, family=fam)
    default = monte_carlo(ORIGINAL_DESIGN, n_samples=2, seed=1, family=fam)
    assert rebound.config == tuned
    # Different firmware points under the same environment must not
    # produce identical outcomes across the board.
    assert not (
        np.allclose(rebound.transmissions, default.transmissions)
        and np.allclose(rebound.final_voltages, default.final_voltages)
    )
    # The family's own horizon survives when no horizon is passed...
    assert fam.horizon == 300.0
    # ...and an explicit horizon/backend override lands on the family.
    short = monte_carlo(tuned, n_samples=1, seed=1, family=fam, horizon=120.0)
    assert short.n_samples == 1
