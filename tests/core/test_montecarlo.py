"""Monte Carlo environment-uncertainty analysis."""

import numpy as np
import pytest

from repro.core.montecarlo import EnvironmentModel, MonteCarloResult, monte_carlo
from repro.errors import ConfigError
from repro.system.config import ORIGINAL_DESIGN, SystemConfig


def test_environment_sampling_within_ranges():
    env = EnvironmentModel()
    rng = np.random.default_rng(0)
    for _ in range(20):
        profile, v_init = env.sample(rng)
        assert 2.60 <= v_init <= 2.75
        f0 = profile.frequency(0.0)
        assert 62.0 <= f0 <= 72.0
        # the two later segments stay inside the tunable band
        for t in (2000.0, 3500.0):
            assert 55.0 <= profile.frequency(t) <= 85.0


def test_monte_carlo_distribution_statistics():
    result = monte_carlo(ORIGINAL_DESIGN, n_samples=6, horizon=1200.0, seed=1)
    assert result.n_samples == 6
    assert result.quantile(0.1) <= result.quantile(0.5) <= result.quantile(0.9)
    assert result.std >= 0.0
    assert "tx" in result.summary()


def test_monte_carlo_reproducible():
    a = monte_carlo(ORIGINAL_DESIGN, n_samples=4, horizon=900.0, seed=3)
    b = monte_carlo(ORIGINAL_DESIGN, n_samples=4, horizon=900.0, seed=3)
    assert np.allclose(a.transmissions, b.transmissions)


def test_monte_carlo_spreads_across_environments():
    result = monte_carlo(ORIGINAL_DESIGN, n_samples=8, horizon=1800.0, seed=2)
    # Different environments must actually change the outcome.
    assert result.std > 0.0


def test_validation():
    with pytest.raises(ConfigError):
        monte_carlo(ORIGINAL_DESIGN, n_samples=0)
