"""The DSE workflow: objective caching, explorer stages, reports, campaign."""

import numpy as np
import pytest

from repro.core.campaign import load_outcome, save_outcome
from repro.core.explorer import DesignSpaceExplorer
from repro.core.objective import SimulationObjective
from repro.core.paper import paper_explorer, paper_objective, run_paper_flow
from repro.core.report import (
    design_space_sweep,
    format_table,
    render_table_vi,
    series_to_csv,
    table_vi_rows,
)
from repro.system.config import ORIGINAL_DESIGN, paper_parameter_space


@pytest.fixture(scope="module")
def outcome():
    # Short horizon keeps the module fast while exercising every stage.
    return run_paper_flow(seed=7, n_runs=10, horizon=1200.0)


class TestObjective:
    def test_coded_to_config(self):
        obj = paper_objective(seed=0)
        cfg = obj.config_from_coded(np.array([0.0, 0.0, 0.0]))
        assert cfg.clock_hz == pytest.approx((125e3 + 8e6) / 2)
        assert cfg.watchdog_s == pytest.approx(330.0)

    def test_caching(self):
        obj = paper_objective(seed=0, horizon=300.0)
        v1 = obj(np.array([0.0, 0.0, 0.0]))
        n = obj.n_simulations
        v2 = obj(np.array([0.0, 0.0, 0.0]))
        assert v1 == v2
        assert obj.n_simulations == n
        assert obj.cache_size() == 1

    def test_common_random_numbers(self):
        # Two objectives with the same seed agree exactly.
        a = paper_objective(seed=5, horizon=300.0)
        b = paper_objective(seed=5, horizon=300.0)
        x = np.array([0.2, -0.3, 0.1])
        assert a(x) == b(x)

    def test_evaluate_design_matrix(self):
        obj = paper_objective(seed=0, horizon=300.0)
        pts = np.array([[0, 0, 0], [0, 0, -1.0]])
        vals = obj.evaluate_design(pts)
        assert vals.shape == (2,)


class TestExplorerStages:
    def test_design_stage(self):
        explorer = paper_explorer(seed=1, horizon=300.0)
        design = explorer.build_design(n_runs=10, seed=1)
        assert design.n_runs == 10
        assert design.supports_model("quadratic")

    def test_full_outcome_structure(self, outcome):
        assert outcome.design.n_runs == 10
        assert len(outcome.responses) == 10
        assert outcome.model.basis.kind == "quadratic"
        assert len(outcome.optima) == 2
        methods = {e.method for e in outcome.optima}
        assert methods == {"simulated-annealing", "genetic-algorithm"}

    def test_optima_beat_original(self, outcome):
        # The paper's headline: optimised configs greatly improve on the
        # original. With a shorter horizon the factor compresses; require
        # a clear improvement.
        assert outcome.improvement_factor() > 1.3

    def test_optimizers_agree(self, outcome):
        values = [e.simulated_value for e in outcome.optima]
        assert max(values) <= 1.5 * min(values)

    def test_rsm_prediction_close_to_simulation_at_optimum(self, outcome):
        best = outcome.best()
        # Quadratic surrogate of a thresholded response: generous band.
        assert best.rsm_value == pytest.approx(best.simulated_value, rel=0.6)

    def test_summary_text(self, outcome):
        text = outcome.summary()
        assert "original" in text
        assert "improvement factor" in text


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["33", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5

    def test_table_vi_rows(self, outcome):
        rows = table_vi_rows(outcome)
        assert rows[0][0] == "clock (Hz)"
        assert len(rows) == 4
        assert len(rows[0]) == 2 + len(outcome.optima)
        text = render_table_vi(outcome)
        assert "Table VI" in text

    def test_design_space_sweep_shapes(self, outcome):
        sweeps = design_space_sweep(outcome.model, n_points=11)
        assert set(sweeps) == {"clock_hz", "watchdog_s", "tx_interval_s"}
        for entry in sweeps.values():
            assert len(entry["coded"]) == 11
            assert len(entry["rsm"]) == 11
            assert "natural" in entry

    def test_series_to_csv(self):
        csv = series_to_csv({"t": np.array([0.0, 1.0]), "v": np.array([2.0, 3.0])})
        assert csv.splitlines()[0] == "t,v"
        assert csv.splitlines()[2] == "1,3"


class TestCampaign:
    def test_save_load_roundtrip(self, outcome, tmp_path):
        path = tmp_path / "outcome.json"
        save_outcome(outcome, path)
        loaded = load_outcome(path)
        assert loaded.design.n_runs == outcome.design.n_runs
        assert np.allclose(loaded.responses, outcome.responses)
        assert np.allclose(
            loaded.model.coefficients, outcome.model.coefficients
        )
        assert loaded.original_transmissions == outcome.original_transmissions
        assert [e.method for e in loaded.optima] == [
            e.method for e in outcome.optima
        ]
        # The reloaded model predicts identically.
        x = np.array([0.1, -0.5, 0.7])
        assert loaded.model.predict_coded(x) == pytest.approx(
            outcome.model.predict_coded(x)
        )
