"""BatchRunner: determinism across worker counts, seeding, LRU cache."""

import pytest

from repro.core.batch import BatchRunner
from repro.errors import ConfigError
from repro.scenario import PartsSpec, Scenario
from repro.system.config import SystemConfig


def _scenarios(n=6, horizon=120.0):
    """Short envelope runs that actually transmit (start above 2.8 V)."""
    return [
        Scenario(
            config=SystemConfig(
                clock_hz=1e6, watchdog_s=300.0, tx_interval_s=0.5 + 0.5 * i
            ),
            parts=PartsSpec(v_init=2.85),
            horizon=horizon,
            seed=None,
            name=f"case-{i}",
        )
        for i in range(n)
    ]


def test_serial_matches_four_workers():
    """The acceptance property: jobs=4 reproduces the serial run exactly."""
    serial = BatchRunner(jobs=1, seed=9).run(_scenarios())
    parallel = BatchRunner(jobs=4, seed=9).run(_scenarios())
    assert [r.transmissions for r in serial] == [r.transmissions for r in parallel]
    assert [r.final_voltage for r in serial] == [r.final_voltage for r in parallel]


def test_thread_executor_matches_process_executor():
    serial = BatchRunner(jobs=1, seed=9).run(_scenarios(4))
    threaded = BatchRunner(jobs=4, seed=9, executor="thread").run(_scenarios(4))
    assert [r.transmissions for r in serial] == [r.transmissions for r in threaded]


def test_seed_resolution_is_deterministic_and_positional():
    runner = BatchRunner(seed=5)
    resolved = runner.resolve_seeds(_scenarios(3))
    again = runner.resolve_seeds(_scenarios(3))
    assert [s.seed for s in resolved] == [s.seed for s in again]
    assert all(s.seed is not None for s in resolved)
    assert len({s.seed for s in resolved}) == 3
    # A different base seed derives different streams.
    other = BatchRunner(seed=6).resolve_seeds(_scenarios(3))
    assert [s.seed for s in other] != [s.seed for s in resolved]


def test_explicit_seeds_left_untouched():
    scenario = Scenario(horizon=60.0, seed=123)
    (resolved,) = BatchRunner(seed=5).resolve_seeds([scenario])
    assert resolved.seed == 123


def test_cache_serves_repeats_without_resimulating():
    runner = BatchRunner(jobs=1, seed=2)
    first = runner.run(_scenarios(3, horizon=60.0))
    assert runner.misses == 3 and runner.hits == 0
    second = runner.run(_scenarios(3, horizon=60.0))
    assert runner.misses == 3 and runner.hits == 3
    assert [r.transmissions for r in first] == [r.transmissions for r in second]
    runner.clear_cache()
    assert runner.cache_len() == 0


def test_duplicates_within_one_batch_simulated_once():
    runner = BatchRunner(jobs=1)
    scenario = Scenario(horizon=60.0, seed=1)
    results = runner.run([scenario, scenario, scenario])
    assert runner.misses == 1
    assert results[0] is results[1] is results[2]


def test_lru_eviction():
    runner = BatchRunner(jobs=1, cache_size=2)
    runner.run(_scenarios(3, horizon=60.0))
    assert runner.cache_len() == 2


def test_cache_disabled():
    runner = BatchRunner(jobs=1, cache_size=0)
    scenario = Scenario(horizon=60.0, seed=1)
    runner.run([scenario])
    runner.run([scenario])
    assert runner.cache_len() == 0
    assert runner.misses == 2


def test_run_one():
    result = BatchRunner(jobs=1).run_one(Scenario(horizon=60.0, seed=1))
    assert result.horizon == pytest.approx(60.0, abs=5.0)


def test_validation():
    with pytest.raises(ConfigError):
        BatchRunner(jobs=0)
    with pytest.raises(ConfigError):
        BatchRunner(cache_size=-1)
    with pytest.raises(ConfigError):
        BatchRunner(executor="fibers")


def test_objective_parallel_design_matches_serial():
    """SimulationObjective.evaluate_design via jobs=2 equals jobs=1."""
    import numpy as np

    from repro.core.paper import paper_objective

    pts = np.array(
        [[0.0, 0.0, 0.0], [1.0, -1.0, 1.0], [-1.0, 1.0, -1.0], [0.5, 0.5, -0.5]]
    )
    serial = paper_objective(seed=4, horizon=120.0).evaluate_design(pts)
    parallel = paper_objective(seed=4, horizon=120.0, jobs=2).evaluate_design(pts)
    assert np.array_equal(serial, parallel)


def test_monte_carlo_parallel_matches_serial():
    import numpy as np

    from repro.core.montecarlo import monte_carlo
    from repro.system.config import ORIGINAL_DESIGN

    serial = monte_carlo(ORIGINAL_DESIGN, n_samples=4, horizon=300.0, seed=3)
    parallel = monte_carlo(ORIGINAL_DESIGN, n_samples=4, horizon=300.0, seed=3, jobs=4)
    assert np.array_equal(serial.transmissions, parallel.transmissions)
    assert np.array_equal(serial.final_voltages, parallel.final_voltages)


# -- batch-capable backend dispatch and the backend override ------------------


needs_numpy = pytest.mark.skipif(
    not __import__(
        "repro.system.vectorized", fromlist=["numpy_available"]
    ).numpy_available(),
    reason="vectorized backend needs NumPy",
)


def test_backend_override_validates_eagerly():
    with pytest.raises(ConfigError, match="unknown backend 'bogus'"):
        BatchRunner(backend="bogus")


@needs_numpy
def test_backend_override_rewrites_scenarios_and_keys():
    """The override is applied before seeding/caching, so the cache keys
    (and hence store rows) name the backend that actually ran."""
    runner = BatchRunner(jobs=1, seed=9, backend="vectorized")
    resolved = runner.resolve_seeds(_scenarios(n=2))
    assert all(s.backend == "vectorized" for s in resolved)
    plain = BatchRunner(jobs=1, seed=9).resolve_seeds(_scenarios(n=2))
    assert [s.cache_key() for s in resolved] != [s.cache_key() for s in plain]


@needs_numpy
def test_vectorized_runner_matches_envelope_runner():
    envelope = BatchRunner(jobs=1, seed=9).run(_scenarios())
    vectorized = BatchRunner(jobs=1, seed=9, backend="vectorized").run(
        _scenarios()
    )
    assert [r.transmissions for r in envelope] == [
        r.transmissions for r in vectorized
    ]
    assert [r.final_voltage for r in envelope] == [
        r.final_voltage for r in vectorized
    ]


@needs_numpy
def test_vectorized_batch_composes_with_jobs(monkeypatch):
    """With a batch-capable backend the runner hands the pending work
    over in one ``run_batch`` call at ``jobs=1``, and in one call *per
    worker* (contiguous shards) at ``jobs=N`` -- never per-scenario
    fan-out, and byte-identical results either way."""
    import json

    from repro import backends

    calls = []
    original = backends.VectorizedBackend.run_batch

    def spy(self, scenarios):
        calls.append(len(scenarios))
        return original(self, scenarios)

    monkeypatch.setattr(backends.VectorizedBackend, "run_batch", spy)
    serial = BatchRunner(jobs=1, seed=9, backend="vectorized")
    results = serial.run(_scenarios(n=5))
    assert len(results) == 5
    assert calls == [5]  # one call, whole batch

    calls.clear()
    # Threads keep the spy's call log in-process; the shard layout is
    # identical under the process executor.
    sharded = BatchRunner(jobs=4, seed=9, backend="vectorized", executor="thread")
    fanned = sharded.run(_scenarios(n=5))
    assert sorted(calls) == [1, 1, 1, 2]  # four workers, contiguous shards
    assert [json.dumps(r.to_payload(), sort_keys=True) for r in results] == [
        json.dumps(r.to_payload(), sort_keys=True) for r in fanned
    ]


@needs_numpy
def test_vectorized_runner_cache_and_store_tiers(tmp_path):
    """Memory LRU -> store -> simulate tiers and the store_hits counter
    keep their semantics under batch dispatch."""
    from repro.store import ResultStore

    store = ResultStore(tmp_path / "results.db")
    first = BatchRunner(jobs=1, seed=9, backend="vectorized", store=store)
    results = first.run(_scenarios(n=4))
    assert first.misses == 4 and first.store_hits == 0
    assert len(store) == 4

    # Same runner, same batch: memory tier serves everything.
    again = first.run(_scenarios(n=4))
    assert first.misses == 4 and first.hits == 4
    # Fresh runner, same store: disk tier serves everything.
    warm = BatchRunner(jobs=1, seed=9, backend="vectorized", store=store)
    warmed = warm.run(_scenarios(n=4))
    assert warm.misses == 0 and warm.store_hits == 4
    assert [r.transmissions for r in results] == [
        r.transmissions for r in again
    ] == [r.transmissions for r in warmed]


@needs_numpy
def test_mixed_backend_batch_dispatch():
    """A batch mixing plain and batch-capable backends comes back in
    submission order with per-backend execution."""
    from dataclasses import replace

    base = _scenarios(n=4)
    mixed = [
        base[0],
        replace(base[1], backend="vectorized"),
        base[2],
        replace(base[3], backend="vectorized"),
    ]
    resolved = BatchRunner(jobs=1, seed=9).resolve_seeds(mixed)
    results = BatchRunner(jobs=1, seed=9).run(mixed)
    singles = [BatchRunner(jobs=1, seed=9).run_one(s) for s in resolved]
    assert [r.transmissions for r in results] == [
        r.transmissions for r in singles
    ]
