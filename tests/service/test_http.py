"""The HTTP surface: full job loop, byte-identity, and the error contract.

These tests speak real HTTP (``urllib`` against a ``ThreadingHTTPServer``
bound to port 0), because the contract under test is wire-level: the
``/results`` page must reproduce the store's canonical bytes exactly,
bad submissions must come back as 400s carrying the library's own
error messages, rate-limited callers must see 429 + ``Retry-After``.
"""

import json
import urllib.error
import urllib.request
from dataclasses import replace

import pytest

from repro.service import JobQueue, ServiceApp, ServiceServer, WorkerPool
from repro.service.http import MAX_BODY_BYTES
from repro.store import Campaign, ResultStore
from repro.store.db import canonical_json
from repro.system.stochastic import manifest_scenarios, named_family


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "http.db")


@pytest.fixture
def served(store):
    """A running server over a plain (open, unlimited) app."""
    server = ServiceServer(ServiceApp(store)).start()
    yield server
    server.shutdown()


def _manifest(n=2, seed=3, horizon=120.0, backend="envelope"):
    family = replace(
        named_family("factory-floor"), horizon=horizon, backend=backend
    )
    return family.manifest(n=n, seed=seed)


def _call(base, method, path, body=None, token=None, raw_body=None):
    """One HTTP exchange; returns (status, headers, body bytes)."""
    data = raw_body
    if body is not None:
        data = json.dumps(body).encode()
    headers = {}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    request = urllib.request.Request(
        base + path, data=data, method=method, headers=headers
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _json(raw):
    return json.loads(raw.decode())


# -- the full loop -------------------------------------------------------------


@pytest.mark.parametrize("backend", ["envelope", "vectorized"])
def test_submit_poll_fetch_matches_direct_run_bytes(
    tmp_path, store, served, backend
):
    """The acceptance property: results fetched over HTTP are
    byte-identical to a direct ``Campaign.run()`` on the same inputs --
    for the scalar and the vectorized backend alike."""
    pytest.importorskip("numpy") if backend == "vectorized" else None
    manifest = _manifest(n=2, seed=5, backend=backend)
    base = served.url

    status, headers, raw = _call(base, "POST", "/v1/jobs", body=manifest)
    assert status == 201
    job = _json(raw)
    assert headers["Location"] == f"/v1/jobs/{job['id']}"
    assert job["kind"] == "campaign" and job["status"] == "queued"
    assert job["total"] == 2

    assert WorkerPool(store, workers=1, poll_interval=0.05).run_once() == 1

    status, _, raw = _call(base, "GET", f"/v1/jobs/{job['id']}")
    polled = _json(raw)
    assert status == 200 and polled["status"] == "done"
    assert (polled["done"], polled["total"]) == (2, 2)

    status, _, raw = _call(base, "GET", f"/v1/jobs/{job['id']}/results")
    page = _json(raw)
    assert status == 200 and page["count"] == 2 and len(page["results"]) == 2

    # Direct run of the same manifest against a fresh store.
    direct_store = ResultStore(tmp_path / f"direct-{backend}.db")
    scenarios = manifest_scenarios(manifest)
    Campaign.create(direct_store, "direct", scenarios).run(jobs=1)
    direct = {
        s.cache_key(): direct_store.get_payload_text(s.cache_key())
        for s in scenarios
    }
    via_http = {
        entry["key"]: canonical_json(entry["result"])
        for entry in page["results"]
    }
    assert via_http == direct  # byte-identical canonical payloads


def test_enveloped_submission_and_listing(store, served):
    base = served.url
    body = {
        "kind": "campaign",
        "payload": _manifest(n=2, seed=3),
        "name": "named-via-api",
        "priority": 4,
    }
    status, _, raw = _call(base, "POST", "/v1/jobs", body=body)
    assert status == 201
    job = _json(raw)
    assert job["name"] == "named-via-api" and job["priority"] == 4

    status, _, raw = _call(base, "GET", "/v1/jobs?status=queued&limit=10")
    listing = _json(raw)
    assert status == 200 and listing["count"] == 1
    assert listing["jobs"][0]["id"] == job["id"]


def test_results_pagination_and_param_validation(store, served):
    base = served.url
    _, _, raw = _call(base, "POST", "/v1/jobs", body=_manifest(n=3, seed=2))
    job_id = _json(raw)["id"]
    WorkerPool(store, workers=1, poll_interval=0.05).run_once()

    status, _, raw = _call(
        base, "GET", f"/v1/jobs/{job_id}/results?offset=2&limit=1"
    )
    page = _json(raw)
    assert status == 200
    assert page["count"] == 3
    assert [e["index"] for e in page["results"]] == [2]

    status, _, raw = _call(
        base, "GET", f"/v1/jobs/{job_id}/results?limit=999999"
    )
    assert status == 200 and _json(raw)["limit"] == 500  # capped

    status, _, raw = _call(base, "GET", f"/v1/jobs/{job_id}/results?offset=x")
    assert status == 400 and "offset" in _json(raw)["error"]


def test_cancel_flow(store, served):
    base = served.url
    _, _, raw = _call(base, "POST", "/v1/jobs", body=_manifest())
    job_id = _json(raw)["id"]
    status, _, raw = _call(base, "DELETE", f"/v1/jobs/{job_id}")
    assert status == 200 and _json(raw)["status"] == "cancelled"
    status, _, raw = _call(base, "DELETE", f"/v1/jobs/{job_id}")
    assert status == 409  # already terminal
    assert JobQueue(store).get(job_id).status == "cancelled"


# -- the error contract --------------------------------------------------------


def test_malformed_submissions_are_400s_with_library_messages(served):
    base = served.url
    # Garbage bytes.
    status, _, raw = _call(
        base, "POST", "/v1/jobs", raw_body=b"{not json"
    )
    assert status == 400 and "not valid JSON" in _json(raw)["error"]
    # Not an object.
    status, _, raw = _call(base, "POST", "/v1/jobs", body=[1, 2, 3])
    assert status == 400
    # Structurally unsniffable payload: the DesignError text comes through.
    status, _, raw = _call(base, "POST", "/v1/jobs", body={"family": "x"})
    assert status == 400 and "cannot infer the job kind" in _json(raw)["error"]
    # A broken manifest: the underlying DesignError text (not a 500)
    # reaches the client.
    status, _, raw = _call(
        base, "POST", "/v1/jobs", body={"schema": 99, "scenarios": []}
    )
    assert status == 400
    assert "unsupported manifest schema" in _json(raw)["error"]
    # Bad envelope fields.
    status, _, raw = _call(
        base,
        "POST",
        "/v1/jobs",
        body={"payload": _manifest(), "priority": "high"},
    )
    assert status == 400 and "priority" in _json(raw)["error"]
    status, _, raw = _call(
        base,
        "POST",
        "/v1/jobs",
        body={"payload": _manifest(), "kind": "sorcery"},
    )
    assert status == 400 and "sorcery" in _json(raw)["error"]


def test_oversized_body_is_a_400(served):
    import http.client

    conn = http.client.HTTPConnection(served.host, served.port, timeout=10)
    try:
        # Announce an absurd body without sending it: the handler must
        # refuse on the header alone, before reading anything.
        conn.putrequest("POST", "/v1/jobs")
        conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
        conn.endheaders()
        response = conn.getresponse()
        assert response.status == 400
        assert b"bytes" in response.read()
    finally:
        conn.close()


def test_unknown_paths_and_methods(served):
    base = served.url
    assert _call(base, "GET", "/nope")[0] == 404
    assert _call(base, "GET", "/v1/unknown")[0] == 404
    assert _call(base, "GET", "/v1/jobs/does-not-exist")[0] == 404
    assert _call(base, "POST", "/v1/jobs/some-id", body={})[0] == 405
    assert _call(base, "DELETE", "/v1/metrics")[0] == 405


# -- middleware ----------------------------------------------------------------


def test_token_auth_gates_everything_but_healthz(store):
    server = ServiceServer(ServiceApp(store, tokens=("sesame",))).start()
    try:
        base = server.url
        status, headers, _ = _call(base, "GET", "/v1/jobs")
        assert status == 401
        assert "Bearer" in headers["WWW-Authenticate"]
        assert _call(base, "GET", "/v1/jobs", token="wrong")[0] == 401
        assert _call(base, "GET", "/v1/jobs", token="sesame")[0] == 200
        # The liveness probe stays open for load balancers.
        assert _call(base, "GET", "/v1/healthz")[0] == 200
    finally:
        server.shutdown()


def test_rate_limit_yields_429_with_retry_after(store):
    server = ServiceServer(ServiceApp(store, rate=0.01, burst=2)).start()
    try:
        base = server.url
        assert _call(base, "GET", "/v1/jobs")[0] == 200
        assert _call(base, "GET", "/v1/jobs")[0] == 200
        status, headers, raw = _call(base, "GET", "/v1/jobs")
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert "rate limit" in _json(raw)["error"]
        # Health probes are never throttled.
        assert _call(base, "GET", "/v1/healthz")[0] == 200
        # The refusal shows up in the metrics (which are throttled too,
        # so read them through the app object instead of the wire).
        assert server.app.limiter.rejected >= 1
    finally:
        server.shutdown()


# -- observability -------------------------------------------------------------


def test_healthz_and_metrics_shapes(store, served):
    base = served.url
    status, _, raw = _call(base, "GET", "/v1/healthz")
    health = _json(raw)
    assert status == 200 and health["status"] == "ok"
    import repro

    assert health["version"] == repro.__version__

    _call(base, "POST", "/v1/jobs", body=_manifest())
    status, _, raw = _call(base, "GET", "/v1/metrics")
    metrics = _json(raw)
    assert status == 200
    assert metrics["jobs"]["queued"] == 1
    assert metrics["requests"]["total"] >= 2
    assert "store" in metrics and metrics["store"]["results"] == 0
    assert metrics["workers"] is None  # no pool attached to this app


def test_healthz_reports_pool_liveness(store):
    pool = WorkerPool(store, workers=2, poll_interval=0.05)
    server = ServiceServer(ServiceApp(store, pool=pool)).start()
    try:
        status, _, raw = _call(server.url, "GET", "/v1/healthz")
        workers = _json(raw)["workers"]
        assert status == 200
        assert workers == {"configured": 2, "alive": 0}  # not started
    finally:
        server.shutdown()


# -- HEAD ----------------------------------------------------------------------


def test_head_healthz_is_get_without_the_body(served):
    """Load balancers probe ``HEAD /v1/healthz``; it must not be a 501."""
    get_status, _, get_body = _call(served.url, "GET", "/v1/healthz")
    status, headers, body = _call(served.url, "HEAD", "/v1/healthz")
    assert (get_status, status) == (200, 200)
    assert body == b""
    # Same headers a GET would carry, including the suppressed body's
    # true Content-Length.
    assert headers["Content-Length"] == str(len(get_body))
    assert headers["Content-Type"] == "application/json"


def test_head_routes_and_errors_like_get(served):
    status, _, body = _call(served.url, "HEAD", "/v1/jobs")
    assert status == 200 and body == b""
    status, _, body = _call(served.url, "HEAD", "/v1/nope")
    assert status == 404 and body == b""


def test_head_passes_through_auth_middleware(store):
    server = ServiceServer(ServiceApp(store, tokens=("s3cret",))).start()
    try:
        # The probe stays open...
        status, _, _ = _call(server.url, "HEAD", "/v1/healthz")
        assert status == 200
        # ...everything else still needs the token, HEAD included.
        status, _, _ = _call(server.url, "HEAD", "/v1/jobs")
        assert status == 401
        status, _, _ = _call(server.url, "HEAD", "/v1/jobs", token="s3cret")
        assert status == 200
    finally:
        server.shutdown()


# -- partitioned submissions ---------------------------------------------------


def test_envelope_partition_sugar_names_and_slices(store, served):
    manifest = _manifest(n=4)
    body = {"kind": "campaign", "name": "px", "payload": manifest,
            "partitions": 2, "partition": 1}
    status, _, raw = _call(served.url, "POST", "/v1/jobs", body=body)
    job = _json(raw)
    assert status == 201
    assert job["name"] == "px@p1of2"
    full_total = len(manifest_scenarios(manifest))
    assert 0 < job["total"] < full_total


def test_envelope_partition_requires_both_fields(served):
    body = {"kind": "campaign", "payload": _manifest(), "partitions": 2}
    status, _, raw = _call(served.url, "POST", "/v1/jobs", body=body)
    assert status == 400
    assert "partition" in _json(raw)["error"]
    body = {"kind": "campaign", "payload": _manifest(),
            "partitions": 2, "partition": 5}
    status, _, raw = _call(served.url, "POST", "/v1/jobs", body=body)
    assert status == 400
    assert "1..2" in _json(raw)["error"]
