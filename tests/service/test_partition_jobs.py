"""Partitioned campaign jobs and the gc-vs-active-jobs guard.

A campaign payload may carry ``{"partition": {"index": I, "of": N}}``:
the job then journals (and simulates) only its 1-based I-th of N
disjoint slices, under the suffixed name ``NAME@pIofN``, with the same
full-list seed resolution as the unpartitioned run -- so N service
workers with local stores split one manifest and their stores merge
back byte-identically.

Riding along: :meth:`ResultStore.gc` must refuse to delete rows that an
active (queued or running) job derives its resume-progress from, unless
forced.
"""

from dataclasses import replace

import pytest

from repro.errors import DesignError, StoreError
from repro.service import JobQueue, validate_job
from repro.service.jobs import job_partition
from repro.service.worker import execute_job
from repro.store import Campaign, ResultStore, partition_scenarios
from repro.system.stochastic import manifest_scenarios, named_family


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "jobs.db")


@pytest.fixture
def queue(store):
    return JobQueue(store)


def _manifest(n=2, seed=3, horizon=60.0):
    family = replace(
        named_family("factory-floor"), horizon=horizon, backend="envelope"
    )
    return family.manifest(n=n, seed=seed)


def _partitioned(manifest, index, of):
    payload = dict(manifest)
    payload["partition"] = {"index": index, "of": of}
    return payload


# -- validation ----------------------------------------------------------------


def test_job_partition_decodes_and_validates():
    assert job_partition({}, 10) is None
    assert job_partition({"partition": {"index": 2, "of": 3}}, 10) == (2, 3)
    for bad in (
        {"partition": [1, 2]},
        {"partition": {"index": 1}},
        {"partition": {"index": 1, "of": 2, "x": 3}},
        {"partition": {"index": True, "of": 2}},
        {"partition": {"index": "1", "of": 2}},
    ):
        with pytest.raises(DesignError):
            job_partition(bad, 10)
    with pytest.raises(DesignError, match="cannot split"):
        job_partition({"partition": {"index": 1, "of": 11}}, 10)
    with pytest.raises(DesignError, match="1..3"):
        job_partition({"partition": {"index": 4, "of": 3}}, 10)


def test_validate_job_suffixes_partitioned_names():
    manifest = _manifest(n=4)  # 12 scenarios: 4 per grid point x 3 regimes
    kind, name, total = validate_job("campaign", manifest, name="camp")
    partitioned = _partitioned(manifest, 2, 3)
    pkind, pname, ptotal = validate_job("campaign", partitioned, name="camp")
    assert (pkind, pname) == ("campaign", "camp@p2of3")
    assert 0 < ptotal < total
    # The slice totals tile the full total.
    slices = [
        validate_job("campaign", _partitioned(manifest, i, 3), name="camp")[2]
        for i in (1, 2, 3)
    ]
    assert sum(slices) == total


def test_validate_job_rejects_partition_on_non_campaign():
    from repro.scenario import PartsSpec, Scenario
    from repro.system.config import SystemConfig

    payload = Scenario(
        config=SystemConfig(tx_interval_s=2.0),
        parts=PartsSpec(v_init=2.85),
        horizon=60.0,
        seed=0,
    ).to_dict()
    payload["partition"] = {"index": 1, "of": 2}
    with pytest.raises(DesignError, match="only campaign jobs"):
        validate_job("scenario", payload)


# -- execution -----------------------------------------------------------------


def test_worker_executes_only_its_slice(store, queue):
    manifest = _manifest(n=2)
    scenarios = manifest_scenarios(manifest)
    groups = partition_scenarios(scenarios, 2)
    jobs = [
        queue.submit(_partitioned(manifest, i, 2), kind="campaign", name="px")
        for i in (1, 2)
    ]
    assert [job.name for job in jobs] == ["px@p1of2", "px@p2of2"]
    for job, group in zip(jobs, groups):
        claimed = queue.claim(f"w{job.id}")
        execute_job(store, claimed, executor="thread")
        queue.finish(claimed.id, f"w{job.id}")
        journaled = Campaign(store, job.name).scenarios()
        assert [s.cache_key() for s in journaled] == [
            s.cache_key() for s in group
        ]
    # Together the two slices stored every key exactly once -- and they
    # match an unpartitioned journal of the same manifest.
    whole = Campaign.create(store, "px", scenarios)
    keys = {s.cache_key() for s in whole.scenarios()}
    assert store.have_keys(keys) == keys
    assert whole.pending() == []


# -- gc vs active jobs ---------------------------------------------------------


def test_gc_refuses_rows_active_jobs_depend_on(store, queue):
    manifest = _manifest(n=2)
    job = queue.submit(manifest, kind="campaign", name="gcjob")
    # The job is queued; its journaled keys exist once a worker stores
    # them -- simulate that by running the job without finishing it.
    claimed = queue.claim("w1")
    execute_job(store, claimed, executor="thread")
    assert len(store) > 0
    # Still running: gc (any selector matching its rows) must refuse.
    with pytest.raises(StoreError, match=claimed.id):
        store.gc(family="factory-floor")
    with pytest.raises(StoreError, match="force"):
        store.gc(older_than_days=0.0)
    # Explicit force overrides; dry_run previews the same count first.
    preview = store.gc(family="factory-floor", dry_run=True, force=True)
    assert preview == len(store)
    assert store.gc(family="factory-floor", force=True) == preview
    assert len(store) == 0


def test_gc_proceeds_once_jobs_are_terminal(store, queue):
    manifest = _manifest(n=2)
    queue.submit(manifest, kind="campaign", name="gcjob")
    claimed = queue.claim("w1")
    execute_job(store, claimed, executor="thread")
    queue.finish(claimed.id, "w1")
    assert store.gc(family="factory-floor") == len(
        Campaign(store, "gcjob").scenarios()
    )
