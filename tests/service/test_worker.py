"""The worker pool: draining, failure capture, drains and kill-safety.

The centrepiece is the service-layer acceptance property: a worker
SIGKILLed mid-job loses only its *claim* -- after the heartbeat-timeout
requeue, the next worker finishes the job while re-simulating **zero**
of the scenarios the dead worker already wrote through to the store
(counted by an instrumented backend, exactly like the campaign-level
kill test one layer down).
"""

import time
from dataclasses import replace

import pytest

from repro.backends import EnvelopeBackend, register_backend
from repro.errors import ConfigError, SimulationError
from repro.service import JobQueue, WorkerPool
from repro.service.worker import DrainRequeue, execute_job
from repro.scenario import PartsSpec, Scenario
from repro.store import Campaign, ResultStore
from repro.system.config import SystemConfig
from repro.system.stochastic import named_family


class CountingServiceBackend:
    """Envelope backend that logs (and can crash after) N simulations."""

    name = "counting-service"

    simulated = []
    crash_after = None
    delay_s = 0.0

    def simulate(self, scenario):
        if (
            CountingServiceBackend.crash_after is not None
            and len(CountingServiceBackend.simulated)
            >= CountingServiceBackend.crash_after
        ):
            raise SimulationError("simulated crash (power loss)")
        if CountingServiceBackend.delay_s:
            time.sleep(CountingServiceBackend.delay_s)
        CountingServiceBackend.simulated.append(scenario.cache_key())
        return EnvelopeBackend().simulate(replace(scenario, backend="envelope"))


register_backend("counting-service", CountingServiceBackend, overwrite=True)


@pytest.fixture(autouse=True)
def _reset_counting_backend():
    CountingServiceBackend.simulated = []
    CountingServiceBackend.crash_after = None
    CountingServiceBackend.delay_s = 0.0
    yield
    CountingServiceBackend.simulated = []
    CountingServiceBackend.crash_after = None
    CountingServiceBackend.delay_s = 0.0


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "worker.db")


@pytest.fixture
def queue(store):
    return JobQueue(store)


def _manifest(n=2, seed=3, horizon=60.0, backend="counting-service"):
    family = replace(
        named_family("factory-floor"), horizon=horizon, backend=backend
    )
    return family.manifest(n=n, seed=seed)


def _scenario_payload(seed=0, backend="counting-service"):
    return Scenario(
        config=SystemConfig(tx_interval_s=2.0),
        parts=PartsSpec(v_init=2.85),
        horizon=60.0,
        seed=seed,
        backend=backend,
        name=f"svc-{seed}",
    ).to_dict()


def _backdate_heartbeat(store, job_id, by_s=3600.0):
    conn = store._conn()
    conn.execute("BEGIN IMMEDIATE")
    conn.execute(
        "UPDATE jobs SET heartbeat_unix = heartbeat_unix - ? WHERE id=?",
        (by_s, job_id),
    )
    conn.execute("COMMIT")


# -- construction --------------------------------------------------------------


def test_pool_validates_parameters(store):
    with pytest.raises(ConfigError):
        WorkerPool(store, workers=0)
    with pytest.raises(ConfigError):
        WorkerPool(store, jobs=0)
    with pytest.raises(ConfigError):
        WorkerPool(store, poll_interval=0.0)
    with pytest.raises(ConfigError):
        WorkerPool(store, heartbeat_timeout=0.0)


# -- run_once ------------------------------------------------------------------


def test_run_once_drains_mixed_queue(store, queue):
    campaign_id = queue.submit(_manifest(n=2, seed=3)).id
    scenario_id = queue.submit(_scenario_payload(seed=9)).id
    pool = WorkerPool(store, workers=2, poll_interval=0.05)
    assert pool.run_once() == 2
    assert queue.get(campaign_id).status == "done"
    assert queue.get(scenario_id).status == "done"
    assert len(store) == 3  # two family scenarios + the one-off
    assert len(CountingServiceBackend.simulated) == 3
    # Campaign jobs journal under the job name and are fully stored.
    assert Campaign(store, "factory-floor-n2-s3").status().complete


def test_run_once_on_empty_queue_returns_zero(store):
    assert WorkerPool(store, workers=1, poll_interval=0.05).run_once() == 0


def test_rerunning_a_done_jobs_payload_simulates_nothing(store, queue):
    job_id = queue.submit(_manifest(n=2, seed=3)).id
    pool = WorkerPool(store, workers=1, poll_interval=0.05)
    assert pool.run_once() == 1
    first = len(CountingServiceBackend.simulated)
    # Same manifest resubmitted: the campaign journal and every result
    # are already in the store, so the second job costs zero sims.
    queue.submit(_manifest(n=2, seed=3))
    assert pool.run_once() == 1
    assert len(CountingServiceBackend.simulated) == first
    assert queue.get(job_id).status == "done"


def test_failed_job_records_backend_error(store, queue):
    CountingServiceBackend.crash_after = 0
    job_id = queue.submit(_scenario_payload()).id
    pool = WorkerPool(store, workers=1, poll_interval=0.05)
    assert pool.run_once() == 1
    job = queue.get(job_id)
    assert job.status == "failed"
    assert "simulated crash" in job.error
    assert pool.failed == 1 and pool.processed == 0


def test_study_job_runs_through_study_machinery(store, queue):
    from repro.core.study import paper_study_spec

    spec = replace(
        paper_study_spec(), name="ignored", seed=3, horizon=600.0
    )
    job_id = queue.submit(spec.to_dict(), name="svc-study").id
    pool = WorkerPool(store, workers=1, poll_interval=0.05)
    assert pool.run_once() == 1
    job = queue.get(job_id)
    assert job.status == "done"
    # The study journaled under the *job* name, and progress derives
    # from that journal.
    row = store.get_study("svc-study")
    assert row is not None
    assert JobQueue(store).progress(job) == (row.total, row.total)


# -- lifecycle -----------------------------------------------------------------


def test_start_stop_drains_inflight_work(store, queue):
    job_id = queue.submit(_manifest(n=2, seed=3)).id
    pool = WorkerPool(store, workers=1, poll_interval=0.05)
    pool.start()
    with pytest.raises(ConfigError):
        pool.start()  # double start is a usage error
    deadline = time.monotonic() + 30.0
    while queue.get(job_id).status != "done":
        assert time.monotonic() < deadline, "job never finished"
        time.sleep(0.05)
    assert pool.stop(drain=True, timeout=10.0)
    assert pool.processed == 1
    # The pool can be started again after a clean stop.
    pool.start()
    assert pool.stop()


def test_stop_without_drain_requeues_at_chunk_boundary(store, queue):
    job_id = queue.submit(_manifest(n=4, seed=3)).id
    pool = WorkerPool(store, workers=1, poll_interval=0.05, chunk_size=1)
    worker_id = pool._ids[0]
    job = pool.queue.claim(worker_id)
    # Flip the pool into stopping-without-drain before "running" the
    # claim: the job-context hook fires DrainRequeue at the very first
    # chunk boundary and the job goes back to the queue untouched.
    pool._requeue_on_stop.set()
    pool._run_claim(worker_id, job)
    requeued = queue.get(job_id)
    assert requeued.status == "queued"
    assert requeued.worker is None
    assert CountingServiceBackend.simulated == []  # nothing ran


def test_pulse_keeps_slow_chunks_alive(store, queue):
    """A single chunk far longer than the heartbeat timeout must not be
    stolen by the orphan sweeper while its worker is still healthy."""
    CountingServiceBackend.delay_s = 0.2
    job_id = queue.submit(_manifest(n=4, seed=3)).id
    pool = WorkerPool(
        store,
        workers=1,
        poll_interval=0.05,
        heartbeat_timeout=0.4,  # pulse cadence 0.1 s << 0.8 s chunk
        chunk_size=4,
    )
    assert pool.run_once() == 1
    job = queue.get(job_id)
    assert job.status == "done"
    assert job.attempts == 1  # never requeued from under the worker
    assert len(CountingServiceBackend.simulated) == 4


def test_worker_states_snapshot(store):
    pool = WorkerPool(store, workers=2, poll_interval=0.05)
    states = pool.worker_states()
    assert len(states) == 2
    assert all(not s["alive"] and s["job"] is None for s in states)
    pool.start()
    try:
        deadline = time.monotonic() + 5.0
        while not all(s["alive"] for s in pool.worker_states()):
            assert time.monotonic() < deadline, "workers never reported in"
            time.sleep(0.02)
    finally:
        assert pool.stop()


# -- the acceptance property ---------------------------------------------------


def test_killed_worker_job_resumes_with_zero_resimulation(store, queue):
    """SIGKILL-equivalent: a worker dies mid-job; after the heartbeat
    timeout the job requeues and the next worker simulates only what the
    store does not already hold."""
    job_id = queue.submit(_manifest(n=8, seed=3)).id

    # A "worker" claims the job and dies mid-run: the backend crashes
    # after 4 simulations (mid-campaign, chunked so some work is
    # durable), and the process never gets to fail/requeue its claim --
    # exactly what SIGKILL leaves behind.
    dead = queue.claim("dead-worker")
    CountingServiceBackend.crash_after = 4
    with pytest.raises(SimulationError):
        execute_job(store, dead, jobs=1, chunk_size=2)
    assert queue.get(job_id).status == "running"  # the orphaned claim
    stored_before = set(store.keys())
    assert 0 < len(stored_before) < 8  # durable chunks survived the kill
    # Progress is derived from the store, so it is accurate even while
    # the claim is orphaned: exactly the stored rows count as done.
    assert queue.progress(queue.get(job_id)) == (len(stored_before), 8)

    # Heartbeats go stale; the sweep releases the claim.
    CountingServiceBackend.crash_after = None
    CountingServiceBackend.simulated = []
    _backdate_heartbeat(store, job_id)
    assert queue.requeue_orphans(60.0) == 1

    # A healthy pool picks the job up and finishes it.
    pool = WorkerPool(store, workers=1, poll_interval=0.05)
    assert pool.run_once(requeue_orphans=False) == 1

    job = queue.get(job_id)
    assert job.status == "done"
    assert job.attempts == 2  # dead worker + successor
    resimulated = set(CountingServiceBackend.simulated) & stored_before
    assert resimulated == set()  # zero re-simulation of stored rows
    assert len(CountingServiceBackend.simulated) == 8 - len(stored_before)
    assert len(store) == 8
    assert Campaign(store, job.name).status().complete
