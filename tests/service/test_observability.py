"""Service telemetry: request counters, Prometheus exposition, caching.

Three contracts live here.  Middleware refusals (401s, 429s) must be
counted like any other response -- an operator diagnosing a credential
or throttling problem reads them off ``/v1/metrics``.  The Prometheus
exposition must be well-formed line format with ``# HELP``/``# TYPE``
for every metric and monotone counters across scrapes.  And a scrape
must not cost a full store scan: ``store.stats()`` is served from a
TTL-bounded cache whose staleness the JSON view reports.
"""

import json
import re
from dataclasses import replace

import pytest

import repro.obs as obs
from repro.obs.report import summarize_events
from repro.obs.trace import read_events
from repro.service import JobQueue, ServiceApp, WorkerPool
from repro.service.app import PROMETHEUS_CONTENT_TYPE
from repro.service.http import Request
from repro.store import ResultStore
from repro.system.stochastic import named_family


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "obs.db")


def _request(method, path, token=None, accept=None, query=None, client="tester"):
    headers = {}
    if token is not None:
        headers["authorization"] = f"Bearer {token}"
    if accept is not None:
        headers["accept"] = accept
    return Request(
        method=method,
        path=path,
        query=query or {},
        headers=headers,
        body=b"",
        client=client,
    )


def _manifest(n=1, seed=3, horizon=60.0):
    family = replace(named_family("factory-floor"), horizon=horizon)
    return family.manifest(n=n, seed=seed)


# -- middleware refusals in the request counters -------------------------------


def test_auth_and_rate_limit_refusals_count_in_metrics(clean_obs, store):
    app = ServiceApp(
        store,
        tokens=("sesame", "scraper"),
        rate=0.001,
        burst=1,
        telemetry=False,
    )
    assert app.dispatch(_request("GET", "/v1/jobs")).status == 401
    assert app.dispatch(_request("GET", "/v1/jobs", token="sesame")).status == 200
    # The bucket for "sesame" is empty now; the next call is throttled.
    assert app.dispatch(_request("GET", "/v1/jobs", token="sesame")).status == 429

    # Scrape with a different token: the limiter buckets per caller.
    response = app.dispatch(_request("GET", "/v1/metrics", token="scraper"))
    assert response.status == 200
    requests = response.payload["requests"]
    assert requests["by_status"]["401"] == 1
    assert requests["by_status"]["200"] == 1
    assert requests["by_status"]["429"] == 1
    assert requests["rate_limited"] == 1
    assert requests["total"] == 3


def test_registry_mirrors_the_request_counters(clean_obs, store):
    registry = obs.metrics()
    registry.reset()
    app = ServiceApp(store)  # telemetry=True is the service default
    app.dispatch(_request("GET", "/v1/jobs"))
    app.dispatch(_request("GET", "/v1/nope"))
    http_requests = registry.counter(
        "repro_http_requests_total", "", ("method", "status")
    )
    assert http_requests.value(method="GET", status="200") == 1
    assert http_requests.value(method="GET", status="404") == 1
    latency = registry.histogram(
        "repro_http_request_seconds", "", ("method",)
    )
    assert latency.count(method="GET") == 2


# -- Prometheus exposition -----------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"  # labels
    r" (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$"  # value
)


def _check_exposition(text):
    """Minimal line-format checker; returns {metric: {sample_line: value}}."""
    helped, typed, samples = set(), set(), {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            typed.add(line.split()[2])
            continue
        assert _SAMPLE_RE.match(line), f"malformed sample line: {line!r}"
        name = re.split(r"[{ ]", line)[0]
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        key = base if base in typed else name
        samples.setdefault(key, {})[line.rsplit(" ", 1)[0]] = float(
            line.rsplit(" ", 1)[1]
        )
    assert helped == typed, "every # TYPE needs a matching # HELP"
    for metric in samples:
        assert metric in typed, f"{metric} exposed without # HELP/# TYPE"
    return samples


def test_prometheus_content_negotiation(clean_obs, store):
    app = ServiceApp(store)
    prom = app.dispatch(
        _request("GET", "/v1/metrics", query={"format": "prometheus"})
    )
    assert prom.status == 200
    assert prom.content_type == PROMETHEUS_CONTENT_TYPE
    assert isinstance(prom.payload, str)
    assert prom.body_bytes().endswith(b"\n")

    via_accept = app.dispatch(_request("GET", "/v1/metrics", accept="text/plain"))
    assert via_accept.content_type == PROMETHEUS_CONTENT_TYPE

    as_json = app.dispatch(_request("GET", "/v1/metrics", accept="application/json"))
    assert as_json.content_type == "application/json"
    assert "jobs" in as_json.payload
    json.loads(as_json.body_bytes())  # still the plain JSON document

    explicit_json = app.dispatch(
        _request("GET", "/v1/metrics", query={"format": "json"})
    )
    assert explicit_json.content_type == "application/json"

    bogus = app.dispatch(_request("GET", "/v1/metrics", query={"format": "xml"}))
    assert bogus.status == 400
    assert "unknown metrics format" in bogus.payload["error"]


def test_prometheus_exposition_is_well_formed_and_monotone(clean_obs, store):
    obs.metrics().reset()
    app = ServiceApp(store)
    scrape = lambda: app.dispatch(  # noqa: E731
        _request("GET", "/v1/metrics", query={"format": "prometheus"})
    ).payload

    app.dispatch(_request("GET", "/v1/jobs"))  # seed the request series
    first = _check_exposition(scrape())
    app.dispatch(_request("GET", "/v1/jobs"))
    app.dispatch(_request("GET", "/v1/jobs"))
    second = _check_exposition(scrape())

    # Counters never go backwards between scrapes.
    for line, value in first["repro_http_requests_total"].items():
        assert second["repro_http_requests_total"][line] >= value
    total = lambda s: sum(s["repro_http_requests_total"].values())  # noqa: E731
    assert total(second) > total(first)

    # The scrape-time gauges made it into the exposition.
    assert "repro_queue_jobs" in second
    assert "repro_store_results" in second
    # Histogram plumbing: +Inf bucket equals the series count.
    latency = second["repro_http_request_seconds"]
    inf = latency['repro_http_request_seconds_bucket{method="GET",le="+Inf"}']
    count = latency['repro_http_request_seconds_count{method="GET"}']
    assert inf == count > 0


# -- the stats cache -----------------------------------------------------------


def test_store_stats_scan_is_cached_between_scrapes(clean_obs, store, monkeypatch):
    calls = []
    real_stats = store.stats

    def counted_stats():
        calls.append(1)
        return real_stats()

    monkeypatch.setattr(store, "stats", counted_stats)
    app = ServiceApp(store, stats_ttl=60.0, telemetry=False)
    first = app.dispatch(_request("GET", "/v1/metrics")).payload
    second = app.dispatch(_request("GET", "/v1/metrics")).payload
    assert len(calls) == 1  # the second scrape was served from cache
    assert second["store"]["stats_age_s"] >= first["store"]["stats_age_s"] >= 0.0


def test_stats_ttl_zero_rescans_every_scrape(clean_obs, store, monkeypatch):
    calls = []
    real_stats = store.stats
    monkeypatch.setattr(
        store, "stats", lambda: (calls.append(1), real_stats())[1]
    )
    app = ServiceApp(store, stats_ttl=0.0, telemetry=False)
    app.dispatch(_request("GET", "/v1/metrics"))
    app.dispatch(_request("GET", "/v1/metrics"))
    assert len(calls) == 2


# -- the job lifecycle event chain ---------------------------------------------


def test_claim_requeue_finish_event_chain(clean_obs, store, tmp_path):
    log = tmp_path / "jobs.jsonl"
    obs.configure(metrics=True, events=str(log))
    registry = obs.metrics()
    registry.reset()

    queue = JobQueue(store)
    job = queue.submit(_manifest())
    first = queue.claim("w-1")
    assert first is not None and first.id == job.id
    queue.requeue(job.id, "w-1")  # a drain hands the claim back
    again = queue.claim("w-2")
    assert again is not None
    queue.finish(job.id, "w-2")

    names = [
        (r["name"], r["attrs"].get("worker")) for r in read_events(log)
    ]
    assert names == [
        ("job.submit", None),
        ("job.claim", "w-1"),
        ("job.requeue", "w-1"),
        ("job.claim", "w-2"),
        ("job.finish", "w-2"),
    ]
    assert registry.counter(
        "repro_jobs_claimed_total", ""
    ).value() == 2
    assert registry.counter(
        "repro_jobs_requeued_total", "", ("reason",)
    ).value(reason="drain") == 1
    assert registry.counter(
        "repro_jobs_finished_total", "", ("status",)
    ).value(status="done") == 1


def test_executed_job_exports_tier_counters_and_spans(clean_obs, store, tmp_path):
    log = tmp_path / "exec.jsonl"
    obs.configure(metrics=True, events=str(log))
    obs.metrics().reset()

    app = ServiceApp(store, telemetry=False)
    queue = app.queue
    queue.submit(_manifest(n=2, seed=7))
    assert WorkerPool(store, workers=1, poll_interval=0.05).run_once() == 1

    text = app.dispatch(
        _request("GET", "/v1/metrics", query={"format": "prometheus"})
    ).payload
    assert 'repro_batch_tier_total{tier="simulate"} 2' in text
    assert 'repro_jobs_finished_total{status="done"} 1' in text
    assert "repro_sim_runs_total" in text

    summary = summarize_events(log)
    assert summary.span_stats["job.execute"].count == 1
    assert summary.span_stats["batch.run"].count >= 1
