"""The ``serve`` subcommand: once-mode draining, status surfacing, and
the full server lifecycle (bind, serve, SIGTERM, graceful drain) as a
real subprocess -- the deployment shape the CI smoke job exercises.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from dataclasses import replace
from pathlib import Path

import pytest

from repro.cli import main
from repro.service import JobQueue
from repro.store import ResultStore
from repro.system.stochastic import named_family

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def db(tmp_path):
    return str(tmp_path / "serve.db")


def _manifest(n=2, seed=3, horizon=60.0):
    family = replace(named_family("factory-floor"), horizon=horizon)
    return family.manifest(n=n, seed=seed)


def _submit(db, manifest=None, **kwargs):
    return JobQueue(ResultStore(db)).submit(manifest or _manifest(), **kwargs)


# -- once mode -----------------------------------------------------------------


def test_serve_once_drains_the_queue(db, capsys):
    job = _submit(db)
    assert main(["serve", "--store", db, "--once"]) == 0
    err = capsys.readouterr().err  # service lines flow through logging
    assert "processed 1 job(s)" in err
    assert "done 1" in err
    assert JobQueue(ResultStore(db)).get(job.id).status == "done"


def test_serve_once_with_empty_queue(db, capsys):
    assert main(["serve", "--store", db, "--once"]) == 0
    assert "processed 0 job(s)" in capsys.readouterr().err


def test_serve_once_requeues_orphans_first(db, capsys):
    store = ResultStore(db)
    queue = JobQueue(store)
    job = queue.submit(_manifest())
    queue.claim("dead-worker")
    conn = store._conn()
    conn.execute("BEGIN IMMEDIATE")
    conn.execute(
        "UPDATE jobs SET heartbeat_unix = heartbeat_unix - 3600 WHERE id=?",
        (job.id,),
    )
    conn.execute("COMMIT")
    assert main(["serve", "--store", db, "--once"]) == 0
    assert "requeued 1 orphaned job(s)" in capsys.readouterr().err
    assert queue.get(job.id).status == "done"


# -- queue state in existing tooling -------------------------------------------


def test_store_stats_reports_job_counts(db, capsys):
    _submit(db)
    main(["serve", "--store", db, "--once"])
    capsys.readouterr()
    assert main(["store", "stats", db]) == 0
    assert "jobs: done 1" in capsys.readouterr().out


def test_campaign_status_reports_job_counts(db, capsys):
    _submit(db)
    main(["serve", "--store", db, "--once"])
    capsys.readouterr()
    assert main(["campaign", "status", "--store", db]) == 0
    out = capsys.readouterr().out
    assert "2/2 done" in out
    assert "jobs: queued 0, running 0, done 1, failed 0, cancelled 0" in out


def test_store_stats_without_jobs_stays_quiet(db, capsys):
    assert main(["store", "init", db]) == 0
    capsys.readouterr()
    assert main(["store", "stats", db]) == 0
    assert "jobs:" not in capsys.readouterr().out


# -- the real process ----------------------------------------------------------


def test_serve_subprocess_full_lifecycle(db, tmp_path):
    """Bind on port 0, submit over the wire, SIGTERM, graceful exit 0."""
    env = dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONUNBUFFERED="1")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--store",
            db,
            "--port",
            "0",
            "--workers",
            "1",
            "--poll",
            "0.1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # The first line announces the bound address.
        banner = process.stdout.readline()
        assert "serving on http://127.0.0.1:" in banner
        port = int(banner.split("http://127.0.0.1:")[1].split(" ")[0].split("/")[0])
        base = f"http://127.0.0.1:{port}"

        with urllib.request.urlopen(f"{base}/v1/healthz", timeout=10) as resp:
            assert json.loads(resp.read())["status"] == "ok"

        request = urllib.request.Request(
            f"{base}/v1/jobs",
            data=json.dumps(_manifest()).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as resp:
            job = json.loads(resp.read())
        assert resp.status == 201

        deadline = time.monotonic() + 60.0
        while True:
            with urllib.request.urlopen(
                f"{base}/v1/jobs/{job['id']}", timeout=10
            ) as resp:
                doc = json.loads(resp.read())
            if doc["status"] == "done":
                break
            assert time.monotonic() < deadline, f"job stuck: {doc}"
            time.sleep(0.2)

        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=60)
        assert process.returncode == 0
        assert "shutting down: draining" in out
        assert "done 1" in out
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=10)

    # The work the service did is plain store state afterwards.
    store = ResultStore(db)
    assert len(store) == 2
    assert JobQueue(store).counts()["done"] == 1
