"""The durable job queue: sniffed submission, atomic claims, heartbeats.

The queue is rows in the same SQLite file as the result store, so the
properties under test are transactional ones: two racing claimers never
take the same job, a lost claim surfaces at the next heartbeat, and a
stale heartbeat hands the job (not its finished work) to the next
worker.
"""

import threading
from dataclasses import replace

import pytest

from repro.errors import ConfigError, DesignError, ReproError
from repro.service import JOB_STATUSES, JobCancelled, JobQueue, validate_job
from repro.service.worker import execute_job
from repro.scenario import PartsSpec, Scenario
from repro.store import ResultStore
from repro.system.config import SystemConfig
from repro.system.stochastic import named_family


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "jobs.db")


@pytest.fixture
def queue(store):
    return JobQueue(store)


def _manifest(n=2, seed=3, horizon=60.0, backend="envelope"):
    family = replace(
        named_family("factory-floor"), horizon=horizon, backend=backend
    )
    return family.manifest(n=n, seed=seed)


def _scenario_payload(seed=0, name="one-off"):
    return Scenario(
        config=SystemConfig(tx_interval_s=2.0),
        parts=PartsSpec(v_init=2.85),
        horizon=60.0,
        seed=seed,
        name=name,
    ).to_dict()


def _backdate_heartbeat(store, job_id, by_s=3600.0):
    """Pretend the claim holder went silent ``by_s`` seconds ago."""
    conn = store._conn()
    conn.execute("BEGIN IMMEDIATE")
    conn.execute(
        "UPDATE jobs SET heartbeat_unix = heartbeat_unix - ? WHERE id=?",
        (by_s, job_id),
    )
    conn.execute("COMMIT")


# -- submission ----------------------------------------------------------------


def test_submit_sniffs_manifest_as_campaign(queue):
    job = queue.submit(_manifest(n=2, seed=3))
    assert job.kind == "campaign"
    assert job.status == "queued"
    assert job.total == 2
    assert job.name == "factory-floor-n2-s3"
    assert job.attempts == 0 and job.worker is None


def test_submit_sniffs_scenario_and_study(queue):
    scenario_job = queue.submit(_scenario_payload(name="probe"))
    assert scenario_job.kind == "scenario"
    assert scenario_job.name == "probe"
    assert scenario_job.total == 1

    from repro.core.study import paper_study_spec

    spec = replace(paper_study_spec(), name="svc-study", horizon=600.0)
    study_job = queue.submit(spec.to_dict())
    assert study_job.kind == "study"
    assert study_job.name == "svc-study"
    assert study_job.total == spec.n_runs + 1


def test_submit_name_and_priority_overrides(queue):
    job = queue.submit(_manifest(), name="renamed", priority=7)
    assert job.name == "renamed"
    assert job.priority == 7


def test_submit_rejects_unsniffable_payload(queue):
    with pytest.raises(DesignError):
        queue.submit({"family": "factory-floor", "n": 2})


def test_submit_rejects_unknown_kind(queue):
    with pytest.raises(ConfigError):
        queue.submit(_manifest(), kind="batch")


def test_submit_rejects_unknown_backend(queue):
    payload = _scenario_payload()
    payload["backend"] = "warp-drive"
    with pytest.raises(ReproError):
        queue.submit(payload)


def test_failed_submission_writes_no_row(queue):
    with pytest.raises(DesignError):
        queue.submit({"scenarios": "not-a-list"})
    assert queue.counts() == {status: 0 for status in JOB_STATUSES}


def test_validate_job_rejects_non_dict_payload():
    with pytest.raises(DesignError):
        validate_job(None, ["not", "a", "dict"])


# -- claiming ------------------------------------------------------------------


def test_claim_order_priority_then_fifo(queue):
    low = queue.submit(_scenario_payload(seed=1), priority=0)
    high = queue.submit(_scenario_payload(seed=2), priority=5)
    mid = queue.submit(_scenario_payload(seed=3), priority=1)
    order = [queue.claim("w").id for _ in range(3)]
    assert order == [high.id, mid.id, low.id]
    assert queue.claim("w") is None


def test_claim_marks_running_with_heartbeat(queue):
    submitted = queue.submit(_scenario_payload())
    job = queue.claim("worker-1")
    assert job.id == submitted.id
    assert job.status == "running"
    assert job.worker == "worker-1"
    assert job.attempts == 1
    assert job.started_unix is not None and job.heartbeat_unix is not None


def test_claim_requires_worker_id(queue):
    with pytest.raises(ConfigError):
        queue.claim("")


def test_racing_claimers_never_share_a_job(queue):
    jobs = [queue.submit(_scenario_payload(seed=i)) for i in range(12)]
    claimed = []
    lock = threading.Lock()

    def drain(worker):
        while True:
            job = queue.claim(worker)
            if job is None:
                return
            with lock:
                claimed.append(job.id)

    threads = [
        threading.Thread(target=drain, args=(f"w{i}",)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sorted(claimed) == sorted(j.id for j in jobs)
    assert len(set(claimed)) == len(jobs)  # nothing claimed twice


# -- heartbeats and completion -------------------------------------------------


def test_heartbeat_refreshes_only_the_claim_holder(queue):
    job_id = queue.submit(_scenario_payload()).id
    queue.claim("holder")
    queue.heartbeat(job_id, "holder")  # fine
    with pytest.raises(JobCancelled):
        queue.heartbeat(job_id, "impostor")


def test_cancel_surfaces_at_next_heartbeat(queue):
    job_id = queue.submit(_scenario_payload()).id
    queue.claim("holder")
    queue.cancel(job_id)
    with pytest.raises(JobCancelled):
        queue.heartbeat(job_id, "holder")


def test_finish_and_fail(queue):
    done_id = queue.submit(_scenario_payload(seed=1)).id
    failed_id = queue.submit(_scenario_payload(seed=2)).id
    queue.claim("w")
    queue.finish(done_id, "w")
    queue.claim("w")
    queue.fail(failed_id, "w", "backend exploded")
    assert queue.get(done_id).status == "done"
    failed = queue.get(failed_id)
    assert failed.status == "failed"
    assert failed.error == "backend exploded"
    assert failed.finished_unix is not None


def test_finish_after_lost_claim_leaves_row_alone(queue):
    job_id = queue.submit(_scenario_payload()).id
    queue.claim("w")
    queue.cancel(job_id)
    queue.finish(job_id, "w")  # silently ignored: the claim is gone
    assert queue.get(job_id).status == "cancelled"
    with pytest.raises(ConfigError):
        queue.finish("no-such-job", "w")


def test_cancel_terminal_job_is_an_error(queue):
    job_id = queue.submit(_scenario_payload()).id
    queue.claim("w")
    queue.finish(job_id, "w")
    with pytest.raises(ConfigError):
        queue.cancel(job_id)


# -- orphan requeue ------------------------------------------------------------


def test_requeue_orphans_releases_stale_claims(store, queue):
    job_id = queue.submit(_scenario_payload()).id
    queue.claim("dead-worker")
    assert queue.requeue_orphans(60.0) == 0  # heartbeat still fresh
    _backdate_heartbeat(store, job_id)
    assert queue.requeue_orphans(60.0) == 1
    job = queue.get(job_id)
    assert job.status == "queued"
    assert job.worker is None and job.heartbeat_unix is None
    assert job.attempts == 1  # the attempt history survives
    # The next claimer picks it straight up.
    assert queue.claim("successor").id == job_id


def test_requeue_orphans_validates_timeout(queue):
    with pytest.raises(ConfigError):
        queue.requeue_orphans(0.0)


# -- listing, counts, progress -------------------------------------------------


def test_counts_and_depth(queue):
    assert queue.depth() == 0
    queue.submit(_scenario_payload(seed=1))
    queue.submit(_scenario_payload(seed=2))
    queue.claim("w")
    counts = queue.counts()
    assert counts["queued"] == 1 and counts["running"] == 1
    assert queue.depth() == 1


def test_jobs_listing_filters_by_status(queue):
    queue.submit(_scenario_payload(seed=1))
    queue.submit(_scenario_payload(seed=2))
    queue.claim("w")
    assert len(queue.jobs()) == 2
    assert len(queue.jobs(status="running")) == 1
    assert len(queue.jobs(limit=1)) == 1
    with pytest.raises(ConfigError):
        queue.jobs(status="exploded")


def test_get_unknown_job(queue):
    with pytest.raises(ConfigError):
        queue.get("nope")


def test_progress_and_result_entries_track_the_store(store, queue):
    job = queue.submit(_manifest(n=2, seed=3))
    assert queue.progress(job) == (0, 2)
    count, entries = queue.result_entries(job)
    assert count == 0 and entries == []  # nothing journaled yet

    claimed = queue.claim("w")
    execute_job(store, claimed, jobs=1)
    queue.finish(claimed.id, "w")

    job = queue.get(job.id)
    assert queue.progress(job) == (2, 2)
    count, entries = queue.result_entries(job)
    assert count == 2 and len(entries) == 2
    assert [e["index"] for e in entries] == [0, 1]
    assert all(e["result"] is not None and e["key"] for e in entries)

    # Pagination windows and validation.
    count, page = queue.result_entries(job, offset=1, limit=5)
    assert count == 2 and [e["index"] for e in page] == [1]
    with pytest.raises(ConfigError):
        queue.result_entries(job, offset=-1)
