"""``requeue_orphans`` under concurrency: sweeps must never double-count.

Two serve processes pointed at one store each sweep for orphaned claims
on startup and between polls.  The sweep is one conditional ``UPDATE
... WHERE status='running' AND heartbeat_unix < cutoff`` inside a
``BEGIN IMMEDIATE`` transaction, so racing sweepers partition the
orphans between them instead of both counting (or re-queueing) the same
rows -- and a freshly-claimed job, whose heartbeat is current, is never
swept out from under its live worker.
"""

import threading
from dataclasses import replace

import pytest

from repro.service import JobQueue
from repro.store import ResultStore
from repro.system.stochastic import named_family


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "race.db")


def _manifest(seed):
    family = replace(
        named_family("factory-floor"), horizon=120.0, backend="envelope"
    )
    return family.manifest(n=1, seed=seed)


def _orphan(store, queue, job_id, age_s=3600.0):
    conn = store._conn()
    conn.execute("BEGIN IMMEDIATE")
    conn.execute(
        "UPDATE jobs SET heartbeat_unix = heartbeat_unix - ? WHERE id=?",
        (float(age_s), job_id),
    )
    conn.execute("COMMIT")


def test_concurrent_sweeps_partition_the_orphans(store):
    """Two simultaneous sweeps: every orphan requeued exactly once."""
    queue = JobQueue(store)
    jobs = [queue.submit(_manifest(i)) for i in range(6)]
    for _ in jobs:
        assert queue.claim("dead-worker") is not None
    for job in jobs:
        _orphan(store, queue, job.id)

    barrier = threading.Barrier(2)
    requeued = [0, 0]
    errors = []

    def sweep(slot):
        try:
            # Per-thread JobQueue: each gets its own SQLite connection.
            local = JobQueue(store)
            barrier.wait()
            for _ in range(5):  # hammer: repeated sweeps stay idempotent
                requeued[slot] += local.requeue_orphans(60.0)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=sweep, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    assert sum(requeued) == 6  # never double-counted across sweepers
    counts = queue.counts()
    assert counts["queued"] == 6 and counts["running"] == 0
    # Requeue releases the claim without inventing attempts.
    assert all(queue.get(j.id).attempts == 1 for j in jobs)


def test_sweep_and_claim_storm_each_job_claimed_exactly_once(store):
    """Sweeps running concurrently with claimers: a requeued job is
    claimed by exactly one pool, and a fresh claim is never swept."""
    queue = JobQueue(store)
    jobs = [queue.submit(_manifest(i)) for i in range(8)]
    for _ in jobs:
        assert queue.claim("dead-worker") is not None
    for job in jobs:
        _orphan(store, queue, job.id)

    import time

    barrier = threading.Barrier(4)
    claimed = {0: [], 1: []}
    sweep_totals = [0, 0]
    errors = []
    deadline = time.monotonic() + 60.0

    def _all_reclaimed():
        return len(claimed[0]) + len(claimed[1]) >= len(jobs)

    def claimer(slot):
        try:
            local = JobQueue(store)
            barrier.wait()
            while not _all_reclaimed() and time.monotonic() < deadline:
                job = local.claim(f"pool-{slot}")
                if job is None:
                    continue  # the sweepers may not have requeued yet
                claimed[slot].append(job.id)
                # A live claim heartbeats NOW: sweeps must not touch it.
                local.heartbeat(job.id, f"pool-{slot}")
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    def sweeper(slot):
        try:
            local = JobQueue(store)
            barrier.wait()
            while not _all_reclaimed() and time.monotonic() < deadline:
                sweep_totals[slot] += local.requeue_orphans(60.0)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=claimer, args=(0,)),
        threading.Thread(target=claimer, args=(1,)),
        threading.Thread(target=sweeper, args=(0,)),
        threading.Thread(target=sweeper, args=(1,)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    # Exactly once each: the two pools' claims are disjoint and cover
    # every requeued job.
    assert len(claimed[0]) + len(claimed[1]) == 8
    assert set(claimed[0]).isdisjoint(claimed[1])
    assert set(claimed[0]) | set(claimed[1]) == {j.id for j in jobs}
    assert sum(sweep_totals) == 8  # the orphan sweep, exactly once per job
    # Every job is running under whichever pool claimed it -- the
    # concurrent sweeps never stole a freshly-heartbeaten claim.
    for job in jobs:
        row = queue.get(job.id)
        assert row.status == "running"
        assert row.worker in ("pool-0", "pool-1")
        assert row.attempts == 2  # dead claim + exactly one reclaim
