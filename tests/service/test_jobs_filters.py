"""Job-listing filters and pagination, plus raw result pages.

``GET /v1/jobs`` grew ``?status=``/``?kind=`` filters and
``limit``/``offset`` pagination so a coordinator can watch a busy queue
without downloading the whole table; ``/results?raw=1`` returns exact
:data:`RESULT_COLUMNS` store rows so a merge can preserve provenance.
"""

import json
import urllib.request
from dataclasses import replace

import pytest

from repro.errors import ConfigError
from repro.service import JobQueue, ServiceApp, ServiceServer, WorkerPool
from repro.store import RESULT_COLUMNS, ResultStore
from repro.system.stochastic import named_family


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "filters.db")


@pytest.fixture
def queue(store):
    return JobQueue(store)


def _manifest(n=2, seed=3):
    family = replace(
        named_family("factory-floor"), horizon=120.0, backend="envelope"
    )
    return family.manifest(n=n, seed=seed)


def _scenario_payload(seed):
    from repro.scenario import named_scenario

    return named_scenario("paper").with_seed(seed).to_dict()


@pytest.fixture
def mixed_queue(queue):
    """Five jobs: 3 campaigns (1 cancelled) + 2 scenario jobs."""
    jobs = [queue.submit(_manifest(seed=i), name=f"camp-{i}") for i in range(3)]
    jobs += [
        queue.submit(_scenario_payload(i), name=f"sc-{i}") for i in range(2)
    ]
    queue.cancel(jobs[0].id)
    return jobs


# -- queue-level ---------------------------------------------------------------


def test_filter_by_status_and_kind(queue, mixed_queue):
    assert {j.name for j in queue.jobs(status="cancelled")} == {"camp-0"}
    assert len(queue.jobs(status="queued")) == 4
    assert {j.kind for j in queue.jobs(kind="scenario")} == {"scenario"}
    assert {j.name for j in queue.jobs(status="queued", kind="campaign")} == {
        "camp-1", "camp-2",
    }
    assert queue.jobs(status="failed") == []


def test_count_matches_filters(queue, mixed_queue):
    assert queue.count() == 5
    assert queue.count(status="queued") == 4
    assert queue.count(kind="campaign") == 3
    assert queue.count(status="cancelled", kind="scenario") == 0


def test_pagination_windows_the_newest_first_listing(queue, mixed_queue):
    everything = queue.jobs()
    assert len(everything) == 5
    page1 = queue.jobs(limit=2)
    page2 = queue.jobs(limit=2, offset=2)
    tail = queue.jobs(offset=4)  # offset without limit: rest of the list
    assert [j.id for j in page1 + page2 + tail] == [j.id for j in everything]


def test_filter_validation(queue):
    with pytest.raises(ConfigError, match="unknown job status"):
        queue.jobs(status="exploded")
    with pytest.raises(ConfigError, match="unknown job kind"):
        queue.jobs(kind="sorcery")
    with pytest.raises(ConfigError, match="offset"):
        queue.jobs(offset=-1)


# -- over HTTP -----------------------------------------------------------------


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        return json.loads(resp.read())


@pytest.fixture
def served(store):
    server = ServiceServer(ServiceApp(store)).start()
    yield server
    server.shutdown()


def test_http_listing_filters_and_paginates(served, queue, mixed_queue):
    base = served.url
    doc = _get(base, "/v1/jobs?status=queued&kind=campaign")
    assert doc["total"] == 2 and doc["count"] == 2
    assert {j["name"] for j in doc["jobs"]} == {"camp-1", "camp-2"}

    page = _get(base, "/v1/jobs?limit=2&offset=2")
    assert page["total"] == 5 and page["count"] == 2 and page["offset"] == 2
    everything = _get(base, "/v1/jobs")["jobs"]
    assert [j["id"] for j in page["jobs"]] == [
        j["id"] for j in everything[2:4]
    ]


def test_http_rejects_bad_filter(served, queue):
    import urllib.error

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(served.url, "/v1/jobs?status=exploded")
    assert excinfo.value.code == 400
    assert "unknown job status" in json.loads(excinfo.value.read())["error"]


def test_raw_results_page_carries_exact_store_rows(served, store, queue):
    job = queue.submit(_manifest(n=2, seed=5))
    WorkerPool(store, workers=1, poll_interval=0.05).run_once()

    doc = _get(served.url, f"/v1/jobs/{job.id}/results?raw=1")
    assert doc["raw"] is True and doc["count"] == 2
    for entry in doc["results"]:
        assert "result" not in entry
        row = entry["row"]
        assert len(row) == len(RESULT_COLUMNS)
        assert tuple(row) == store.get_raw(entry["key"])  # exact bytes

    plain = _get(served.url, f"/v1/jobs/{job.id}/results")
    assert plain["raw"] is False
    assert all("row" not in e and "result" in e for e in plain["results"])
