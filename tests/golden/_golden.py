"""Shared machinery for the golden-trace regression fixtures.

A golden trace is the *byte-exact* JSON record of one canonical scenario
run on the envelope backend: the scenario document, the headline metrics,
the full energy audit and the supercapacitor trajectory resampled onto a
fixed grid.  ``build_golden_text`` is the single source of truth used
both by the test (compare) and by ``regen.py`` (rewrite), so the two can
never drift apart.

Float formatting relies on Python's ``repr`` (shortest round-trip form),
which is exact and platform-independent for IEEE doubles -- any change
in the bytes means the simulation itself changed.
"""

import json
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.backends import run
from repro.scenario import named_scenario

#: Fixture directory (this directory).
GOLDEN_DIR = Path(__file__).resolve().parent

#: Canonical scenarios: three qualitatively different regimes -- the
#: paper's stepped sweep, alternating strong/weak bursts, and a
#: cold-start charge-up -- shortened so regeneration stays cheap.
CANONICAL = ("paper", "bursty", "cold-start")

#: Golden horizon (s) and resample grid size.
HORIZON = 900.0
GRID_POINTS = 91


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.golden.json"


def build_golden_text(name: str) -> str:
    """Run the canonical scenario ``name`` and render its golden JSON."""
    scenario = replace(named_scenario(name), horizon=HORIZON, seed=1)
    result = run(scenario)
    grid = np.linspace(0.0, HORIZON, GRID_POINTS)
    v_store = result.traces.trace("v_store").resample(grid)
    breakdown = result.breakdown
    payload = {
        "schema": 1,
        "scenario": scenario.to_dict(),
        "result": {
            "transmissions": result.transmissions,
            "final_voltage": result.final_voltage,
            "final_position": result.final_position,
            "retunes": result.retune_count(),
            "breakdown": {
                "initial_stored": breakdown.initial_stored,
                "final_stored": breakdown.final_stored,
                "harvested": breakdown.harvested,
                "clipped": breakdown.clipped,
                "node_tx": breakdown.node_tx,
                "node_sleep": breakdown.node_sleep,
                "mcu_sleep": breakdown.mcu_sleep,
                "mcu_active": breakdown.mcu_active,
                "accelerometer": breakdown.accelerometer,
                "actuator": breakdown.actuator,
                "shortfall": breakdown.shortfall,
            },
        },
        "trace": {
            "time_s": [float(t) for t in grid],
            "v_store": [float(v) for v in v_store],
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# -- pinned cache keys ---------------------------------------------------------

#: Fixture file for the pinned content hashes.
CACHE_KEYS_PATH = GOLDEN_DIR / "cache_keys.json"

#: Stochastic family whose expansion keys are pinned alongside the
#: deterministic library scenarios.
CACHE_KEY_FAMILY = ("factory-floor", 2, 0)  # (name, n, seed)


def build_cache_keys() -> dict:
    """Compute the pinned content-hash set.

    ``Scenario.cache_key()`` digests are the result store's on-disk row
    keys (:mod:`repro.store`); ``StudySpec.cache_key()`` digests (the
    ``study:`` entries) are the study journal's spec identity -- a
    drifted key makes every journaled study reject resumption as "a
    different spec".  If any digest changes, every existing store
    silently stops matching its contents.  The fixture makes such a
    change loud -- regenerate only for an intentional, reviewed format
    break, and say so in the changelog.
    """
    from repro.core.study import paper_study_spec
    from repro.system.stochastic import named_family

    keys = {
        name: named_scenario(name).cache_key()
        for name in ("paper", "bursty", "low-vibration", "cold-start")
    }
    family_name, n, seed = CACHE_KEY_FAMILY
    for scenario in named_family(family_name).expand(n=n, seed=seed):
        keys[scenario.name] = scenario.cache_key()
    keys["study:paper"] = paper_study_spec().cache_key()
    keys["study:paper-seed1-20min"] = paper_study_spec(
        seed=1, horizon=1200.0
    ).cache_key()
    return keys


def build_cache_keys_text() -> str:
    return json.dumps(build_cache_keys(), indent=2, sort_keys=True) + "\n"
