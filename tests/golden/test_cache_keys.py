"""Pinned ``Scenario.cache_key()`` digests.

The cache key is the content address of every row in the persistent
result store (:mod:`repro.store`) and of every batch-cache entry.  If a
code change alters the key of an unchanged scenario, every store on
disk silently stops matching its contents -- stored work re-simulates,
campaigns "lose" their progress.  This fixture turns that silent drift
into a loud diff: regenerate (``python tests/golden/regen.py``) only for
an intentional, reviewed serialisation change.
"""

import json

from _golden import CACHE_KEYS_PATH, build_cache_keys


def test_cache_keys_match_pinned_digests():
    expected = json.loads(CACHE_KEYS_PATH.read_text())
    actual = build_cache_keys()
    assert actual == expected, (
        "Scenario.cache_key() drifted from the pinned digests -- this "
        "invalidates every existing on-disk result store.  If the change "
        "is intentional, run tests/golden/regen.py and review the diff."
    )


def test_cache_keys_are_sha256_hex():
    for name, key in json.loads(CACHE_KEYS_PATH.read_text()).items():
        assert len(key) == 64 and int(key, 16) >= 0, name


def test_cache_key_is_stable_within_process():
    keys_a = build_cache_keys()
    keys_b = build_cache_keys()
    assert keys_a == keys_b
