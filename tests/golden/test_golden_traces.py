"""Golden-trace regression: any byte-level drift of the envelope backend
on three canonical scenarios fails here.

These fixtures complement the property tests (which allow any physically
valid behaviour) by pinning the *exact* current behaviour: refactors of
the integrator, the policy, the harvester model or the rng plumbing must
either leave every byte alone or regenerate the fixtures deliberately
(see ``regen.py`` in this directory).
"""

import json

import pytest

from _golden import CANONICAL, build_golden_text, golden_path


@pytest.mark.parametrize("name", CANONICAL)
def test_golden_trace_is_byte_stable(name):
    path = golden_path(name)
    assert path.exists(), (
        f"missing golden fixture {path}; run "
        f"'PYTHONPATH=src python tests/golden/regen.py' and commit the result"
    )
    expected = path.read_text()
    actual = build_golden_text(name)
    if actual != expected:  # byte-level comparison, diagnose before failing
        exp = json.loads(expected)["result"]
        act = json.loads(actual)["result"]
        pytest.fail(
            f"golden trace {name!r} drifted: transmissions "
            f"{exp['transmissions']} -> {act['transmissions']}, final voltage "
            f"{exp['final_voltage']!r} -> {act['final_voltage']!r}. If this "
            f"change is intentional, regenerate with "
            f"'PYTHONPATH=src python tests/golden/regen.py' and review the diff."
        )


def test_golden_fixtures_conserve_energy():
    """The committed fixtures themselves must satisfy the energy audit --
    guards against hand-editing."""
    for name in CANONICAL:
        payload = json.loads(golden_path(name).read_text())
        b = payload["result"]["breakdown"]
        consumed = (
            b["node_tx"]
            + b["node_sleep"]
            + b["mcu_sleep"]
            + b["mcu_active"]
            + b["accelerometer"]
            + b["actuator"]
            - b["shortfall"]
        )
        imbalance = (
            b["initial_stored"] + b["harvested"] - consumed - b["final_stored"]
        )
        assert abs(imbalance) < 1e-9
