"""Regenerate the golden-trace fixtures.

Run this ONLY when a simulation change is intentional and reviewed::

    PYTHONPATH=src python tests/golden/regen.py

then inspect the diff of ``tests/golden/*.golden.json`` before
committing: every changed byte is a behaviour change of the envelope
backend that every downstream study will inherit.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _golden import (
    CACHE_KEYS_PATH,
    CANONICAL,
    build_cache_keys_text,
    build_golden_text,
    golden_path,
)


def main() -> int:
    for name in CANONICAL:
        path = golden_path(name)
        path.write_text(build_golden_text(name))
        print(f"wrote {path}")
    CACHE_KEYS_PATH.write_text(build_cache_keys_text())
    print(f"wrote {CACHE_KEYS_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
