"""End-to-end wiring of the vectorized backend through the big drivers.

The backend registry and BatchRunner dispatch are unit-tested elsewhere;
these tests pin the product paths the issue names: a resumable
**campaign** over vectorized scenarios and a declarative **study** whose
spec selects the vectorized backend both execute through the lockstep
engine and reproduce the envelope backend's numbers exactly.
"""

from dataclasses import replace

import pytest

from repro.core.study import Study, paper_study_spec
from repro.store import Campaign, ResultStore
from repro.system.stochastic import named_family
from repro.system.vectorized import numpy_available

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="vectorized backend needs NumPy"
)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "results.db")


def _family_scenarios(backend: str, n=3, horizon=300.0):
    family = replace(
        named_family("intermittent"), horizon=horizon, backend=backend
    )
    return family.expand(n=n, seed=11)


class TestVectorizedCampaign:
    def test_campaign_runs_and_resumes_through_the_batch_engine(self, store):
        scenarios = _family_scenarios("vectorized")
        campaign = Campaign.create(
            store, "vec-camp", scenarios, source="test"
        )
        results = campaign.run(jobs=1)
        status = campaign.status()
        assert status.complete
        assert len(results) == len(scenarios)

        # Resume after completion re-simulates nothing: every row is
        # already in the store under its vectorized cache key.
        resumed = campaign.resume(jobs=1)
        assert [r.transmissions for r in resumed] == [
            r.transmissions for r in results
        ]
        assert store.count_keys(
            [s.cache_key() for s in campaign.scenarios()]
        ) == len(scenarios)

    def test_campaign_matches_envelope_campaign(self, store):
        vec = Campaign.create(
            store, "vec", _family_scenarios("vectorized"), source="test"
        ).run(jobs=1)
        env = Campaign.create(
            store, "env", _family_scenarios("envelope"), source="test"
        ).run(jobs=1)
        assert [r.transmissions for r in vec] == [
            r.transmissions for r in env
        ]
        assert [r.final_voltage for r in vec] == [
            r.final_voltage for r in env
        ]


class TestVectorizedStudy:
    def test_study_spec_backend_reaches_the_engine_and_matches(self, store):
        """The whole declarative pipeline -- DoE, chunked simulation,
        surrogate, optimisers, verification -- on the vectorized backend
        reproduces the envelope study bit-for-bit (same simulated
        responses in, same deterministic stages out)."""
        common = dict(seed=3, n_runs=10, horizon=200.0)
        vec_spec = replace(
            paper_study_spec(backend="vectorized", **common), name="vec-paper"
        )
        env_spec = replace(
            paper_study_spec(backend="envelope", **common), name="env-paper"
        )
        assert vec_spec.cache_key() != env_spec.cache_key()

        vec = Study(vec_spec, store=store).run()
        env = Study(env_spec, store=store).run()
        assert list(vec.responses) == list(env.responses)
        assert vec.summary() == env.summary()

    def test_study_resume_serves_from_store(self, store):
        spec = replace(
            paper_study_spec(backend="vectorized", seed=5, n_runs=10, horizon=200.0),
            name="vec-study",
        )
        first = Study(spec, store=store).run()
        again = Study.load(store, "vec-study").run()
        assert again.summary() == first.summary()
