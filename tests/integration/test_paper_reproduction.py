"""End-to-end reproduction checks of the paper's evaluation (section V).

These run the full one-hour horizon and assert the *shape* of every
published result: Table VI's configurations and ratios, eq. 9's sign
structure, and the Fig. 5 voltage-trace features.
"""

import numpy as np
import pytest

from repro.core.paper import run_paper_flow
from repro.system.config import ORIGINAL_DESIGN, SystemConfig
from repro.system.envelope import simulate


@pytest.fixture(scope="module")
def outcome():
    return run_paper_flow(seed=1)


@pytest.fixture(scope="module")
def original_result():
    return simulate(ORIGINAL_DESIGN, seed=1)


def test_original_design_transmission_count(original_result):
    # Paper Table VI: 405 transmissions/hour for the original design.
    assert 300 <= original_result.transmissions <= 600


def test_optimised_roughly_doubles_transmissions(outcome):
    # Paper: 405 -> 899 (SA) / 894 (GA), i.e. ~2.2x.
    factor = outcome.improvement_factor()
    assert 1.6 <= factor <= 3.2


def test_both_optimizers_find_similar_optima(outcome):
    values = sorted(e.simulated_value for e in outcome.optima)
    assert values[-1] <= 1.25 * values[0]


def test_optimised_configs_pick_short_tx_interval(outcome):
    # Every published optimum drives x3 (tx interval) down; ours must too.
    for entry in outcome.optima:
        assert entry.config.tx_interval_s < 1.0


def test_eq9_x3_main_effect_dominates(outcome):
    # Paper eq. (9): the transmission-interval main effect (-208 x3) is the
    # largest linear coefficient and is negative.
    k = 3
    linear = outcome.model.coefficients[1 : 1 + k]
    assert linear[2] < 0
    assert abs(linear[2]) == max(abs(c) for c in linear)


def test_rsm_fits_design_points_exactly_when_saturated(outcome):
    # 10 runs, 10 coefficients: residuals vanish (as in the paper's setup).
    predicted = outcome.model.predict_coded(outcome.design.points)
    assert np.allclose(predicted, outcome.responses, atol=1e-6)


def test_fig5_voltage_trace_features(original_result):
    v = original_result.traces["v_store"]
    # Starts at the calibrated initial voltage and charges up.
    assert v.values[0] == pytest.approx(2.65, abs=1e-6)
    assert v.max() > 2.8
    # Stays within physical rails.
    assert v.min() >= 2.0
    assert v.max() <= 3.6
    # Visible retune dips: voltage drops by >30 mV around each retune.
    for ev in original_result.tuning_events:
        if ev.result.retuned:
            before = v.interp(ev.time - 1.0)
            after = v.interp(ev.time + ev.duration + 1.0)
            assert before - after > 0.03


def test_fig5_optimised_trace_rides_lower(outcome, original_result):
    # The optimised system converts the surplus into transmissions, so its
    # supercap voltage must sit at/below the original's late in the run.
    best = outcome.best()
    opt_result = simulate(best.config, seed=1)
    t_late = np.linspace(2000.0, 3500.0, 20)
    v_orig = original_result.traces["v_store"].resample(t_late)
    v_opt = opt_result.traces["v_store"].resample(t_late)
    assert np.mean(v_opt) <= np.mean(v_orig) + 0.02


def test_paper_sa_config_matches_published_scale():
    # Simulating the paper's own SA optimum (8 MHz / 60 s / 5 ms) should
    # land in the high-transmission regime (paper: 899).
    res = simulate(SystemConfig(8e6, 60.0, 0.005), seed=1)
    assert res.transmissions > 600


def test_energy_audit_every_config(outcome):
    for entry in outcome.optima:
        res = simulate(entry.config, seed=1, record_traces=False)
        assert abs(res.breakdown.imbalance()) < 1e-9
