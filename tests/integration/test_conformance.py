"""Cross-backend conformance: every named scenario and stochastic family
through both fidelity levels.

The envelope backend exists so hour-scale studies are affordable; its
licence to exist is that it tells the *same physical story* as the
cycle-accurate MNA co-simulation.  These tests run every named scenario
and one fixed-seed instance of every stochastic family through both
backends over a short window under identical excitation
(:func:`repro.backends.run_conformance`) and pin agreement envelopes on
the lifetime metric (net stored-energy rate / final voltage) and the
throughput metric (transmission count).

The envelopes are deliberately loose -- the detailed model includes the
mechanical ring-up transient and discrete transmission notches the
envelope model averages away -- but they are two-sided and fail loudly
if either backend's physics drifts.
"""

from dataclasses import replace

import pytest

from repro.backends import run_conformance
from repro.scenario import Scenario, named_scenario, scenario_names
from repro.system.config import SystemConfig
from repro.system.stochastic import family_names, named_family
from repro.system.vibration import VibrationProfile

pytestmark = pytest.mark.slow

#: Conformance window (simulated s).  The detailed backend integrates
#: ~65 Hz cycles at 50 points each, so this is what keeps the suite fast.
HORIZON = 2.0
#: Net-energy agreement band when both backends see significant flow;
#: the detailed model's ring-up transient makes perfect agreement wrong.
RATIO_BAND = (0.2, 5.0)
#: Energy flow below this (J) is compared absolutely, not by ratio.
SIGNIFICANT = 5e-5
#: Final-voltage agreement (V) over the window.
V_TOL = 0.01


def _conform(scenario: Scenario):
    """Run one scenario on both backends over the short window."""
    # A huge watchdog keeps tuning sessions out of the window: they cost
    # seconds of settle time, which the 2 s window cannot contain.
    config = replace(scenario.config, watchdog_s=1e4)
    short = replace(scenario, config=config, horizon=HORIZON, seed=1, options={})
    return short, run_conformance(short)


def _net_energy(result, v_init: float, capacitance: float = 0.55) -> float:
    return 0.5 * capacitance * (result.final_voltage**2 - v_init**2)


def _assert_agreement(name, scenario, results):
    env, det = results["envelope"], results["detailed"]
    v_init = 2.65 if scenario.parts is None else scenario.parts.v_init

    # Lifetime metric: final voltage (equivalently stored energy).
    assert det.final_voltage == pytest.approx(env.final_voltage, abs=V_TOL), (
        f"{name}: final voltage disagrees "
        f"(envelope {env.final_voltage:.4f} V, detailed {det.final_voltage:.4f} V)"
    )

    # Net energy: ratio agreement when the flow is significant, absolute
    # agreement when it is not (both nearly dormant).
    e_env = _net_energy(env, v_init)
    e_det = _net_energy(det, v_init)
    if min(abs(e_env), abs(e_det)) > SIGNIFICANT:
        assert e_env * e_det > 0.0, (
            f"{name}: net energy signs disagree ({e_env:.2e} vs {e_det:.2e})"
        )
        ratio = e_det / e_env
        assert RATIO_BAND[0] < ratio < RATIO_BAND[1], (
            f"{name}: net energy ratio {ratio:.2f} outside {RATIO_BAND}"
        )
    else:
        assert abs(e_env - e_det) < 20 * SIGNIFICANT, (
            f"{name}: near-dormant energies differ ({e_env:.2e} vs {e_det:.2e})"
        )

    # Throughput metric: over 2 s the counts are small integers; the
    # envelope's continuous accumulation may round one differently.
    assert abs(env.transmissions - det.transmissions) <= max(
        2, 0.5 * max(env.transmissions, det.transmissions)
    ), (
        f"{name}: transmissions disagree "
        f"(envelope {env.transmissions}, detailed {det.transmissions})"
    )


@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_named_scenarios_conform(name):
    scenario, results = _conform(named_scenario(name))
    _assert_agreement(name, scenario, results)


@pytest.mark.parametrize("name", sorted(family_names()))
def test_stochastic_families_conform(name):
    # Expand at the conformance horizon so the generated profile covers
    # exactly the window; seed fixed so this test is deterministic.
    family = replace(named_family(name), horizon=HORIZON)
    (scenario,) = family.expand(n=1, seed=7)
    scenario, results = _conform(scenario)
    _assert_agreement(name, scenario, results)


def test_fast_band_throughput_conforms():
    """With the store parked in the fast band and a short interval, both
    backends must deliver the same transmission rate."""
    from repro.scenario import PartsSpec

    scenario = Scenario(
        config=SystemConfig(clock_hz=4e6, watchdog_s=1e4, tx_interval_s=0.25),
        parts=PartsSpec(v_init=2.85),
        profile=VibrationProfile.constant(64.0, accel_mg=60.0),
        horizon=HORIZON,
        seed=1,
    )
    results = run_conformance(scenario)
    env, det = results["envelope"], results["detailed"]
    expected = HORIZON / 0.25
    assert env.transmissions == pytest.approx(expected, abs=1)
    assert det.transmissions == pytest.approx(expected, abs=1)
