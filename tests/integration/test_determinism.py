"""Full-flow determinism: one seed, identical artefacts.

The entire reproduction must be bit-stable per seed -- the benchmark
harness's paper-vs-measured records are only meaningful if a re-run
regenerates them exactly.
"""

import numpy as np

from repro.core.paper import run_paper_flow
from repro.system.config import ORIGINAL_DESIGN
from repro.system.envelope import simulate


def test_simulation_bitwise_stable():
    a = simulate(ORIGINAL_DESIGN, seed=99)
    b = simulate(ORIGINAL_DESIGN, seed=99)
    assert a.transmissions == b.transmissions
    assert a.final_voltage == b.final_voltage
    assert a.breakdown.harvested == b.breakdown.harvested
    assert np.array_equal(a.traces["v_store"].values, b.traces["v_store"].values)


def test_paper_flow_bitwise_stable():
    a = run_paper_flow(seed=4, horizon=900.0)
    b = run_paper_flow(seed=4, horizon=900.0)
    assert np.array_equal(a.design.points, b.design.points)
    assert np.array_equal(a.responses, b.responses)
    assert np.array_equal(a.model.coefficients, b.model.coefficients)
    for ea, eb in zip(a.optima, b.optima):
        assert ea.method == eb.method
        assert np.array_equal(ea.coded, eb.coded)
        assert ea.simulated_value == eb.simulated_value


def test_different_seeds_differ():
    a = run_paper_flow(seed=4, horizon=900.0)
    b = run_paper_flow(seed=5, horizon=900.0)
    # Designs and/or measurement noise differ -> coefficients differ.
    assert not np.array_equal(a.model.coefficients, b.model.coefficients)
