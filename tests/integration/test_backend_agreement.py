"""Envelope vs detailed backend agreement.

The envelope model exists for speed; these tests pin how far it may stray
from the cycle-accurate MNA co-simulation on short windows.
"""

import numpy as np
import pytest

from repro.system.components import paper_system
from repro.system.config import SystemConfig
from repro.system.detailed import DetailedSimulator
from repro.system.envelope import EnvelopeSimulator
from repro.system.vibration import VibrationProfile
from repro.units import mg_to_mps2

pytestmark = pytest.mark.slow


def _net_power_detailed(v_init: float, duration: float = 2.0, f: float = 64.0):
    parts = paper_system()
    cfg = SystemConfig(clock_hz=4e6, watchdog_s=1e4, tx_interval_s=1e3)
    sim = DetailedSimulator(
        cfg, parts=parts, profile=VibrationProfile.constant(f), v_init=v_init
    )
    res = sim.run(duration)
    c = parts.store.capacitance
    return (res.final_voltage**2 - v_init**2) * 0.5 * c / duration


def test_charging_power_same_order_of_magnitude():
    p_detail = _net_power_detailed(2.65)
    parts = paper_system()
    p_env = parts.microgenerator.charging_power(64.0, mg_to_mps2(60.0), 2.65)
    assert p_detail > 0
    # Same order: the envelope is a calibrated average, the detailed model
    # includes the mechanical ring-up transient.
    assert 0.3 < p_detail / p_env < 3.0


def test_detailed_charging_decreases_with_voltage():
    p_low = _net_power_detailed(2.60)
    p_high = _net_power_detailed(2.95)
    assert p_low > p_high


def test_detuned_generator_charges_nothing_in_detail():
    parts = paper_system(initial_frequency=64.0)
    cfg = SystemConfig(clock_hz=4e6, watchdog_s=1e4, tx_interval_s=1e3)
    sim = DetailedSimulator(
        cfg, parts=parts, profile=VibrationProfile.constant(74.0), v_init=2.65
    )
    res = sim.run(2.0)
    p_net = (res.final_voltage**2 - 2.65**2) * 0.5 * 0.55 / 2.0
    assert abs(p_net) < 20e-6  # essentially no charging when 10 Hz off


def test_detailed_transmission_notches_voltage():
    parts = paper_system(v_init=2.85)
    cfg = SystemConfig(clock_hz=4e6, watchdog_s=1e4, tx_interval_s=0.5)
    sim = DetailedSimulator(
        cfg, parts=parts, profile=VibrationProfile.constant(64.0), v_init=2.85
    )
    res = sim.run(2.0)
    assert res.transmissions >= 3
    # Each 4.5 ms burst draws ~17 mA: visible ripple on the supercap ESR.
    v = res.traces["v(vdc)"]
    assert v.max() - v.min() > 1e-4


def test_detailed_tuning_session_retunes_generator():
    parts = paper_system(initial_frequency=64.0)
    cfg = SystemConfig(clock_hz=4e6, watchdog_s=1e4, tx_interval_s=1e3)
    sim = DetailedSimulator(
        cfg, parts=parts, profile=VibrationProfile.constant(69.0), v_init=2.9
    )
    sim.run(1.5)  # let the mechanical transient ring up to steady state
    out = sim.run_tuning_session()
    session = out.session
    assert session is not None and session.retuned
    # Frequency measured from waveform zero crossings lands near 69 Hz.
    assert session.measured_frequency == pytest.approx(69.0, abs=0.5)
    f_r = parts.microgenerator.tuning_map.resonant_frequency(
        parts.microgenerator.position
    )
    assert f_r == pytest.approx(69.0, abs=0.3)
