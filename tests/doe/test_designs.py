"""Classical designs: factorial, CCD, Box-Behnken, LHS."""

import numpy as np
import pytest

from repro.doe.bbd import box_behnken
from repro.doe.ccd import central_composite
from repro.doe.design import Design
from repro.doe.factorial import (
    fractional_factorial,
    full_factorial,
    two_level_factorial,
)
from repro.doe.lhs import latin_hypercube
from repro.errors import DesignError


class TestFactorial:
    def test_paper_reference_27_runs(self):
        d = full_factorial(3, 3)
        assert d.n_runs == 27
        assert d.supports_model("quadratic")

    def test_two_level_corners(self):
        d = two_level_factorial(3)
        assert d.n_runs == 8
        assert np.all(np.abs(d.points) == 1.0)

    def test_levels_are_even(self):
        d = full_factorial(2, 5)
        assert set(np.unique(d.points)) == {-1.0, -0.5, 0.0, 0.5, 1.0}

    def test_two_level_cannot_fit_quadratic(self):
        d = two_level_factorial(3)
        assert not d.supports_model("quadratic")
        assert d.supports_model("interaction")

    def test_fractional_half_fraction(self):
        d = fractional_factorial(3, ["d=abc"])
        assert d.n_runs == 8 and d.k == 4
        # defining relation: column d equals product of a, b, c
        prod = d.points[:, 0] * d.points[:, 1] * d.points[:, 2]
        assert np.allclose(prod, d.points[:, 3])

    def test_fractional_validation(self):
        with pytest.raises(DesignError):
            fractional_factorial(3, ["d=xyz"])
        with pytest.raises(DesignError):
            fractional_factorial(3, ["a=bc"])
        with pytest.raises(DesignError):
            fractional_factorial(3, ["bad generator"])


class TestCcd:
    def test_structure(self):
        d = central_composite(3, n_center=2)
        assert d.n_runs == 8 + 6 + 2
        assert d.supports_model("quadratic")

    def test_face_centered_stays_in_box(self):
        d = central_composite(4, alpha="face")
        assert np.max(np.abs(d.points)) <= 1.0

    def test_star_points_on_axes(self):
        d = central_composite(2, n_center=0)
        stars = d.points[4:]
        for row in stars:
            assert np.sum(row != 0.0) == 1

    def test_validation(self):
        with pytest.raises(DesignError):
            central_composite(1)
        with pytest.raises(DesignError):
            central_composite(3, alpha="banana")


class TestBbd:
    def test_structure_k3(self):
        d = box_behnken(3, n_center=3)
        assert d.n_runs == 12 + 3
        assert d.supports_model("quadratic")

    def test_no_corners(self):
        d = box_behnken(3, n_center=0)
        # every run has at least one coordinate at 0
        assert np.all(np.min(np.abs(d.points), axis=1) == 0.0)

    def test_requires_three_factors(self):
        with pytest.raises(DesignError):
            box_behnken(2)


class TestLhs:
    def test_stratification(self):
        d = latin_hypercube(3, 10, seed=0)
        assert d.n_runs == 10
        for j in range(3):
            bins = np.floor((d.points[:, j] + 1.0) / 2.0 * 10).astype(int)
            bins = np.clip(bins, 0, 9)
            assert len(set(bins)) == 10  # one sample per stratum

    def test_maximin_improves_min_distance(self):
        def min_dist(d):
            pts = d.points
            diffs = pts[:, None, :] - pts[None, :, :]
            dist = np.sqrt((diffs**2).sum(axis=2))
            np.fill_diagonal(dist, np.inf)
            return dist.min()

        plain = latin_hypercube(2, 12, seed=3, criterion="none")
        opt = latin_hypercube(2, 12, seed=3, criterion="maximin", n_restarts=50)
        assert min_dist(opt) >= min_dist(plain) * 0.9  # usually strictly better

    def test_seed_reproducible(self):
        a = latin_hypercube(3, 8, seed=42)
        b = latin_hypercube(3, 8, seed=42)
        assert np.allclose(a.points, b.points)

    def test_validation(self):
        with pytest.raises(DesignError):
            latin_hypercube(3, 1)
        with pytest.raises(DesignError):
            latin_hypercube(3, 5, criterion="banana")


class TestDesignContainer:
    def test_natural_points_require_space(self):
        d = Design(np.zeros((3, 2)))
        with pytest.raises(DesignError):
            d.natural_points()

    def test_out_of_box_rejected(self):
        with pytest.raises(DesignError):
            Design(np.array([[1.5, 0.0]]))

    def test_append_and_unique(self):
        a = Design(np.array([[0.0, 0.0], [1.0, 1.0]]))
        b = Design(np.array([[0.0, 0.0], [-1.0, 1.0]]))
        merged = a.append(b)
        assert merged.n_runs == 4
        assert merged.unique().n_runs == 3
