"""Design augmentation tests."""

import numpy as np
import pytest

from repro.doe.augment import augment_d_optimal
from repro.doe.doptimal import d_optimal
from repro.errors import DesignError


def test_augmentation_keeps_existing_runs():
    base = d_optimal(3, 10, seed=0)
    augmented = augment_d_optimal(base, 4, seed=0)
    assert augmented.n_runs == 14
    assert np.allclose(augmented.points[:10], base.points)


def test_augmentation_improves_information():
    base = d_optimal(3, 10, seed=1)
    augmented = augment_d_optimal(base, 4, seed=1)
    assert augmented.log_d_criterion() > base.log_d_criterion()


def test_augmented_design_gains_residual_dof():
    base = d_optimal(3, 10, seed=2)  # saturated for the quadratic
    augmented = augment_d_optimal(base, 3, seed=2)
    X = augmented.model_matrix("quadratic")
    assert X.shape[0] - X.shape[1] == 3  # residual degrees of freedom


def test_augmentation_close_to_fresh_design():
    # 10 + 5 augmented should not be much worse than a fresh 15-run design.
    base = d_optimal(3, 10, seed=3)
    augmented = augment_d_optimal(base, 5, seed=3)
    fresh = d_optimal(3, 15, seed=3)
    assert augmented.log_d_criterion() > fresh.log_d_criterion() - 2.0


def test_validation():
    base = d_optimal(3, 10, seed=4)
    with pytest.raises(DesignError):
        augment_d_optimal(base, 0)
    with pytest.raises(DesignError):
        augment_d_optimal(base, 2, candidates=np.zeros((5, 2)))
