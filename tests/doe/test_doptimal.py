"""D-optimal design construction and efficiency criteria."""

import numpy as np
import pytest

from repro.doe.candidates import grid_candidates, random_candidates
from repro.doe.criteria import (
    a_efficiency,
    d_efficiency,
    g_efficiency,
    i_criterion,
    prediction_variance,
)
from repro.doe.design import Design
from repro.doe.doptimal import d_optimal
from repro.doe.factorial import full_factorial
from repro.errors import DesignError


def test_paper_design_ten_runs_supports_quadratic():
    d = d_optimal(3, 10, seed=0)
    assert d.n_runs == 10
    assert d.supports_model("quadratic")
    assert np.isfinite(d.log_d_criterion("quadratic"))


def test_candidates_default_three_level_grid():
    cand = grid_candidates(3)
    assert cand.shape == (27, 3)
    assert set(np.unique(cand)) == {-1.0, 0.0, 1.0}


def test_doptimal_beats_random_selection():
    rng = np.random.default_rng(0)
    cand = grid_candidates(3)
    best_random = -np.inf
    for _ in range(50):
        idx = rng.choice(27, size=10, replace=False)
        d = Design(cand[idx])
        best_random = max(best_random, d.log_d_criterion("quadratic"))
    opt = d_optimal(3, 10, seed=1)
    assert opt.log_d_criterion("quadratic") >= best_random - 1e-9


def test_coordinate_exchange_matches_fedorov_quality():
    fed = d_optimal(3, 10, method="fedorov", seed=2)
    coord = d_optimal(3, 10, method="coordinate", seed=2)
    lf = fed.log_d_criterion("quadratic")
    lc = coord.log_d_criterion("quadratic")
    assert lc >= lf - 1.0  # same ballpark


def test_d_efficiency_of_optimal_close_to_factorial():
    # Per-run efficiency of the 10-run D-optimal design should be close to
    # (or better than) the 27-run factorial's: that is the point of the
    # paper's "10 simulations instead of 27".
    opt = d_optimal(3, 10, seed=3)
    fact = full_factorial(3, 3)
    assert d_efficiency(opt) > 0.65 * d_efficiency(fact)


def test_more_runs_never_hurt_log_det():
    d10 = d_optimal(3, 10, seed=4)
    d15 = d_optimal(3, 15, seed=4)
    assert d15.log_d_criterion() > d10.log_d_criterion()


def test_min_runs_enforced():
    with pytest.raises(DesignError):
        d_optimal(3, 9)  # quadratic in 3 vars needs 10 coefficients


def test_bad_method_and_candidates():
    with pytest.raises(DesignError):
        d_optimal(3, 10, method="banana")
    with pytest.raises(DesignError):
        d_optimal(3, 10, candidates=np.zeros((5, 2)))


def test_random_candidates_shape_and_range():
    cand = random_candidates(3, 100, seed=0)
    assert cand.shape == (100, 3)
    assert np.all(np.abs(cand) <= 1.0)


class TestCriteria:
    def test_efficiencies_in_unit_interval_for_factorial(self):
        d = full_factorial(3, 3)
        for eff in (d_efficiency(d), a_efficiency(d), g_efficiency(d)):
            assert 0.0 < eff <= 1.05

    def test_prediction_variance_center_vs_corner(self):
        d = full_factorial(3, 3)
        spv = prediction_variance(d, np.array([[0, 0, 0], [1, 1, 1]]))
        assert spv[0] < spv[1]  # corners predict worse

    def test_i_criterion_smaller_for_larger_design(self):
        small = d_optimal(3, 10, seed=5)
        big = full_factorial(3, 3)
        assert i_criterion(big) < i_criterion(small) * 1.5

    def test_singular_design_zero_efficiency(self):
        d = Design(np.zeros((12, 3)))
        assert d_efficiency(d) == 0.0
        assert a_efficiency(d) == 0.0
