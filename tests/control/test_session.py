"""Tuning session logic tests against a scripted fake backend.

The fake backend implements a perfect little world: a true input
frequency, an exact position->frequency map, and deterministic phase
readings -- so each branch of Algorithms 1-3 can be pinned precisely.
"""

import pytest

from repro.control.commands import (
    CheckEnergy,
    GetCurrentPosition,
    MeasureFrequency,
    MeasurePhase,
    MoveActuatorTo,
    Settle,
    StepActuator,
)
from repro.control.runner import ControllerBackend, run_session
from repro.control.session import tuning_session
from repro.digital.lut import FrequencyLut
from repro.errors import ModelError, SimulationError


class FakeBackend(ControllerBackend):
    """Linear map world: position p has resonance (60 + p * 20/255) Hz."""

    def __init__(self, f_input=69.0, position=0, voltage=2.9, phase_gain=1e-3):
        self.f_input = f_input
        self.position = float(position)
        self.voltage = voltage
        self.phase_gain = phase_gain  # seconds of phase per Hz of detune
        self.commands = []
        self.settle_time = 0.0

    def resonance(self):
        return 60.0 + self.position * 20.0 / 255.0

    def check_energy(self, cmd):
        self.commands.append(cmd)
        return self.voltage >= cmd.threshold

    def measure_frequency(self, cmd):
        self.commands.append(cmd)
        return self.f_input

    def get_position(self, cmd):
        self.commands.append(cmd)
        return int(round(self.position))

    def move_actuator_to(self, cmd):
        self.commands.append(cmd)
        moved = abs(cmd.position - self.position)
        self.position = float(cmd.position)
        return int(moved)

    def step_actuator(self, cmd):
        self.commands.append(cmd)
        new = min(max(self.position + cmd.direction, 0.0), 255.0)
        moved = abs(new - self.position)
        self.position = new
        return int(moved)

    def settle(self, cmd):
        self.commands.append(cmd)
        self.settle_time += cmd.duration

    def measure_phase(self, cmd):
        self.commands.append(cmd)
        # positive when resonance sits above the input (MeasurePhase doc).
        return self.phase_gain * (self.resonance() - self.f_input)


def _lut():
    # Perfect LUT for the fake world's linear map.
    positions = []
    for i in range(256):
        f = 58.0 + i * (82.0 - 58.0) / 255.0
        p = round((f - 60.0) * 255.0 / 20.0)
        positions.append(min(max(p, 0), 255))
    return FrequencyLut(58.0, 82.0, positions)


def test_low_energy_skips_everything():
    backend = FakeBackend(voltage=2.4)
    result = run_session(tuning_session(_lut()), backend)
    assert result.skipped_low_energy
    assert result.measured_frequency is None
    assert len(backend.commands) == 1
    assert isinstance(backend.commands[0], CheckEnergy)


def test_already_tuned_goes_back_to_sleep():
    backend = FakeBackend(f_input=69.0)
    backend.position = float(_lut().lookup(69.0))
    result = run_session(tuning_session(_lut()), backend)
    assert not result.retuned
    assert result.coarse_iterations == 0
    assert result.fine_steps == 0
    # No actuator commands issued.
    assert not any(
        isinstance(c, (MoveActuatorTo, StepActuator)) for c in backend.commands
    )


def test_coarse_tuning_moves_to_lut_optimum():
    backend = FakeBackend(f_input=69.0, position=0)
    result = run_session(tuning_session(_lut()), backend)
    assert result.retuned
    assert result.coarse_iterations == 1
    assert result.optimum_position == _lut().lookup(69.0)
    assert int(round(backend.position)) == pytest.approx(result.optimum_position, abs=1)
    # Settle waited 5 s at least once (Algorithm 2, step 4).
    assert backend.settle_time >= 5.0


def test_fine_tuning_runs_when_phase_large():
    # Make each position step worth lots of phase so the initial residual
    # detune after coarse tuning exceeds the threshold.
    backend = FakeBackend(f_input=69.03, position=0, phase_gain=5e-2)
    result = run_session(tuning_session(_lut()), backend)
    assert result.retuned
    assert result.fine_steps >= 1


def test_fine_tuning_converges_or_reverts():
    backend = FakeBackend(f_input=69.03, position=0, phase_gain=5e-3)
    result = run_session(tuning_session(_lut(), max_fine_steps=8), backend)
    final_detune = abs(backend.resonance() - 69.03)
    # The best achievable is within one actuator quantum (20/255 Hz).
    assert final_detune <= 20.0 / 255.0 + 1e-9


def test_phase_below_threshold_skips_fine_steps():
    backend = FakeBackend(f_input=69.0, position=0, phase_gain=1e-7)
    result = run_session(tuning_session(_lut()), backend)
    assert result.retuned
    assert result.fine_converged
    assert result.fine_steps == 0


def test_fine_step_direction_reduces_detune():
    # Start exactly one position below optimum with phase above threshold:
    # resonance below input -> negative phase -> step direction +1.
    lut = _lut()
    opt = lut.lookup(69.0)
    backend = FakeBackend(f_input=69.0, position=opt - 2, phase_gain=5e-3)
    session = tuning_session(lut, position_tolerance=0)
    result = run_session(session, backend)
    assert abs(backend.resonance() - 69.0) <= 20.0 / 255.0


def test_max_fine_steps_guard():
    backend = FakeBackend(f_input=69.04, position=0, phase_gain=1.0)
    # Impossible threshold: the loop must stop at the guard.
    result = run_session(
        tuning_session(_lut(), phase_threshold=1e-12, max_fine_steps=3), backend
    )
    assert result.fine_steps <= 4  # 3 + possible revert step
    assert not result.fine_converged


def test_session_parameter_validation():
    with pytest.raises(ModelError):
        next(tuning_session(_lut(), phase_threshold=0.0))
    with pytest.raises(ModelError):
        next(tuning_session(_lut(), position_tolerance=-1))


def test_runner_rejects_non_result_generator():
    def bogus():
        yield CheckEnergy()
        return 42  # not a SessionResult

    backend = FakeBackend()
    with pytest.raises(SimulationError):
        run_session(bogus(), backend)


def test_command_validation():
    with pytest.raises(ModelError):
        MoveActuatorTo(position=300)
    with pytest.raises(ModelError):
        StepActuator(direction=2)
    with pytest.raises(ModelError):
        Settle(duration=-1.0)
