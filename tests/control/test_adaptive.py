"""Adaptive watchdog policy and its envelope-simulator integration."""

import pytest

from repro.control.adaptive import AdaptiveEnvelopeSimulator, AdaptiveWatchdog
from repro.control.session import SessionResult
from repro.errors import ConfigError
from repro.system.components import paper_system
from repro.system.config import SystemConfig
from repro.system.envelope import EnvelopeSimulator
from repro.system.vibration import VibrationProfile


def _idle():
    return SessionResult(retuned=False)


def _retuned():
    return SessionResult(retuned=True)


class TestAdaptiveWatchdog:
    def test_backoff_doubles_until_max(self):
        wd = AdaptiveWatchdog(min_period=60.0, max_period=600.0, backoff=2.0)
        periods = [wd.update(_idle()) for _ in range(6)]
        assert periods == [120.0, 240.0, 480.0, 600.0, 600.0, 600.0]

    def test_retune_resets_to_min(self):
        wd = AdaptiveWatchdog(min_period=60.0, max_period=600.0)
        wd.update(_idle())
        wd.update(_idle())
        assert wd.update(_retuned()) == 60.0

    def test_low_energy_also_resets(self):
        wd = AdaptiveWatchdog(min_period=60.0, max_period=600.0)
        wd.update(_idle())
        assert wd.update(SessionResult(skipped_low_energy=True)) == 60.0

    def test_reset(self):
        wd = AdaptiveWatchdog(min_period=60.0, max_period=600.0)
        wd.update(_idle())
        wd.reset()
        assert wd.period == 60.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            AdaptiveWatchdog(min_period=0.0)
        with pytest.raises(ConfigError):
            AdaptiveWatchdog(min_period=100.0, max_period=50.0)
        with pytest.raises(ConfigError):
            AdaptiveWatchdog(backoff=1.0)


class TestAdaptiveSimulator:
    def test_wakeups_back_off_under_steady_input(self):
        cfg = SystemConfig(clock_hz=4e6, watchdog_s=600.0, tx_interval_s=5.0)
        sim = AdaptiveEnvelopeSimulator(
            cfg,
            parts=paper_system(v_init=2.85),
            profile=VibrationProfile.constant(64.0),
            seed=0,
            record_traces=False,
        )
        res = sim.run(3600.0)
        gaps = [
            b.time - a.time
            for a, b in zip(res.tuning_events, res.tuning_events[1:])
        ]
        # Gaps grow (already tuned every time) and saturate at the max.
        assert gaps[0] < gaps[-1]
        assert gaps[-1] == pytest.approx(600.0, abs=1.0)

    def test_retune_restores_vigilance(self):
        cfg = SystemConfig(clock_hz=4e6, watchdog_s=600.0, tx_interval_s=5.0)
        sim = AdaptiveEnvelopeSimulator(
            cfg,
            parts=paper_system(v_init=2.85),
            profile=VibrationProfile.paper_profile(),
            seed=0,
            record_traces=False,
        )
        res = sim.run(3600.0)
        retune_times = [ev.time for ev in res.tuning_events if ev.result.retuned]
        assert retune_times  # the frequency steps forced retunes
        for t_retune in retune_times:
            following = [
                ev.time for ev in res.tuning_events if ev.time > t_retune
            ]
            if following:
                # Next wake-up arrives within ~the minimum period.
                assert following[0] - t_retune <= 60.0 * 1.5

    def test_adaptive_beats_fixed_slow_watchdog(self):
        # Same 600 s maximum: the fixed schedule leaves the generator
        # detuned for up to 10 minutes after each step; adaptive reacts
        # within ~1 minute once anything changes, harvesting more.
        cfg = SystemConfig(clock_hz=4e6, watchdog_s=600.0, tx_interval_s=0.02)
        fixed = EnvelopeSimulator(
            cfg, parts=paper_system(), profile=VibrationProfile.paper_profile(),
            seed=0, record_traces=False,
        ).run(3600.0)
        adaptive = AdaptiveEnvelopeSimulator(
            cfg, parts=paper_system(), profile=VibrationProfile.paper_profile(),
            seed=0, record_traces=False,
        ).run(3600.0)
        assert adaptive.transmissions >= fixed.transmissions
        assert abs(adaptive.breakdown.imbalance()) < 1e-9
