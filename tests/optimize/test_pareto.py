"""Multi-objective machinery: dominance, sorting, crowding, NSGA-II."""

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.optimize.pareto import (
    ParetoResult,
    crowding_distance,
    dominates,
    non_dominated_sort,
    nsga2,
    pareto_front,
)


class TestDominance:
    def test_strict_dominance(self):
        assert dominates(np.array([2.0, 2.0]), np.array([1.0, 1.0]))
        assert dominates(np.array([2.0, 1.0]), np.array([1.0, 1.0]))

    def test_equal_does_not_dominate(self):
        assert not dominates(np.array([1.0, 1.0]), np.array([1.0, 1.0]))

    def test_tradeoff_is_incomparable(self):
        a, b = np.array([2.0, 0.0]), np.array([0.0, 2.0])
        assert not dominates(a, b) and not dominates(b, a)


class TestSorting:
    def test_two_fronts(self):
        objs = np.array([[2, 2], [1, 1], [3, 0], [0, 3], [0, 0]])
        fronts = non_dominated_sort(objs)
        assert set(fronts[0]) == {0, 2, 3}
        assert set(fronts[1]) == {1}
        assert set(fronts[2]) == {4}

    def test_pareto_front_of_convex_cloud(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1, size=(200, 2))
        front = pareto_front(pts)
        # No front member may be dominated by any cloud member.
        for i in front:
            assert not any(dominates(pts[j], pts[i]) for j in range(len(pts)))

    def test_fronts_partition_everything(self):
        rng = np.random.default_rng(1)
        objs = rng.normal(size=(50, 3))
        fronts = non_dominated_sort(objs)
        combined = np.concatenate(fronts)
        assert sorted(combined.tolist()) == list(range(50))


class TestCrowding:
    def test_extremes_are_infinite(self):
        objs = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        crowd = crowding_distance(objs)
        assert np.isinf(crowd[0]) and np.isinf(crowd[3])
        assert np.isfinite(crowd[1]) and np.isfinite(crowd[2])

    def test_lonelier_point_scores_higher(self):
        objs = np.array([[0.0, 4.0], [0.9, 3.1], [1.0, 3.0], [4.0, 0.0]])
        crowd = crowding_distance(objs)
        # point 1 and 2 are nearly coincident; both extremes infinite.
        assert crowd[1] <= crowd[2] * 2  # both small relative to extremes

    def test_tiny_front(self):
        assert np.all(np.isinf(crowding_distance(np.array([[1.0, 2.0]]))))


class TestNsga2:
    def test_recovers_concave_front(self):
        # maximise (x, 1-x^2) over x in [0,1]: front is the curve itself.
        def objs(x):
            return [float(x[0]), float(1.0 - x[0] ** 2)]

        res = nsga2(objs, [(0.0, 1.0)], population_size=30, n_generations=30, seed=2)
        assert len(res.points) >= 10
        # Every front member lies near the analytic curve.
        f1 = res.objectives[:, 0]
        f2 = res.objectives[:, 1]
        assert np.allclose(f2, 1.0 - f1**2, atol=1e-6)
        # The front spans most of the trade-off.
        assert f1.max() - f1.min() > 0.5

    def test_front_members_mutually_nondominated(self):
        def objs(x):
            return [float(x[0]), float(-x[0] + x[1] * 0.1)]

        res = nsga2(objs, [(0, 1), (0, 1)], population_size=20, n_generations=10, seed=3)
        for i in range(len(res.objectives)):
            for j in range(len(res.objectives)):
                assert not dominates(res.objectives[i], res.objectives[j]) or i == j

    def test_knee_point_balances(self):
        objs = np.array([[1.0, 0.0], [0.7, 0.7], [0.0, 1.0]])
        res = ParetoResult(points=np.zeros((3, 1)), objectives=objs, n_evaluations=0)
        _, knee = res.knee_point()
        assert np.allclose(knee, [0.7, 0.7])

    def test_sorted_by(self):
        objs = np.array([[3.0, 0.0], [1.0, 2.0], [2.0, 1.0]])
        res = ParetoResult(points=np.arange(3).reshape(3, 1).astype(float),
                           objectives=objs, n_evaluations=0)
        ordered = res.sorted_by(0)
        assert list(ordered.objectives[:, 0]) == [1.0, 2.0, 3.0]

    def test_seed_reproducible(self):
        def objs(x):
            return [float(x[0]), float(1 - x[0])]

        a = nsga2(objs, [(0, 1)], population_size=10, n_generations=5, seed=4)
        b = nsga2(objs, [(0, 1)], population_size=10, n_generations=5, seed=4)
        assert np.allclose(a.objectives, b.objectives)

    def test_validation(self):
        with pytest.raises(OptimizationError):
            nsga2(lambda x: [0.0], [(0, 1)], population_size=3)
        with pytest.raises(OptimizationError):
            nsga2(lambda x: [0.0], [(1, 0)])
