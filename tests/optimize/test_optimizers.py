"""Optimiser tests on analytic landscapes."""

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.optimize import (
    Problem,
    genetic_algorithm,
    grid_search,
    multistart,
    nelder_mead,
    pattern_search,
    random_search,
    simulated_annealing,
)


def sphere_max(x):
    """Concave paraboloid with maximum 10 at (0.3, -0.2)."""
    return 10.0 - np.sum((x - np.array([0.3, -0.2])) ** 2)


def rastrigin_min(x):
    """Multimodal minimisation landscape, global minimum 0 at origin."""
    return float(10 * len(x) + np.sum(x**2 - 10 * np.cos(2 * np.pi * x)))


def _max_problem():
    return Problem(sphere_max, [(-1, 1), (-1, 1)], maximize=True)


def _multimodal_problem():
    return Problem(rastrigin_min, [(-4, 4)] * 2, maximize=False)


class TestProblem:
    def test_bounds_and_clip(self):
        p = _max_problem()
        assert np.allclose(p.clip([5.0, -5.0]), [1.0, -1.0])

    def test_reflect_stays_in_box(self):
        p = _max_problem()
        rng = np.random.default_rng(0)
        for _ in range(100):
            x = rng.uniform(-10, 10, 2)
            y = p.reflect(x)
            assert np.all(y >= p.lower - 1e-12)
            assert np.all(y <= p.upper + 1e-12)

    def test_reflect_identity_inside(self):
        p = _max_problem()
        assert np.allclose(p.reflect([0.3, -0.4]), [0.3, -0.4])

    def test_evaluation_counter(self):
        p = _max_problem()
        p.evaluate(np.zeros(2))
        p.score(np.zeros(2))
        assert p.n_evaluations == 2

    def test_validation(self):
        with pytest.raises(OptimizationError):
            Problem(sphere_max, [])
        with pytest.raises(OptimizationError):
            Problem(sphere_max, [(1.0, 0.0)])


class TestSimulatedAnnealing:
    def test_finds_smooth_maximum(self):
        res = simulated_annealing(_max_problem(), n_iterations=3000, seed=1)
        assert res.value == pytest.approx(10.0, abs=0.05)
        assert np.allclose(res.x, [0.3, -0.2], atol=0.15)

    def test_escapes_local_minima(self):
        res = simulated_annealing(_multimodal_problem(), n_iterations=6000, seed=2)
        assert res.value < 2.0  # near-global on Rastrigin

    def test_history_monotone_best(self):
        res = simulated_annealing(_max_problem(), n_iterations=500, seed=3)
        assert all(b >= a - 1e-12 for a, b in zip(res.history, res.history[1:]))

    def test_seed_reproducible(self):
        a = simulated_annealing(_max_problem(), n_iterations=400, seed=5)
        b = simulated_annealing(_max_problem(), n_iterations=400, seed=5)
        assert a.value == b.value and np.allclose(a.x, b.x)

    def test_validation(self):
        with pytest.raises(OptimizationError):
            simulated_annealing(_max_problem(), cooling=1.5)


class TestGeneticAlgorithm:
    def test_finds_smooth_maximum(self):
        res = genetic_algorithm(_max_problem(), seed=1)
        assert res.value == pytest.approx(10.0, abs=0.05)

    def test_multimodal(self):
        res = genetic_algorithm(
            _multimodal_problem(), population_size=60, n_generations=80, seed=4
        )
        assert res.value < 2.0

    def test_elitism_never_loses_best(self):
        res = genetic_algorithm(_max_problem(), seed=2, n_generations=30)
        assert all(b >= a - 1e-12 for a, b in zip(res.history, res.history[1:]))

    def test_evaluation_budget(self):
        res = genetic_algorithm(
            _max_problem(), population_size=10, n_generations=5, seed=0
        )
        assert res.n_evaluations == 10 * 6

    def test_validation(self):
        with pytest.raises(OptimizationError):
            genetic_algorithm(_max_problem(), population_size=2)


class TestLocalMethods:
    def test_pattern_search_converges(self):
        res = pattern_search(_max_problem(), x0=np.zeros(2), seed=0)
        assert res.value == pytest.approx(10.0, abs=1e-3)
        assert res.converged

    def test_nelder_mead_converges(self):
        res = nelder_mead(_max_problem(), x0=np.zeros(2), seed=0)
        assert res.value == pytest.approx(10.0, abs=1e-4)

    def test_nelder_mead_respects_bounds(self):
        p = Problem(lambda x: float(np.sum(x)), [(-1, 1)] * 3, maximize=True)
        res = nelder_mead(p, seed=1)
        assert np.all(res.x <= 1.0 + 1e-9)
        assert res.value == pytest.approx(3.0, abs=0.01)

    def test_multistart_beats_single_on_multimodal(self):
        p = _multimodal_problem()
        res = multistart(p, nelder_mead, n_starts=12, seed=3)
        assert res.value < 3.0
        assert res.method.startswith("multistart")


class TestBaselines:
    def test_grid_search_exact_on_grid_point(self):
        p = Problem(lambda x: -np.sum(x**2), [(-1, 1)] * 2, maximize=True)
        res = grid_search(p, n_levels=5)
        assert res.value == pytest.approx(0.0, abs=1e-12)
        assert res.n_evaluations == 25

    def test_random_search_improves_with_budget(self):
        p = _max_problem()
        small = random_search(p, n_evaluations=10, seed=0)
        big = random_search(p, n_evaluations=500, seed=0)
        assert big.value >= small.value

    def test_validation(self):
        with pytest.raises(OptimizationError):
            grid_search(_max_problem(), n_levels=1)
        with pytest.raises(OptimizationError):
            random_search(_max_problem(), n_evaluations=0)


def test_result_summary_format():
    res = nelder_mead(_max_problem(), x0=np.zeros(2), seed=0)
    text = res.summary()
    assert "nelder-mead" in text and "evaluations" in text
