"""MCU, timer quantisation, watchdog and LUT tests."""

import math

import numpy as np
import pytest

from repro.digital.lut import FrequencyLut
from repro.digital.mcu import Microcontroller
from repro.digital.power_model import (
    MCU_COARSE_ENERGY,
    MCU_COARSE_TIME,
    REFERENCE_CLOCK_HZ,
    AccelerometerPower,
    McuPowerModel,
)
from repro.digital.timer import TimerCounter
from repro.digital.watchdog import WatchdogTimer
from repro.errors import ModelError


class TestPowerModel:
    def test_reference_clock_matches_table_iv(self):
        pm = McuPowerModel()
        assert pm.active_power(REFERENCE_CLOCK_HZ) == pytest.approx(5.0e-3)

    def test_power_scales_linearly_with_clock(self):
        pm = McuPowerModel()
        p8 = pm.active_power(8e6)
        p125k = pm.active_power(125e3)
        assert p8 > pm.active_power(4e6) > p125k
        assert p125k > pm.p_static

    def test_scaling_and_equivalent_resistance(self):
        pm = McuPowerModel()
        assert pm.scaling(4e6) == pytest.approx(1.0)
        r = pm.equivalent_resistance(4e6)
        assert r == pytest.approx(2.8**2 / 5.0e-3)  # ~1.57 kohm vs paper 1.38 k

    def test_accelerometer_energy_matches_table_iv(self):
        acc = AccelerometerPower()
        assert acc.energy_per_measurement() == pytest.approx(2.02e-3, rel=0.01)
        assert acc.equivalent_resistance() == pytest.approx(594.0, rel=0.2)


class TestTimer:
    def test_tick(self):
        t = TimerCounter(1e6)
        assert t.tick == 1e-6

    def test_counts_and_overflows(self):
        t = TimerCounter(8e6, width_bits=16)
        counts = t.counts_for_period(1 / 65.0)
        assert counts == round(8e6 / 65.0)
        assert t.overflows_for_period(1 / 65.0) == counts >> 16

    def test_measurement_unbiased_at_high_clock(self):
        t = TimerCounter(8e6, jitter_seconds=0.0)
        rng = np.random.default_rng(1)
        measurements = [t.measure_frequency(65.0, 8, rng) for _ in range(200)]
        assert np.mean(measurements) == pytest.approx(65.0, abs=0.01)

    def test_noise_grows_as_clock_drops(self):
        rng = np.random.default_rng(2)
        stds = []
        for clock in (8e6, 125e3, 2e3):
            t = TimerCounter(clock, jitter_seconds=0.0)
            vals = [t.measure_frequency(65.0, 8, rng) for _ in range(300)]
            stds.append(np.std(vals))
        assert stds[0] < stds[1] < stds[2]

    def test_predicted_std_matches_empirical(self):
        t = TimerCounter(5e3, jitter_seconds=0.0)  # exaggerated quantisation
        rng = np.random.default_rng(3)
        vals = [t.measure_frequency(65.0, 8, rng) for _ in range(2000)]
        assert np.std(vals) == pytest.approx(t.frequency_std(65.0, 8), rel=0.25)

    def test_interval_measurement_quantises(self):
        t = TimerCounter(1e4, jitter_seconds=0.0)  # 100 us ticks
        rng = np.random.default_rng(4)
        measured = t.measure_interval(250e-6, rng)
        assert min(abs(measured - 200e-6), abs(measured - 300e-6)) < 1e-12

    def test_validation(self):
        with pytest.raises(ModelError):
            TimerCounter(0.0)
        t = TimerCounter(1e6)
        with pytest.raises(ModelError):
            t.measure_period(-1.0)
        with pytest.raises(ModelError):
            t.measure_frequency(0.0)


class TestMicrocontroller:
    def test_coarse_measurement_duration_matches_table_iv(self):
        # 8 cycles at 65 Hz + calc tail at 4 MHz ~ 149 ms (Table IV).
        mcu = Microcontroller(4e6)
        m = mcu.measure_frequency(65.0, rng=np.random.default_rng(0))
        assert m.duration == pytest.approx(MCU_COARSE_TIME, rel=0.01)
        assert m.mcu_energy == pytest.approx(MCU_COARSE_ENERGY, rel=0.01)

    def test_fine_measurement_duration_matches_table_iv(self):
        mcu = Microcontroller(4e6)
        m = mcu.measure_phase(200e-6, rng=np.random.default_rng(0))
        assert m.duration == pytest.approx(325e-3, rel=0.01)
        assert m.peripheral_energy == pytest.approx(2.02e-3, rel=0.01)

    def test_low_clock_takes_longer_but_less_power(self):
        slow = Microcontroller(125e3)
        fast = Microcontroller(8e6)
        rng = np.random.default_rng(0)
        m_slow = slow.measure_frequency(65.0, rng)
        m_fast = fast.measure_frequency(65.0, rng)
        assert m_slow.duration > m_fast.duration
        # Energy: fast clock burns more despite the shorter run.
        assert m_fast.mcu_energy > m_slow.mcu_energy

    def test_phase_measurement_keeps_sign(self):
        mcu = Microcontroller(8e6)
        rng = np.random.default_rng(0)
        assert mcu.measure_phase(300e-6, rng).value >= 0
        assert mcu.measure_phase(-300e-6, rng).value <= 0

    def test_busy_and_sleep(self):
        mcu = Microcontroller(4e6)
        m = mcu.busy(0.1)
        assert m.mcu_energy == pytest.approx(0.1 * 5.0e-3)
        assert mcu.sleep_power() == pytest.approx(2.8e-6)

    def test_validation(self):
        with pytest.raises(ModelError):
            Microcontroller(0.0)
        mcu = Microcontroller(4e6)
        with pytest.raises(ModelError):
            mcu.busy(-1.0)


class TestWatchdog:
    def test_first_wakeup_one_period_in(self):
        wd = WatchdogTimer(320.0)
        assert wd.next_wakeup(0.0) == pytest.approx(320.0)

    def test_no_drift(self):
        wd = WatchdogTimer(60.0)
        t = 0.0
        for i in range(1, 11):
            t = wd.next_wakeup(t)
            assert t == pytest.approx(60.0 * i)

    def test_skips_missed_wakeups(self):
        wd = WatchdogTimer(60.0)
        assert wd.next_wakeup(130.0) == pytest.approx(180.0)

    def test_wakeups_until(self):
        wd = WatchdogTimer(320.0)
        assert wd.wakeups_until(3600.0) == 11

    def test_validation(self):
        with pytest.raises(ModelError):
            WatchdogTimer(0.0)


class TestFrequencyLut:
    def test_lookup_clamps(self):
        lut = FrequencyLut(60.0, 80.0, list(range(0, 256)))
        assert lut.lookup(10.0) == 0
        assert lut.lookup(100.0) == 255

    def test_lookup_quantises(self):
        lut = FrequencyLut(60.0, 80.0, list(range(0, 256)))
        idx = lut.lookup(70.0)
        assert idx == round((70.0 - 60.0) / 20.0 * 255)

    def test_frequency_step(self):
        lut = FrequencyLut(58.0, 82.0, [0] * 256)
        assert lut.frequency_step == pytest.approx(24.0 / 255)

    def test_from_tuning_map_consistency(self):
        from repro.system.components import paper_tuning_map

        tm = paper_tuning_map()
        lut = FrequencyLut.from_tuning_map(tm, 58.0, 82.0)
        pos = lut.lookup(69.0)
        assert tm.resonant_frequency(pos) == pytest.approx(69.0, abs=0.2)

    def test_validation(self):
        with pytest.raises(ModelError):
            FrequencyLut(80.0, 60.0, [0, 1])
        with pytest.raises(ModelError):
            FrequencyLut(60.0, 80.0, [0])
        with pytest.raises(ModelError):
            FrequencyLut(60.0, 80.0, [0, 300])
