"""Harvester characterisation sweeps."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.harvester.characterization import (
    harvest_map,
    power_frequency_curve,
    power_voltage_curve,
    resonance_bandwidth,
    tuning_curve,
)
from repro.system.components import paper_microgenerator
from repro.units import mg_to_mps2

ACCEL = mg_to_mps2(60.0)


@pytest.fixture
def micro():
    m = paper_microgenerator()
    m.actuator.steps = m.actuator.steps_for_position(
        m.tuning_map.position_for_frequency(64.0)
    )
    return m


def test_power_frequency_curve_peaks_at_resonance(micro):
    freqs, powers = power_frequency_curve(micro, ACCEL, 2.65)
    f_peak = freqs[int(np.argmax(powers))]
    f_r = micro.resonant_frequency()
    assert f_peak == pytest.approx(f_r, abs=0.2)
    # Sharp resonance: edges of the +-3 Hz window deliver nothing.
    assert powers[0] == 0.0 and powers[-1] == 0.0
    assert np.max(powers) > 100e-6


def test_tuning_curve_monotone(micro):
    positions, freqs = tuning_curve(micro)
    assert np.all(np.diff(freqs) > 0)
    assert freqs[0] == pytest.approx(60.0, abs=1.0)
    assert freqs[-1] == pytest.approx(80.0, abs=0.1)


def test_power_voltage_curve_tapers_to_ceiling(micro):
    pos = micro.position
    volts, powers = power_voltage_curve(micro, 64.0, ACCEL, position=pos)
    ceiling = micro.envelope.ceiling_voltage(64.0, ACCEL, pos)
    # Power hits zero at/above the ceiling and is positive well below it.
    assert powers[volts > ceiling].sum() == 0.0 if np.any(volts > ceiling) else True
    assert powers[np.argmin(np.abs(volts - 2.0))] > 0.0
    # Mechanical cap: the low-voltage plateau is flat (limited region).
    low = powers[(volts > 1.0) & (volts < 2.0)]
    assert np.ptp(low) / np.max(low) < 0.35


def test_harvest_map_ridge_follows_lut(micro):
    freqs, poss, surface = harvest_map(
        micro, ACCEL, 2.65,
        frequencies=np.linspace(62.0, 76.0, 15),
        positions=np.linspace(0, 255, 52),
    )
    for i, f in enumerate(freqs):
        best_pos = poss[int(np.argmax(surface[i]))]
        lut_pos = micro.tuning_map.position_for_frequency(f)
        assert best_pos == pytest.approx(lut_pos, abs=6.0)


def test_resonance_bandwidth_subhertz(micro):
    bw = resonance_bandwidth(micro, ACCEL, 2.65, position=micro.position)
    # The delivered-power peak is sub-hertz wide: the paper's rationale
    # for 8-bit tuning resolution.
    assert 0.0 < bw < 1.5


def test_validation(micro):
    with pytest.raises(ModelError):
        tuning_curve(micro, n_points=1)
    with pytest.raises(ModelError):
        resonance_bandwidth(micro, ACCEL, 2.65, position=0, level=2.0)
