"""Tuning map, actuator and storage unit tests."""

import math

import pytest

from repro.errors import ModelError
from repro.harvester.actuator import E_START, E_STEP, LinearActuator, T_STEP
from repro.harvester.storage import EnergyStore
from repro.harvester.tuning_map import TuningMap
from repro.system.components import paper_resonator, paper_tuner


@pytest.fixture
def tuning_map():
    res = paper_resonator()
    return TuningMap(res, paper_tuner(res), n_positions=256)


class TestTuningMap:
    def test_frequency_range_spans_design(self, tuning_map):
        f_low, f_high = tuning_map.frequency_range()
        assert f_low <= 60.0
        assert f_high == pytest.approx(80.0, rel=1e-6)

    def test_monotone_in_position(self, tuning_map):
        freqs = [tuning_map.resonant_frequency(p) for p in range(0, 256, 16)]
        assert all(b > a for a, b in zip(freqs, freqs[1:]))

    def test_inverse_lookup_accuracy(self, tuning_map):
        for f in (62.0, 64.0, 69.0, 74.0, 79.0):
            pos = tuning_map.position_for_frequency(f)
            f_back = tuning_map.resonant_frequency(pos)
            assert abs(f_back - f) <= tuning_map.frequency_resolution()

    def test_out_of_range_clamps(self, tuning_map):
        assert tuning_map.position_for_frequency(10.0) == 0
        assert tuning_map.position_for_frequency(500.0) == 255

    def test_fractional_positions_interpolate(self, tuning_map):
        f_int = tuning_map.resonant_frequency(100)
        f_half = tuning_map.resonant_frequency(100.5)
        f_next = tuning_map.resonant_frequency(101)
        assert f_int < f_half < f_next

    def test_build_lut_entries_valid(self, tuning_map):
        lut = tuning_map.build_lut(58.0, 82.0, 256)
        assert len(lut) == 256
        assert all(0 <= p <= 255 for p in lut)
        assert lut[0] == 0 and lut[-1] == 255

    def test_position_bounds(self, tuning_map):
        with pytest.raises(ModelError):
            tuning_map.resonant_frequency(-1)
        with pytest.raises(ModelError):
            tuning_map.resonant_frequency(256)


class TestActuator:
    def test_table_iv_single_step(self):
        move = LinearActuator.move_cost(1)
        assert move.duration == pytest.approx(5e-3)
        assert move.energy == pytest.approx(4.06e-3, rel=1e-6)

    def test_table_iv_hundred_steps(self):
        move = LinearActuator.move_cost(100)
        assert move.duration == pytest.approx(0.5)
        assert move.energy == pytest.approx(203e-3, rel=0.01)

    def test_move_to_position_and_back(self):
        act = LinearActuator(max_steps=255)
        m1 = act.move_to_position(100)
        assert m1.steps == 100
        assert act.position == 100
        m2 = act.move_to_position(60)
        assert m2.steps == 40
        assert act.position == 60
        assert act.total_steps_moved == 140

    def test_travel_clamping(self):
        act = LinearActuator(max_steps=255)
        act.move_steps(300)
        assert act.steps == 255
        act.move_steps(-999)
        assert act.steps == 0

    def test_zero_move_is_free(self):
        act = LinearActuator()
        m = act.move_steps(0)
        assert m.energy == 0.0 and m.duration == 0.0
        assert act.total_moves == 0

    def test_energy_accumulates(self):
        act = LinearActuator()
        act.move_steps(10)
        act.move_steps(-10)
        expected = 2 * (10 * E_STEP + E_START)
        assert act.total_energy == pytest.approx(expected)

    def test_steps_per_position_scaling(self):
        act = LinearActuator(max_steps=510, steps_per_position=2)
        act.move_to_position(100)
        assert act.steps == 200
        assert act.position == 100

    def test_validation(self):
        with pytest.raises(ModelError):
            LinearActuator(max_steps=0)
        with pytest.raises(ModelError):
            LinearActuator(initial_steps=500)
        with pytest.raises(ModelError):
            LinearActuator.move_cost(-1)


class TestEnergyStore:
    def test_voltage_energy_roundtrip(self):
        store = EnergyStore(capacitance=0.55, v_init=2.8)
        assert store.voltage == pytest.approx(2.8)
        assert store.energy == pytest.approx(0.5 * 0.55 * 2.8**2)

    def test_deposit_and_draw(self):
        store = EnergyStore(capacitance=1.0, v_init=1.0)
        store.deposit(0.5)
        assert store.energy == pytest.approx(1.0)
        supplied = store.draw(0.25)
        assert supplied == 0.25
        assert store.energy == pytest.approx(0.75)

    def test_deposit_clamps_at_vmax(self):
        store = EnergyStore(capacitance=1.0, v_init=1.0, v_max=1.1)
        stored = store.deposit(10.0)
        assert store.voltage == pytest.approx(1.1)
        assert stored == pytest.approx(store.energy_max - 0.5)
        assert store.clipped_energy == pytest.approx(10.0 - stored)

    def test_draw_floors_at_zero(self):
        store = EnergyStore(capacitance=1.0, v_init=0.1)
        supplied = store.draw(1.0)
        assert supplied == pytest.approx(0.005)
        assert store.voltage == 0.0

    def test_can_supply(self):
        store = EnergyStore(capacitance=1.0, v_init=1.0)
        assert store.can_supply(0.4)
        assert not store.can_supply(0.6)

    def test_energy_above(self):
        store = EnergyStore(capacitance=0.55, v_init=2.8)
        assert store.energy_above(2.7) == pytest.approx(
            0.5 * 0.55 * (2.8**2 - 2.7**2)
        )
        assert store.energy_above(3.0) == 0.0

    def test_validation(self):
        with pytest.raises(ModelError):
            EnergyStore(capacitance=0.0)
        with pytest.raises(ModelError):
            EnergyStore(v_init=-1.0)
        with pytest.raises(ModelError):
            EnergyStore(v_init=3.0, v_max=2.0)
        store = EnergyStore()
        with pytest.raises(ModelError):
            store.deposit(-1.0)
        with pytest.raises(ModelError):
            store.draw(-1.0)
