"""Detailed electromechanical generator: physics of the MNA component."""

import math

import numpy as np
import pytest

from repro.analog import Circuit, TransientSolver, ac_analysis, operating_point
from repro.analog.components import Resistor
from repro.harvester.microgenerator import ElectromagneticGenerator
from repro.mech.coupling import ElectromagneticCoupling


def _generator(f_n=64.0, m=0.05, zeta_m=0.004, theta=10.0, r_c=1000.0,
               accel_amp=0.5886, f_in=None, ac_amp=0.0):
    f_in = f_in if f_in is not None else f_n
    k = m * (2 * math.pi * f_n) ** 2
    c = 2 * m * (2 * math.pi * f_n) * zeta_m
    coupling = ElectromagneticCoupling(theta=theta, coil_resistance=r_c,
                                       coil_inductance=0.0)

    def accel(t):
        return accel_amp * math.sin(2 * math.pi * f_in * t)

    return ElectromagneticGenerator(
        "GEN", "p", "0", mass=m, stiffness=k, damping_mech=c,
        coupling=coupling, acceleration=accel, ac_accel_amplitude=ac_amp,
    )


def test_dc_static_deflection():
    gen = _generator(accel_amp=0.0)
    gen.acceleration = lambda t: 9.81  # constant 1 g
    ckt = Circuit("static")
    ckt.add(gen)
    ckt.add(Resistor("RL", "p", "0", 1e6))
    sys = ckt.build()
    x = operating_point(sys)
    # Static equilibrium: k z = -m g
    expected_z = -0.05 * 9.81 / gen.stiffness
    assert gen.displacement(x) == pytest.approx(expected_z, rel=1e-6)
    assert gen.velocity(x) == pytest.approx(0.0, abs=1e-12)


def test_open_circuit_resonant_amplitude():
    # Nearly open coil: only mechanical damping. Amplitude should match
    # A / (2 zeta_m wn^2) after the transient rings up.
    gen = _generator(theta=1e-3, r_c=1e6)
    ckt = Circuit("oc")
    ckt.add(gen)
    ckt.add(Resistor("RL", "p", "0", 1e9))
    sys = ckt.build()
    f_n, zeta = 64.0, 0.004
    tau = 1.0 / (zeta * 2 * math.pi * f_n)  # ring-up time constant ~0.62 s
    state = {"z_max": 0.0}

    def track(t, x):
        if t > 5 * tau:
            state["z_max"] = max(state["z_max"], abs(gen.displacement(x)))

    TransientSolver(sys).run(
        t_end=6 * tau, dt=1.0 / (f_n * 60), on_step=track, adaptive=False
    )
    expected = 0.5886 / (2 * zeta * (2 * math.pi * f_n) ** 2)
    assert state["z_max"] == pytest.approx(expected, rel=0.05)


def test_loaded_amplitude_is_damped():
    # Strong coupling into a matched load must reduce the amplitude below
    # the open-circuit value (electrical damping).
    cases = {}
    f_n = 64.0
    for name, (theta, rl) in {
        "open": (1e-3, 1e9),
        "loaded": (30.0, 1000.0),
    }.items():
        gen = _generator(theta=theta, r_c=1000.0)
        ckt = Circuit(name)
        ckt.add(gen)
        ckt.add(Resistor("RL", "p", "0", rl))
        sys = ckt.build()
        peak = {"v": 0.0}

        def track(t, x, g=gen, p=peak):
            if t > 1.0:
                p["v"] = max(p["v"], abs(g.displacement(x)))

        TransientSolver(sys).run(
            t_end=1.5, dt=1.0 / (f_n * 50), on_step=track, adaptive=False
        )
        cases[name] = peak["v"]
    assert cases["loaded"] < 0.5 * cases["open"]


def test_power_flows_into_load_resistor():
    gen = _generator(theta=30.0, r_c=1000.0)
    ckt = Circuit("power")
    ckt.add(gen)
    rl = ckt.add(Resistor("RL", "p", "0", 1000.0))
    sys = ckt.build()
    energy = {"j": 0.0, "last_t": 0.0}

    def track(t, x):
        dt = t - energy["last_t"]
        energy["last_t"] = t
        if t > 1.0:
            v = sys.voltage(x, "p")
            energy["j"] += v * v / 1000.0 * dt

    TransientSolver(sys).run(t_end=2.0, dt=1.0 / (64 * 50), on_step=track,
                             adaptive=False)
    assert energy["j"] > 0.0  # net dissipation in the load


def test_ac_response_peaks_at_resonance():
    gen = _generator(theta=30.0, r_c=1000.0, ac_amp=0.5886)
    ckt = Circuit("ac")
    ckt.add(gen)
    ckt.add(Resistor("RL", "p", "0", 1000.0))
    sys = ckt.build()
    freqs = np.linspace(55.0, 75.0, 201)
    res = ac_analysis(sys, freqs)
    mags = res.magnitude("p")
    f_peak = freqs[int(np.argmax(mags))]
    # Electrical damping shifts/broadens slightly; stay within 1 Hz.
    assert f_peak == pytest.approx(64.0, abs=1.0)


def test_ac_matches_transient_steady_state():
    gen = _generator(theta=30.0, r_c=1000.0, ac_amp=0.5886)
    ckt = Circuit("xcheck")
    ckt.add(gen)
    ckt.add(Resistor("RL", "p", "0", 1000.0))
    sys = ckt.build()
    ac = ac_analysis(sys, [64.0])
    v_ac = float(ac.magnitude("p")[0])

    peak = {"v": 0.0}

    def track(t, x):
        if t > 1.2:
            peak["v"] = max(peak["v"], abs(sys.voltage(x, "p")))

    TransientSolver(sys).run(t_end=1.8, dt=1.0 / (64 * 80), on_step=track,
                             adaptive=False)
    assert peak["v"] == pytest.approx(v_ac, rel=0.05)


def test_stiffness_retuning_moves_resonance():
    gen = _generator(theta=30.0, r_c=1000.0, ac_amp=0.5886)
    ckt = Circuit("retune")
    ckt.add(gen)
    ckt.add(Resistor("RL", "p", "0", 1000.0))
    sys = ckt.build()
    freqs = np.linspace(55.0, 90.0, 141)
    gen.stiffness *= (74.0 / 64.0) ** 2
    res = ac_analysis(sys, freqs)
    f_peak = freqs[int(np.argmax(res.magnitude("p")))]
    assert f_peak == pytest.approx(74.0, abs=1.2)
