"""Envelope harvester model: rectifier maths and power chain."""

import pytest

from repro.errors import ModelError
from repro.harvester.rectifier import RectifierEnvelope
from repro.system.components import (
    MECH_EFFICIENCY,
    paper_microgenerator,
)
from repro.units import mg_to_mps2

ACCEL = mg_to_mps2(60.0)


class TestRectifierEnvelope:
    def test_open_circuit_voltage(self):
        r = RectifierEnvelope(diode_drop=0.35)
        assert r.open_circuit_voltage(4.0) == pytest.approx(3.3)
        assert r.open_circuit_voltage(0.5) == 0.0

    def test_no_charging_below_store_voltage(self):
        r = RectifierEnvelope(diode_drop=0.35)
        assert r.charging_current(3.0, 1000.0, 2.5) == 0.0

    def test_charging_current_linear_in_gap(self):
        r = RectifierEnvelope(diode_drop=0.35, conduction_factor=0.5)
        i1 = r.charging_current(4.0, 1000.0, 3.0)
        i2 = r.charging_current(4.0, 1000.0, 2.7)
        assert i1 == pytest.approx(0.5 * 0.3 / 1000.0)
        assert i2 == pytest.approx(0.5 * 0.6 / 1000.0)

    def test_power_is_v_times_i(self):
        r = RectifierEnvelope()
        p = r.charging_power(4.0, 1000.0, 2.8)
        i = r.charging_current(4.0, 1000.0, 2.8)
        assert p == pytest.approx(2.8 * i)

    def test_validation(self):
        with pytest.raises(ModelError):
            RectifierEnvelope(diode_drop=-0.1)
        with pytest.raises(ModelError):
            RectifierEnvelope(conduction_factor=0.0)
        r = RectifierEnvelope()
        with pytest.raises(ModelError):
            r.charging_current(4.0, 0.0, 2.8)


class TestEnvelopeHarvester:
    @pytest.fixture
    def micro(self):
        return paper_microgenerator()

    def test_peak_power_at_resonant_position(self, micro):
        env = micro.envelope
        pos = micro.tuning_map.position_for_frequency(64.0)
        p_tuned = env.charging_power(64.0, ACCEL, pos, 2.65)
        p_off = env.charging_power(64.0, ACCEL, pos + 40, 2.65)
        assert p_tuned > 10 * max(p_off, 1e-9)

    def test_power_scale_is_hundreds_of_microwatts(self, micro):
        env = micro.envelope
        pos = micro.tuning_map.position_for_frequency(64.0)
        p = env.charging_power(64.0, ACCEL, pos, 2.65)
        assert 100e-6 < p < 600e-6

    def test_mechanical_cap_binds_at_low_voltage(self, micro):
        env = micro.envelope
        pos = micro.tuning_map.position_for_frequency(64.0)
        cap = env.mechanical_limit(64.0, ACCEL, pos)
        # At a deeply discharged store the Thevenin gap is huge; power must
        # be pinned by the mechanical budget instead.
        p_low = env.charging_power(64.0, ACCEL, pos, 1.0)
        assert p_low == pytest.approx(cap, rel=1e-9)

    def test_charging_stops_at_ceiling(self, micro):
        env = micro.envelope
        pos = micro.tuning_map.position_for_frequency(64.0)
        ceiling = env.ceiling_voltage(64.0, ACCEL, pos)
        assert 3.0 < ceiling < 3.8
        assert env.charging_power(64.0, ACCEL, pos, ceiling + 0.01) == 0.0

    def test_power_decreases_with_store_voltage_near_ceiling(self, micro):
        env = micro.envelope
        pos = micro.tuning_map.position_for_frequency(64.0)
        ceiling = env.ceiling_voltage(64.0, ACCEL, pos)
        vs = [ceiling - 0.4, ceiling - 0.2, ceiling - 0.1, ceiling - 0.02]
        ps = [env.charging_power(64.0, ACCEL, pos, v) for v in vs]
        assert all(a > b for a, b in zip(ps, ps[1:]))

    def test_higher_frequency_segments_deliver_less(self, micro):
        # Constant-acceleration SDOF physics: EMF ~ 1/f, so retuned
        # operation at 74 Hz yields less power at the same store voltage.
        env = micro.envelope
        p64 = env.charging_power(
            64.0, ACCEL, micro.tuning_map.position_for_frequency(64.0), 2.8
        )
        p74 = env.charging_power(
            74.0, ACCEL, micro.tuning_map.position_for_frequency(74.0), 2.8
        )
        assert p74 < p64

    def test_optimal_position_matches_tuning_map(self, micro):
        env = micro.envelope
        assert env.optimal_position(69.0) == micro.tuning_map.position_for_frequency(
            69.0
        )

    def test_facade_charging_power_uses_actuator_position(self, micro):
        micro.actuator.steps = micro.actuator.steps_for_position(
            micro.tuning_map.position_for_frequency(64.0)
        )
        assert micro.resonant_frequency() == pytest.approx(64.0, abs=0.2)
        p = micro.charging_power(64.0, ACCEL, 2.65)
        assert p > 100e-6
