"""The metrics registry: instruments, snapshots, merging, exposition."""

import pickle

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.state import STATE


@pytest.fixture
def on(clean_obs):
    STATE.metrics_on = True
    return MetricsRegistry()


# -- instruments ---------------------------------------------------------------


def test_counter_accumulates_per_label_set(on):
    c = on.counter("t_total", "help", ("tier",))
    c.inc(tier="memory")
    c.inc(2, tier="memory")
    c.inc(tier="store")
    assert c.value(tier="memory") == 3
    assert c.value(tier="store") == 1
    assert c.value(tier="simulate") == 0


def test_counter_rejects_negative_increments(on):
    c = on.counter("neg_total", "help")
    with pytest.raises(ConfigError, match="cannot decrease"):
        c.inc(-1)


def test_counter_rejects_wrong_labels(on):
    c = on.counter("lbl_total", "help", ("tier",))
    with pytest.raises(ConfigError, match="takes labels"):
        c.inc(shard="0")
    with pytest.raises(ConfigError, match="takes labels"):
        c.inc()


def test_gauge_set_inc_dec(on):
    g = on.gauge("g", "help")
    g.set(4)
    g.inc()
    g.dec(2)
    assert g.value() == 3


def test_histogram_buckets_are_cumulative(on):
    h = on.histogram("h_seconds", "help", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(value)
    state = h.state()
    assert state.bucket_counts == (1, 3, 4)  # cumulative, +Inf == count
    assert state.count == 5
    assert state.sum == pytest.approx(56.05)


def test_registry_get_or_create_is_idempotent(on):
    a = on.counter("same_total", "help", ("x",))
    b = on.counter("same_total", "other help ignored", ("x",))
    assert a is b


def test_registry_refuses_kind_and_label_conflicts(on):
    on.counter("conflict_total", "help", ("x",))
    with pytest.raises(ConfigError, match="already registered"):
        on.gauge("conflict_total", "help", ("x",))
    with pytest.raises(ConfigError, match="already registered"):
        on.counter("conflict_total", "help", ("y",))


def test_invalid_metric_and_label_names_are_refused(on):
    with pytest.raises(ConfigError, match="invalid metric name"):
        on.counter("bad-name", "help")
    with pytest.raises(ConfigError, match="invalid metric label"):
        on.counter("ok_total", "help", ("bad-label",))


# -- the global switch ---------------------------------------------------------


def test_instruments_are_noops_while_metrics_are_off(clean_obs):
    registry = MetricsRegistry()
    c = registry.counter("off_total", "help")
    h = registry.histogram("off_seconds", "help")
    c.inc()
    h.observe(1.0)
    assert c.value() == 0
    assert h.count() == 0


# -- snapshots -----------------------------------------------------------------


def test_snapshot_pickles_and_merges_counters_and_histograms(on):
    on.counter("m_total", "help", ("k",)).inc(3, k="a")
    on.histogram("m_seconds", "help", buckets=(1.0,)).observe(0.5)
    shipped = pickle.loads(pickle.dumps(on.snapshot()))

    dest = MetricsRegistry()
    dest.counter("m_total", "help", ("k",)).inc(1, k="a")
    dest.merge(shipped)
    dest.merge(shipped)
    assert dest.counter("m_total", "help", ("k",)).value(k="a") == 7
    assert dest.histogram("m_seconds", "help", buckets=(1.0,)).count() == 2


def test_merge_gauges_take_the_incoming_value(on):
    on.gauge("m_gauge", "help").set(10)
    shipped = on.snapshot()
    dest = MetricsRegistry()
    dest.gauge("m_gauge", "help").set(99)
    dest.merge(shipped)
    assert dest.gauge("m_gauge", "help").value() == 10


def test_merge_ignores_the_off_switch(clean_obs):
    STATE.metrics_on = True
    source = MetricsRegistry()
    source.counter("sw_total", "help").inc(5)
    shipped = source.snapshot()
    STATE.metrics_on = False

    dest = MetricsRegistry()
    dest.merge(shipped)
    assert dest.counter("sw_total", "help").value() == 5


def test_reset_zeroes_series_but_keeps_instruments(on):
    c = on.counter("r_total", "help")
    c.inc(4)
    on.reset()
    assert c.value() == 0
    assert "r_total" in on.names()


# -- Prometheus rendering ------------------------------------------------------


def test_render_prometheus_shape(on):
    on.counter("p_total", "requests served", ("code",)).inc(2, code="200")
    on.gauge("p_gauge", "a gauge").set(1.5)
    on.histogram("p_seconds", "latency", buckets=(0.1, 1.0)).observe(0.05)
    text = render_prometheus(on.snapshot())
    assert "# HELP p_total requests served\n# TYPE p_total counter" in text
    assert 'p_total{code="200"} 2' in text
    assert "# TYPE p_gauge gauge" in text
    assert "p_gauge 1.5" in text
    assert "# TYPE p_seconds histogram" in text
    assert 'p_seconds_bucket{le="0.1"} 1' in text
    assert 'p_seconds_bucket{le="1"} 1' in text
    assert 'p_seconds_bucket{le="+Inf"} 1' in text
    assert "p_seconds_count 1" in text
    assert text.endswith("\n")


def test_render_prometheus_escapes_label_values(on):
    on.counter("e_total", "help", ("path",)).inc(path='a"b\\c\nd')
    text = render_prometheus(on.snapshot())
    assert 'path="a\\"b\\\\c\\nd"' in text


def test_render_prometheus_is_deterministic(on):
    c = on.counter("d_total", "help", ("k",))
    c.inc(k="b")
    c.inc(k="a")
    assert render_prometheus(on.snapshot()) == render_prometheus(on.snapshot())
    lines = [
        line
        for line in render_prometheus(on.snapshot()).splitlines()
        if not line.startswith("#")
    ]
    assert lines == sorted(lines)


def test_default_buckets_are_sorted():
    assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS
