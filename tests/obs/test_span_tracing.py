"""Span tracing: context propagation, the sink file, the off switch."""

import json

import pytest

import repro.obs as obs
from repro.errors import ConfigError
from repro.obs.state import STATE
from repro.obs.trace import _NOOP_SPAN, current_trace_id, event, read_events, span


@pytest.fixture
def sink(clean_obs, tmp_path):
    path = tmp_path / "events.jsonl"
    obs.configure(metrics=False, events=str(path))
    return path


def test_span_is_a_shared_noop_while_telemetry_is_off(clean_obs):
    assert span("anything", key=1) is _NOOP_SPAN
    with span("anything") as sp:
        assert sp.annotate(x=1) is sp
        assert current_trace_id() is None
    event("ignored")  # must not raise, must not open a sink


def test_nested_spans_share_a_trace_and_chain_parents(sink):
    with span("outer") as outer:
        with span("inner"):
            event("marker", n=1)
    records = {(r["kind"], r["name"]): r for r in read_events(sink)}
    outer_rec = records[("span", "outer")]
    inner_rec = records[("span", "inner")]
    marker = records[("event", "marker")]
    assert outer_rec["parent"] is None
    assert inner_rec["parent"] == outer_rec["span"]
    assert marker["parent"] == inner_rec["span"]
    assert (
        outer_rec["trace"] == inner_rec["trace"] == marker["trace"]
    )
    assert inner_rec["dur_s"] >= 0.0
    assert marker["attrs"] == {"n": 1}


def test_sibling_spans_get_fresh_traces(sink):
    with span("first"):
        pass
    with span("second"):
        pass
    traces = {r["trace"] for r in read_events(sink)}
    assert len(traces) == 2


def test_span_records_annotations_and_errors(sink):
    with pytest.raises(ValueError):
        with span("boom", stage="x") as sp:
            sp.annotate(found=3)
            raise ValueError("no")
    (record,) = list(read_events(sink))
    assert record["attrs"] == {"stage": "x", "found": 3}
    assert record["error"] == "ValueError"


def test_span_durations_feed_the_metrics_registry(sink):
    STATE.metrics_on = True
    with span("timed"):
        pass
    histogram = obs.metrics().histogram(
        "repro_span_seconds", "", ("name",)
    )
    assert histogram.count(name="timed") >= 1


def test_read_events_skips_torn_lines(sink):
    event("good", i=1)
    with open(sink, "a", encoding="utf-8") as fh:
        fh.write('{"torn": tru')  # a killed writer's partial line
    assert [r["name"] for r in read_events(sink)] == ["good"]


def test_read_events_refuses_missing_files(tmp_path):
    with pytest.raises(ConfigError, match="does not exist"):
        list(read_events(tmp_path / "nope.jsonl"))


def test_configure_events_empty_string_disables_the_sink(clean_obs, tmp_path):
    obs.configure(events=str(tmp_path / "on.jsonl"))
    assert STATE.sink_path is not None
    obs.configure(events="")
    assert STATE.sink_path is None
    assert span("off") is _NOOP_SPAN


def test_sink_lines_are_single_json_objects(sink):
    event("one")
    event("two")
    lines = sink.read_text().strip().splitlines()
    assert len(lines) == 2
    for line in lines:
        assert isinstance(json.loads(line), dict)
