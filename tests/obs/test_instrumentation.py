"""Telemetry wired through the stack: results identical, counters real.

The load-bearing contract is the differential test: a campaign run with
metrics and tracing enabled produces **byte-identical** store rows to a
run with telemetry off -- instrumentation only reads clocks and counts.
"""

import pytest

import repro.obs as obs
from repro.core.batch import BatchRunner
from repro.obs.report import summarize_events
from repro.obs.state import STATE
from repro.scenario import Scenario
from repro.store import Campaign, ResultStore
from repro.store.merge import merge_stores
from repro.store.shard import ShardedResultStore


def _scenarios(n=3, horizon=900.0):
    return [Scenario(seed=i, horizon=horizon) for i in range(n)]


def _campaign_rows(tmp_path, label, telemetry_on, events=None):
    STATE.metrics_on = telemetry_on
    store = ResultStore(tmp_path / f"{label}.db")
    if events is not None:
        obs.configure(events=str(events))
    campaign = Campaign.create(store, "diff", _scenarios())
    campaign.run(chunk_size=2)
    return sorted((row[0], row[12]) for row in store.iter_raw())  # key, payload


def test_results_are_byte_identical_with_telemetry_on(clean_obs, tmp_path):
    baseline = _campaign_rows(tmp_path, "off", telemetry_on=False)
    obs.metrics().reset()  # other tests share the process-global registry
    instrumented = _campaign_rows(
        tmp_path, "on", telemetry_on=True, events=tmp_path / "events.jsonl"
    )
    assert baseline == instrumented  # (key, canonical payload) pairs

    # The instrumented run actually collected telemetry.
    registry = obs.metrics()
    tier = registry.counter("repro_batch_tier_total", "", ("tier",))
    assert tier.value(tier="simulate") == 3
    runs = registry.counter("repro_sim_runs_total", "", ("backend",))
    assert runs.value(backend="envelope") == 3
    summary = summarize_events(tmp_path / "events.jsonl")
    assert summary.span_stats["campaign.run"].count == 1
    assert summary.span_stats["campaign.chunk"].count == 2
    assert summary.span_stats["batch.run"].count == 2
    assert summary.n_traces == 1  # chunks nest under one campaign trace


def test_batch_tier_counters_cover_all_three_tiers(clean_obs, tmp_path):
    STATE.metrics_on = True
    registry = obs.metrics()
    registry.reset()
    store = ResultStore(tmp_path / "tiers.db")
    runner = BatchRunner(store=store)
    scenarios = _scenarios(2, horizon=300.0)
    runner.run(scenarios)  # miss -> simulate
    runner.run(scenarios)  # memory hits
    fresh = BatchRunner(store=store)
    fresh.run(scenarios)  # store hits
    tier = registry.counter("repro_batch_tier_total", "", ("tier",))
    assert tier.value(tier="simulate") == 2
    assert tier.value(tier="memory") == 2
    assert tier.value(tier="store") == 2
    ops = registry.counter("repro_store_ops_total", "", ("op", "outcome"))
    assert ops.value(op="put", outcome="insert") == 2
    assert ops.value(op="get", outcome="hit") == 2


def test_process_pool_metrics_merge_back(clean_obs, tmp_path):
    obs.configure(metrics=True)  # mirrored to env for the workers
    registry = obs.metrics()
    registry.reset()
    runner = BatchRunner(jobs=2, executor="process")
    runner.run(_scenarios(2, horizon=300.0))
    runs = registry.counter("repro_sim_runs_total", "", ("backend",))
    assert runs.value(backend="envelope") == 2
    evals = registry.counter("repro_harvester_power_evals_total", "")
    assert evals.value() > 0


def test_power_evals_count_without_telemetry(clean_obs):
    from repro.backends import run

    evals = obs.metrics().counter("repro_harvester_power_evals_total", "")
    before = evals.value()
    result = run(Scenario(seed=0, horizon=300.0))
    assert result.transmissions >= 0  # the run happened; the counter is
    # always-on but private to the harvester instance, so the registry
    # stays untouched while metrics are off.
    assert evals.value() == before


def test_merge_and_shard_telemetry(clean_obs, tmp_path):
    STATE.metrics_on = True
    registry = obs.metrics()
    registry.reset()
    source = ResultStore(tmp_path / "src.db")
    BatchRunner(store=source).run(_scenarios(2, horizon=300.0))
    dest = ShardedResultStore(tmp_path / "sharded", shards=2)
    merge_stores(dest, source)
    merged = registry.counter(
        "repro_store_merge_rows_total", "", ("outcome",)
    )
    assert merged.value(outcome="imported") == 2
    route = registry.counter(
        "repro_store_shard_route_total", "", ("shard",)
    )
    assert sum(route.value(shard=str(i)) for i in range(2)) >= 2
    assert registry.gauge("repro_store_shards", "").value() == 2


def test_study_chunks_emit_spans(clean_obs, tmp_path):
    pytest.importorskip("numpy")
    from dataclasses import replace

    from repro.core.study import Study, paper_study_spec

    obs.configure(events=str(tmp_path / "study.jsonl"))
    spec = replace(
        paper_study_spec(seed=3, n_runs=10, horizon=300.0), name="obs-study"
    )
    store = ResultStore(tmp_path / "study.db")
    Study(spec, store=store, chunk_size=8).run()
    summary = summarize_events(tmp_path / "study.jsonl")
    assert summary.span_stats["study.run"].count == 1
    assert summary.span_stats["study.chunk"].count >= 2
