"""Telemetry tests mutate process-global switches; the save/restore
``clean_obs`` fixture lives in the repo-wide ``tests/conftest.py`` so
the service tests can share it."""
