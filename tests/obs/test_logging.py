"""The shared logging configuration: formats, idempotence, context."""

import io
import json
import logging

from repro.obs.logging import (
    JsonLogFormatter,
    TextLogFormatter,
    configure_logging,
    get_logger,
    log_context,
)


def _capture(json_lines):
    stream = io.StringIO()
    configure_logging(json_lines=json_lines, stream=stream)
    return stream


def test_json_lines_carry_structured_fields():
    stream = _capture(json_lines=True)
    get_logger("service.worker").info(
        "claimed", extra=log_context(job="abc123", kind="campaign")
    )
    payload = json.loads(stream.getvalue())
    assert payload["msg"] == "claimed"
    assert payload["level"] == "info"
    assert payload["logger"] == "repro.service.worker"
    assert payload["job"] == "abc123"
    assert payload["kind"] == "campaign"
    assert isinstance(payload["ts"], float)


def test_json_lines_include_exception_text():
    stream = _capture(json_lines=True)
    try:
        raise RuntimeError("kaput")
    except RuntimeError:
        get_logger("x").exception("failed")
    payload = json.loads(stream.getvalue())
    assert "RuntimeError: kaput" in payload["exc"]


def test_text_format_appends_context_pairs():
    stream = _capture(json_lines=False)
    get_logger("service.http").info(
        "GET /v1/metrics", extra=log_context(status=200)
    )
    line = stream.getvalue().strip()
    assert "repro.service.http: GET /v1/metrics" in line
    assert "(status=200)" in line


def test_configure_logging_replaces_instead_of_stacking():
    configure_logging(stream=io.StringIO())
    configure_logging(stream=io.StringIO())
    root = logging.getLogger("repro")
    assert len(root.handlers) == 1
    assert root.propagate is False


def test_get_logger_prefixes_bare_names():
    assert get_logger("service.worker").name == "repro.service.worker"
    assert get_logger("repro.core.batch").name == "repro.core.batch"


def test_formatters_render_plain_records():
    record = logging.LogRecord(
        "repro.x", logging.WARNING, __file__, 1, "plain %s", ("msg",), None
    )
    assert json.loads(JsonLogFormatter().format(record))["msg"] == "plain msg"
    assert "plain msg" in TextLogFormatter().format(record)
