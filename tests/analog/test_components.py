"""Component-level unit tests: diode law, switches, sources, validation."""

import math

import numpy as np
import pytest

from repro.analog import Circuit, TransientSolver, operating_point
from repro.analog.components import (
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    Resistor,
    Switch,
    VariableResistor,
    VoltageSource,
    pulse,
    sine,
    step,
)
from repro.errors import NetlistError
from repro.units import thermal_voltage


def test_diode_current_follows_shockley_law():
    d = Diode("D", "a", "0", saturation_current=1e-12, emission_coefficient=1.5)
    nvt = 1.5 * thermal_voltage()
    for v in (0.3, 0.5, 0.65):
        i, g = d.current_and_conductance(v)
        assert i == pytest.approx(1e-12 * (math.exp(v / nvt) - 1.0), rel=1e-9)
        assert g == pytest.approx(1e-12 * math.exp(v / nvt) / nvt, rel=1e-9)


def test_diode_reverse_saturation():
    d = Diode("D", "a", "0")
    i, _ = d.current_and_conductance(-5.0)
    assert i == pytest.approx(-d.isat, rel=1e-6)


def test_diode_exponential_is_limited_not_overflowing():
    d = Diode("D", "a", "0")
    i, g = d.current_and_conductance(100.0)  # would overflow a raw exp
    assert np.isfinite(i) and np.isfinite(g)
    assert i > 0 and g > 0


def test_diode_parameter_validation():
    with pytest.raises(NetlistError):
        Diode("D", "a", "0", saturation_current=0.0)
    with pytest.raises(NetlistError):
        Diode("D", "a", "0", emission_coefficient=-1.0)


def test_switch_resistance_states():
    sw = Switch("S", "a", "0", r_on=1.0, r_off=1e9)
    assert sw.resistance(0.0) == 1e9
    sw.closed = True
    assert sw.resistance(0.0) == 1.0


def test_switch_with_time_control():
    sw = Switch("S", "a", "0", r_on=1.0, r_off=1e9, control=lambda t: t >= 1.0)
    assert sw.resistance(0.5) == 1e9
    assert sw.resistance(1.5) == 1.0


def test_switch_validation():
    with pytest.raises(NetlistError):
        Switch("S", "a", "0", r_on=10.0, r_off=1.0)


def test_switch_in_circuit_changes_current():
    ckt = Circuit("sw")
    ckt.add(VoltageSource("V1", "in", "0", dc=1.0))
    sw = ckt.add(Switch("S1", "in", "out", r_on=1.0, r_off=1e12))
    ckt.add(Resistor("RL", "out", "0", 99.0))
    sys = ckt.build()
    x_open = operating_point(sys)
    assert sys.voltage(x_open, "out") == pytest.approx(0.0, abs=1e-6)
    sw.closed = True
    x_closed = operating_point(sys)
    assert sys.voltage(x_closed, "out") == pytest.approx(0.99, rel=1e-6)


def test_variable_resistor_update():
    vr = VariableResistor("R", "a", "0", 100.0)
    vr.resistance = 200.0
    assert vr.resistance == 200.0
    with pytest.raises(NetlistError):
        vr.resistance = 0.0


def test_waveform_helpers():
    s = sine(2.0, 10.0, offset=1.0)
    assert s(0.0) == pytest.approx(1.0)
    assert s(0.025) == pytest.approx(3.0)  # quarter period
    st = step(0.0, 5.0, 1.0)
    assert st(0.999) == 0.0 and st(1.0) == 5.0
    p = pulse(0.0, 1.0, period=1.0, width=0.25)
    assert p(0.1) == 1.0 and p(0.5) == 0.0 and p(1.1) == 1.0


def test_waveform_validation():
    with pytest.raises(NetlistError):
        sine(1.0, 0.0)
    with pytest.raises(NetlistError):
        pulse(0, 1, period=1.0, width=2.0)


def test_current_source_waveform_drive():
    ckt = Circuit("cs")
    ckt.add(CurrentSource("I1", "0", "a", waveform=lambda t: 1e-3 * t))
    ckt.add(Resistor("R1", "a", "0", 1e3))
    res = TransientSolver(ckt.build()).run(t_end=1.0, dt=0.01, adaptive=False)
    assert res.traces["v(a)"].interp(1.0) == pytest.approx(1.0, rel=0.02)


def test_component_validation_errors():
    with pytest.raises(NetlistError):
        Capacitor("C", "a", "0", -1e-6)
    with pytest.raises(NetlistError):
        Inductor("L", "a", "0", 0.0)


def test_mna_labels_and_node_index():
    ckt = Circuit("labels")
    ckt.add(VoltageSource("V1", "in", "0", dc=1.0))
    ckt.add(Resistor("R1", "in", "out", 1e3))
    ckt.add(Resistor("R2", "out", "0", 1e3))
    sys = ckt.build()
    labels = sys.labels()
    assert "in" in labels and "out" in labels and "V1#0" in labels
    assert sys.node_index("0") == -1
    with pytest.raises(NetlistError):
        sys.node_index("nope")
