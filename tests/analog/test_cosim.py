"""Circuit/kernel co-simulation: lockstep hooks and threshold watchers."""

import math

import pytest

from repro.analog import Circuit, CircuitHook, ThresholdWatcher
from repro.analog.components import Capacitor, Resistor, VoltageSource, sine
from repro.errors import SimulationError
from repro.sim import Simulator, WaitEvent
from repro.sim.process import Delay


def _rc_hook(dt=1e-4):
    ckt = Circuit("rc")
    ckt.add(VoltageSource("V1", "in", "0", dc=5.0))
    ckt.add(Resistor("R1", "in", "out", 1e3))
    ckt.add(Capacitor("C1", "out", "0", 1e-3))  # tau = 1 s
    return CircuitHook(ckt.build(), dt=dt, record=["out"])


def test_hook_advances_with_kernel_time():
    sim = Simulator()
    hook = _rc_hook()
    sim.attach_analog(hook)
    sim.run(until=1.0)
    # After one time constant the capacitor is at ~63%.
    assert hook.voltage("out") == pytest.approx(5.0 * (1 - math.exp(-1)), rel=0.02)
    assert hook.t == pytest.approx(1.0)


def test_hook_traces_recorded():
    sim = Simulator()
    hook = _rc_hook(dt=1e-3)
    sim.attach_analog(hook)
    sim.run(until=0.5)
    tr = hook.traces["v(out)"]
    assert len(tr) > 100
    assert tr.values[0] == pytest.approx(0.0, abs=1e-9)


def test_threshold_watcher_fires_event_and_wakes_process():
    sim = Simulator()
    hook = _rc_hook()
    sim.attach_analog(hook)
    crossed = sim.event("crossed")
    hook.watch("out-rises", "out", threshold=2.5, event=crossed, direction="rising")
    seen = []

    def waiter():
        yield WaitEvent(crossed)
        seen.append(sim.now)

    sim.add_process(waiter())
    sim.run(until=3.0)
    # v(t) = 5 (1 - e^-t) crosses 2.5 at t = ln 2.
    assert len(seen) == 1
    assert seen[0] == pytest.approx(math.log(2.0), abs=0.01)


def test_watcher_direction_filtering():
    # A sine through the watcher: rising-only must fire half as often.
    def build(direction):
        ckt = Circuit("sine")
        ckt.add(VoltageSource("V1", "a", "0", waveform=sine(1.0, 10.0)))
        ckt.add(Resistor("R1", "a", "0", 1e3))
        hook = CircuitHook(ckt.build(), dt=1e-4)
        watcher = hook.watch("w", "a", threshold=0.0, direction=direction)
        sim = Simulator()
        sim.attach_analog(hook)
        sim.run(until=0.5)  # 5 cycles
        return watcher

    rising = build("rising")
    both = build("both")
    assert len(rising.crossings) == pytest.approx(5, abs=1)
    assert len(both.crossings) == pytest.approx(10, abs=1)


def test_watcher_bad_direction():
    with pytest.raises(SimulationError):
        ThresholdWatcher("w", lambda x: 0.0, 0.0, direction="sideways")


def test_digital_process_reads_analog_mid_run():
    sim = Simulator()
    hook = _rc_hook()
    sim.attach_analog(hook)
    readings = []

    def sampler():
        for _ in range(4):
            yield Delay(0.25)
            readings.append(hook.voltage("out"))

    sim.add_process(sampler())
    sim.run(until=1.1)
    assert len(readings) == 4
    # Monotone charging.
    assert all(b > a for a, b in zip(readings, readings[1:]))
    assert readings[0] == pytest.approx(5.0 * (1 - math.exp(-0.25)), rel=0.02)


def test_hook_requires_positive_dt():
    ckt = Circuit("x")
    ckt.add(Resistor("R1", "a", "0", 1.0))
    with pytest.raises(SimulationError):
        CircuitHook(ckt.build(), dt=0.0)
