"""MNA assembly and Newton solver edge cases."""

import numpy as np
import pytest

from repro.analog import Circuit, operating_point
from repro.analog.components import (
    Capacitor,
    Diode,
    Resistor,
    Supercapacitor,
    VoltageSource,
)
from repro.analog.mna import MnaSystem
from repro.analog.newton import NewtonOptions, solve_newton
from repro.errors import ConvergenceError, SingularMatrixError


def test_initial_vector_includes_component_extras():
    from repro.analog.components import Inductor

    ckt = Circuit("init")
    ckt.add(VoltageSource("V1", "a", "0", dc=1.0))
    ckt.add(Inductor("L1", "a", "0", 1e-3, i0=0.25))
    sys = ckt.build()
    x0 = sys.initial_vector()
    ind = ckt.component("L1")
    assert x0[ind.extra_idx[0]] == 0.25


def test_seed_initial_conditions_plain_and_supercap():
    ckt = Circuit("seed")
    ckt.add(Resistor("Rb", "a", "0", 1e3))
    ckt.add(Capacitor("C1", "a", "0", 1e-6, v0=1.5))
    sc = ckt.add(Supercapacitor("SC", "b", "0", 0.1, v0=2.5))
    ckt.add(Resistor("Rb2", "b", "0", 1e3))
    sys = ckt.build()
    x = sys.initial_vector()
    sys.seed_initial_conditions(x)
    assert sys.voltage(x, "a") == pytest.approx(1.5)
    assert sys.voltage(x, "b") == pytest.approx(2.5)
    assert sc.stored_voltage(x) == pytest.approx(2.5)


def test_singular_matrix_raises():
    # Two nodes connected only to each other through a V source, with a
    # ground reference elsewhere: node 'b' floats -> singular.
    ckt = Circuit("singular")
    ckt.add(Resistor("Rg", "a", "0", 1e3))
    ckt.add(VoltageSource("V1", "b", "c", dc=1.0))
    ckt.add(Resistor("Rf", "b", "c", 1e3))
    sys = ckt.build()
    x0 = sys.initial_vector()
    with pytest.raises(SingularMatrixError):
        solve_newton(sys, x0, x0, 0.0, 1.0, mode="dc")


def test_newton_iteration_limit():
    ckt = Circuit("hard")
    ckt.add(VoltageSource("V1", "in", "0", dc=100.0))
    ckt.add(Resistor("R1", "in", "a", 1.0))
    ckt.add(Diode("D1", "a", "0"))
    sys = ckt.build()
    x0 = sys.initial_vector()
    with pytest.raises(ConvergenceError) as err:
        solve_newton(
            sys, x0, x0, 0.0, 1.0, mode="dc",
            options=NewtonOptions(max_iterations=2),
        )
    assert err.value.iterations == 2


def test_gmin_stepping_rescues_hard_dc():
    # The same circuit converges through operating_point's gmin homotopy.
    ckt = Circuit("hard2")
    ckt.add(VoltageSource("V1", "in", "0", dc=100.0))
    ckt.add(Resistor("R1", "in", "a", 1.0))
    ckt.add(Diode("D1", "a", "0"))
    sys = ckt.build()
    x = operating_point(sys)
    vd = sys.voltage(x, "a")
    assert 0.6 < vd < 1.5  # ~99 A forced through the junction: big drop
    d = ckt.component("D1")
    r = ckt.component("R1")
    assert r.current(x) == pytest.approx(d.current(x), rel=1e-3)


def test_update_states_commits_capacitor_history():
    ckt = Circuit("hist")
    ckt.add(VoltageSource("V1", "a", "0", dc=1.0))
    ckt.add(Resistor("R1", "a", "b", 1e3))
    cap = ckt.add(Capacitor("C1", "b", "0", 1e-6))
    sys = ckt.build()
    x_prev = sys.initial_vector()
    x = solve_newton(sys, x_prev, x_prev, 1e-5, 1e-5, mode="tran", method="trap")
    sys.update_states(x, x_prev, 1e-5, "trap")
    assert cap._i_prev != 0.0
    sys.reset_states()
    assert cap._i_prev == 0.0


def test_nonlinear_flag_collected():
    ckt = Circuit("flags")
    ckt.add(VoltageSource("V1", "a", "0", dc=1.0))
    ckt.add(Resistor("R1", "a", "b", 1e3))
    ckt.add(Diode("D1", "b", "0"))
    sys = ckt.build()
    assert len(sys.nonlinear) == 1
    assert sys.nonlinear[0].name == "D1"
