"""Controlled sources: DC, AC and composition checks."""

import numpy as np
import pytest

from repro.analog import Circuit, ac_analysis, operating_point
from repro.analog.components import Resistor, VoltageSource
from repro.analog.components.controlled import Cccs, Ccvs, Vccs, Vcvs
from repro.errors import NetlistError


def test_vcvs_amplifies():
    ckt = Circuit("vcvs")
    ckt.add(VoltageSource("V1", "in", "0", dc=0.5))
    ckt.add(Resistor("Rin", "in", "0", 1e6))
    ckt.add(Vcvs("E1", "out", "0", "in", "0", gain=10.0))
    ckt.add(Resistor("RL", "out", "0", 1e3))
    sys = ckt.build()
    x = operating_point(sys)
    assert sys.voltage(x, "out") == pytest.approx(5.0)


def test_vcvs_inverting():
    ckt = Circuit("vcvs-inv")
    ckt.add(VoltageSource("V1", "in", "0", dc=1.0))
    ckt.add(Vcvs("E1", "out", "0", "0", "in", gain=2.0))  # inverted sense
    ckt.add(Resistor("RL", "out", "0", 1e3))
    sys = ckt.build()
    x = operating_point(sys)
    assert sys.voltage(x, "out") == pytest.approx(-2.0)


def test_vccs_transconductance():
    ckt = Circuit("vccs")
    ckt.add(VoltageSource("V1", "in", "0", dc=2.0))
    ckt.add(Vccs("G1", "0", "out", "in", "0", gm=1e-3))
    ckt.add(Resistor("RL", "out", "0", 500.0))
    sys = ckt.build()
    x = operating_point(sys)
    # i = gm*v = 2 mA into RL -> 1 V
    assert sys.voltage(x, "out") == pytest.approx(1.0)


def test_ccvs_transresistance():
    ckt = Circuit("ccvs")
    vs = VoltageSource("V1", "in", "0", dc=1.0)
    ckt.add(vs)
    ckt.add(Resistor("R1", "in", "0", 100.0))  # i(V1) = -10 mA (p->n)
    ckt.add(Ccvs("H1", "out", "0", vs, r=200.0))
    ckt.add(Resistor("RL", "out", "0", 1e3))
    sys = ckt.build()
    x = operating_point(sys)
    i_control = vs.current(x)
    assert sys.voltage(x, "out") == pytest.approx(200.0 * i_control)


def test_cccs_current_mirror():
    ckt = Circuit("cccs")
    vs = VoltageSource("V1", "in", "0", dc=1.0)
    ckt.add(vs)
    ckt.add(Resistor("R1", "in", "0", 100.0))
    ckt.add(Cccs("F1", "0", "out", vs, gain=2.0))
    ckt.add(Resistor("RL", "out", "0", 50.0))
    sys = ckt.build()
    x = operating_point(sys)
    i_control = vs.current(x)  # -10 mA (branch current defined into V1's +)
    # The CCCS injects gain * i_control into node "out".
    assert sys.voltage(x, "out") == pytest.approx(2.0 * i_control * 50.0)


def test_controlled_sources_in_ac():
    ckt = Circuit("vcvs-ac")
    ckt.add(VoltageSource("V1", "in", "0", dc=0.0, ac_magnitude=1.0))
    ckt.add(Resistor("Rin", "in", "0", 1e6))
    ckt.add(Vcvs("E1", "out", "0", "in", "0", gain=4.0))
    ckt.add(Resistor("RL", "out", "0", 1e3))
    sys = ckt.build()
    res = ac_analysis(sys, [100.0])
    assert res.magnitude("out")[0] == pytest.approx(4.0, rel=1e-9)


def test_cascaded_vcvs_gains_multiply():
    ckt = Circuit("cascade")
    ckt.add(VoltageSource("V1", "a", "0", dc=0.1))
    ckt.add(Resistor("Ra", "a", "0", 1e6))
    ckt.add(Vcvs("E1", "b", "0", "a", "0", gain=3.0))
    ckt.add(Resistor("Rb", "b", "0", 1e3))
    ckt.add(Vcvs("E2", "c", "0", "b", "0", gain=5.0))
    ckt.add(Resistor("Rc", "c", "0", 1e3))
    sys = ckt.build()
    x = operating_point(sys)
    assert sys.voltage(x, "c") == pytest.approx(1.5)


def test_current_controlled_requires_branch_element():
    r = Resistor("R1", "a", "0", 100.0)
    with pytest.raises(NetlistError):
        Ccvs("H1", "out", "0", r, r=10.0)
    with pytest.raises(NetlistError):
        Cccs("F1", "out", "0", r, gain=2.0)
