"""Transient analysis against closed-form circuit responses."""

import math

import numpy as np
import pytest

from repro.analog import Circuit, TransientSolver
from repro.analog.components import (
    Capacitor,
    Inductor,
    Resistor,
    Supercapacitor,
    VoltageSource,
    sine,
    step,
)
from repro.errors import SimulationError


def _rc_circuit(v=5.0, r=1e3, c=1e-6):
    ckt = Circuit("rc")
    ckt.add(VoltageSource("V1", "in", "0", dc=v))
    ckt.add(Resistor("R1", "in", "out", r))
    ckt.add(Capacitor("C1", "out", "0", c))
    return ckt


def test_rc_charging_matches_exponential():
    ckt = _rc_circuit()
    res = TransientSolver(ckt.build()).run(t_end=5e-3, dt=1e-5)
    tr = res.traces["v(out)"]
    for t in (0.5e-3, 1e-3, 2e-3, 4e-3):
        expected = 5.0 * (1.0 - math.exp(-t / 1e-3))
        assert tr.interp(t) == pytest.approx(expected, rel=0.02)


def test_rc_with_initial_condition():
    ckt = Circuit("rc-ic")
    ckt.add(Resistor("R1", "out", "0", 1e3))
    ckt.add(Capacitor("C1", "out", "0", 1e-6, v0=2.0))
    res = TransientSolver(ckt.build()).run(t_end=3e-3, dt=1e-5)
    tr = res.traces["v(out)"]
    assert tr.values[0] == pytest.approx(2.0)
    assert tr.interp(1e-3) == pytest.approx(2.0 * math.exp(-1.0), rel=0.02)


def test_backward_euler_also_converges():
    ckt = _rc_circuit()
    res = TransientSolver(ckt.build(), method="be").run(t_end=2e-3, dt=5e-6)
    assert res.traces["v(out)"].interp(1e-3) == pytest.approx(
        5.0 * (1.0 - math.exp(-1.0)), rel=0.03
    )


def test_rl_current_rise():
    ckt = Circuit("rl")
    ckt.add(VoltageSource("V1", "in", "0", dc=1.0))
    ckt.add(Resistor("R1", "in", "a", 10.0))
    ind = ckt.add(Inductor("L1", "a", "0", 10e-3))  # tau = 1 ms
    sys = ckt.build()
    solver = TransientSolver(sys)
    state = {}

    def capture(t, x):
        state[round(t, 9)] = ind.current(x)

    res = solver.run(t_end=3e-3, dt=1e-5, on_step=capture)
    i_final = ind.current(res.final_state)
    assert i_final == pytest.approx(0.1 * (1 - math.exp(-3.0)), rel=0.03)


def test_lc_oscillator_conserves_amplitude():
    # Undamped LC tank started from a charged capacitor: trapezoidal
    # integration should preserve the oscillation amplitude well.
    ckt = Circuit("lc")
    ckt.add(Capacitor("C1", "a", "0", 1e-6, v0=1.0))
    ckt.add(Inductor("L1", "a", "0", 1e-3))
    sys = ckt.build()
    f0 = 1.0 / (2 * math.pi * math.sqrt(1e-3 * 1e-6))  # ~5.03 kHz
    res = TransientSolver(sys, lte_tol=1e-4).run(
        t_end=5.0 / f0, dt=1.0 / (f0 * 200), adaptive=False
    )
    tr = res.traces["v(a)"]
    last_cycle = tr.values[-200:]
    assert np.max(np.abs(last_cycle)) == pytest.approx(1.0, abs=0.05)


def test_sine_source_amplitude_on_resistor():
    ckt = Circuit("sine")
    ckt.add(VoltageSource("V1", "a", "0", waveform=sine(2.0, 100.0)))
    ckt.add(Resistor("R1", "a", "0", 1e3))
    res = TransientSolver(ckt.build()).run(t_end=0.02, dt=1e-5)
    tr = res.traces["v(a)"]
    assert tr.max() == pytest.approx(2.0, rel=0.01)
    assert tr.min() == pytest.approx(-2.0, rel=0.01)


def test_step_waveform_switches():
    ckt = Circuit("step")
    ckt.add(VoltageSource("V1", "a", "0", waveform=step(0.0, 3.0, 1e-3)))
    ckt.add(Resistor("R1", "a", "0", 1e3))
    res = TransientSolver(ckt.build()).run(t_end=2e-3, dt=1e-5, adaptive=False)
    tr = res.traces["v(a)"]
    assert tr.interp(0.5e-3) == pytest.approx(0.0, abs=1e-9)
    assert tr.interp(1.5e-3) == pytest.approx(3.0)


def test_supercapacitor_charges_through_esr():
    ckt = Circuit("supercap")
    ckt.add(VoltageSource("V1", "in", "0", dc=3.0))
    ckt.add(Resistor("R1", "in", "vdc", 10.0))
    sc = ckt.add(Supercapacitor("SC", "vdc", "0", 0.1, esr=1.0, v0=1.0))
    sys = ckt.build()
    res = TransientSolver(sys).run(t_end=2.0, dt=1e-3)
    v_bulk = sc.stored_voltage(res.final_state)
    expected = 3.0 - 2.0 * math.exp(-2.0 / (0.1 * 11.0))
    assert v_bulk == pytest.approx(expected, rel=0.05)


def test_transient_rejects_bad_arguments():
    sys = _rc_circuit().build()
    solver = TransientSolver(sys)
    with pytest.raises(SimulationError):
        solver.run(t_end=0.0, dt=1e-6)
    with pytest.raises(SimulationError):
        solver.run(t_end=1.0, dt=-1e-6)
    with pytest.raises(SimulationError):
        TransientSolver(sys, method="rk4")


def test_result_counts_steps():
    res = TransientSolver(_rc_circuit().build()).run(t_end=1e-3, dt=1e-5)
    assert res.steps_taken > 50
    assert res.final_time == pytest.approx(1e-3)
