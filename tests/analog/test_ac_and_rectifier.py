"""AC analysis and diode-bridge rectifier behaviour."""

import math

import numpy as np
import pytest

from repro.analog import Circuit, TransientSolver, ac_analysis
from repro.analog.components import (
    Capacitor,
    Inductor,
    Resistor,
    VoltageSource,
    sine,
)
from repro.harvester.rectifier import add_diode_bridge


def test_rc_lowpass_corner_frequency():
    ckt = Circuit("lowpass")
    ckt.add(VoltageSource("V1", "in", "0", dc=0.0, ac_magnitude=1.0))
    ckt.add(Resistor("R1", "in", "out", 1e3))
    ckt.add(Capacitor("C1", "out", "0", 1e-6))
    sys = ckt.build()
    fc = 1.0 / (2 * math.pi * 1e3 * 1e-6)  # ~159 Hz
    res = ac_analysis(sys, [fc / 100, fc, fc * 100])
    mags = res.magnitude("out")
    assert mags[0] == pytest.approx(1.0, rel=1e-3)
    assert mags[1] == pytest.approx(1.0 / math.sqrt(2.0), rel=1e-2)
    assert mags[2] == pytest.approx(0.01, rel=0.05)


def test_rc_lowpass_phase():
    ckt = Circuit("lowpass")
    ckt.add(VoltageSource("V1", "in", "0", dc=0.0, ac_magnitude=1.0))
    ckt.add(Resistor("R1", "in", "out", 1e3))
    ckt.add(Capacitor("C1", "out", "0", 1e-6))
    sys = ckt.build()
    fc = 1.0 / (2 * math.pi * 1e3 * 1e-6)
    res = ac_analysis(sys, [fc])
    assert res.phase("out")[0] == pytest.approx(-math.pi / 4, rel=1e-2)


def test_rlc_series_resonance_peak():
    ckt = Circuit("rlc")
    ckt.add(VoltageSource("V1", "in", "0", dc=0.0, ac_magnitude=1.0))
    ckt.add(Resistor("R1", "in", "a", 10.0))
    ckt.add(Inductor("L1", "a", "b", 1e-3))
    ckt.add(Capacitor("C1", "b", "0", 1e-6))
    sys = ckt.build()
    f0 = 1.0 / (2 * math.pi * math.sqrt(1e-3 * 1e-6))
    freqs = np.linspace(0.5 * f0, 1.5 * f0, 101)
    res = ac_analysis(sys, freqs)
    # Current through the loop peaks at resonance; measure via v(a)-v(b)
    # magnitude across the inductor+capacitor... simplest: v(b) across C.
    mags = res.magnitude("b")
    peak_freq = freqs[int(np.argmax(mags))]
    assert peak_freq == pytest.approx(f0, rel=0.03)


def test_full_bridge_rectifies_both_half_cycles():
    ckt = Circuit("bridge")
    ckt.add(VoltageSource("V1", "ac_p", "ac_n", waveform=sine(3.0, 50.0)))
    ckt.add(Resistor("RS", "ac_n", "0", 1.0))
    add_diode_bridge(ckt, "ac_p", "ac_n", "vdc", "0")
    ckt.add(Capacitor("CL", "vdc", "0", 470e-6))
    ckt.add(Resistor("RL", "vdc", "0", 10e3))
    sys = ckt.build()
    res = TransientSolver(sys).run(t_end=0.3, dt=1e-4)
    tr = res.traces["v(vdc)"]
    final = tr.interp(0.3)
    # Peak 3 V minus two diode drops; ripple small with 470 uF.
    assert 1.8 < final < 2.9
    # The DC output must never go significantly negative.
    assert tr.min() > -0.1


def test_bridge_blocks_when_amplitude_below_two_drops():
    ckt = Circuit("bridge-low")
    ckt.add(VoltageSource("V1", "ac_p", "ac_n", waveform=sine(0.3, 50.0)))
    ckt.add(Resistor("RS", "ac_n", "0", 1.0))
    add_diode_bridge(ckt, "ac_p", "ac_n", "vdc", "0")
    ckt.add(Capacitor("CL", "vdc", "0", 100e-6))
    ckt.add(Resistor("RL", "vdc", "0", 1e5))
    res = TransientSolver(ckt.build()).run(t_end=0.1, dt=1e-4)
    assert res.traces["v(vdc)"].max() < 0.2


def test_bridge_cannot_discharge_storage_backwards():
    # Pre-charged output cap with a silent source: diodes must hold it.
    ckt = Circuit("bridge-hold")
    ckt.add(VoltageSource("V1", "ac_p", "ac_n", dc=0.0))
    ckt.add(Resistor("RS", "ac_n", "0", 1.0))
    add_diode_bridge(ckt, "ac_p", "ac_n", "vdc", "0")
    ckt.add(Capacitor("CL", "vdc", "0", 100e-6, v0=2.0))
    res = TransientSolver(ckt.build()).run(t_end=0.5, dt=1e-3)
    assert res.traces["v(vdc)"].interp(0.5) > 1.95
