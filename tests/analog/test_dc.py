"""DC operating-point tests: dividers, diodes, gmin stepping."""

import math

import pytest

from repro.analog import Circuit, operating_point
from repro.analog.components import (
    CurrentSource,
    Diode,
    Resistor,
    VoltageSource,
)
from repro.errors import NetlistError


def test_voltage_divider():
    ckt = Circuit("divider")
    ckt.add(VoltageSource("V1", "in", "0", dc=10.0))
    ckt.add(Resistor("R1", "in", "out", 1e3))
    ckt.add(Resistor("R2", "out", "0", 3e3))
    sys = ckt.build()
    x = operating_point(sys)
    assert sys.voltage(x, "in") == pytest.approx(10.0)
    assert sys.voltage(x, "out") == pytest.approx(7.5)


def test_current_source_into_resistor():
    ckt = Circuit("cs")
    ckt.add(CurrentSource("I1", "0", "a", dc=1e-3))
    ckt.add(Resistor("R1", "a", "0", 2e3))
    sys = ckt.build()
    x = operating_point(sys)
    assert sys.voltage(x, "a") == pytest.approx(2.0)


def test_vsource_branch_current():
    ckt = Circuit("loop")
    v1 = ckt.add(VoltageSource("V1", "a", "0", dc=5.0))
    ckt.add(Resistor("R1", "a", "0", 1e3))
    sys = ckt.build()
    x = operating_point(sys)
    # Source pushes current out of its + terminal through R back to -.
    assert abs(v1.current(x)) == pytest.approx(5e-3, rel=1e-6)


def test_diode_forward_drop_is_reasonable():
    ckt = Circuit("diode")
    ckt.add(VoltageSource("V1", "in", "0", dc=5.0))
    ckt.add(Resistor("R1", "in", "a", 1e3))
    ckt.add(Diode("D1", "a", "0"))
    sys = ckt.build()
    x = operating_point(sys)
    vd = sys.voltage(x, "a")
    assert 0.4 < vd < 0.9
    # KCL: resistor current equals diode current.
    d = ckt.component("D1")
    r = ckt.component("R1")
    assert r.current(x) == pytest.approx(d.current(x), rel=1e-4)


def test_diode_reverse_blocks():
    ckt = Circuit("diode-rev")
    ckt.add(VoltageSource("V1", "in", "0", dc=-5.0))
    ckt.add(Resistor("R1", "in", "a", 1e3))
    ckt.add(Diode("D1", "a", "0"))
    sys = ckt.build()
    x = operating_point(sys)
    # Nearly the full (negative) supply appears across the diode.
    assert sys.voltage(x, "a") == pytest.approx(-5.0, abs=0.05)


def test_series_diodes_split_drop():
    ckt = Circuit("diode2")
    ckt.add(VoltageSource("V1", "in", "0", dc=5.0))
    ckt.add(Resistor("R1", "in", "a", 1e3))
    ckt.add(Diode("D1", "a", "b"))
    ckt.add(Diode("D2", "b", "0"))
    sys = ckt.build()
    x = operating_point(sys)
    va, vb = sys.voltage(x, "a"), sys.voltage(x, "b")
    assert va > vb > 0.0
    assert (va - vb) == pytest.approx(vb, rel=0.05)


def test_floating_circuit_rejected():
    ckt = Circuit("floating")
    ckt.add(Resistor("R1", "a", "b", 1e3))
    with pytest.raises(NetlistError):
        ckt.build()


def test_duplicate_component_name_rejected():
    ckt = Circuit("dup")
    ckt.add(Resistor("R1", "a", "0", 1e3))
    with pytest.raises(NetlistError):
        ckt.add(Resistor("R1", "b", "0", 1e3))


def test_nonpositive_resistance_rejected():
    with pytest.raises(NetlistError):
        Resistor("R1", "a", "0", 0.0)
    with pytest.raises(NetlistError):
        Resistor("R1", "a", "0", -5.0)
