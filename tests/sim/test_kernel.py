"""Unit tests for the event-driven kernel: scheduling, processes, signals."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim import Delay, Signal, Simulator, WaitEvent, WaitSignal


def test_schedule_runs_callbacks_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_equal_time_events_run_fifo():
    sim = Simulator()
    order = []
    for tag in "abcde":
        sim.schedule(1.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == list("abcde")


def test_run_until_stops_at_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(5.0))
    sim.schedule(10.0, lambda: fired.append(10.0))
    sim.run(until=7.0)
    assert fired == [5.0]
    assert sim.now == 7.0


def test_run_resumes_after_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(5.0))
    sim.run(until=2.0)
    assert fired == []
    sim.run(until=10.0)
    assert fired == [5.0]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    sim.run()
    assert fired == []


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    # Remaining event still pending.
    sim.run()
    assert fired == [1, 2]


def test_process_delay_sequence():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield Delay(1.5)
        times.append(sim.now)
        yield Delay(0.5)
        times.append(sim.now)

    sim.add_process(proc())
    sim.run()
    assert times == [0.0, 1.5, 2.0]


def test_process_wait_signal():
    sim = Simulator()
    sig = Signal(0, name="s")
    seen = []

    def waiter():
        while True:
            yield WaitSignal(sig)
            seen.append((sim.now, sig.value))
            if sig.value >= 2:
                return

    def driver():
        yield Delay(1.0)
        sig.write(1)
        yield Delay(1.0)
        sig.write(2)

    sim.add_process(waiter())
    sim.add_process(driver())
    sim.run()
    assert seen == [(1.0, 1), (2.0, 2)]


def test_signal_write_same_value_does_not_wake():
    sim = Simulator()
    sig = Signal(5, name="s")
    wakes = []

    def waiter():
        yield WaitSignal(sig)
        wakes.append(sim.now)

    def driver():
        yield Delay(1.0)
        sig.write(5)  # unchanged: no wake
        yield Delay(1.0)
        sig.write(6)

    sim.add_process(waiter())
    sim.add_process(driver())
    sim.run()
    assert wakes == [2.0]


def test_named_event_notify_wakes_all_waiters():
    sim = Simulator()
    evt = sim.event("go")
    woken = []

    def waiter(tag):
        yield WaitEvent(evt)
        woken.append((tag, sim.now))

    def driver():
        yield Delay(3.0)
        evt.notify()

    sim.add_process(waiter("a"))
    sim.add_process(waiter("b"))
    sim.add_process(driver())
    sim.run()
    assert sorted(woken) == [("a", 3.0), ("b", 3.0)]


def test_process_kill_stops_resumption():
    sim = Simulator()
    ticks = []

    def ticker():
        while True:
            yield Delay(1.0)
            ticks.append(sim.now)

    proc = sim.add_process(ticker())
    sim.schedule(2.5, proc.kill)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]
    assert proc.finished


def test_process_bad_yield_raises():
    sim = Simulator()

    def bad():
        yield 42

    sim.add_process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_analog_hook_advances_with_time():
    from repro.sim import AnalogHook

    class Recorder(AnalogHook):
        def __init__(self):
            self.spans = []

        def advance(self, t_from, t_to):
            self.spans.append((t_from, t_to))
            return t_to

    sim = Simulator()
    hook = Recorder()
    sim.attach_analog(hook)
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=3.0)
    assert hook.spans == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]
    assert sim.now == 3.0


def test_analog_hook_early_stop_resyncs_kernel():
    from repro.sim import AnalogHook

    class EarlyStop(AnalogHook):
        def __init__(self):
            self.calls = 0

        def advance(self, t_from, t_to):
            self.calls += 1
            midpoint = (t_from + t_to) / 2.0
            if self.calls == 1 and midpoint < t_to:
                return midpoint
            return t_to

    sim = Simulator()
    sim.attach_analog(EarlyStop())
    fired = []
    sim.schedule(4.0, lambda: fired.append(sim.now))
    sim.run(until=4.0)
    assert fired == [4.0]
