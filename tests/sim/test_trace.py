"""Unit tests for waveform traces."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.trace import Trace, TraceSet


def test_append_and_arrays():
    tr = Trace("v")
    tr.append(0.0, 1.0)
    tr.append(1.0, 2.0)
    tr.append(2.0, 4.0)
    assert len(tr) == 3
    assert list(tr.times) == [0.0, 1.0, 2.0]
    assert list(tr.values) == [1.0, 2.0, 4.0]


def test_append_backwards_time_rejected():
    tr = Trace("v")
    tr.append(1.0, 1.0)
    with pytest.raises(SimulationError):
        tr.append(0.5, 2.0)


def test_equal_time_overwrites():
    tr = Trace("v")
    tr.append(1.0, 1.0)
    tr.append(1.0, 5.0)
    assert len(tr) == 1
    assert tr.values[0] == 5.0


def test_zero_order_hold_lookup():
    tr = Trace("v")
    tr.append(0.0, 1.0)
    tr.append(10.0, 2.0)
    assert tr.at(5.0) == 1.0
    assert tr.at(10.0) == 2.0
    assert tr.at(-1.0) == 1.0


def test_linear_interpolation():
    tr = Trace("v")
    tr.append(0.0, 0.0)
    tr.append(10.0, 10.0)
    assert tr.interp(2.5) == pytest.approx(2.5)
    # clamped beyond the ends
    assert tr.interp(20.0) == pytest.approx(10.0)


def test_interp_subnormal_gap_stays_within_value_range():
    # (v1-v0)/(t1-t0) overflows to inf when the time gap is subnormal;
    # interp/resample must fall back to the step lookup, never leak a
    # non-finite value out of the sampled range.
    gap = 2.225073858507203e-309
    tr = Trace("v")
    tr.append(0.0, 0.0)
    tr.append(gap, 1.0)
    for q in np.linspace(0.0, gap, 7):
        assert 0.0 <= tr.interp(q) <= 1.0
    grid = tr.resample(np.linspace(0.0, gap, 7))
    assert np.isfinite(grid).all()
    assert ((grid >= 0.0) & (grid <= 1.0)).all()


def test_resample_grid():
    tr = Trace("v")
    tr.append(0.0, 0.0)
    tr.append(1.0, 1.0)
    grid = tr.resample([0.0, 0.25, 0.5, 1.0])
    assert np.allclose(grid, [0.0, 0.25, 0.5, 1.0])


def test_empty_trace_rejects_queries():
    tr = Trace("v")
    with pytest.raises(SimulationError):
        tr.at(0.0)
    with pytest.raises(SimulationError):
        tr.interp(0.0)


def test_min_max_mean():
    tr = Trace("v")
    for t, v in [(0.0, 0.0), (1.0, 2.0), (2.0, 0.0)]:
        tr.append(t, v)
    assert tr.min() == 0.0
    assert tr.max() == 2.0
    # trapezoidal time-weighted mean of a triangle is half the peak
    assert tr.mean() == pytest.approx(1.0)


def test_time_above_threshold_exact_triangle():
    tr = Trace("v")
    for t, v in [(0.0, 0.0), (1.0, 2.0), (2.0, 0.0)]:
        tr.append(t, v)
    # above 1.0 between t=0.5 and t=1.5
    assert tr.time_above(1.0) == pytest.approx(1.0)
    assert tr.time_above(2.5) == 0.0
    assert tr.time_above(-1.0) == pytest.approx(2.0)


def test_traceset_creates_and_lists():
    ts = TraceSet()
    ts.trace("a").append(0.0, 1.0)
    ts.trace("b").append(0.0, 2.0)
    assert ts.names() == ["a", "b"]
    assert "a" in ts
    assert ts["a"].values[0] == 1.0


def test_traceset_csv_export():
    ts = TraceSet()
    for t in (0.0, 1.0):
        ts.trace("x").append(t, t)
        ts.trace("y").append(t, 2 * t)
    csv = ts.to_csv([0.0, 0.5, 1.0])
    lines = csv.strip().splitlines()
    assert lines[0] == "time,x,y"
    assert len(lines) == 4
    assert lines[2].startswith("0.5,0.5,1")
