"""Unit tests for signals, module hierarchy and the VCD writer."""

import pytest

from repro.errors import SimulationError
from repro.sim import Module, Signal, Simulator
from repro.sim.vcd import VcdWriter


def test_signal_read_write():
    s = Signal(3, name="s")
    assert s.read() == 3
    s.write(4)
    assert s.value == 4


def test_signal_on_change_callback_gets_old_and_new():
    s = Signal(0, name="s")
    seen = []
    s.on_change(lambda old, new: seen.append((old, new)))
    s.write(1)
    s.write(1)  # no change
    s.write(2)
    assert seen == [(0, 1), (1, 2)]


def test_signal_edge_callbacks():
    s = Signal(False, name="s")
    edges = []
    s.posedge(lambda: edges.append("rise"))
    s.negedge(lambda: edges.append("fall"))
    s.write(True)
    s.write(False)
    s.write(True)
    assert edges == ["rise", "fall", "rise"]


def test_module_hierarchy_names():
    sim = Simulator()
    top = Module(sim, "top")
    child = Module(sim, "harvester", parent=top)
    grand = Module(sim, "actuator", parent=child)
    assert grand.full_name == "top.harvester.actuator"
    assert [m.name for m in top.walk()] == ["top", "harvester", "actuator"]


def test_module_signal_and_process_naming():
    sim = Simulator()
    top = Module(sim, "top")
    sig = top.signal(0, name="v")
    assert sig.name == "top.v"

    ran = []

    def proc():
        ran.append(sim.now)
        yield Simulator.delay(1.0)

    p = top.process(proc(), name="beh")
    assert p.name == "top.beh"
    sim.run()
    assert ran == [0.0]


def test_vcd_writer_renders_header_and_changes():
    sim = Simulator()
    sig = Signal(0.0, name="vdd")
    writer = VcdWriter(timescale_seconds=1e-6)
    writer.watch(sig, sim, kind="real")
    sig.write(1.5)
    doc = writer.render()
    assert "$timescale" in doc
    assert "$var real 64" in doc
    assert "r1.5" in doc


def test_vcd_manual_record_and_bool():
    writer = VcdWriter()
    writer.record_value(0.0, "clk", False, kind="wire")
    writer.record_value(1e-6, "clk", True, kind="wire")
    doc = writer.render()
    assert "#0" in doc and "#1" in doc


def test_vcd_rejects_bad_timescale_and_kind():
    with pytest.raises(SimulationError):
        VcdWriter(timescale_seconds=0.0)
    writer = VcdWriter()
    sim = Simulator()
    with pytest.raises(SimulationError):
        writer.watch(Signal(0, name="x"), sim, kind="banana")
