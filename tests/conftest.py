"""Shared test configuration: reproducible Hypothesis profiles.

Two profiles are registered:

- ``dev`` (default): no deadline, random derivation -- good for local
  exploration, where a fresh random stream per run finds new examples.
- ``ci``: ``derandomize=True`` (the seed is fixed, so a CI run is a pure
  function of the code) with a generous fixed deadline.  Selected in CI
  via ``HYPOTHESIS_PROFILE=ci``.
"""

import os
from datetime import timedelta

from hypothesis import settings

settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=timedelta(milliseconds=2000),
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
