"""Shared test configuration: reproducible Hypothesis profiles.

Two profiles are registered:

- ``dev`` (default): no deadline, random derivation -- good for local
  exploration, where a fresh random stream per run finds new examples.
- ``ci``: ``derandomize=True`` (the seed is fixed, so a CI run is a pure
  function of the code) with a generous fixed deadline.  Selected in CI
  via ``HYPOTHESIS_PROFILE=ci``.
"""

import os
from datetime import timedelta

import pytest
from hypothesis import settings

settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=timedelta(milliseconds=2000),
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def clean_obs():
    """Run the test with telemetry off, restore prior state after.

    Telemetry switches are process-global by design (so instrumented
    code needs no plumbing); tests that flip them must not leak the
    flip into their neighbours.
    """
    from repro.obs.state import STATE

    saved = (STATE.metrics_on, STATE.sink_path)
    saved_env = {
        key: os.environ.get(key)
        for key in ("REPRO_OBS_METRICS", "REPRO_OBS_EVENTS")
    }
    STATE.close_sink()
    STATE.metrics_on = False
    STATE.sink_path = None
    try:
        yield
    finally:
        STATE.close_sink()
        STATE.metrics_on, STATE.sink_path = saved
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
