"""Process-wide telemetry switches.

One tiny mutable object, imported by every instrumented module, holding
the two questions the hot paths ask:

- are **metrics** being collected? (``STATE.metrics_on``)
- is there a **span/event sink**? (``STATE.sink_path`` -> a lazily
  opened :class:`~repro.obs.trace.EventSink`)

Both default *off*, so an uninstrumented program pays one attribute
read per instrumentation point and nothing else.  They are seeded from
the environment (``REPRO_OBS_METRICS``, ``REPRO_OBS_EVENTS``) at import
-- and :func:`repro.obs.configure` writes the same variables back --
so :class:`~repro.core.batch.BatchRunner` process workers and
partitioned-campaign subprocesses inherit the session's telemetry
configuration whether they fork or spawn.
"""

from __future__ import annotations

import os
from typing import Optional


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


class ObsState:
    """The mutable telemetry switchboard (one instance per process)."""

    __slots__ = ("metrics_on", "sink_path", "_sink")

    def __init__(self) -> None:
        self.metrics_on: bool = _env_flag("REPRO_OBS_METRICS")
        self.sink_path: Optional[str] = os.environ.get("REPRO_OBS_EVENTS") or None
        self._sink = None  # lazily opened EventSink

    def sink(self):
        """The open event sink, or ``None`` when tracing is off."""
        if self.sink_path is None:
            return None
        if self._sink is None or str(self._sink.path) != self.sink_path:
            from repro.obs.trace import EventSink

            self._sink = EventSink(self.sink_path)
        return self._sink

    def close_sink(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None


#: The process-wide switchboard every instrumented module reads.
STATE = ObsState()


def metrics_enabled() -> bool:
    """Cheap hot-path guard: is the metrics registry collecting?"""
    return STATE.metrics_on


def tracing_enabled() -> bool:
    """Is a span/event sink configured?"""
    return STATE.sink_path is not None
