"""Render span/event logs for humans (the ``repro-wsn obs`` commands).

:func:`summarize_events` aggregates a JSON-lines event log into one
table per record kind: spans grouped by name with count and wall-time
statistics (total, mean, max -- the "where did the time go" view), and
instant events grouped by name with counts.  :func:`tail_events`
renders the last N records chronologically, one line each, for eyeball
debugging of a live service's sink file.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.trace import read_events


@dataclass
class SpanStats:
    """Aggregate timing for one span name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    errors: int = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class EventLogSummary:
    """Everything :func:`summarize_events` extracted from one log."""

    path: str
    n_records: int = 0
    n_spans: int = 0
    n_events: int = 0
    n_traces: int = 0
    span_stats: Dict[str, SpanStats] = field(default_factory=dict)
    event_counts: Dict[str, int] = field(default_factory=dict)
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None

    def render(self) -> str:
        from repro.core.report import format_table

        lines = [
            f"{self.path}: {self.n_records} records "
            f"({self.n_spans} spans, {self.n_events} events, "
            f"{self.n_traces} traces)"
        ]
        if self.first_ts is not None and self.last_ts is not None:
            window = self.last_ts - self.first_ts
            lines.append(f"window: {window:.1f} s")
        if self.span_stats:
            rows = [
                [
                    stats.name,
                    str(stats.count),
                    f"{stats.total_s:.3f}",
                    f"{stats.mean_s * 1e3:.2f}",
                    f"{stats.max_s * 1e3:.2f}",
                    str(stats.errors),
                ]
                for stats in sorted(
                    self.span_stats.values(),
                    key=lambda s: s.total_s,
                    reverse=True,
                )
            ]
            lines.append("")
            lines.append(
                format_table(
                    ["span", "count", "total (s)", "mean (ms)", "max (ms)", "errors"],
                    rows,
                    title="spans by total wall time",
                )
            )
        if self.event_counts:
            rows = [
                [name, str(count)]
                for name, count in sorted(
                    self.event_counts.items(), key=lambda kv: (-kv[1], kv[0])
                )
            ]
            lines.append("")
            lines.append(format_table(["event", "count"], rows, title="events"))
        return "\n".join(lines)


def summarize_events(path) -> EventLogSummary:
    """Aggregate a JSON-lines event log (see module docstring)."""
    summary = EventLogSummary(path=str(path))
    traces = set()
    for record in read_events(path):
        summary.n_records += 1
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            if summary.first_ts is None or ts < summary.first_ts:
                summary.first_ts = ts
            if summary.last_ts is None or ts > summary.last_ts:
                summary.last_ts = ts
        trace = record.get("trace")
        if trace:
            traces.add(trace)
        name = str(record.get("name", "?"))
        if record.get("kind") == "span":
            summary.n_spans += 1
            stats = summary.span_stats.setdefault(name, SpanStats(name))
            stats.count += 1
            duration = float(record.get("dur_s") or 0.0)
            stats.total_s += duration
            stats.max_s = max(stats.max_s, duration)
            if record.get("error"):
                stats.errors += 1
        else:
            summary.n_events += 1
            summary.event_counts[name] = summary.event_counts.get(name, 0) + 1
    summary.n_traces = len(traces)
    return summary


def format_event_line(record: dict) -> str:
    """One record as one human-readable line."""
    ts = record.get("ts")
    stamp = (
        time.strftime("%H:%M:%S", time.localtime(ts))
        if isinstance(ts, (int, float))
        else "--:--:--"
    )
    name = record.get("name", "?")
    kind = record.get("kind", "?")
    attrs = record.get("attrs") or {}
    attr_text = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    if kind == "span":
        duration = float(record.get("dur_s") or 0.0)
        error = f" ERROR={record['error']}" if record.get("error") else ""
        return f"{stamp} span  {name:<24s} {duration * 1e3:9.2f} ms{error}  {attr_text}"
    return f"{stamp} event {name:<24s} {'':>12s}  {attr_text}"


def tail_events(path, n: int = 20) -> List[dict]:
    """The last ``n`` records of an event log, oldest first."""
    return list(deque(read_events(path), maxlen=max(int(n), 1)))
