"""``repro.obs``: zero-dependency telemetry for the whole stack.

Three layers, all stdlib:

- **Metrics** (:mod:`repro.obs.metrics`) -- a process-wide registry of
  labelled counters, gauges and histograms with picklable, mergeable
  snapshots and Prometheus text exposition.
- **Tracing** (:mod:`repro.obs.trace`) -- context-propagated spans and
  instant events written as JSON lines to a sink file, covering the
  simulate hot path, the batch cache tiers, campaign/study chunks,
  store operations, worker claims and HTTP requests.
- **Logging** (:mod:`repro.obs.logging`) -- one shared stdlib-logging
  configuration (text or JSON lines) under the ``repro.*`` logger tree.

Everything is **off by default** and costs one attribute read per
instrumentation point while off.  Turning it on never changes results:
instrumentation only reads clocks and counts -- the differential test
in ``tests/obs`` pins store rows byte-identical either way.

Enable programmatically::

    import repro.obs as obs

    obs.configure(metrics=True, events="telemetry.jsonl")
    ... run campaigns ...
    print(obs.render_prometheus(obs.metrics().snapshot()))

or via the environment (inherited by worker processes):
``REPRO_OBS_METRICS=1`` and ``REPRO_OBS_EVENTS=telemetry.jsonl``.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.logging import (
    JsonLogFormatter,
    configure_logging,
    get_logger,
    log_context,
)
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    metrics,
    render_prometheus,
)
from repro.obs.state import STATE, metrics_enabled, tracing_enabled
from repro.obs.trace import (
    EventSink,
    current_trace_id,
    event,
    read_events,
    span,
)

__all__ = [
    "EventSink",
    "JsonLogFormatter",
    "MetricsRegistry",
    "MetricsSnapshot",
    "configure",
    "configure_logging",
    "current_trace_id",
    "event",
    "get_logger",
    "log_context",
    "metrics",
    "metrics_enabled",
    "read_events",
    "render_prometheus",
    "span",
    "tracing_enabled",
]


def configure(
    metrics: Optional[bool] = None,
    events: Optional[str] = None,
) -> None:
    """Flip the process-wide telemetry switches.

    ``metrics=True/False`` starts/stops registry collection;
    ``events=PATH`` points the span/event sink at a JSON-lines file and
    ``events=""`` turns tracing off.  ``None`` leaves a switch alone.
    The switches are mirrored into ``REPRO_OBS_METRICS`` /
    ``REPRO_OBS_EVENTS`` so worker processes (forked *or* spawned)
    inherit them.
    """
    if metrics is not None:
        STATE.metrics_on = bool(metrics)
        if metrics:
            os.environ["REPRO_OBS_METRICS"] = "1"
        else:
            os.environ.pop("REPRO_OBS_METRICS", None)
    if events is not None:
        STATE.close_sink()
        STATE.sink_path = str(events) or None
        if STATE.sink_path:
            os.environ["REPRO_OBS_EVENTS"] = STATE.sink_path
        else:
            os.environ.pop("REPRO_OBS_EVENTS", None)
