"""The process-wide metrics registry.

Labelled counters, gauges and histograms over plain dicts -- no
dependency, no background thread.  Three properties the rest of the
stack leans on:

- **Cheap when off.**  Every instrument checks the global telemetry
  switch (:mod:`repro.obs.state`) before touching its lock, so an
  uninstrumented run pays one attribute read per call site.
- **Picklable snapshots that merge.**  :meth:`MetricsRegistry.snapshot`
  returns a plain-data :class:`MetricsSnapshot` that crosses process
  boundaries (``BatchRunner`` ships one back per worker item) and
  :meth:`MetricsRegistry.merge` folds it into the parent: counters and
  histograms add, gauges take the incoming value.
- **Prometheus exposition.**  :func:`render_prometheus` serialises a
  snapshot into the text format (``# HELP``/``# TYPE`` per metric,
  ``_bucket``/``_sum``/``_count`` series per histogram) that
  ``/v1/metrics`` serves under content negotiation.

Metric names use Prometheus conventions directly (lowercase,
underscores, counters end in ``_total``) so nothing needs renaming at
exposition time.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.state import STATE

#: Default latency buckets (seconds): microbenchmarks to minutes.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigError(
            f"invalid metric name {name!r} (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
        )
    return name


@dataclass(frozen=True)
class _HistogramState:
    """One histogram series: cumulative bucket counts + sum + count."""

    bucket_counts: Tuple[int, ...]
    sum: float
    count: int

    def observe(self, value: float, buckets: Tuple[float, ...]) -> "_HistogramState":
        counts = list(self.bucket_counts)
        for i, bound in enumerate(buckets):
            if value <= bound:
                counts[i] += 1
        return _HistogramState(tuple(counts), self.sum + value, self.count + 1)

    def add(self, other: "_HistogramState") -> "_HistogramState":
        return _HistogramState(
            tuple(a + b for a, b in zip(self.bucket_counts, other.bucket_counts)),
            self.sum + other.sum,
            self.count + other.count,
        )


class _Instrument:
    """Shared label plumbing for the three instrument kinds."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        lock: threading.Lock,
    ):
        self.name = _check_name(name)
        self.help = str(help)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ConfigError(f"invalid metric label name {label!r}")
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._series: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ConfigError(
                f"metric {self.name} takes labels "
                f"({', '.join(self.labelnames) or 'none'}), "
                f"got ({', '.join(sorted(labels)) or 'none'})"
            )
        return tuple(str(labels[name]) for name in self.labelnames)


class Counter(_Instrument):
    """A monotone, labelled counter."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not STATE.metrics_on:
            return
        if amount < 0:
            raise ConfigError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))


class Gauge(_Instrument):
    """A labelled value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        if not STATE.metrics_on:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not STATE.metrics_on:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))


class Histogram(_Instrument):
    """A labelled distribution with cumulative buckets."""

    kind = "histogram"

    def __init__(self, name, help, labelnames, lock, buckets=DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigError(f"histogram {name} needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        if not STATE.metrics_on:
            return
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = _HistogramState(
                    (0,) * len(self.buckets), 0.0, 0
                )
            self._series[key] = state.observe(float(value), self.buckets)

    def state(self, **labels) -> _HistogramState:
        with self._lock:
            found = self._series.get(self._key(labels))
        if found is None:
            return _HistogramState((0,) * len(self.buckets), 0.0, 0)
        return found

    def count(self, **labels) -> int:
        return self.state(**labels).count


@dataclass(frozen=True)
class MetricsSnapshot:
    """A picklable, plain-data copy of a registry's state.

    ``metrics`` maps metric name to a dict with ``kind``, ``help``,
    ``labelnames``, ``series`` (label-values tuple -> float or
    :class:`_HistogramState`) and, for histograms, ``buckets``.
    """

    metrics: Dict[str, dict] = field(default_factory=dict)

    def names(self) -> List[str]:
        return sorted(self.metrics)


class MetricsRegistry:
    """A named family of instruments with get-or-create semantics.

    ``counter``/``gauge``/``histogram`` are idempotent: asking twice for
    the same name returns the same instrument, and asking with a
    conflicting kind or label set is a :class:`~repro.errors.ConfigError`
    (two modules silently disagreeing about a metric is a bug).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Instrument] = {}

    # -- get-or-create ---------------------------------------------------------

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ConfigError(
                        f"metric {name} is already registered as a "
                        f"{existing.kind} with labels "
                        f"({', '.join(existing.labelnames) or 'none'})"
                    )
                return existing
            instrument = cls(name, help, tuple(labelnames), self._lock, **kwargs)
            self._metrics[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=tuple(buckets)
        )

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- snapshot / merge ------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """A picklable copy of everything collected so far."""
        out: Dict[str, dict] = {}
        with self._lock:
            for name, instrument in self._metrics.items():
                entry = {
                    "kind": instrument.kind,
                    "help": instrument.help,
                    "labelnames": instrument.labelnames,
                    "series": dict(instrument._series),
                }
                if isinstance(instrument, Histogram):
                    entry["buckets"] = instrument.buckets
                out[name] = entry
        return MetricsSnapshot(out)

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (worker's) snapshot into this registry.

        Counters and histograms add; gauges take the incoming value
        (the worker's reading is newer by construction).  Instruments
        the snapshot knows and this registry does not are created.
        Merging ignores the global on/off switch: a shipped snapshot
        was collected while metrics were on somewhere.
        """
        for name, entry in snapshot.metrics.items():
            kind = entry["kind"]
            if kind == "counter":
                instrument = self.counter(name, entry["help"], entry["labelnames"])
            elif kind == "gauge":
                instrument = self.gauge(name, entry["help"], entry["labelnames"])
            elif kind == "histogram":
                instrument = self.histogram(
                    name, entry["help"], entry["labelnames"], entry["buckets"]
                )
            else:  # pragma: no cover - snapshots only hold the three kinds
                raise ConfigError(f"unknown metric kind {kind!r} in snapshot")
            with self._lock:
                series = instrument._series
                for key, incoming in entry["series"].items():
                    if kind == "gauge":
                        series[key] = incoming
                    elif key not in series:
                        series[key] = incoming
                    elif kind == "counter":
                        series[key] = series[key] + incoming
                    else:
                        series[key] = series[key].add(incoming)

    def reset(self) -> None:
        """Zero every series (instruments stay registered)."""
        with self._lock:
            for instrument in self._metrics.values():
                instrument._series.clear()


#: The process-wide default registry (what :func:`metrics` returns).
_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-wide registry every instrumented module shares."""
    return _REGISTRY


# -- Prometheus exposition -----------------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labelnames: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, values)
    )
    return "{" + pairs + "}"


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """Serialise a snapshot in the Prometheus text exposition format.

    Every metric gets a ``# HELP`` and ``# TYPE`` line; histogram series
    expand into cumulative ``_bucket{le=...}`` lines plus ``_sum`` and
    ``_count``.  Series are sorted, so two renders of equal snapshots
    are byte-identical.
    """
    lines: List[str] = []
    for name in sorted(snapshot.metrics):
        entry = snapshot.metrics[name]
        kind = entry["kind"]
        labelnames = tuple(entry["labelnames"])
        lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {kind}")
        series = entry["series"]
        if kind == "histogram":
            buckets = tuple(entry["buckets"])
            for key in sorted(series):
                state = series[key]
                # Stored bucket counts are already cumulative (observe
                # increments every bucket whose bound admits the value).
                for bound, in_bucket in zip(buckets, state.bucket_counts):
                    le_labels = _labels_text(
                        labelnames + ("le",), key + (_format_value(bound),)
                    )
                    lines.append(f"{name}_bucket{le_labels} {in_bucket}")
                inf_labels = _labels_text(labelnames + ("le",), key + ("+Inf",))
                lines.append(f"{name}_bucket{inf_labels} {state.count}")
                label_text = _labels_text(labelnames, key)
                lines.append(f"{name}_sum{label_text} {repr(float(state.sum))}")
                lines.append(f"{name}_count{label_text} {state.count}")
        else:
            for key in sorted(series):
                label_text = _labels_text(labelnames, key)
                lines.append(f"{name}{label_text} {_format_value(series[key])}")
    return "\n".join(lines) + ("\n" if lines else "")
