"""Shared structured-logging configuration.

One stdlib-``logging`` setup for the whole stack: every component logs
through a named child of the ``repro`` logger (``repro.service.http``,
``repro.service.worker``, ...), and :func:`configure_logging` decides
once -- per process -- whether those lines render as human text or as
one JSON object per line (``--log-json`` on the service CLI).

Nothing configures itself implicitly: a library user who never calls
:func:`configure_logging` sees the stdlib default (warnings and up to
stderr), exactly as before this module existed.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Optional

#: Root of every logger this library emits through.
ROOT_LOGGER = "repro"


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, msg (+ extras)."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            )
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        extra = getattr(record, "ctx", None)
        if isinstance(extra, dict):
            payload.update(extra)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


class TextLogFormatter(logging.Formatter):
    """The human shape: ``HH:MM:SS level logger: message``."""

    def __init__(self) -> None:
        super().__init__(
            fmt="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        )

    def format(self, record: logging.LogRecord) -> str:
        text = super().format(record)
        extra = getattr(record, "ctx", None)
        if isinstance(extra, dict) and extra:
            pairs = " ".join(f"{k}={v}" for k, v in sorted(extra.items()))
            text = f"{text} ({pairs})"
        return text


def configure_logging(
    json_lines: bool = False,
    level: str = "INFO",
    stream=None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree; returns its root.

    Idempotent: calling again replaces the handler (so tests and
    long-lived processes can switch formats) instead of stacking
    duplicates.  ``stream`` defaults to stderr -- stdout stays reserved
    for command output.
    """
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(getattr(logging, str(level).upper(), logging.INFO))
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter() if json_lines else TextLogFormatter())
    for existing in list(root.handlers):
        root.removeHandler(existing)
    root.addHandler(handler)
    root.propagate = False
    return root


def get_logger(name: str) -> logging.Logger:
    """A named logger under the shared ``repro`` root."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def log_context(**ctx) -> dict:
    """Build the ``extra=`` mapping carrying structured fields.

    Usage: ``log.info("claimed", extra=log_context(job=job.id))`` --
    the fields land as top-level keys in JSON mode and as trailing
    ``key=value`` pairs in text mode.
    """
    return {"ctx": ctx}


def logging_configured() -> bool:
    """Has :func:`configure_logging` installed a handler?"""
    return bool(logging.getLogger(ROOT_LOGGER).handlers)
