"""Lightweight span tracing with a JSON-lines event sink.

A *span* is a timed region of work; an *event* is an instant marker.
Both serialise as one JSON object per line into the configured sink
file, carrying enough context to reconstruct where wall time went:

.. code-block:: json

    {"kind": "span", "name": "campaign.chunk", "ts": 1754550000.1,
     "dur_s": 0.84, "trace": "6f1c...", "span": "a41b...",
     "parent": "930d...", "pid": 4242, "thread": "MainThread",
     "attrs": {"campaign": "smoke", "start": 16, "size": 16}}

Spans propagate through :mod:`contextvars`: a span opened inside
another (same thread/task) records it as its parent and shares its
trace id, so the claim -> execute -> chunk chain of a service job reads
as one tree.  Events inherit the ambient span the same way.

When no sink is configured (and metrics are off) :func:`span` returns a
shared no-op object and :func:`event` returns immediately -- the
off-by-default cost is one attribute read.  With metrics on, every
closed span also lands in the ``repro_span_seconds`` histogram, so the
registry sees durations even without an event log.

The sink path travels in ``REPRO_OBS_EVENTS`` (set by
:func:`repro.obs.configure`), so worker *processes* append to the same
file; appends are single ``write`` calls of one line, which POSIX keeps
atomic at these sizes.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.errors import ConfigError
from repro.obs.metrics import metrics
from repro.obs.state import STATE

#: Ambient (trace_id, span_id) for parenting; None outside any span.
_CONTEXT: "contextvars.ContextVar[Optional[tuple]]" = contextvars.ContextVar(
    "repro_obs_span", default=None
)

_SPAN_SECONDS = metrics().histogram(
    "repro_span_seconds",
    "Wall-clock duration of instrumented spans",
    ("name",),
)


def _new_id() -> str:
    return os.urandom(8).hex()


class EventSink:
    """Append-only JSON-lines writer, safe across threads and processes."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._fh = None
        self._pid = os.getpid()

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            # Reopen after a fork: sharing one file offset across
            # processes interleaves partial lines.
            if self._fh is None or self._pid != os.getpid():
                self._fh = open(self.path, "a", encoding="utf-8")
                self._pid = os.getpid()
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and self._pid == os.getpid():
                self._fh.close()
            self._fh = None


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def annotate(self, **attrs) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class Span:
    """One timed region; use via ``with span("name", key=value):``."""

    __slots__ = (
        "name", "attrs", "trace_id", "span_id", "parent_id", "_t0", "_ts",
        "_token",
    )

    def __init__(self, name: str, attrs: Dict[str, object]):
        self.name = str(name)
        self.attrs = attrs
        self.trace_id = ""
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self._t0 = 0.0
        self._ts = 0.0
        self._token = None

    def annotate(self, **attrs) -> "Span":
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        ambient = _CONTEXT.get()
        if ambient is None:
            self.trace_id = _new_id()
            self.parent_id = None
        else:
            self.trace_id, self.parent_id = ambient
        self.span_id = _new_id()
        self._token = _CONTEXT.set((self.trace_id, self.span_id))
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._t0
        _CONTEXT.reset(self._token)
        if STATE.metrics_on:
            _SPAN_SECONDS.observe(duration, name=self.name)
        sink = STATE.sink()
        if sink is not None:
            record = {
                "kind": "span",
                "name": self.name,
                "ts": self._ts,
                "dur_s": duration,
                "trace": self.trace_id,
                "span": self.span_id,
                "parent": self.parent_id,
                "pid": os.getpid(),
                "thread": threading.current_thread().name,
                "attrs": self.attrs,
            }
            if exc_type is not None:
                record["error"] = exc_type.__name__
            sink.write(record)


def span(name: str, /, **attrs):
    """A context manager timing one region of work.

    Free when telemetry is off: returns a shared no-op object without
    allocating.  Attribute values must be JSON-serialisable scalars.
    """
    if STATE.sink_path is None and not STATE.metrics_on:
        return _NOOP_SPAN
    return Span(name, attrs)


def event(name: str, /, **attrs) -> None:
    """Record one instant event (a zero-duration marker) in the sink."""
    sink = STATE.sink() if STATE.sink_path is not None else None
    if sink is None and not STATE.metrics_on:
        return
    if STATE.metrics_on:
        _EVENTS_TOTAL.inc(name=name)
    if sink is not None:
        ambient = _CONTEXT.get()
        sink.write(
            {
                "kind": "event",
                "name": str(name),
                "ts": time.time(),
                "trace": ambient[0] if ambient else None,
                "parent": ambient[1] if ambient else None,
                "pid": os.getpid(),
                "thread": threading.current_thread().name,
                "attrs": attrs,
            }
        )


_EVENTS_TOTAL = metrics().counter(
    "repro_events_total", "Instant telemetry events recorded", ("name",)
)


def current_trace_id() -> Optional[str]:
    """The ambient trace id, or ``None`` outside any span."""
    ambient = _CONTEXT.get()
    return None if ambient is None else ambient[0]


def read_events(path) -> Iterator[dict]:
    """Parse a JSON-lines event log, skipping torn trailing lines."""
    source = Path(path)
    if not source.exists():
        raise ConfigError(f"event log {str(source)!r} does not exist")
    with open(source, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # a torn line from a killed writer
            if isinstance(record, dict):
                yield record
