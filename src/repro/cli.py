"""Command-line interface.

Installed as ``repro-wsn``; every capability is also available as a
module run (``python -m repro.cli ...``).  Subcommands:

- ``simulate``      -- one simulation of a configuration on any backend
  (``--trace`` writes the Fig. 5-style supercap CSV).
- ``run-scenario``  -- execute a scenario JSON file, a library name or a
  ``gen-scenarios`` manifest (see :mod:`repro.scenario`; ``--list``
  names the built-in library and the stochastic families).
- ``gen-scenarios`` -- expand a stochastic scenario family
  (:mod:`repro.system.stochastic`) into a JSON manifest of concrete,
  seeded scenarios.
- ``explore``       -- the full paper flow: D-optimal DOE, RSM fit, SA + GA,
  verification; prints Table VI and optionally persists JSON.
  ``--design/--surrogate/--optimizers`` swap any stage for another
  registered one.
- ``study``         -- declarative studies (:mod:`repro.core.study`):
  ``run SPEC.json|NAME``, ``resume NAME``, ``status [NAME]``,
  ``template``.  A study is the whole explore pipeline as a JSON value,
  journaled in a result store and resumable after a kill with zero
  re-simulation of stored design points.
- ``sweep``         -- Fig. 4-style one-parameter sweep on the simulator.
- ``report``        -- re-render a persisted exploration outcome.
- ``tradeoff``      -- NSGA-II Pareto front of transmissions vs. reserve.
- ``montecarlo``    -- distribution of a config over random environments.
- ``store``         -- the persistent result store (:mod:`repro.store`):
  ``init``, ``stats``, ``gc``, ``export``.
- ``campaign``      -- resumable batch execution over a store:
  ``run MANIFEST``, ``resume NAME``, ``status [NAME]``.
- ``serve``         -- simulation as a service (:mod:`repro.service`):
  an HTTP job API (submit scenario manifests or study specs, poll
  status, fetch results, cancel) plus a worker pool draining the
  store's durable job queue.  ``--once`` processes the queue and exits
  (cron-style worker); SIGTERM drains in-flight jobs gracefully.
  ``--log-json`` switches service logs to JSON lines, ``--events PATH``
  records telemetry spans, and ``/v1/metrics?format=prometheus``
  exports the registry (:mod:`repro.obs`).
- ``coord``         -- the distributed campaign coordinator
  (:mod:`repro.coord`): ``run MANIFEST --workers URL,URL`` fans the
  campaign's partitions out to remote ``serve`` processes, journals
  partition state durably in the local store, retries lost partitions
  on healthy workers and stream-merges results back as partitions
  finish; ``status`` reads the journal (and local row counts) with no
  workers needed.  ``--resume`` continues a killed run with zero
  re-fetch of merged partitions.
- ``obs``           -- inspect telemetry event logs: ``summary LOG``
  aggregates spans/events by name, ``tail LOG [-n N]`` shows the last
  records.

``--backend`` selects any registered simulation backend (``envelope``,
``detailed``, or ``vectorized`` -- the NumPy lockstep engine that runs
whole scenario batches as arrays; batch subcommands dispatch it in one
``run_batch`` call), ``--jobs`` fans batch subcommands out over worker
processes, and ``--store DB`` (on ``run-scenario``, ``gen-scenarios``,
``explore``, ``montecarlo``) reads/writes simulations through a
content-addressed on-disk store so repeated work is never simulated
twice.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _add_backend_jobs(
    parser: argparse.ArgumentParser,
    jobs_help: str = "worker processes for batched simulations (default: 1)",
) -> None:
    parser.add_argument(
        "--backend",
        type=str,
        default="envelope",
        help=(
            "registered simulation backend: envelope, detailed or "
            "vectorized (default: envelope)"
        ),
    )
    parser.add_argument("--jobs", type=int, default=1, help=jobs_help)


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DB",
        help="persistent result store (SQLite file); hits skip simulation",
    )


def _open_store(path: str, shards=None):
    from repro.store import open_store

    # A directory is a sharded store, a file is a plain one -- every
    # --store flag accepts both shapes.
    return open_store(path, shards=shards)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wsn",
        description=(
            "RSM-based design space exploration of an energy-harvester "
            "powered wireless sensor node (Wang et al., DATE 2012)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one system simulation")
    sim.add_argument("--clock", type=float, default=4e6, help="MCU clock in Hz")
    sim.add_argument("--watchdog", type=float, default=320.0, help="watchdog period in s")
    sim.add_argument("--interval", type=float, default=5.0, help="fast transmission interval in s")
    sim.add_argument("--horizon", type=float, default=3600.0, help="simulated seconds")
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--trace", type=str, default=None, help="write supercap CSV here")
    _add_backend_jobs(
        sim, jobs_help="accepted for symmetry; a single simulation runs serially"
    )

    rsc = sub.add_parser("run-scenario", help="execute a scenario JSON file")
    rsc.add_argument(
        "path",
        type=str,
        nargs="?",
        default=None,
        help="scenario JSON (from Scenario.save) or a library name",
    )
    rsc.add_argument(
        "--list", action="store_true", help="list the built-in scenario library"
    )
    rsc.add_argument(
        "--save", type=str, default=None, help="write the (resolved) scenario JSON here"
    )
    rsc.add_argument(
        "--backend", type=str, default=None, help="override the scenario's backend"
    )
    rsc.add_argument(
        "--seed",
        type=int,
        default=None,
        help=(
            "override the scenario's seed (for a manifest: re-seed the "
            "batch with per-scenario derived seeds)"
        ),
    )
    rsc.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes when running a manifest (default: 1)",
    )
    rsc.add_argument(
        "--out",
        type=str,
        default=None,
        help=(
            "write the canonical schema-stamped result payload JSON here "
            "(readable by 'repro-wsn report')"
        ),
    )
    _add_store(rsc)

    gen = sub.add_parser(
        "gen-scenarios",
        help="expand a stochastic scenario family into a JSON manifest",
    )
    gen.add_argument(
        "family",
        type=str,
        nargs="?",
        default=None,
        help="family name (see --list)",
    )
    gen.add_argument(
        "--list", action="store_true", help="list the stochastic family library"
    )
    gen.add_argument(
        "--n", type=int, default=1, help="replicates per grid point (default: 1)"
    )
    gen.add_argument(
        "--seed", type=int, default=0, help="family expansion seed (default: 0)"
    )
    gen.add_argument(
        "--horizon", type=float, default=None, help="override the family horizon (s)"
    )
    gen.add_argument(
        "--backend", type=str, default=None, help="override the family backend"
    )
    gen.add_argument(
        "--out",
        type=str,
        default=None,
        help="write the manifest JSON here (default: stdout)",
    )
    gen.add_argument(
        "--campaign",
        type=str,
        default=None,
        metavar="NAME",
        help=(
            "with --store: campaign name to journal the expansion under "
            "(default: FAMILY-nN-sSEED)"
        ),
    )
    _add_store(gen)

    exp = sub.add_parser("explore", help="run the full paper DSE flow")
    exp.add_argument("--runs", type=int, default=10, help="D-optimal design size")
    exp.add_argument("--seed", type=int, default=1)
    exp.add_argument("--horizon", type=float, default=3600.0)
    exp.add_argument("--save", type=str, default=None, help="persist outcome JSON here")
    exp.add_argument(
        "--design",
        type=str,
        default="d-optimal",
        help="registered design generator (default: d-optimal)",
    )
    exp.add_argument(
        "--surrogate",
        type=str,
        default="quadratic",
        help="registered surrogate fitter (default: quadratic)",
    )
    exp.add_argument(
        "--optimizers",
        type=str,
        default=None,
        metavar="A,B,...",
        help=(
            "comma-separated registered optimizers "
            "(default: simulated-annealing,genetic-algorithm)"
        ),
    )
    _add_backend_jobs(exp)
    _add_store(exp)

    stu = sub.add_parser(
        "study", help="declarative, journaled, resumable explorations"
    )
    stu_sub = stu.add_subparsers(dest="study_command", required=True)

    stu_run = stu_sub.add_parser(
        "run", help="execute a study spec (JSON file or library name)"
    )
    stu_run.add_argument(
        "spec",
        type=str,
        help="StudySpec JSON file, or a library name (e.g. 'paper')",
    )
    stu_run.add_argument(
        "--name",
        type=str,
        default=None,
        help="journal name override (default: the spec's own name)",
    )
    stu_run.add_argument("--jobs", type=int, default=None)
    stu_run.add_argument(
        "--chunk",
        type=int,
        default=None,
        help="design points per durable chunk (default: max(4*jobs, 8))",
    )
    stu_run.add_argument(
        "--save", type=str, default=None, help="persist outcome JSON here"
    )
    _add_store(stu_run)

    stu_res = stu_sub.add_parser(
        "resume", help="continue an interrupted study"
    )
    stu_res.add_argument("name", type=str, help="journaled study name")
    stu_res.add_argument(
        "--store", type=str, required=True, metavar="DB", help="result store file"
    )
    stu_res.add_argument("--jobs", type=int, default=None)
    stu_res.add_argument(
        "--save", type=str, default=None, help="persist outcome JSON here"
    )

    stu_st = stu_sub.add_parser("status", help="study progress")
    stu_st.add_argument(
        "name",
        type=str,
        nargs="?",
        default=None,
        help="study name (omit to list every study)",
    )
    stu_st.add_argument(
        "--store", type=str, required=True, metavar="DB", help="result store file"
    )

    stu_tpl = stu_sub.add_parser(
        "template", help="print a starter spec (the paper study) as JSON"
    )
    stu_tpl.add_argument(
        "--out", type=str, default=None, help="write the spec here (default: stdout)"
    )

    swp = sub.add_parser("sweep", help="one-parameter sweep (Fig. 4 style)")
    swp.add_argument(
        "--parameter",
        choices=["clock_hz", "watchdog_s", "tx_interval_s"],
        required=True,
    )
    swp.add_argument("--points", type=int, default=7)
    swp.add_argument("--seed", type=int, default=1)
    _add_backend_jobs(swp)

    rep = sub.add_parser("report", help="render a persisted outcome")
    rep.add_argument("path", type=str, help="JSON file from 'explore --save'")

    tro = sub.add_parser("tradeoff", help="Pareto front: transmissions vs reserve")
    tro.add_argument("--seed", type=int, default=1)
    tro.add_argument("--population", type=int, default=16)
    tro.add_argument("--generations", type=int, default=8)

    mc = sub.add_parser(
        "montecarlo", help="distribution of a config over random environments"
    )
    mc.add_argument("--clock", type=float, default=4e6)
    mc.add_argument("--watchdog", type=float, default=320.0)
    mc.add_argument("--interval", type=float, default=5.0)
    mc.add_argument("--samples", type=int, default=20)
    mc.add_argument("--seed", type=int, default=1)
    _add_backend_jobs(mc)
    _add_store(mc)

    sto = sub.add_parser("store", help="manage a persistent result store")
    sto_sub = sto.add_subparsers(dest="store_command", required=True)

    sto_init = sto_sub.add_parser("init", help="create an empty store")
    sto_init.add_argument("path", type=str, help="store database file")
    sto_init.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="create a sharded store: PATH becomes a directory of N "
        "shard files (N independent writers instead of one)",
    )

    sto_stats = sto_sub.add_parser("stats", help="summarise a store")
    sto_stats.add_argument("path", type=str, help="store database file")

    sto_gc = sto_sub.add_parser("gc", help="delete result rows and compact")
    sto_gc.add_argument("path", type=str, help="store database file")
    sto_gc.add_argument(
        "--older-than-days",
        type=float,
        default=None,
        help="delete rows created at least this many days ago",
    )
    sto_gc.add_argument(
        "--family", type=str, default=None, help="delete one family's rows"
    )
    sto_gc.add_argument(
        "--orphans",
        action="store_true",
        help="delete rows referenced by no campaign",
    )
    sto_gc.add_argument(
        "--dry-run", action="store_true", help="count, do not delete"
    )
    sto_gc.add_argument(
        "--force",
        action="store_true",
        help="delete even rows an active (queued/running) job derives "
        "its progress from",
    )

    sto_mrg = sto_sub.add_parser(
        "merge", help="import other stores' rows (byte-identity checked)"
    )
    sto_mrg.add_argument(
        "dest", type=str, help="destination store (file or shard directory)"
    )
    sto_mrg.add_argument(
        "sources", type=str, nargs="+", help="source store(s) to import"
    )
    sto_mrg.add_argument(
        "--no-journals",
        action="store_true",
        help="import result rows only (skip campaign/study journals)",
    )
    sto_mrg.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be imported (rows, collisions, journal "
        "conflicts) without writing anything",
    )

    sto_syn = sto_sub.add_parser(
        "sync", help="merge two stores both ways so they converge"
    )
    sto_syn.add_argument("a", type=str, help="first store")
    sto_syn.add_argument("b", type=str, help="second store")
    sto_syn.add_argument(
        "--no-journals",
        action="store_true",
        help="sync result rows only (skip campaign/study journals)",
    )
    sto_syn.add_argument(
        "--dry-run",
        action="store_true",
        help="report both directions without writing anything",
    )

    sto_exp = sto_sub.add_parser("export", help="export rows as JSON or CSV")
    sto_exp.add_argument("path", type=str, help="store database file")
    sto_exp.add_argument(
        "--format", choices=["json", "csv"], default="json", help="output format"
    )
    sto_exp.add_argument(
        "--out", type=str, default=None, help="output file (default: stdout)"
    )
    sto_exp.add_argument("--family", type=str, default=None)
    sto_exp.add_argument("--backend", type=str, default=None)
    sto_exp.add_argument("--name-like", type=str, default=None, metavar="PATTERN")
    sto_exp.add_argument("--min-tx", type=int, default=None, metavar="N")
    sto_exp.add_argument("--max-tx", type=int, default=None, metavar="N")
    sto_exp.add_argument("--min-voltage", type=float, default=None, metavar="V")
    sto_exp.add_argument("--max-voltage", type=float, default=None, metavar="V")
    sto_exp.add_argument("--limit", type=int, default=None)
    sto_exp.add_argument(
        "--payloads",
        action="store_true",
        help="JSON only: embed the full result payloads",
    )

    camp = sub.add_parser("campaign", help="resumable batch execution")
    camp_sub = camp.add_subparsers(dest="campaign_command", required=True)

    camp_run = camp_sub.add_parser(
        "run", help="journal a gen-scenarios manifest and execute it"
    )
    camp_run.add_argument("manifest", type=str, help="gen-scenarios manifest JSON")
    camp_run.add_argument(
        "--store", type=str, required=True, metavar="DB", help="result store file"
    )
    camp_run.add_argument(
        "--name",
        type=str,
        default=None,
        help="campaign name (default: FAMILY-nN-sSEED from the manifest)",
    )
    camp_run.add_argument("--jobs", type=int, default=1)
    camp_run.add_argument(
        "--chunk",
        type=int,
        default=None,
        help="scenarios per durable chunk (default: max(4*jobs, 16))",
    )
    camp_run.add_argument(
        "--partitions",
        type=int,
        default=None,
        metavar="N",
        help="split the campaign into N disjoint partitions; alone, fan "
        "out over N local processes (scratch stores, merged back); with "
        "--partition I, run only slice I against --store",
    )
    camp_run.add_argument(
        "--partition",
        type=int,
        default=None,
        metavar="I",
        help="with --partitions N: run only the I-th (1-based) slice as "
        "sub-campaign NAME@pIofN -- the distributed mode, where each "
        "process writes its own store and 'store merge' reconstitutes "
        "the canonical one",
    )
    camp_run.add_argument(
        "--workdir",
        type=str,
        default=None,
        help="scratch directory for partition stores (fan-out mode; "
        "default: next to --store)",
    )

    camp_res = camp_sub.add_parser(
        "resume", help="continue an interrupted campaign"
    )
    camp_res.add_argument("name", type=str, help="campaign name")
    camp_res.add_argument(
        "--store", type=str, required=True, metavar="DB", help="result store file"
    )
    camp_res.add_argument("--jobs", type=int, default=1)
    camp_res.add_argument("--chunk", type=int, default=None)

    camp_st = camp_sub.add_parser("status", help="campaign progress")
    camp_st.add_argument(
        "name",
        type=str,
        nargs="?",
        default=None,
        help="campaign name (omit to list every campaign)",
    )
    camp_st.add_argument(
        "--store", type=str, required=True, metavar="DB", help="result store file"
    )

    srv = sub.add_parser(
        "serve", help="HTTP job API + worker pool over a result store"
    )
    srv.add_argument(
        "--store", type=str, required=True, metavar="DB", help="result store file"
    )
    srv.add_argument("--host", type=str, default="127.0.0.1")
    srv.add_argument(
        "--port", type=int, default=8080, help="listen port (0 picks a free one)"
    )
    srv.add_argument(
        "--workers", type=int, default=2, help="worker threads draining the queue"
    )
    srv.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="BatchRunner fan-out inside each job (default: 1)",
    )
    srv.add_argument(
        "--chunk",
        type=int,
        default=None,
        help="scenarios per durable chunk (default: the campaign/study one)",
    )
    srv.add_argument(
        "--token",
        action="append",
        default=None,
        metavar="TOKEN",
        help="accepted bearer token (repeatable; omit for an open service)",
    )
    srv.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="rate limit per caller in requests/s (0 disables; 429 + Retry-After)",
    )
    srv.add_argument(
        "--burst", type=int, default=None, help="rate-limit burst (default: 2*rate)"
    )
    srv.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="idle worker poll interval in seconds",
    )
    srv.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=60.0,
        help="requeue a running job after this many silent seconds",
    )
    srv.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="graceful-shutdown window before in-flight jobs are requeued",
    )
    srv.add_argument(
        "--once",
        action="store_true",
        help="no HTTP server: drain the queue once and exit (cron worker)",
    )
    srv.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    srv.add_argument(
        "--log-json",
        action="store_true",
        help="emit service logs as JSON lines (default: human text)",
    )
    srv.add_argument(
        "--events",
        type=str,
        default=None,
        metavar="PATH",
        help="write telemetry spans/events as JSON lines to PATH",
    )
    srv.add_argument(
        "--stats-ttl",
        type=float,
        default=5.0,
        help="seconds /v1/metrics may serve cached store stats "
        "(0 rescans every scrape)",
    )

    crd = sub.add_parser(
        "coord", help="coordinate a campaign across remote serve workers"
    )
    crd_sub = crd.add_subparsers(dest="coord_command", required=True)

    crd_run = crd_sub.add_parser(
        "run", help="fan a manifest's partitions out to HTTP workers"
    )
    crd_run.add_argument(
        "manifest", type=str, help="gen-scenarios manifest JSON"
    )
    crd_run.add_argument(
        "--workers",
        type=str,
        required=True,
        metavar="URL[,URL...]",
        help="comma-separated worker base URLs (repro-wsn serve processes)",
    )
    crd_run.add_argument(
        "--store",
        type=str,
        required=True,
        metavar="DB",
        help="local canonical store: journals + stream-merged results",
    )
    crd_run.add_argument(
        "--name",
        type=str,
        default=None,
        help="campaign name (default: FAMILY-nN-sSEED from the manifest)",
    )
    crd_run.add_argument(
        "--partitions",
        type=int,
        default=None,
        metavar="N",
        help="slice count (default: min(workers, scenarios))",
    )
    crd_run.add_argument(
        "--token", type=str, default=None, help="bearer token for the workers"
    )
    crd_run.add_argument(
        "--resume",
        action="store_true",
        help="explicitly continue a journaled run (also implied when the "
        "journal already matches this manifest)",
    )
    crd_run.add_argument(
        "--poll",
        type=float,
        default=None,
        help="seconds between coordinator passes (default: 0.5)",
    )
    crd_run.add_argument(
        "--stall-timeout",
        type=float,
        default=None,
        help="declare a partition lost after this many seconds without "
        "progress (default: 60)",
    )
    crd_run.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="submission budget per partition (default: 3)",
    )
    crd_run.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="give up (CoordinationError) after this many seconds "
        "(default: wait for workers to come back)",
    )

    crd_st = crd_sub.add_parser("status", help="coordinated-campaign progress")
    crd_st.add_argument(
        "name",
        type=str,
        nargs="?",
        default=None,
        help="coordinated campaign name (omit to list every run)",
    )
    crd_st.add_argument(
        "--store", type=str, required=True, metavar="DB", help="result store file"
    )

    ob = sub.add_parser(
        "obs", help="inspect telemetry event logs (spans and events)"
    )
    ob_sub = ob.add_subparsers(dest="obs_command", required=True)
    ob_sum = ob_sub.add_parser(
        "summary", help="aggregate a span/event log by name"
    )
    ob_sum.add_argument("log", type=str, help="JSON-lines event log path")
    ob_tail = ob_sub.add_parser(
        "tail", help="render the last records of an event log"
    )
    ob_tail.add_argument("log", type=str, help="JSON-lines event log path")
    ob_tail.add_argument(
        "-n", type=int, default=20, help="records to show (default: 20)"
    )

    return parser


def _write_trace(result, path: str) -> None:
    from repro.core.report import series_to_csv

    grid = np.linspace(0.0, result.horizon, 721)
    csv = series_to_csv(
        {"time_s": grid, "v_store": result.traces["v_store"].resample(grid)}
    )
    with open(path, "w") as fh:
        fh.write(csv + "\n")
    print(f"trace written to {path}")


def _cmd_simulate(args) -> int:
    from repro.backends import run
    from repro.scenario import Scenario
    from repro.system.config import SystemConfig

    scenario = Scenario(
        config=SystemConfig(
            clock_hz=args.clock, watchdog_s=args.watchdog, tx_interval_s=args.interval
        ),
        horizon=args.horizon,
        seed=args.seed,
        backend=args.backend,
    )
    result = run(scenario)
    print(result.summary())
    if args.trace:
        _write_trace(result, args.trace)
    return 0


def _write_results_payload(path: str, scenarios, results) -> None:
    """Write a batch's canonical schema-stamped result document."""
    import json

    from repro.system.result import RESULT_SCHEMA

    payload = {
        "schema": RESULT_SCHEMA,
        "results": [
            {"name": s.name, "result": r.to_payload()}
            for s, r in zip(scenarios, results)
        ],
    }
    with open(path, "w") as fh:
        fh.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"results written to {path}")


def _run_manifest(args, payload) -> int:
    """Execute every scenario of a gen-scenarios manifest as one batch."""
    from dataclasses import replace

    from repro.core.batch import BatchRunner
    from repro.system.stochastic import manifest_scenarios

    scenarios = manifest_scenarios(payload)
    if args.backend is not None:
        scenarios = [replace(s, backend=args.backend) for s in scenarios]
    if args.seed is not None:
        # Re-seed the whole batch, keeping one independent noise stream
        # per scenario (a single shared seed would collapse the
        # replicate spread the family derived per (grid, replicate)).
        from repro.rng import derive_seed

        scenarios = [
            s.with_seed(derive_seed(args.seed, i)) for i, s in enumerate(scenarios)
        ]
    store = _open_store(args.store) if args.store else None
    label = payload.get("family", "manifest")
    print(f"{label}: {len(scenarios)} scenarios on {args.jobs} worker(s)")
    runner = BatchRunner(jobs=max(args.jobs, 1), store=store)
    results = runner.run(scenarios)
    for scenario, result in zip(scenarios, results):
        print(
            f"  {scenario.name or scenario.describe():<28s} "
            f"tx {result.transmissions:>6d}   "
            f"final {result.final_voltage:.3f} V"
        )
    total = sum(r.transmissions for r in results)
    print(f"total transmissions: {total}")
    if store is not None:
        print(
            f"store: {runner.store_hits} served from {args.store}, "
            f"{runner.misses} simulated fresh"
        )
    if args.out:
        _write_results_payload(args.out, scenarios, results)
    return 0


def _cmd_run_scenario(args) -> int:
    import json
    from dataclasses import replace
    from pathlib import Path

    from repro.backends import run
    from repro.errors import DesignError
    from repro.scenario import Scenario, named_scenario, scenario_names
    from repro.system.stochastic import family_names, named_family

    if args.list:
        for name in scenario_names():
            print(f"{name:<16s} {named_scenario(name).describe()}")
        for name in family_names():
            fam = named_family(name)
            print(
                f"{name:<16s} stochastic family: "
                f"{len(fam.generator.states)} regimes, "
                f"horizon {fam.horizon:g} s (see gen-scenarios)"
            )
        return 0
    if args.path is None:
        print("error: give a scenario file (or --list)", file=sys.stderr)
        return 2
    path = Path(args.path)
    # Anything path-shaped is a file; bare words fall back to the library
    # (so a mistyped filename errors as a missing file, not a bad name).
    looks_like_file = path.suffix == ".json" or len(path.parts) > 1
    if path.exists() or looks_like_file:
        try:
            text = path.read_text()
        except OSError as exc:
            print(f"error: cannot read scenario file: {exc}", file=sys.stderr)
            return 1
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DesignError(f"scenario file is not valid JSON: {exc}") from exc
        if isinstance(payload, dict) and "scenarios" in payload:
            return _run_manifest(args, payload)
        scenario = Scenario.from_dict(payload)
    else:
        scenario = named_scenario(args.path)
    if args.backend is not None:
        scenario = replace(scenario, backend=args.backend)
    if args.seed is not None:
        scenario = scenario.with_seed(args.seed)
    if args.save:
        scenario.save(args.save)
        print(f"scenario written to {args.save}")
    print(scenario.describe())
    if args.store:
        from repro.core.batch import BatchRunner

        runner = BatchRunner(jobs=1, store=_open_store(args.store))
        result = runner.run_one(scenario)
        source = "store" if runner.store_hits else "fresh simulation"
        print(f"({source}: {args.store})")
    else:
        result = run(scenario)
    print(result.summary())
    if args.out:
        result.save(args.out)
        print(f"result written to {args.out}")
    return 0


def _cmd_gen_scenarios(args) -> int:
    import json
    from dataclasses import replace

    from repro.system.stochastic import family_names, named_family

    if args.list:
        for name in family_names():
            fam = named_family(name)
            regimes = ", ".join(s.name for s in fam.generator.states)
            print(f"{name:<18s} regimes: {regimes}")
        return 0
    if args.family is None:
        print("error: give a family name (or --list)", file=sys.stderr)
        return 2
    family = named_family(args.family)
    if args.horizon is not None:
        family = replace(family, horizon=args.horizon)
    if args.backend is not None:
        family = replace(family, backend=args.backend)
    manifest = family.manifest(n=args.n, seed=args.seed)
    text = json.dumps(manifest, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(
            f"{manifest['count']} scenarios of family {family.name!r} "
            f"(seed {args.seed}) written to {args.out}"
        )
    elif not args.store:
        print(text)
    if args.store:
        from repro.store import Campaign
        from repro.system.stochastic import manifest_scenarios

        name = args.campaign or f"{family.name}-n{args.n}-s{args.seed}"
        campaign = Campaign.create(
            _open_store(args.store),
            name,
            manifest_scenarios(manifest),
            source=f"gen-scenarios {family.name}",
            exist_ok=True,
        )
        print(f"journaled in {args.store}: {campaign.status().summary()}")
        print(f"execute with: repro-wsn campaign resume {name} --store {args.store}")
    return 0


def _print_outcome(outcome, save: Optional[str] = None) -> None:
    from repro.core.report import render_table_vi

    print(outcome.summary())
    print()
    print(render_table_vi(outcome))
    print("\nmodel: y =", outcome.model.to_string(["x1", "x2", "x3"]))
    if save:
        from repro.core.campaign import save_outcome

        save_outcome(outcome, save)
        print(f"\noutcome saved to {save}")


def _cmd_explore(args) -> int:
    from dataclasses import replace

    from repro.core.study import Study, paper_study_spec, variant_name

    spec = paper_study_spec(
        seed=args.seed,
        n_runs=args.runs,
        horizon=args.horizon,
        backend=args.backend,
        jobs=args.jobs,
    )
    optimizers = (
        tuple(n.strip() for n in args.optimizers.split(",") if n.strip())
        if args.optimizers
        else spec.optimizers
    )
    spec = variant_name(
        replace(
            spec,
            design=args.design,
            surrogate=args.surrogate,
            optimizers=optimizers,
        ),
        paper_study_spec(),
    )
    study = Study(
        spec,
        store=_open_store(args.store) if args.store else None,
        on_name_conflict="suffix",
    )
    outcome = study.run()
    _print_outcome(outcome, save=args.save)
    return 0


def _cmd_study(args) -> int:
    from pathlib import Path

    from repro.core.study import (
        STUDY_LIBRARY,
        Study,
        StudySpec,
        named_study,
        paper_study_spec,
        study_status,
        study_statuses,
    )

    if args.study_command == "template":
        text = paper_study_spec().to_json()
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"study template written to {args.out}")
            print(f"run it with: repro-wsn study run {args.out} --store results.db")
        else:
            print(text)
        return 0
    if args.study_command == "run":
        from dataclasses import replace

        path = Path(args.spec)
        if args.spec in STUDY_LIBRARY and not path.exists():
            spec = named_study(args.spec)
        else:
            try:
                text = path.read_text()
            except OSError as exc:
                print(f"error: cannot read study spec: {exc}", file=sys.stderr)
                return 1
            spec = StudySpec.from_json(text)
        if args.name:
            spec = replace(spec, name=args.name)
        store = _open_store(args.store) if args.store else None
        study = Study(spec, store=store, jobs=args.jobs, chunk_size=args.chunk)
        print(spec.describe())
        if store is not None:
            before = study.status()
            print(before.summary())
        outcome = study.run()
        if store is not None:
            print(study.status().summary())
        _print_outcome(outcome, save=args.save)
        if store is None:
            print(
                "\nhint: add --store DB to journal this study and make it "
                "resumable"
            )
        return 0
    if args.study_command == "resume":
        store = _open_store(args.store)
        study = Study.load(store, args.name, jobs=args.jobs)
        before = study.status()
        print(before.summary())
        outcome = study.run()
        print(study.status().summary())
        _print_outcome(outcome, save=args.save)
        return 0
    if args.study_command == "status":
        store = _open_store(args.store)
        if args.name is not None:
            print(study_status(store, args.name).summary())
            return 0
        statuses = study_statuses(store)
        if not statuses:
            print("no studies in this store")
            return 0
        for status in statuses:
            print(status.summary())
        return 0
    raise AssertionError(f"unhandled study command {args.study_command!r}")


def _cmd_sweep(args) -> int:
    from repro.core.paper import paper_objective
    from repro.core.report import format_table
    from repro.system.config import paper_parameter_space

    objective = paper_objective(seed=args.seed, backend=args.backend, jobs=args.jobs)
    space = paper_parameter_space()
    idx = space.names().index(args.parameter)
    axis = np.linspace(-1.0, 1.0, max(args.points, 2))
    points = np.zeros((len(axis), 3))
    points[:, idx] = axis
    values = objective.evaluate_design(points)
    rows = [
        [f"{coded:+.2f}", f"{space.to_natural(point)[idx]:g}", f"{value:.0f}"]
        for coded, point, value in zip(axis, points, values)
    ]
    print(
        format_table(
            ["coded", args.parameter, "transmissions"],
            rows,
            title=f"sweep of {args.parameter} (others at centre)",
        )
    )
    return 0


def _cmd_report(args) -> int:
    import json
    from pathlib import Path

    from repro.errors import DesignError

    try:
        payload = json.loads(Path(args.path).read_text())
    except json.JSONDecodeError as exc:
        raise DesignError(f"report file is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise DesignError(
            f"report payload must be a JSON object, got {type(payload).__name__}"
        )

    if "breakdown" in payload:
        # A single canonical result document (run-scenario --out).
        from repro.system.result import SystemResult

        print(SystemResult.from_payload(payload).summary())
        return 0
    if "results" in payload and "design" not in payload:
        # A batch result document (run-scenario MANIFEST --out).  Other
        # documents share the "results" key (e.g. store exports without
        # --payloads); fabricating empty results for those would be
        # silently wrong, so require the per-entry payload.
        from repro.system.result import SystemResult

        entries = payload["results"]
        if not all(isinstance(e, dict) and "result" in e for e in entries):
            raise DesignError(
                "not a renderable result document: entries in 'results' "
                "carry no 'result' payload (store exports need --payloads "
                "to be reportable)"
            )
        total = 0
        for entry in entries:
            result = SystemResult.from_payload(entry["result"])
            name = entry.get("name") or result.config.describe()
            print(f"== {name} ==")
            print(result.summary())
            print()
            total += result.transmissions
        print(f"total transmissions: {total}")
        return 0

    from repro.core.campaign import load_outcome
    from repro.core.report import render_table_vi

    outcome = load_outcome(args.path)
    print(outcome.summary())
    print()
    print(render_table_vi(outcome))
    return 0


def _cmd_store(args) -> int:
    if args.store_command == "merge":
        from repro.store import merge_stores

        dest = _open_store(args.dest)
        for source_path in args.sources:
            source = _open_store(source_path)
            report = merge_stores(
                dest,
                source,
                journals=not args.no_journals,
                dry_run=args.dry_run,
            )
            print(report.summary())
        return 0
    if args.store_command == "sync":
        from repro.store import sync_stores

        reports = sync_stores(
            _open_store(args.a),
            _open_store(args.b),
            journals=not args.no_journals,
            dry_run=args.dry_run,
        )
        for report in reports:
            print(report.summary())
        return 0
    if args.store_command == "init":
        from repro.store import STORE_SCHEMA

        store = _open_store(args.path, shards=args.shards)
        shards = getattr(store, "n_shards", 1)
        layout = f"{shards} shard(s), " if shards > 1 else ""
        print(
            f"store initialised at {args.path} "
            f"({layout}layout version {STORE_SCHEMA})"
        )
        return 0
    store = _open_store(args.path)
    if args.store_command == "stats":
        print(store.stats().summary())
        return 0
    if args.store_command == "gc":
        if (
            args.older_than_days is None
            and args.family is None
            and not args.orphans
        ):
            print(
                "error: gc needs a selector "
                "(--older-than-days / --family / --orphans)",
                file=sys.stderr,
            )
            return 2
        count = store.gc(
            older_than_days=args.older_than_days,
            family=args.family,
            orphans=args.orphans,
            dry_run=args.dry_run,
            force=args.force,
        )
        verb = "would delete" if args.dry_run else "deleted"
        print(f"{verb} {count} result row(s)")
        return 0
    if args.store_command == "export":
        filters = dict(
            family=args.family,
            backend=args.backend,
            name_like=args.name_like,
            min_transmissions=args.min_tx,
            max_transmissions=args.max_tx,
            min_final_voltage=args.min_voltage,
            max_final_voltage=args.max_voltage,
            limit=args.limit,
        )
        if args.format == "csv":
            text = store.export_csv(**filters)
        else:
            text = store.export_json(include_payloads=args.payloads, **filters)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"export written to {args.out}")
        else:
            print(text)
        return 0
    raise AssertionError(f"unhandled store command {args.store_command!r}")


def _cmd_campaign(args) -> int:
    from repro.store import Campaign, campaign_statuses

    store = _open_store(args.store)
    if args.campaign_command == "run":
        import json
        from pathlib import Path

        from repro.errors import DesignError
        from repro.system.stochastic import manifest_scenarios

        try:
            payload = json.loads(Path(args.manifest).read_text())
        except json.JSONDecodeError as exc:
            raise DesignError(f"manifest is not valid JSON: {exc}") from exc
        scenarios = manifest_scenarios(payload)
        name = args.name or (
            f"{payload.get('family', 'manifest')}"
            f"-n{payload.get('n', len(scenarios))}-s{payload.get('seed', 0)}"
        )
        if args.partition is not None and args.partitions is None:
            print(
                "error: --partition needs --partitions (the total N)",
                file=sys.stderr,
            )
            return 2
        if args.partitions is not None and args.partition is not None:
            # Distributed mode: this process owns one slice, written to
            # its own --store; 'store merge' reconstitutes the whole.
            from repro.store import CampaignPartition, partition_scenarios

            groups = partition_scenarios(scenarios, args.partitions)
            if not 1 <= args.partition <= args.partitions:
                print(
                    f"error: --partition must be 1..{args.partitions}, "
                    f"got {args.partition}",
                    file=sys.stderr,
                )
                return 2
            part = CampaignPartition(
                campaign=name,
                index=args.partition,
                of=args.partitions,
                scenarios=tuple(groups[args.partition - 1]),
            )
            print(
                f"partition {part.index}/{part.of} of {name!r}: "
                f"{len(part.scenarios)} scenario(s) -> {args.store}"
            )
            results = part.run(
                store, jobs=max(args.jobs, 1), chunk_size=args.chunk
            )
            print(Campaign(store, part.name).status().summary())
            print(
                f"total transmissions: {sum(r.transmissions for r in results)}"
            )
            return 0
        campaign = Campaign.create(
            store,
            name,
            scenarios,
            source=f"manifest {args.manifest}",
            exist_ok=True,
        )
        before = campaign.status()
        print(before.summary())
        if args.partitions is not None:
            results = campaign.run_partitioned(
                args.partitions,
                jobs=max(args.jobs, 1),
                chunk_size=args.chunk,
                workdir=args.workdir,
            )
        else:
            results = campaign.run(jobs=max(args.jobs, 1), chunk_size=args.chunk)
        print(campaign.status().summary())
        print(f"total transmissions: {sum(r.transmissions for r in results)}")
        return 0
    if args.campaign_command == "resume":
        campaign = Campaign(store, args.name)
        before = campaign.status()
        print(before.summary())
        if before.complete:
            print("nothing to do")
            return 0
        results = campaign.resume(jobs=max(args.jobs, 1), chunk_size=args.chunk)
        print(campaign.status().summary())
        print(f"total transmissions: {sum(r.transmissions for r in results)}")
        return 0
    if args.campaign_command == "status":
        from repro.store import group_campaign_statuses

        if args.name is not None:
            print(Campaign(store, args.name).status().summary())
        else:
            statuses = campaign_statuses(store)
            if not statuses:
                print("no campaigns in this store")
            # NAME@pIofN partition journals fold under their parent
            # with an I/N-complete summary instead of flooding the list.
            for group in group_campaign_statuses(statuses):
                for line in group.summary_lines():
                    print(line)
        _print_job_counts(store)
        return 0
    raise AssertionError(f"unhandled campaign command {args.campaign_command!r}")


def _print_job_counts(store) -> None:
    """One service-queue line for the store-aware status commands."""
    from repro.service import JobQueue

    counts = JobQueue(store).counts()
    if any(counts.values()):
        print(
            "jobs: "
            + ", ".join(f"{status} {count}" for status, count in counts.items())
        )


def _cmd_serve(args) -> int:
    import signal
    import threading

    import repro.obs as obs
    from repro.service import JobQueue, ServiceApp, ServiceServer, WorkerPool

    # Every service line flows through the shared "repro" logger tree,
    # so --log-json switches the whole process (HTTP access lines,
    # worker claims, these status lines) to JSON lines at once.
    obs.configure_logging(json_lines=args.log_json)
    obs.configure(metrics=True, events=args.events)
    log = obs.get_logger("repro.service.serve")

    store = _open_store(args.store)
    queue = JobQueue(store)
    requeued = queue.requeue_orphans(args.heartbeat_timeout)
    if requeued:
        log.info("requeued %d orphaned job(s)", requeued)
    pool = WorkerPool(
        store,
        workers=max(args.workers, 1),
        jobs=max(args.jobs, 1),
        poll_interval=args.poll,
        heartbeat_timeout=args.heartbeat_timeout,
        chunk_size=args.chunk,
    )

    def _queue_line() -> str:
        counts = queue.counts()
        return ", ".join(f"{status} {count}" for status, count in counts.items())

    if args.once:
        processed = pool.run_once(requeue_orphans=False)
        log.info("processed %d job(s); queue: %s", processed, _queue_line())
        return 0

    app = ServiceApp(
        store,
        pool=pool,
        tokens=tuple(args.token or ()),
        rate=args.rate,
        burst=args.burst,
        verbose=args.verbose,
        stats_ttl=args.stats_ttl,
    )
    server = ServiceServer(app, host=args.host, port=args.port)
    pool.start()
    server.start()
    log.info(
        "serving on %s (store %s, %d worker(s), %d fan-out job(s) each)",
        server.url,
        args.store,
        pool.workers,
        args.jobs,
    )
    if not args.token:
        log.warning("no --token configured; the API is open")

    stop = threading.Event()

    def _request_shutdown(signum, frame):  # noqa: ARG001 (signal API)
        stop.set()

    previous = {
        sig: signal.signal(sig, _request_shutdown)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        while not stop.is_set():
            stop.wait(0.5)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    log.info("shutting down: draining in-flight jobs...")
    server.shutdown()
    drained = pool.stop(drain=True, timeout=args.drain_timeout)
    if not drained:
        log.warning(
            "a worker did not exit; its job will requeue by heartbeat"
        )
    log.info("stopped; queue: %s", _queue_line())
    return 0


def _cmd_coord(args) -> int:
    from repro.coord import Coordinator, coord_names, coord_status

    store = _open_store(args.store)
    if args.coord_command == "status":
        if args.name is not None:
            print(coord_status(store, args.name).summary())
            return 0
        names = coord_names(store)
        if not names:
            print("no coordinated campaigns in this store")
        for name in names:
            print(coord_status(store, name).summary())
        return 0
    if args.coord_command == "run":
        import json
        from pathlib import Path

        from repro.errors import DesignError

        try:
            payload = json.loads(Path(args.manifest).read_text())
        except json.JSONDecodeError as exc:
            raise DesignError(f"manifest is not valid JSON: {exc}") from exc
        workers = [u.strip() for u in args.workers.split(",") if u.strip()]
        options = {}
        if args.poll is not None:
            options["poll_interval_s"] = args.poll
        if args.stall_timeout is not None:
            options["stall_timeout_s"] = args.stall_timeout
        if args.max_attempts is not None:
            options["max_attempts"] = args.max_attempts
        coordinator = Coordinator(
            store,
            payload,
            workers,
            name=args.name,
            partitions=args.partitions,
            token=args.token,
            deadline_s=args.deadline,
            **options,
        )
        if args.resume and not coordinator._resumed:
            print(f"note: no prior journal for {coordinator.name!r}; starting fresh")
        verb = "resuming" if coordinator._resumed else "starting"
        print(
            f"{verb} {coordinator.name!r}: {coordinator.partitions} "
            f"partition(s) over {len(workers)} worker(s)"
        )
        status = coordinator.run()
        print(status.summary())
        return 0
    raise AssertionError(f"unhandled coord command {args.coord_command!r}")


def _cmd_obs(args) -> int:
    from repro.obs.report import format_event_line, summarize_events, tail_events

    if args.obs_command == "summary":
        print(summarize_events(args.log).render())
        return 0
    for record in tail_events(args.log, n=args.n):
        print(format_event_line(record))
    return 0


def _cmd_tradeoff(args) -> int:
    from repro.core.multiobjective import explore_tradeoff
    from repro.core.report import format_table

    entries, result = explore_tradeoff(
        seed=args.seed,
        population_size=args.population,
        n_generations=args.generations,
    )
    rows = [
        [
            e.config.describe(),
            f"{e.transmissions:.0f}",
            f"{e.final_energy:.3f}",
        ]
        for e in entries
    ]
    print(
        format_table(
            ["configuration", "transmissions", "final energy (J)"],
            rows,
            title=f"Pareto front ({result.n_evaluations} evaluations)",
        )
    )
    point, objs = result.knee_point()
    print(f"\nknee point: {objs[0]:.0f} tx with {objs[1]:.3f} J reserved")
    return 0


def _cmd_montecarlo(args) -> int:
    from repro.core.montecarlo import monte_carlo
    from repro.system.config import SystemConfig

    config = SystemConfig(
        clock_hz=args.clock, watchdog_s=args.watchdog, tx_interval_s=args.interval
    )
    result = monte_carlo(
        config,
        n_samples=args.samples,
        seed=args.seed,
        jobs=args.jobs,
        backend=args.backend,
        store=_open_store(args.store) if args.store else None,
    )
    print(result.summary())
    print(
        f"final voltage: mean {np.mean(result.final_voltages):.3f} V, "
        f"min {np.min(result.final_voltages):.3f} V"
    )
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "run-scenario": _cmd_run_scenario,
    "gen-scenarios": _cmd_gen_scenarios,
    "explore": _cmd_explore,
    "study": _cmd_study,
    "sweep": _cmd_sweep,
    "report": _cmd_report,
    "tradeoff": _cmd_tradeoff,
    "montecarlo": _cmd_montecarlo,
    "store": _cmd_store,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
    "coord": _cmd_coord,
    "obs": _cmd_obs,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    from repro.errors import ReproError

    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Piping into ``head``/``grep -q`` closes stdout early; that is
        # the consumer's prerogative, not an error worth a traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
