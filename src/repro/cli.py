"""Command-line interface.

Installed as ``repro-wsn``; every capability is also available as a
module run (``python -m repro.cli ...``).  Subcommands:

- ``simulate``      -- one simulation of a configuration on any backend
  (``--trace`` writes the Fig. 5-style supercap CSV).
- ``run-scenario``  -- execute a scenario JSON file, a library name or a
  ``gen-scenarios`` manifest (see :mod:`repro.scenario`; ``--list``
  names the built-in library and the stochastic families).
- ``gen-scenarios`` -- expand a stochastic scenario family
  (:mod:`repro.system.stochastic`) into a JSON manifest of concrete,
  seeded scenarios.
- ``explore``       -- the full paper flow: D-optimal DOE, RSM fit, SA + GA,
  verification; prints Table VI and optionally persists JSON.
- ``sweep``         -- Fig. 4-style one-parameter sweep on the simulator.
- ``report``        -- re-render a persisted exploration outcome.
- ``tradeoff``      -- NSGA-II Pareto front of transmissions vs. reserve.
- ``montecarlo``    -- distribution of a config over random environments.

``--backend`` selects any registered simulation backend and ``--jobs``
fans batch subcommands out over worker processes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _add_backend_jobs(
    parser: argparse.ArgumentParser,
    jobs_help: str = "worker processes for batched simulations (default: 1)",
) -> None:
    parser.add_argument(
        "--backend",
        type=str,
        default="envelope",
        help="registered simulation backend (default: envelope)",
    )
    parser.add_argument("--jobs", type=int, default=1, help=jobs_help)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wsn",
        description=(
            "RSM-based design space exploration of an energy-harvester "
            "powered wireless sensor node (Wang et al., DATE 2012)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one system simulation")
    sim.add_argument("--clock", type=float, default=4e6, help="MCU clock in Hz")
    sim.add_argument("--watchdog", type=float, default=320.0, help="watchdog period in s")
    sim.add_argument("--interval", type=float, default=5.0, help="fast transmission interval in s")
    sim.add_argument("--horizon", type=float, default=3600.0, help="simulated seconds")
    sim.add_argument("--seed", type=int, default=1)
    sim.add_argument("--trace", type=str, default=None, help="write supercap CSV here")
    _add_backend_jobs(
        sim, jobs_help="accepted for symmetry; a single simulation runs serially"
    )

    rsc = sub.add_parser("run-scenario", help="execute a scenario JSON file")
    rsc.add_argument(
        "path",
        type=str,
        nargs="?",
        default=None,
        help="scenario JSON (from Scenario.save) or a library name",
    )
    rsc.add_argument(
        "--list", action="store_true", help="list the built-in scenario library"
    )
    rsc.add_argument(
        "--save", type=str, default=None, help="write the (resolved) scenario JSON here"
    )
    rsc.add_argument(
        "--backend", type=str, default=None, help="override the scenario's backend"
    )
    rsc.add_argument(
        "--seed",
        type=int,
        default=None,
        help=(
            "override the scenario's seed (for a manifest: re-seed the "
            "batch with per-scenario derived seeds)"
        ),
    )
    rsc.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes when running a manifest (default: 1)",
    )

    gen = sub.add_parser(
        "gen-scenarios",
        help="expand a stochastic scenario family into a JSON manifest",
    )
    gen.add_argument(
        "family",
        type=str,
        nargs="?",
        default=None,
        help="family name (see --list)",
    )
    gen.add_argument(
        "--list", action="store_true", help="list the stochastic family library"
    )
    gen.add_argument(
        "--n", type=int, default=1, help="replicates per grid point (default: 1)"
    )
    gen.add_argument(
        "--seed", type=int, default=0, help="family expansion seed (default: 0)"
    )
    gen.add_argument(
        "--horizon", type=float, default=None, help="override the family horizon (s)"
    )
    gen.add_argument(
        "--backend", type=str, default=None, help="override the family backend"
    )
    gen.add_argument(
        "--out",
        type=str,
        default=None,
        help="write the manifest JSON here (default: stdout)",
    )

    exp = sub.add_parser("explore", help="run the full paper DSE flow")
    exp.add_argument("--runs", type=int, default=10, help="D-optimal design size")
    exp.add_argument("--seed", type=int, default=1)
    exp.add_argument("--horizon", type=float, default=3600.0)
    exp.add_argument("--save", type=str, default=None, help="persist outcome JSON here")
    _add_backend_jobs(exp)

    swp = sub.add_parser("sweep", help="one-parameter sweep (Fig. 4 style)")
    swp.add_argument(
        "--parameter",
        choices=["clock_hz", "watchdog_s", "tx_interval_s"],
        required=True,
    )
    swp.add_argument("--points", type=int, default=7)
    swp.add_argument("--seed", type=int, default=1)
    _add_backend_jobs(swp)

    rep = sub.add_parser("report", help="render a persisted outcome")
    rep.add_argument("path", type=str, help="JSON file from 'explore --save'")

    tro = sub.add_parser("tradeoff", help="Pareto front: transmissions vs reserve")
    tro.add_argument("--seed", type=int, default=1)
    tro.add_argument("--population", type=int, default=16)
    tro.add_argument("--generations", type=int, default=8)

    mc = sub.add_parser(
        "montecarlo", help="distribution of a config over random environments"
    )
    mc.add_argument("--clock", type=float, default=4e6)
    mc.add_argument("--watchdog", type=float, default=320.0)
    mc.add_argument("--interval", type=float, default=5.0)
    mc.add_argument("--samples", type=int, default=20)
    mc.add_argument("--seed", type=int, default=1)
    _add_backend_jobs(mc)

    return parser


def _write_trace(result, path: str) -> None:
    from repro.core.report import series_to_csv

    grid = np.linspace(0.0, result.horizon, 721)
    csv = series_to_csv(
        {"time_s": grid, "v_store": result.traces["v_store"].resample(grid)}
    )
    with open(path, "w") as fh:
        fh.write(csv + "\n")
    print(f"trace written to {path}")


def _cmd_simulate(args) -> int:
    from repro.backends import run
    from repro.scenario import Scenario
    from repro.system.config import SystemConfig

    scenario = Scenario(
        config=SystemConfig(
            clock_hz=args.clock, watchdog_s=args.watchdog, tx_interval_s=args.interval
        ),
        horizon=args.horizon,
        seed=args.seed,
        backend=args.backend,
    )
    result = run(scenario)
    print(result.summary())
    if args.trace:
        _write_trace(result, args.trace)
    return 0


def _run_manifest(args, payload) -> int:
    """Execute every scenario of a gen-scenarios manifest as one batch."""
    from dataclasses import replace

    from repro.core.batch import BatchRunner
    from repro.system.stochastic import manifest_scenarios

    scenarios = manifest_scenarios(payload)
    if args.backend is not None:
        scenarios = [replace(s, backend=args.backend) for s in scenarios]
    if args.seed is not None:
        # Re-seed the whole batch, keeping one independent noise stream
        # per scenario (a single shared seed would collapse the
        # replicate spread the family derived per (grid, replicate)).
        from repro.rng import derive_seed

        scenarios = [
            s.with_seed(derive_seed(args.seed, i)) for i, s in enumerate(scenarios)
        ]
    label = payload.get("family", "manifest")
    print(f"{label}: {len(scenarios)} scenarios on {args.jobs} worker(s)")
    results = BatchRunner(jobs=max(args.jobs, 1)).run(scenarios)
    for scenario, result in zip(scenarios, results):
        print(
            f"  {scenario.name or scenario.describe():<28s} "
            f"tx {result.transmissions:>6d}   "
            f"final {result.final_voltage:.3f} V"
        )
    total = sum(r.transmissions for r in results)
    print(f"total transmissions: {total}")
    return 0


def _cmd_run_scenario(args) -> int:
    import json
    from dataclasses import replace
    from pathlib import Path

    from repro.backends import run
    from repro.errors import DesignError
    from repro.scenario import Scenario, named_scenario, scenario_names
    from repro.system.stochastic import family_names, named_family

    if args.list:
        for name in scenario_names():
            print(f"{name:<16s} {named_scenario(name).describe()}")
        for name in family_names():
            fam = named_family(name)
            print(
                f"{name:<16s} stochastic family: "
                f"{len(fam.generator.states)} regimes, "
                f"horizon {fam.horizon:g} s (see gen-scenarios)"
            )
        return 0
    if args.path is None:
        print("error: give a scenario file (or --list)", file=sys.stderr)
        return 2
    path = Path(args.path)
    # Anything path-shaped is a file; bare words fall back to the library
    # (so a mistyped filename errors as a missing file, not a bad name).
    looks_like_file = path.suffix == ".json" or len(path.parts) > 1
    if path.exists() or looks_like_file:
        try:
            text = path.read_text()
        except OSError as exc:
            print(f"error: cannot read scenario file: {exc}", file=sys.stderr)
            return 1
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DesignError(f"scenario file is not valid JSON: {exc}") from exc
        if isinstance(payload, dict) and "scenarios" in payload:
            return _run_manifest(args, payload)
        scenario = Scenario.from_dict(payload)
    else:
        scenario = named_scenario(args.path)
    if args.backend is not None:
        scenario = replace(scenario, backend=args.backend)
    if args.seed is not None:
        scenario = scenario.with_seed(args.seed)
    if args.save:
        scenario.save(args.save)
        print(f"scenario written to {args.save}")
    print(scenario.describe())
    result = run(scenario)
    print(result.summary())
    return 0


def _cmd_gen_scenarios(args) -> int:
    import json
    from dataclasses import replace

    from repro.system.stochastic import family_names, named_family

    if args.list:
        for name in family_names():
            fam = named_family(name)
            regimes = ", ".join(s.name for s in fam.generator.states)
            print(f"{name:<18s} regimes: {regimes}")
        return 0
    if args.family is None:
        print("error: give a family name (or --list)", file=sys.stderr)
        return 2
    family = named_family(args.family)
    if args.horizon is not None:
        family = replace(family, horizon=args.horizon)
    if args.backend is not None:
        family = replace(family, backend=args.backend)
    manifest = family.manifest(n=args.n, seed=args.seed)
    text = json.dumps(manifest, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(
            f"{manifest['count']} scenarios of family {family.name!r} "
            f"(seed {args.seed}) written to {args.out}"
        )
    else:
        print(text)
    return 0


def _cmd_explore(args) -> int:
    from repro.core.paper import paper_explorer
    from repro.core.report import render_table_vi

    explorer = paper_explorer(
        seed=args.seed, horizon=args.horizon, backend=args.backend, jobs=args.jobs
    )
    outcome = explorer.run(n_runs=args.runs, seed=args.seed)
    print(outcome.summary())
    print()
    print(render_table_vi(outcome))
    print("\nmodel: y =", outcome.model.to_string(["x1", "x2", "x3"]))
    if args.save:
        from repro.core.campaign import save_outcome

        save_outcome(outcome, args.save)
        print(f"\noutcome saved to {args.save}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.core.paper import paper_objective
    from repro.core.report import format_table
    from repro.system.config import paper_parameter_space

    objective = paper_objective(seed=args.seed, backend=args.backend, jobs=args.jobs)
    space = paper_parameter_space()
    idx = space.names().index(args.parameter)
    axis = np.linspace(-1.0, 1.0, max(args.points, 2))
    points = np.zeros((len(axis), 3))
    points[:, idx] = axis
    values = objective.evaluate_design(points)
    rows = [
        [f"{coded:+.2f}", f"{space.to_natural(point)[idx]:g}", f"{value:.0f}"]
        for coded, point, value in zip(axis, points, values)
    ]
    print(
        format_table(
            ["coded", args.parameter, "transmissions"],
            rows,
            title=f"sweep of {args.parameter} (others at centre)",
        )
    )
    return 0


def _cmd_report(args) -> int:
    from repro.core.campaign import load_outcome
    from repro.core.report import render_table_vi

    outcome = load_outcome(args.path)
    print(outcome.summary())
    print()
    print(render_table_vi(outcome))
    return 0


def _cmd_tradeoff(args) -> int:
    from repro.core.multiobjective import explore_tradeoff
    from repro.core.report import format_table

    entries, result = explore_tradeoff(
        seed=args.seed,
        population_size=args.population,
        n_generations=args.generations,
    )
    rows = [
        [
            e.config.describe(),
            f"{e.transmissions:.0f}",
            f"{e.final_energy:.3f}",
        ]
        for e in entries
    ]
    print(
        format_table(
            ["configuration", "transmissions", "final energy (J)"],
            rows,
            title=f"Pareto front ({result.n_evaluations} evaluations)",
        )
    )
    point, objs = result.knee_point()
    print(f"\nknee point: {objs[0]:.0f} tx with {objs[1]:.3f} J reserved")
    return 0


def _cmd_montecarlo(args) -> int:
    from repro.core.montecarlo import monte_carlo
    from repro.system.config import SystemConfig

    config = SystemConfig(
        clock_hz=args.clock, watchdog_s=args.watchdog, tx_interval_s=args.interval
    )
    result = monte_carlo(
        config,
        n_samples=args.samples,
        seed=args.seed,
        jobs=args.jobs,
        backend=args.backend,
    )
    print(result.summary())
    print(
        f"final voltage: mean {np.mean(result.final_voltages):.3f} V, "
        f"min {np.min(result.final_voltages):.3f} V"
    )
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "run-scenario": _cmd_run_scenario,
    "gen-scenarios": _cmd_gen_scenarios,
    "explore": _cmd_explore,
    "sweep": _cmd_sweep,
    "report": _cmd_report,
    "tradeoff": _cmd_tradeoff,
    "montecarlo": _cmd_montecarlo,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    from repro.errors import ReproError

    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
