"""Driver connecting a tuning session to a simulation backend.

:class:`ControllerBackend` is the interface each simulation world
implements; :func:`run_session` pumps a session generator against it.
Backends are responsible for *all* physics: advancing time, drawing
energy, moving the real actuator and synthesising measurement values
(including their noise).
"""

from __future__ import annotations

from typing import Generator

from repro.control.commands import (
    CheckEnergy,
    GetCurrentPosition,
    MeasureFrequency,
    MeasurePhase,
    MoveActuatorTo,
    Settle,
    StepActuator,
)
from repro.control.session import SessionResult
from repro.errors import SimulationError


class ControllerBackend:
    """Executes controller commands in a concrete simulation world."""

    def check_energy(self, cmd: CheckEnergy) -> bool:
        """Whether the store can power the actuator (Vs >= threshold)."""
        raise NotImplementedError

    def measure_frequency(self, cmd: MeasureFrequency) -> float:
        """Run the 8-cycle measurement; advance time, draw MCU energy."""
        raise NotImplementedError

    def get_position(self, cmd: GetCurrentPosition) -> int:
        """Read the firmware's 8-bit position register."""
        raise NotImplementedError

    def move_actuator_to(self, cmd: MoveActuatorTo) -> int:
        """Perform the coarse move; returns motor steps actually moved."""
        raise NotImplementedError

    def step_actuator(self, cmd: StepActuator) -> int:
        """Perform a single fine step; returns motor steps actually moved."""
        raise NotImplementedError

    def settle(self, cmd: Settle) -> None:
        """Wait for the generator to settle (sleep-level consumption)."""
        raise NotImplementedError

    def measure_phase(self, cmd: MeasurePhase) -> float:
        """Measure the signed phase difference; draws accelerometer energy."""
        raise NotImplementedError


def run_session(
    session: Generator[object, object, SessionResult],
    backend: ControllerBackend,
) -> SessionResult:
    """Pump ``session`` to completion against ``backend``."""
    try:
        command = next(session)
    except StopIteration as stop:
        return _result_of(stop)
    while True:
        if isinstance(command, CheckEnergy):
            response = backend.check_energy(command)
        elif isinstance(command, MeasureFrequency):
            response = backend.measure_frequency(command)
        elif isinstance(command, GetCurrentPosition):
            response = backend.get_position(command)
        elif isinstance(command, MoveActuatorTo):
            response = backend.move_actuator_to(command)
        elif isinstance(command, StepActuator):
            response = backend.step_actuator(command)
        elif isinstance(command, Settle):
            response = backend.settle(command)
        elif isinstance(command, MeasurePhase):
            response = backend.measure_phase(command)
        else:
            raise SimulationError(f"unknown controller command {command!r}")
        try:
            command = session.send(response)
        except StopIteration as stop:
            return _result_of(stop)


def _result_of(stop: StopIteration) -> SessionResult:
    value = stop.value
    if not isinstance(value, SessionResult):
        raise SimulationError(
            "tuning session must return a SessionResult; got "
            f"{type(value).__name__}"
        )
    return value
