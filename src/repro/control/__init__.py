"""Tuning control algorithms (paper Algorithms 1-3), written sans-IO.

The control logic is a generator that *yields commands* and receives
responses -- it never touches a clock, an energy store or a generator
model directly.  Both simulation backends (envelope and detailed) execute
the same generator against their own physics, which guarantees the two
models run identical firmware:

- :mod:`repro.control.commands` -- the command vocabulary.
- :mod:`repro.control.session` -- one watchdog wake-up's worth of
  Algorithm 1 (with the coarse Algorithm 2 and fine Algorithm 3 loops).
- :mod:`repro.control.runner` -- the driver that connects a session
  generator to a :class:`~repro.control.runner.ControllerBackend`.
"""

from repro.control.commands import (
    CheckEnergy,
    GetCurrentPosition,
    MeasureFrequency,
    MeasurePhase,
    MoveActuatorTo,
    Settle,
    StepActuator,
)
from repro.control.runner import ControllerBackend, run_session
from repro.control.session import SessionResult, tuning_session

__all__ = [
    "AdaptiveEnvelopeSimulator",
    "AdaptiveWatchdog",
    "CheckEnergy",
    "ControllerBackend",
    "GetCurrentPosition",
    "MeasureFrequency",
    "MeasurePhase",
    "MoveActuatorTo",
    "SessionResult",
    "Settle",
    "StepActuator",
    "run_session",
    "tuning_session",
]


def __getattr__(name):
    # The adaptive extension pulls in the envelope simulator, which itself
    # imports this package's command/runner modules; loading it lazily
    # (PEP 562) breaks that import cycle.
    if name in ("AdaptiveEnvelopeSimulator", "AdaptiveWatchdog"):
        from repro.control import adaptive

        return getattr(adaptive, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
