"""Adaptive watchdog policy (extension: beyond the paper's fixed period).

The paper's watchdog period is a fixed design parameter with a built-in
tension: short periods react quickly to vibration changes but burn MCU
energy on idle checks; long periods are cheap but leave the generator
detuned for minutes.  A classic firmware answer is *exponential backoff*:

- after a wake-up that found the generator already tuned, stretch the
  next period (up to ``max_period``);
- after a wake-up that had to retune (or skipped on low energy), snap
  back to ``min_period`` -- the environment is changing, watch closely.

:class:`AdaptiveWatchdog` is the policy object;
:class:`AdaptiveEnvelopeSimulator` drops it into the envelope backend in
place of the fixed schedule, so the ablation bench can compare both under
identical physics.
"""

from __future__ import annotations

from typing import Optional

from repro.control.session import SessionResult
from repro.errors import ConfigError
from repro.system.envelope import EnvelopeSimulator


class AdaptiveWatchdog:
    """Exponential-backoff wake-up scheduling."""

    def __init__(
        self,
        min_period: float = 60.0,
        max_period: float = 600.0,
        backoff: float = 2.0,
    ):
        if not 0.0 < min_period <= max_period:
            raise ConfigError("need 0 < min_period <= max_period")
        if backoff <= 1.0:
            raise ConfigError("backoff factor must exceed 1")
        self.min_period = min_period
        self.max_period = max_period
        self.backoff = backoff
        self.period = min_period

    def update(self, result: SessionResult) -> float:
        """Digest a session outcome; returns the next wake-up period."""
        if result.retuned or result.skipped_low_energy:
            self.period = self.min_period
        else:
            self.period = min(self.period * self.backoff, self.max_period)
        return self.period

    def reset(self) -> None:
        """Return to the vigilant minimum period."""
        self.period = self.min_period


class AdaptiveEnvelopeSimulator(EnvelopeSimulator):
    """Envelope simulator whose watchdog period adapts between wake-ups.

    The ``watchdog_s`` member of the configuration is interpreted as the
    *maximum* period; the adaptive policy moves between ``min_period`` and
    that maximum.  Everything else (physics, node policy, tuning firmware)
    is identical to the fixed-schedule simulator.
    """

    def __init__(self, *args, adaptive: Optional[AdaptiveWatchdog] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.adaptive = adaptive or AdaptiveWatchdog(
            min_period=60.0, max_period=self.config.watchdog_s
        )
        # Start vigilant.
        self.watchdog.period = self.adaptive.period

    def _run_wakeup(self) -> None:
        super()._run_wakeup()
        last = self.tuning_events[-1].result
        self.watchdog.period = self.adaptive.update(last)
        # Re-anchor the schedule at the present instant so the new period
        # takes effect immediately.
        self.watchdog.t0 = self.t
