"""Command vocabulary of the tuning controller.

Each command corresponds to a concrete firmware action with a physical
cost; backends decide how much wall time and energy it takes, the session
logic only decides *what to do next*.

=====================  =============================  ======================
Command                 Response                       Paper reference
=====================  =============================  ======================
CheckEnergy             bool (Vs >= 2.6 V)             Algorithm 1, step 3
MeasureFrequency        float, measured Hz             Algorithm 1, steps 4-9
GetCurrentPosition      int, 8-bit position register   Algorithm 1, step 11
MoveActuatorTo          int, steps actually moved      Algorithm 2, steps 2-3
Settle                  None                           Algorithms 2/3, step 4
MeasurePhase            float, signed seconds          Algorithm 1, step 16
StepActuator            int, steps actually moved      Algorithm 3, steps 2-3
=====================  =============================  ======================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class CheckEnergy:
    """Is there enough stored energy to run the actuator? (Vs >= threshold)"""

    threshold: float = 2.6


@dataclass(frozen=True)
class MeasureFrequency:
    """Run the 8-cycle Timer1 frequency measurement of the generator signal."""


@dataclass(frozen=True)
class GetCurrentPosition:
    """Read the firmware's 8-bit tuning-magnet position register."""


@dataclass(frozen=True)
class MoveActuatorTo:
    """Command the actuator to an absolute 8-bit position (coarse move)."""

    position: int

    def __post_init__(self) -> None:
        if not 0 <= self.position <= 255:
            raise ModelError(f"actuator position {self.position!r} outside 8 bits")


@dataclass(frozen=True)
class StepActuator:
    """Move the actuator by one motor step in ``direction`` (+1 / -1)."""

    direction: int

    def __post_init__(self) -> None:
        if self.direction not in (-1, 1):
            raise ModelError("step direction must be +1 or -1")


@dataclass(frozen=True)
class Settle:
    """Wait for the microgenerator signal to settle (Algorithms 2/3: 5 s)."""

    duration: float = 5.0

    def __post_init__(self) -> None:
        if self.duration < 0.0:
            raise ModelError("settle duration must be >= 0")


@dataclass(frozen=True)
class MeasurePhase:
    """Measure the accelerometer-vs-generator phase difference (signed s).

    Positive means the generator's resonance sits *above* the excitation
    frequency (the firmware should retract the tuning magnet).
    """
