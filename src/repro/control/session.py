"""One watchdog wake-up of the harvester tuning firmware (Algorithm 1).

``tuning_session`` is a generator implementing the paper's pseudo-code:

1. Check stored energy (Vs >= 2.6 V, the actuator's minimum) -- if too
   low, go straight back to sleep.
2. Measure the microgenerator frequency over 8 cycles (Timer1).
3. Look the optimum 8-bit magnet position up in the pre-characterised LUT.
4. If the position register already matches (within ``position_tolerance``
   -- the paper's 1/2^8 accuracy), sleep.
5. Otherwise run coarse tuning (Algorithm 2): command the absolute move,
   wait 5 s for the signal to settle, verify, repeat.
6. Measure the accelerometer/generator phase difference; if below 100 us,
   sleep; otherwise run fine tuning (Algorithm 3): single steps in the
   phase-reducing direction until the threshold is met.  Real firmware
   cannot iterate forever on a quantised actuator, so the loop carries a
   ``max_fine_steps`` guard and reverts a step that made things worse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.control.commands import (
    CheckEnergy,
    GetCurrentPosition,
    MeasureFrequency,
    MeasurePhase,
    MoveActuatorTo,
    Settle,
    StepActuator,
)
from repro.digital.lut import FrequencyLut
from repro.errors import ModelError

#: Algorithm 1, step 3: minimum supercap voltage to start the actuator.
V_MIN_TUNING = 2.6
#: Algorithm 1, step 17: fine-tuning phase threshold (100 us).
PHASE_THRESHOLD = 100e-6
#: Algorithms 2/3, step 4: settling wait after an actuator move.
SETTLE_TIME = 5.0


@dataclass
class SessionResult:
    """What one wake-up session did (used for logs and energy audits)."""

    skipped_low_energy: bool = False
    measured_frequency: Optional[float] = None
    optimum_position: Optional[int] = None
    initial_position: Optional[int] = None
    coarse_iterations: int = 0
    fine_steps: int = 0
    fine_converged: bool = False
    final_phase: Optional[float] = None
    retuned: bool = False

    def to_payload(self) -> dict:
        """Plain-JSON dictionary (every field is already a JSON scalar)."""
        return {
            "skipped_low_energy": self.skipped_low_energy,
            "measured_frequency": self.measured_frequency,
            "optimum_position": self.optimum_position,
            "initial_position": self.initial_position,
            "coarse_iterations": self.coarse_iterations,
            "fine_steps": self.fine_steps,
            "fine_converged": self.fine_converged,
            "final_phase": self.final_phase,
            "retuned": self.retuned,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SessionResult":
        """Rebuild a session result from :meth:`to_payload` output."""
        freq = payload.get("measured_frequency")
        opt = payload.get("optimum_position")
        init = payload.get("initial_position")
        phase = payload.get("final_phase")
        return cls(
            skipped_low_energy=bool(payload.get("skipped_low_energy", False)),
            measured_frequency=None if freq is None else float(freq),
            optimum_position=None if opt is None else int(opt),
            initial_position=None if init is None else int(init),
            coarse_iterations=int(payload.get("coarse_iterations", 0)),
            fine_steps=int(payload.get("fine_steps", 0)),
            fine_converged=bool(payload.get("fine_converged", False)),
            final_phase=None if phase is None else float(phase),
            retuned=bool(payload.get("retuned", False)),
        )


def tuning_session(
    lut: FrequencyLut,
    phase_threshold: float = PHASE_THRESHOLD,
    position_tolerance: int = 1,
    max_coarse_iterations: int = 4,
    max_fine_steps: int = 8,
    settle_time: float = SETTLE_TIME,
    v_min: float = V_MIN_TUNING,
) -> Generator[object, object, SessionResult]:
    """Yield the command sequence of one Algorithm 1 wake-up."""
    if phase_threshold <= 0.0:
        raise ModelError("phase threshold must be > 0")
    if position_tolerance < 0:
        raise ModelError("position tolerance must be >= 0")
    result = SessionResult()

    enough = yield CheckEnergy(threshold=v_min)
    if not enough:
        result.skipped_low_energy = True
        return result

    f_measured = yield MeasureFrequency()
    result.measured_frequency = float(f_measured)
    optimum = lut.lookup(result.measured_frequency)
    result.optimum_position = optimum

    current = yield GetCurrentPosition()
    result.initial_position = int(current)
    if abs(int(current) - optimum) <= position_tolerance:
        return result  # Algorithm 1, step 12: already tuned, back to sleep.

    # -- Algorithm 2: coarse-grain tuning ------------------------------------
    for _ in range(max_coarse_iterations):
        result.coarse_iterations += 1
        yield MoveActuatorTo(position=optimum)
        yield Settle(duration=settle_time)
        current = yield GetCurrentPosition()
        if abs(int(current) - optimum) <= position_tolerance:
            break
    result.retuned = True

    # -- Algorithm 1, step 16-21 / Algorithm 3: fine-grain tuning --------------
    phase = yield MeasurePhase()
    result.final_phase = float(phase)
    if abs(phase) < phase_threshold:
        result.fine_converged = True
        return result

    for _ in range(max_fine_steps):
        direction = -1 if phase > 0.0 else 1
        moved = yield StepActuator(direction=direction)
        result.fine_steps += 1
        yield Settle(duration=settle_time)
        new_phase = yield MeasurePhase()
        if abs(new_phase) < phase_threshold:
            result.final_phase = float(new_phase)
            result.fine_converged = True
            return result
        if abs(new_phase) >= abs(phase) or int(moved) == 0:
            # The step made things worse (or hit the travel end): revert
            # and accept the best reachable tuning.
            yield StepActuator(direction=-direction)
            yield Settle(duration=settle_time)
            result.fine_steps += 1
            result.final_phase = float(phase)
            return result
        phase = new_phase
        result.final_phase = float(phase)

    return result
