"""Electromagnetic transduction between the mechanical and electrical sides.

The coil/magnet arrangement of the paper's microgenerator is characterised
by a single transduction constant ``theta`` (V.s/m == N/A):

- EMF induced in the coil: ``e = theta * z_dot``
- Reaction force on the mass: ``F = -theta * i``

With a coil resistance ``R_c`` and a resistive load ``R_L``, the electrical
damping coefficient is ``c_e = theta^2 / (R_c + R_L)`` (coil inductance is
negligible at tens of Hz), from which the electrical damping *ratio* used
by :class:`repro.mech.sdof.SdofResonator` follows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class ElectromagneticCoupling:
    """Transducer constants of the coil/magnet assembly.

    Parameters
    ----------
    theta:
        Transduction constant in V.s/m.
    coil_resistance:
        Coil series resistance in ohms.
    coil_inductance:
        Coil inductance in henries (kept for the detailed model; its
        reactance at 60-80 Hz is negligible but the solver carries it).
    """

    theta: float
    coil_resistance: float
    coil_inductance: float = 0.0

    def __post_init__(self) -> None:
        if self.theta <= 0.0:
            raise ModelError("coupling: theta must be > 0")
        if self.coil_resistance <= 0.0:
            raise ModelError("coupling: coil resistance must be > 0")
        if self.coil_inductance < 0.0:
            raise ModelError("coupling: coil inductance must be >= 0")

    def electrical_damping(self, load_resistance: float) -> float:
        """Damping coefficient ``c_e = theta^2 / (R_c + R_L)`` in N.s/m."""
        if load_resistance <= 0.0:
            raise ModelError("load resistance must be > 0")
        return self.theta**2 / (self.coil_resistance + load_resistance)

    def electrical_damping_ratio(
        self, mass: float, omega_n: float, load_resistance: float
    ) -> float:
        """Damping ratio ``zeta_e = c_e / (2 m omega_n)``."""
        if mass <= 0.0 or omega_n <= 0.0:
            raise ModelError("mass and omega_n must be > 0")
        return self.electrical_damping(load_resistance) / (2.0 * mass * omega_n)

    def matched_load(self) -> float:
        """Load maximising power transfer from the coil (``R_L = R_c``).

        (The true optimum for a harvester also balances mechanical damping;
        coil matching is the standard first-order choice and is what the
        default system model uses.)
        """
        return self.coil_resistance

    def emf_amplitude(self, velocity_amplitude: float) -> float:
        """Open-circuit EMF peak amplitude for a velocity amplitude (V)."""
        if velocity_amplitude < 0.0:
            raise ModelError("velocity amplitude must be >= 0")
        return self.theta * velocity_amplitude

    def delivered_power(self, velocity_amplitude: float, load_resistance: float) -> float:
        """Average power reaching ``R_L`` for a sinusoidal velocity (W).

        ``P_L = (theta v)^2 R_L / (2 (R_c + R_L)^2)`` -- i.e. the electrical
        damping power scaled by the resistive divider.
        """
        if load_resistance <= 0.0:
            raise ModelError("load resistance must be > 0")
        e_peak = self.emf_amplitude(velocity_amplitude)
        total = self.coil_resistance + load_resistance
        return 0.5 * e_peak**2 * load_resistance / total**2
