"""Cantilever-beam formulas deriving SDOF parameters from geometry.

The microgenerator of the paper [Garcia et al., PowerMEMS'09] is a
cantilever with the coil fixed to the base and four magnets forming the
proof mass.  For a rectangular beam of length ``L``, width ``b`` and
thickness ``h`` with Young's modulus ``E``:

- area moment of inertia  ``I = b h^3 / 12``
- tip stiffness           ``k = 3 E I / L^3``
- effective mass          ``m_eff = m_tip + 33/140 m_beam``

These are textbook Euler-Bernoulli results; they let examples construct a
physically parameterised harvester instead of opaque (m, k) pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError
from repro.mech.sdof import SdofResonator


@dataclass(frozen=True)
class CantileverBeam:
    """Rectangular cantilever with a tip (proof) mass.

    Parameters
    ----------
    length, width, thickness:
        Beam dimensions in metres.
    youngs_modulus:
        Beam material stiffness in Pa (steel ~200e9, BeCu ~130e9).
    density:
        Beam material density in kg/m^3 (used for the distributed mass).
    tip_mass:
        Lumped proof mass at the free end in kg.
    """

    length: float
    width: float
    thickness: float
    youngs_modulus: float
    density: float
    tip_mass: float

    def __post_init__(self) -> None:
        for field_name in ("length", "width", "thickness", "youngs_modulus", "density"):
            if getattr(self, field_name) <= 0.0:
                raise ModelError(f"cantilever: {field_name} must be > 0")
        if self.tip_mass < 0.0:
            raise ModelError("cantilever: tip mass must be >= 0")

    @property
    def moment_of_inertia(self) -> float:
        """Area moment of inertia ``I = b h^3 / 12`` (m^4)."""
        return self.width * self.thickness**3 / 12.0

    @property
    def stiffness(self) -> float:
        """Tip stiffness ``k = 3 E I / L^3`` (N/m)."""
        return 3.0 * self.youngs_modulus * self.moment_of_inertia / self.length**3

    @property
    def beam_mass(self) -> float:
        """Distributed beam mass (kg)."""
        return self.density * self.length * self.width * self.thickness

    @property
    def effective_mass(self) -> float:
        """Equivalent SDOF mass ``m_tip + (33/140) m_beam`` (kg)."""
        return self.tip_mass + (33.0 / 140.0) * self.beam_mass

    @property
    def natural_frequency(self) -> float:
        """Untuned natural frequency in Hz."""
        return math.sqrt(self.stiffness / self.effective_mass) / (2.0 * math.pi)

    def to_resonator(self, zeta_mech: float, zeta_elec: float = 0.0) -> SdofResonator:
        """Build the equivalent :class:`~repro.mech.sdof.SdofResonator`."""
        return SdofResonator(
            mass=self.effective_mass,
            stiffness=self.stiffness,
            zeta_mech=zeta_mech,
            zeta_elec=zeta_elec,
        )

    @staticmethod
    def for_frequency(
        target_hz: float,
        tip_mass: float,
        length: float = 30e-3,
        width: float = 10e-3,
        youngs_modulus: float = 200e9,
        density: float = 7850.0,
    ) -> "CantileverBeam":
        """Design the beam thickness that puts the resonance at ``target_hz``.

        Solves ``k(h) = m_eff(h) (2 pi f)^2`` for the thickness ``h`` by a
        few fixed-point iterations (the beam's own mass couples weakly).
        """
        if target_hz <= 0.0:
            raise ModelError("target frequency must be > 0")
        omega2 = (2.0 * math.pi * target_hz) ** 2
        h = 1e-3  # initial guess: 1 mm
        for _ in range(50):
            beam_mass = density * length * width * h
            m_eff = tip_mass + (33.0 / 140.0) * beam_mass
            k_needed = m_eff * omega2
            h_new = (k_needed * 12.0 * length**3 / (3.0 * youngs_modulus * width)) ** (1.0 / 3.0)
            if abs(h_new - h) < 1e-12:
                h = h_new
                break
            h = h_new
        return CantileverBeam(length, width, h, youngs_modulus, density, tip_mass)
