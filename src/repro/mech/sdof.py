"""Base-excited single-degree-of-freedom resonator.

The standard linear model behind every vibration energy harvester in the
paper's reference chain (Roundy; Zhu/Tudor/Beeby): a proof mass ``m`` on a
spring ``k`` with viscous damping, excited through its base by an
acceleration ``a(t) = A sin(w t)``.  In the relative coordinate
``z = x_mass - x_base``:

    ``m z'' + c z' + k z = -m a(t)``

All response quantities below are steady-state amplitudes of that equation.
Damping is split into a mechanical (parasitic) and an electrical
(transduction) part, ``c = c_m + c_e``, because harvested power is the part
dissipated in ``c_e``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError
from repro.units import hz_to_rad


@dataclass(frozen=True)
class SdofResonator:
    """A spring-mass-damper with split mechanical/electrical damping.

    Parameters
    ----------
    mass:
        Proof mass in kg.
    stiffness:
        Spring constant in N/m.
    zeta_mech:
        Mechanical (parasitic) damping ratio.
    zeta_elec:
        Electrical (transduction) damping ratio at the nominal load.
    """

    mass: float
    stiffness: float
    zeta_mech: float
    zeta_elec: float = 0.0

    def __post_init__(self) -> None:
        if self.mass <= 0.0:
            raise ModelError("SdofResonator: mass must be > 0")
        if self.stiffness <= 0.0:
            raise ModelError("SdofResonator: stiffness must be > 0")
        if self.zeta_mech <= 0.0:
            raise ModelError("SdofResonator: zeta_mech must be > 0")
        if self.zeta_elec < 0.0:
            raise ModelError("SdofResonator: zeta_elec must be >= 0")

    # -- derived constants ---------------------------------------------------

    @property
    def omega_n(self) -> float:
        """Natural angular frequency (rad/s)."""
        return math.sqrt(self.stiffness / self.mass)

    @property
    def natural_frequency(self) -> float:
        """Natural frequency in Hz."""
        return self.omega_n / (2.0 * math.pi)

    @property
    def zeta_total(self) -> float:
        """Total damping ratio ``zeta_m + zeta_e``."""
        return self.zeta_mech + self.zeta_elec

    @property
    def quality_factor(self) -> float:
        """Loaded quality factor ``Q = 1 / (2 zeta_total)``."""
        return 1.0 / (2.0 * self.zeta_total)

    @property
    def damping_mech(self) -> float:
        """Mechanical damping coefficient ``c_m`` in N.s/m."""
        return 2.0 * self.mass * self.omega_n * self.zeta_mech

    @property
    def damping_elec(self) -> float:
        """Electrical damping coefficient ``c_e`` in N.s/m."""
        return 2.0 * self.mass * self.omega_n * self.zeta_elec

    def with_stiffness(self, stiffness: float) -> "SdofResonator":
        """A copy of this resonator retuned to a new spring constant."""
        return SdofResonator(self.mass, stiffness, self.zeta_mech, self.zeta_elec)

    # -- steady-state response -------------------------------------------------

    def displacement_amplitude(self, frequency_hz: float, accel_amplitude: float) -> float:
        """Relative displacement amplitude ``|Z|`` (m) under base excitation.

        ``Z(w) = A / sqrt((wn^2 - w^2)^2 + (2 zeta wn w)^2)``.
        """
        w = hz_to_rad(frequency_hz)
        wn = self.omega_n
        denom = math.hypot(wn * wn - w * w, 2.0 * self.zeta_total * wn * w)
        if denom == 0.0:
            raise ModelError("undamped resonator driven exactly at resonance")
        return accel_amplitude / denom

    def velocity_amplitude(self, frequency_hz: float, accel_amplitude: float) -> float:
        """Relative velocity amplitude ``w |Z|`` (m/s)."""
        w = hz_to_rad(frequency_hz)
        return w * self.displacement_amplitude(frequency_hz, accel_amplitude)

    def electrical_power(self, frequency_hz: float, accel_amplitude: float) -> float:
        """Average power (W) dissipated in the electrical damper.

        ``P_e = c_e (w |Z|)^2 / 2`` -- the raw AC power available to the
        transducer before coil and rectifier losses.
        """
        v = self.velocity_amplitude(frequency_hz, accel_amplitude)
        return 0.5 * self.damping_elec * v * v

    def resonant_power(self, accel_amplitude: float) -> float:
        """``P_e`` evaluated at the natural frequency (closed form).

        ``P = m zeta_e A^2 / (4 zeta_T^2 wn)`` -- the classic harvester
        design equation.
        """
        return (
            self.mass
            * self.zeta_elec
            * accel_amplitude**2
            / (4.0 * self.zeta_total**2 * self.omega_n)
        )

    def power_ratio(self, frequency_hz: float, accel_amplitude: float = 1.0) -> float:
        """Power at ``frequency_hz`` relative to power at resonance (0..1].

        This is the "detuning penalty" the tuning algorithms exist to avoid:
        for ``Q = 50`` a 5 Hz detune at 65 Hz costs ~98% of the output.
        """
        p_res = self.resonant_power(accel_amplitude)
        if p_res <= 0.0:
            return 0.0
        return self.electrical_power(frequency_hz, accel_amplitude) / p_res

    def half_power_bandwidth(self) -> float:
        """Approximate -3 dB bandwidth in Hz (``f_n / Q``)."""
        return self.natural_frequency / self.quality_factor

    def phase_lag(self, frequency_hz: float) -> float:
        """Phase of the relative displacement w.r.t. base acceleration (rad).

        Crosses ``-pi/2`` exactly at resonance -- the property the paper's
        fine-grain tuning algorithm (Algorithm 3) exploits by comparing the
        accelerometer and microgenerator signals.
        """
        w = hz_to_rad(frequency_hz)
        wn = self.omega_n
        return -math.atan2(2.0 * self.zeta_total * wn * w, wn * wn - w * w)

    def phase_difference_seconds(self, frequency_hz: float) -> float:
        """Time-domain equivalent of the resonance phase error, in seconds.

        Algorithm 3 terminates when this is below 100 microseconds; we
        measure the deviation of :meth:`phase_lag` from the resonant -90
        degrees, converted at the excitation period.
        """
        if frequency_hz <= 0.0:
            raise ModelError("frequency must be positive")
        phase_error = self.phase_lag(frequency_hz) + math.pi / 2.0
        return phase_error / (2.0 * math.pi * frequency_hz)
