"""Mechanical-domain models for the vibration energy harvester.

- :mod:`repro.mech.sdof` -- base-excited spring-mass-damper theory
  (response amplitudes, harvested power, Q factor).
- :mod:`repro.mech.coupling` -- electromagnetic transduction constants and
  the electrical-damping relationships.
- :mod:`repro.mech.magnetics` -- dipole-based tuning-force model that turns
  a magnet gap into an effective stiffness change (the paper's frequency
  tuning mechanism).
- :mod:`repro.mech.cantilever` -- beam formulas deriving the SDOF
  parameters from cantilever geometry.
"""

from repro.mech.cantilever import CantileverBeam
from repro.mech.coupling import ElectromagneticCoupling
from repro.mech.magnetics import MagneticTuner
from repro.mech.sdof import SdofResonator

__all__ = [
    "CantileverBeam",
    "ElectromagneticCoupling",
    "MagneticTuner",
    "SdofResonator",
]
