"""Magnetic stiffness tuning (the paper's frequency tuning mechanism).

One tuning magnet sits at the cantilever tip, the other on the linear
actuator.  Treating both as coaxial dipoles with moments ``m1``, ``m2``
separated by a gap ``d``, the attractive axial force is

    ``F(d) = 3 mu0 m1 m2 / (2 pi d^4)``

and the axial force *gradient* acts as an added spring constant on the
beam tip (Challa et al.; Zhu/Tudor/Beeby review):

    ``k_add(d) = dF/dd = -6 mu0 m1 m2 / (pi d^5)`` (magnitude used)

Moving the actuator magnet closer increases ``k_add`` and therefore the
resonant frequency -- exactly the monotone position-to-frequency map the
microcontroller's look-up table inverts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError
from repro.units import MU0


@dataclass(frozen=True)
class MagneticTuner:
    """Dipole pair whose gap sets the added stiffness.

    Parameters
    ----------
    moment1, moment2:
        Magnetic dipole moments (A.m^2) of the beam and actuator magnets.
    gap_min, gap_max:
        Achievable magnet gaps (m) at the two ends of the actuator travel.
        ``gap_min`` (closest) gives the stiffest spring / highest frequency.
    """

    moment1: float
    moment2: float
    gap_min: float
    gap_max: float

    def __post_init__(self) -> None:
        if self.moment1 <= 0.0 or self.moment2 <= 0.0:
            raise ModelError("magnetic moments must be > 0")
        if not (0.0 < self.gap_min < self.gap_max):
            raise ModelError("need 0 < gap_min < gap_max")

    def force(self, gap: float) -> float:
        """Attractive axial force (N) at magnet gap ``gap``."""
        self._check_gap(gap)
        return 3.0 * MU0 * self.moment1 * self.moment2 / (2.0 * math.pi * gap**4)

    def added_stiffness(self, gap: float) -> float:
        """Effective stiffness increase (N/m) at magnet gap ``gap``."""
        self._check_gap(gap)
        return 6.0 * MU0 * self.moment1 * self.moment2 / (math.pi * gap**5)

    def gap_for_stiffness(self, k_add: float) -> float:
        """Invert :meth:`added_stiffness` (k_add > 0)."""
        if k_add <= 0.0:
            raise ModelError("added stiffness must be > 0 to invert")
        gap = (6.0 * MU0 * self.moment1 * self.moment2 / (math.pi * k_add)) ** 0.2
        return gap

    def gap_from_travel(self, travel_fraction: float) -> float:
        """Magnet gap for a normalised actuator travel in [0, 1].

        Travel 0 = retracted (largest gap, lowest frequency); travel 1 =
        fully advanced (smallest gap, highest frequency).
        """
        if not 0.0 <= travel_fraction <= 1.0:
            raise ModelError(f"travel fraction {travel_fraction!r} outside [0, 1]")
        return self.gap_max - travel_fraction * (self.gap_max - self.gap_min)

    def stiffness_from_travel(self, travel_fraction: float) -> float:
        """Added stiffness (N/m) for a normalised actuator travel in [0, 1]."""
        return self.added_stiffness(self.gap_from_travel(travel_fraction))

    def _check_gap(self, gap: float) -> None:
        if gap <= 0.0:
            raise ModelError(f"magnet gap must be > 0, got {gap!r}")

    @staticmethod
    def for_frequency_range(
        mass: float,
        base_stiffness: float,
        f_low: float,
        f_high: float,
        gap_min: float = 4e-3,
        gap_max: float = 12e-3,
    ) -> "MagneticTuner":
        """Design a tuner whose travel spans ``[f_low, f_high]`` Hz.

        Chooses dipole moments (split equally) so that the added stiffness
        at ``gap_max`` / ``gap_min`` moves the resonance of the given
        mass/spring to ``f_low`` / ``f_high``.  ``base_stiffness`` must put
        the untuned resonance *below* ``f_low`` (the magnets only ever
        stiffen).
        """
        if not 0.0 < f_low < f_high:
            raise ModelError("need 0 < f_low < f_high")
        w_low = 2.0 * math.pi * f_low
        w_high = 2.0 * math.pi * f_high
        k_low = mass * w_low**2 - base_stiffness
        k_high = mass * w_high**2 - base_stiffness
        if k_low <= 0.0:
            raise ModelError(
                "base stiffness too high: untuned resonance must sit below f_low"
            )
        # k_add(gap) = C / gap^5; we can satisfy the k_high constraint exactly
        # with C, then verify the k_low end is reachable within the travel.
        c_high = k_high * gap_min**5
        moment = math.sqrt(c_high * math.pi / (6.0 * MU0))
        tuner = MagneticTuner(moment, moment, gap_min, gap_max)
        if tuner.added_stiffness(gap_max) > k_low:
            raise ModelError(
                "gap_max too small: cannot reach f_low; widen the travel range"
            )
        return tuner
