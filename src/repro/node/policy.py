"""Energy-aware transmission policy (paper Table II).

The sensor node firmware adapts its transmission interval to the stored
energy:

=============================  ==============================
Supercapacitor voltage          Wireless transmission interval
=============================  ==============================
Below 2.7 V                     no transmission
Between 2.7 and 2.8 V           every 1 minute
Above 2.8 V                     every ``fast_interval`` seconds
=============================  ==============================

``fast_interval`` is the paper's third optimisation parameter (original
design: 5 s; search range 0.005 - 10 s).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ModelError

#: Table II thresholds (V).
V_OFF = 2.7
V_FAST = 2.8
#: Table II mid-band interval (s).
MID_INTERVAL = 60.0


class TransmissionPolicy:
    """Voltage-banded transmission intervals."""

    def __init__(
        self,
        fast_interval: float = 5.0,
        mid_interval: float = MID_INTERVAL,
        v_off: float = V_OFF,
        v_fast: float = V_FAST,
    ):
        if fast_interval <= 0.0:
            raise ModelError("policy: fast interval must be > 0")
        if mid_interval <= 0.0:
            raise ModelError("policy: mid interval must be > 0")
        if not 0.0 < v_off < v_fast:
            raise ModelError("policy: need 0 < v_off < v_fast")
        self.fast_interval = fast_interval
        self.mid_interval = mid_interval
        self.v_off = v_off
        self.v_fast = v_fast

    def interval(self, voltage: float) -> Optional[float]:
        """Transmission interval (s) at ``voltage``; ``None`` = no transmission."""
        if voltage < self.v_off:
            return None
        if voltage < self.v_fast:
            return self.mid_interval
        return self.fast_interval

    def band(self, voltage: float) -> str:
        """Name of the active band: ``"off"``, ``"mid"`` or ``"fast"``."""
        if voltage < self.v_off:
            return "off"
        if voltage < self.v_fast:
            return "mid"
        return "fast"

    def drain_rate(self, voltage: float, energy_per_tx: float) -> float:
        """Average transmission power draw (W) at ``voltage``.

        Used by the envelope simulator, which treats periodic transmissions
        as a continuous drain.
        """
        interval = self.interval(voltage)
        if interval is None:
            return 0.0
        return energy_per_tx / interval

    def rate(self, voltage: float) -> float:
        """Transmissions per second at ``voltage``."""
        interval = self.interval(voltage)
        return 0.0 if interval is None else 1.0 / interval
