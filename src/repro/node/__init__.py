"""The eZ430-RF2500 wireless sensor node model.

- :mod:`repro.node.ez430` -- per-phase current model (paper Table III) and
  the equivalent-resistance consumption model (eq. 8).
- :mod:`repro.node.policy` -- the energy-aware transmission-interval
  policy driven by the supercapacitor voltage (paper Table II).
- :mod:`repro.node.radio` -- transmission events and their log.
- :mod:`repro.node.temperature` -- the sensed quantity (ambient
  temperature), for realistic example payloads.
"""

from repro.node.ez430 import SensorNode, TransmissionPhases
from repro.node.policy import TransmissionPolicy
from repro.node.radio import Transmission, TransmissionLog
from repro.node.temperature import TemperatureSource

__all__ = [
    "SensorNode",
    "TemperatureSource",
    "Transmission",
    "TransmissionLog",
    "TransmissionPhases",
    "TransmissionPolicy",
]
