"""Transmission events and their log.

The paper's figure of merit is the *number of wireless transmissions in
one hour*; :class:`TransmissionLog` is the authoritative counter both
simulation backends append to.  Each record keeps the payload the node
would have sent (temperature and supercapacitor voltage -- section IV-B)
so examples can render realistic packet streams.

Because the envelope simulator aggregates bursts of sub-second
transmissions into fractional counts, the log supports both discrete
records and a fractional remainder; ``count`` always reports the integer
number of completed transmissions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ModelError


@dataclass(frozen=True)
class Transmission:
    """One transmitted packet."""

    time: float
    supercap_voltage: float
    temperature_c: float
    energy: float


class TransmissionLog:
    """Counter and (optionally bounded) record of transmissions."""

    def __init__(self, keep_records: bool = True, max_records: int = 100000):
        self.keep_records = keep_records
        self.max_records = max_records
        self.records: List[Transmission] = []
        self._fractional = 0.0
        self._count = 0
        self.total_energy = 0.0

    @property
    def count(self) -> int:
        """Completed transmissions so far."""
        return self._count

    def record(self, tx: Transmission) -> None:
        """Append one discrete transmission."""
        self._count += 1
        self.total_energy += tx.energy
        if self.keep_records and len(self.records) < self.max_records:
            self.records.append(tx)

    def accumulate(
        self,
        n_transmissions: float,
        time: float,
        voltage: float,
        energy: float,
        temperature_c: float = 25.0,
    ) -> int:
        """Add a (possibly fractional) burst of transmissions.

        Returns how many *whole* transmissions completed in this call.
        Fractional remainders carry over, so a steady 0.4 tx/step stream
        counts 2 transmissions every 5 steps.
        """
        if n_transmissions < 0.0:
            raise ModelError("cannot accumulate negative transmissions")
        self._fractional += n_transmissions
        whole = int(self._fractional)
        self._fractional -= whole
        self._count += whole
        self.total_energy += energy
        if whole and self.keep_records and len(self.records) < self.max_records:
            per_tx = energy / n_transmissions if n_transmissions > 0 else 0.0
            self.records.append(Transmission(time, voltage, temperature_c, per_tx))
        return whole

    def times(self) -> List[float]:
        """Timestamps of recorded transmissions."""
        return [tx.time for tx in self.records]
