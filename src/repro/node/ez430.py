"""Sensor node behaviour and power consumption model (paper section IV-B).

Table III current draw of the eZ430-RF2500 during each transmission phase:

===========  =======  =========
Operation    Time     Current
===========  =======  =========
Sleep mode   --       0.5 uA
Wake-up      1 ms     4.5 mA
Sensing      1.5 ms   13.4 mA
Transmission 2 ms     26.8 mA
===========  =======  =========

At the 2.8 V rail each 4.5 ms transmission moves 78.2 uC of charge;
the paper quotes ~227 uJ per transmission and derives the equivalent
resistances of eq. 8 (167 ohm transmitting, 5.8 Mohm sleeping).  We model
consumption charge-based (``E = Q * V``), which reproduces the published
energy within 4% at 2.8 V and degrades gracefully at other rail voltages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ModelError

#: Rail voltage of the paper's characterisation.
RAIL_VOLTAGE = 2.8

#: Equivalent resistances of eq. 8.
R_TRANSMIT = 167.0
R_SLEEP = 5.8e6


@dataclass(frozen=True)
class TransmissionPhases:
    """Durations (s) and currents (A) of the three active phases."""

    wakeup_time: float = 1e-3
    wakeup_current: float = 4.5e-3
    sensing_time: float = 1.5e-3
    sensing_current: float = 13.4e-3
    transmit_time: float = 2e-3
    transmit_current: float = 26.8e-3

    def __post_init__(self) -> None:
        for name in (
            "wakeup_time",
            "wakeup_current",
            "sensing_time",
            "sensing_current",
            "transmit_time",
            "transmit_current",
        ):
            if getattr(self, name) <= 0.0:
                raise ModelError(f"transmission phases: {name} must be > 0")

    @property
    def total_time(self) -> float:
        """Active duration of one transmission (paper: 4.5 ms)."""
        return self.wakeup_time + self.sensing_time + self.transmit_time

    @property
    def total_charge(self) -> float:
        """Charge moved per transmission (C)."""
        return (
            self.wakeup_time * self.wakeup_current
            + self.sensing_time * self.sensing_current
            + self.transmit_time * self.transmit_current
        )

    @property
    def average_current(self) -> float:
        """Mean current over the active window (A)."""
        return self.total_charge / self.total_time


class SensorNode:
    """eZ430-RF2500 consumption model.

    Parameters
    ----------
    phases:
        Active-phase characterisation (defaults: Table III).
    sleep_current:
        Standby draw (defaults: Table III, 0.5 uA).
    """

    def __init__(
        self,
        phases: TransmissionPhases = TransmissionPhases(),
        sleep_current: float = 0.5e-6,
    ):
        if sleep_current < 0.0:
            raise ModelError("sensor node: sleep current must be >= 0")
        self.phases = phases
        self.sleep_current = sleep_current

    def transmission_energy(self, voltage: float = RAIL_VOLTAGE) -> float:
        """Energy (J) of one complete transmission at rail ``voltage``."""
        if voltage < 0.0:
            raise ModelError("voltage must be >= 0")
        return self.phases.total_charge * voltage

    def sleep_power(self, voltage: float = RAIL_VOLTAGE) -> float:
        """Standby power (W) at rail ``voltage``."""
        return self.sleep_current * voltage

    def equivalent_resistances(self, voltage: float = RAIL_VOLTAGE) -> Tuple[float, float]:
        """(transmitting, sleeping) equivalent resistances -- eq. 8.

        The transmit value uses the *average* active current; at 2.8 V this
        gives ~161 ohm against the paper's rounded 167 ohm.
        """
        if voltage <= 0.0:
            raise ModelError("voltage must be > 0 to form a resistance")
        r_tx = voltage / self.phases.average_current
        r_sleep = voltage / self.sleep_current if self.sleep_current > 0 else float("inf")
        return r_tx, r_sleep

    def transmission_duration(self) -> float:
        """Active duration of one transmission (s)."""
        return self.phases.total_time
