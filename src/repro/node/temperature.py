"""Ambient temperature source for node payloads.

The eZ430 node of the paper samples temperature before every transmission.
The measurement itself has no energy role beyond Table III's sensing phase
(already accounted), but realistic payloads make the example applications
and logs meaningful, so the library ships a simple diurnal + noise model.
"""

from __future__ import annotations

import math

from repro.errors import ModelError
from repro.rng import SeedLike, ensure_rng


class TemperatureSource:
    """Diurnal sinusoid plus band-limited noise.

    Parameters
    ----------
    mean_c:
        Daily mean temperature in Celsius.
    swing_c:
        Peak deviation of the diurnal cycle.
    period:
        Cycle length in seconds (default: 24 h).
    noise_c:
        1-sigma measurement/turbulence noise.
    """

    def __init__(
        self,
        mean_c: float = 22.0,
        swing_c: float = 4.0,
        period: float = 86400.0,
        noise_c: float = 0.2,
        seed: SeedLike = None,
    ):
        if period <= 0.0:
            raise ModelError("temperature: period must be > 0")
        if swing_c < 0.0 or noise_c < 0.0:
            raise ModelError("temperature: swing and noise must be >= 0")
        self.mean_c = mean_c
        self.swing_c = swing_c
        self.period = period
        self.noise_c = noise_c
        self._rng = ensure_rng(seed)

    def value(self, t: float) -> float:
        """Temperature (C) at simulation time ``t`` seconds.

        The diurnal phase puts the minimum at t=0 ("simulation starts at
        dawn"), which makes hour-long traces visibly trend upward.
        """
        diurnal = -self.swing_c * math.cos(2.0 * math.pi * t / self.period)
        noise = self._rng.normal(0.0, self.noise_c) if self.noise_c > 0 else 0.0
        return self.mean_c + diurnal + noise
