"""Physical constants and unit-conversion helpers.

The library stores every quantity internally in SI base units (seconds,
hertz, volts, amperes, watts, joules, metres, kilograms).  The helpers in
this module convert the mixed engineering units used throughout the paper
(milli-g acceleration, milliseconds, milliamps, megahertz...) to and from SI
so that unit mistakes are caught at the boundary rather than deep inside a
simulation.
"""

from __future__ import annotations

import math

#: Standard gravity in m/s^2 (used for the paper's "60mg" acceleration level).
G0 = 9.80665

#: Boltzmann constant (J/K); used by the diode model's thermal voltage.
BOLTZMANN = 1.380649e-23

#: Elementary charge (C).
ELEMENTARY_CHARGE = 1.602176634e-19

#: Vacuum permeability (H/m); used by the magnetic tuning-force model.
MU0 = 4.0e-7 * math.pi


def thermal_voltage(temperature_kelvin: float = 300.15) -> float:
    """Diode thermal voltage ``kT/q`` at the given temperature (default 27 C)."""
    return BOLTZMANN * temperature_kelvin / ELEMENTARY_CHARGE


def mg_to_mps2(milli_g: float) -> float:
    """Convert acceleration from milli-g to m/s^2 (60 mg -> 0.588 m/s^2)."""
    return milli_g * 1e-3 * G0


def mps2_to_mg(mps2: float) -> float:
    """Convert acceleration from m/s^2 to milli-g."""
    return mps2 / (1e-3 * G0)


def hz_to_rad(frequency_hz: float) -> float:
    """Convert a frequency in Hz to angular frequency in rad/s."""
    return 2.0 * math.pi * frequency_hz


def rad_to_hz(omega: float) -> float:
    """Convert an angular frequency in rad/s to Hz."""
    return omega / (2.0 * math.pi)


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * 1e-3


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * 1e-6


def minutes(value: float) -> float:
    """Minutes to seconds."""
    return value * 60.0


def hours(value: float) -> float:
    """Hours to seconds."""
    return value * 3600.0


def mA(value: float) -> float:  # noqa: N802 - unit symbol capitalisation is intentional
    """Milliamps to amps."""
    return value * 1e-3


def uA(value: float) -> float:  # noqa: N802
    """Microamps to amps."""
    return value * 1e-6


def mW(value: float) -> float:  # noqa: N802
    """Milliwatts to watts."""
    return value * 1e-3


def uW(value: float) -> float:  # noqa: N802
    """Microwatts to watts."""
    return value * 1e-6


def mJ(value: float) -> float:  # noqa: N802
    """Millijoules to joules."""
    return value * 1e-3


def uJ(value: float) -> float:  # noqa: N802
    """Microjoules to joules."""
    return value * 1e-6


def MHz(value: float) -> float:  # noqa: N802
    """Megahertz to hertz."""
    return value * 1e6


def kHz(value: float) -> float:  # noqa: N802
    """Kilohertz to hertz."""
    return value * 1e3


def capacitor_energy(capacitance: float, voltage: float) -> float:
    """Energy (J) stored in a capacitor: ``E = C V^2 / 2``."""
    return 0.5 * capacitance * voltage * voltage


def capacitor_voltage(capacitance: float, energy: float) -> float:
    """Voltage across a capacitor holding ``energy`` joules (inverse of above)."""
    if energy <= 0.0:
        return 0.0
    return math.sqrt(2.0 * energy / capacitance)
