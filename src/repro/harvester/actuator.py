"""Linear stepper actuator (Haydon 21000 Series, size 8) model.

The paper characterises the actuator in Table IV:

==================  ===========  ========  =======  =========  ========
Operation           action time  current   power    R_eq       energy
==================  ===========  ========  =======  =========  ========
1 step              5 ms         312 mA    811 mW   8.33 ohm   4.06 mJ
100 steps           500 ms       156 mA    405 mW   16.7 ohm   203 mJ
==================  ===========  ========  =======  =========  ========

A two-parameter affine model reproduces both rows:

    ``energy(n) = E_STEP * n + E_START``    (mJ: 2.0095 n + 2.0505)
    ``duration(n) = T_STEP * n``            (5 ms per step)

``E_START`` captures the extra acceleration/holding cost visible in the
single-step measurement.  Positions are expressed in motor steps; the
:class:`repro.harvester.tuning_map.TuningMap` position quantum equals
``steps_per_position`` motor steps (default 1: an 8-bit position space over
a 255-step travel, matching the paper's 1/2^8 tuning accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

#: Seconds per motor step (Table IV: 5 ms).
T_STEP = 5e-3
#: Marginal energy per motor step in joules (from the 100-step row).
E_STEP = (203e-3 - 4.06e-3) / 99.0
#: Fixed per-move overhead in joules (from the 1-step row).
E_START = 4.06e-3 - E_STEP


@dataclass(frozen=True)
class MoveResult:
    """Outcome of one actuator move."""

    steps: int
    duration: float
    energy: float


class LinearActuator:
    """Stepper actuator carrying the tuning magnet.

    Parameters
    ----------
    max_steps:
        Total travel in motor steps (default 255: full 8-bit position span).
    steps_per_position:
        Motor steps per tuning-map position quantum.
    initial_steps:
        Starting motor-step position.
    """

    def __init__(
        self,
        max_steps: int = 255,
        steps_per_position: int = 1,
        initial_steps: int = 0,
    ):
        if max_steps < 1:
            raise ModelError("actuator: max_steps must be >= 1")
        if steps_per_position < 1:
            raise ModelError("actuator: steps_per_position must be >= 1")
        if not 0 <= initial_steps <= max_steps:
            raise ModelError("actuator: initial position outside travel")
        self.max_steps = max_steps
        self.steps_per_position = steps_per_position
        self.steps = initial_steps
        self.total_steps_moved = 0
        self.total_energy = 0.0
        self.total_moves = 0

    # -- position bookkeeping ------------------------------------------------

    @property
    def position(self) -> float:
        """Current position in tuning-map units (may be fractional)."""
        return self.steps / self.steps_per_position

    def steps_for_position(self, position: float) -> int:
        """Motor-step target for a tuning-map position (rounded, clamped)."""
        target = int(round(position * self.steps_per_position))
        return min(max(target, 0), self.max_steps)

    # -- motion ----------------------------------------------------------------

    def move_steps(self, delta_steps: int) -> MoveResult:
        """Move by a signed number of motor steps (clamped to the travel)."""
        target = min(max(self.steps + delta_steps, 0), self.max_steps)
        n = abs(target - self.steps)
        self.steps = target
        if n == 0:
            return MoveResult(0, 0.0, 0.0)
        duration = n * T_STEP
        energy = n * E_STEP + E_START
        self.total_steps_moved += n
        self.total_energy += energy
        self.total_moves += 1
        return MoveResult(n, duration, energy)

    def move_to_position(self, position: float) -> MoveResult:
        """Move to a tuning-map position (Algorithm 2's commanded move)."""
        return self.move_steps(self.steps_for_position(position) - self.steps)

    @staticmethod
    def move_cost(n_steps: int) -> MoveResult:
        """Energy/time of an ``n_steps`` move without performing it."""
        if n_steps < 0:
            raise ModelError("move_cost: n_steps must be >= 0")
        if n_steps == 0:
            return MoveResult(0, 0.0, 0.0)
        return MoveResult(n_steps, n_steps * T_STEP, n_steps * E_STEP + E_START)
