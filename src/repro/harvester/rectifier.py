"""Diode bridge: detailed subcircuit builder and averaged envelope model.

Detailed path: :func:`add_diode_bridge` drops four Schottky-class diodes
into a circuit between the generator coil and the storage node -- the
configuration simulated by the paper's SystemC-A model.

Envelope path: :class:`RectifierEnvelope` is the averaged DC equivalent
used by the accelerated simulator.  A sinusoidal EMF of peak ``V_e`` behind
a source resistance ``R_s`` feeding a bridge and a large storage capacitor
at voltage ``V`` behaves, on average, like a DC Thevenin source:

    ``V_oc = V_e - 2 V_diode``  (conduction requires ``V_e > V + 2 V_d``)
    ``I_avg = k_cond * max(0, V_oc - V) / R_s``

with ``k_cond`` a conduction-angle factor < 1 (the bridge only conducts
near the EMF crest).  ``k_cond`` is a calibration constant validated
against the detailed model in ``tests/harvester/test_envelope_vs_detailed``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analog.components.diode import Diode
from repro.analog.netlist import Circuit
from repro.errors import ModelError

#: Default conduction-angle factor, calibrated against the detailed bridge.
DEFAULT_CONDUCTION_FACTOR = 0.55


def add_diode_bridge(
    circuit: Circuit,
    ac_p: str,
    ac_n: str,
    dc_p: str,
    dc_n: str,
    prefix: str = "BR",
    saturation_current: float = 1e-8,
    emission_coefficient: float = 1.1,
) -> "tuple[Diode, Diode, Diode, Diode]":
    """Add a full-wave bridge between (ac_p, ac_n) and (dc_p, dc_n).

    Returns the four diodes.  Default parameters model low-knee Schottky
    diodes, appropriate for the sub-volt EMF levels of a microgenerator.
    """
    d1 = circuit.add(Diode(f"{prefix}_D1", ac_p, dc_p, saturation_current, emission_coefficient))
    d2 = circuit.add(Diode(f"{prefix}_D2", ac_n, dc_p, saturation_current, emission_coefficient))
    d3 = circuit.add(Diode(f"{prefix}_D3", dc_n, ac_p, saturation_current, emission_coefficient))
    d4 = circuit.add(Diode(f"{prefix}_D4", dc_n, ac_n, saturation_current, emission_coefficient))
    return d1, d2, d3, d4


@dataclass(frozen=True)
class RectifierEnvelope:
    """Averaged bridge model for the accelerated simulator.

    Parameters
    ----------
    diode_drop:
        Forward drop of one diode at typical charging current (V).
    conduction_factor:
        Average conduction duty over a cycle (dimensionless, 0..1).
    """

    diode_drop: float = 0.35
    conduction_factor: float = DEFAULT_CONDUCTION_FACTOR

    def __post_init__(self) -> None:
        if self.diode_drop < 0.0:
            raise ModelError("rectifier: diode drop must be >= 0")
        if not 0.0 < self.conduction_factor <= 1.0:
            raise ModelError("rectifier: conduction factor must be in (0, 1]")

    def open_circuit_voltage(self, emf_peak: float) -> float:
        """DC open-circuit voltage behind the bridge (>= 0)."""
        return max(emf_peak - 2.0 * self.diode_drop, 0.0)

    def charging_current(
        self, emf_peak: float, source_resistance: float, store_voltage: float
    ) -> float:
        """Average current (A) into the storage capacitor."""
        if source_resistance <= 0.0:
            raise ModelError("rectifier: source resistance must be > 0")
        if store_voltage < 0.0:
            raise ModelError("rectifier: store voltage must be >= 0")
        v_oc = self.open_circuit_voltage(emf_peak)
        if v_oc <= store_voltage:
            return 0.0
        return self.conduction_factor * (v_oc - store_voltage) / source_resistance

    def charging_power(
        self, emf_peak: float, source_resistance: float, store_voltage: float
    ) -> float:
        """Average power (W) delivered into the storage capacitor."""
        i = self.charging_current(emf_peak, source_resistance, store_voltage)
        return store_voltage * i

    def ceiling_voltage(self, emf_peak: float) -> float:
        """Storage voltage at which charging stops (the natural clamp)."""
        return self.open_circuit_voltage(emf_peak)
