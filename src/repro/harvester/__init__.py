"""The tunable electromagnetic microgenerator and its power path.

- :mod:`repro.harvester.tuning_map` -- actuator position to resonant
  frequency map (and the 8-bit LUT the microcontroller stores).
- :mod:`repro.harvester.actuator` -- Haydon 21000-style linear stepper
  actuator with the paper's Table IV energy/time model.
- :mod:`repro.harvester.storage` -- supercapacitor energy bookkeeping for
  the envelope model.
- :mod:`repro.harvester.rectifier` -- diode-bridge builder (detailed) and
  averaged Thevenin rectifier model (envelope).
- :mod:`repro.harvester.envelope` -- analytic steady-state harvesting power
  (the "accelerated simulation" substitute for hour-long runs).
- :mod:`repro.harvester.microgenerator` -- the tunable generator facade and
  its detailed MNA component.
"""

from repro.harvester.actuator import LinearActuator, MoveResult
from repro.harvester.characterization import (
    harvest_map,
    power_frequency_curve,
    power_voltage_curve,
    resonance_bandwidth,
    tuning_curve,
)
from repro.harvester.envelope import EnvelopeHarvester
from repro.harvester.microgenerator import (
    ElectromagneticGenerator,
    TunableMicrogenerator,
)
from repro.harvester.rectifier import RectifierEnvelope, add_diode_bridge
from repro.harvester.storage import EnergyStore
from repro.harvester.tuning_map import TuningMap

__all__ = [
    "ElectromagneticGenerator",
    "EnergyStore",
    "EnvelopeHarvester",
    "LinearActuator",
    "MoveResult",
    "RectifierEnvelope",
    "TunableMicrogenerator",
    "TuningMap",
    "add_diode_bridge",
    "harvest_map",
    "power_frequency_curve",
    "power_voltage_curve",
    "resonance_bandwidth",
    "tuning_curve",
]
