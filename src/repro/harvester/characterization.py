"""Harvester characterisation sweeps.

The curves an engineer measures on a shaker table before deploying a
tunable harvester -- generated here from the models so examples, benches
and documentation can show the device's personality:

- :func:`power_frequency_curve` -- delivered power vs excitation frequency
  at a fixed tuning position (the resonance peak whose narrowness
  motivates the whole tuning subsystem);
- :func:`tuning_curve` -- resonant frequency vs actuator position;
- :func:`power_voltage_curve` -- delivered power vs storage voltage
  (Thevenin taper + mechanical cap crossover);
- :func:`harvest_map` -- the (frequency, position) power surface.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.harvester.microgenerator import TunableMicrogenerator


def power_frequency_curve(
    micro: TunableMicrogenerator,
    accel: float,
    store_voltage: float,
    position: Optional[float] = None,
    frequencies: Optional[np.ndarray] = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Delivered power vs excitation frequency at a fixed position."""
    pos = micro.position if position is None else position
    if frequencies is None:
        f_r = micro.tuning_map.resonant_frequency(pos)
        frequencies = np.linspace(f_r - 3.0, f_r + 3.0, 121)
    freqs = np.asarray(frequencies, dtype=float)
    powers = np.array(
        [
            micro.envelope.charging_power(f, accel, pos, store_voltage)
            for f in freqs
        ]
    )
    return freqs, powers


def tuning_curve(
    micro: TunableMicrogenerator, n_points: int = 64
) -> "tuple[np.ndarray, np.ndarray]":
    """Resonant frequency vs actuator position across the travel."""
    if n_points < 2:
        raise ModelError("need at least two points")
    positions = np.linspace(0, micro.tuning_map.n_positions - 1, n_points)
    freqs = np.array(
        [micro.tuning_map.resonant_frequency(p) for p in positions]
    )
    return positions, freqs


def power_voltage_curve(
    micro: TunableMicrogenerator,
    frequency_hz: float,
    accel: float,
    position: Optional[float] = None,
    voltages: Optional[np.ndarray] = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Delivered power vs storage voltage at a fixed excitation."""
    pos = micro.position if position is None else position
    if voltages is None:
        ceiling = micro.envelope.ceiling_voltage(frequency_hz, accel, pos)
        voltages = np.linspace(0.5, max(ceiling, 1.0), 101)
    volts = np.asarray(voltages, dtype=float)
    powers = np.array(
        [
            micro.envelope.charging_power(frequency_hz, accel, pos, v)
            for v in volts
        ]
    )
    return volts, powers


def harvest_map(
    micro: TunableMicrogenerator,
    accel: float,
    store_voltage: float,
    frequencies: Optional[np.ndarray] = None,
    positions: Optional[np.ndarray] = None,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """(frequency, position) -> power surface.

    Returns (frequencies, positions, power matrix of shape (n_f, n_p)).
    The ridge of the surface *is* the optimal tuning trajectory the LUT
    encodes.
    """
    f_lo, f_hi = micro.tuning_map.frequency_range()
    if frequencies is None:
        frequencies = np.linspace(f_lo, f_hi, 41)
    if positions is None:
        positions = np.linspace(0, micro.tuning_map.n_positions - 1, 41)
    freqs = np.asarray(frequencies, dtype=float)
    poss = np.asarray(positions, dtype=float)
    surface = np.zeros((len(freqs), len(poss)))
    for i, f in enumerate(freqs):
        for j, p in enumerate(poss):
            surface[i, j] = micro.envelope.charging_power(
                f, accel, p, store_voltage
            )
    return freqs, poss, surface


def resonance_bandwidth(
    micro: TunableMicrogenerator,
    accel: float,
    store_voltage: float,
    position: float,
    level: float = 0.5,
) -> float:
    """Width (Hz) of the delivered-power peak at ``level`` of its maximum.

    For the calibrated device this is a few hundred mHz -- the number that
    justifies both the 8-bit tuning resolution and the fine-tuning loop.
    """
    if not 0.0 < level < 1.0:
        raise ModelError("level must be in (0, 1)")
    freqs, powers = power_frequency_curve(
        micro, accel, store_voltage, position=position
    )
    peak = float(np.max(powers))
    if peak <= 0.0:
        return 0.0
    above = freqs[powers >= level * peak]
    if len(above) < 2:
        return 0.0
    return float(above[-1] - above[0])
