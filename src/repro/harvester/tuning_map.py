"""Actuator position to resonant frequency mapping.

The microcontroller's coarse tuning (Algorithm 2) relies on a pre-obtained
look-up table from measured vibration frequency to the 8-bit actuator
position that retunes the generator onto it.  :class:`TuningMap` is the
physical ground truth behind that table: position -> travel fraction ->
magnet gap -> added stiffness -> resonant frequency, built on
:class:`repro.mech.magnetics.MagneticTuner`.

Positions may be fractional: the fine-grain tuning algorithm moves the
actuator by single motor steps, which can be a sub-position quantum.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.errors import ModelError
from repro.mech.magnetics import MagneticTuner
from repro.mech.sdof import SdofResonator


class TuningMap:
    """Monotone position -> resonant frequency map over an 8-bit travel.

    Parameters
    ----------
    resonator:
        The *untuned* resonator (magnet fully retracted adds the gap_max
        stiffness, so the untuned natural frequency sits below the lowest
        mapped frequency).
    tuner:
        Magnetic tuning mechanism.
    n_positions:
        Number of discrete LUT positions (paper: 8-bit => 256).
    """

    def __init__(
        self,
        resonator: SdofResonator,
        tuner: MagneticTuner,
        n_positions: int = 256,
    ):
        if n_positions < 2:
            raise ModelError("need at least 2 positions")
        self.resonator = resonator
        self.tuner = tuner
        self.n_positions = n_positions

    # -- forward map --------------------------------------------------------

    def travel_fraction(self, position: float) -> float:
        """Normalised travel in [0, 1] for a (possibly fractional) position."""
        if not 0.0 <= position <= self.n_positions - 1:
            raise ModelError(
                f"position {position!r} outside [0, {self.n_positions - 1}]"
            )
        return position / (self.n_positions - 1)

    def stiffness(self, position: float) -> float:
        """Total spring constant (base + magnetic) at ``position`` (N/m)."""
        k_add = self.tuner.stiffness_from_travel(self.travel_fraction(position))
        return self.resonator.stiffness + k_add

    def resonant_frequency(self, position: float) -> float:
        """Resonant frequency in Hz at ``position``."""
        return math.sqrt(self.stiffness(position) / self.resonator.mass) / (
            2.0 * math.pi
        )

    def resonator_at(self, position: float) -> SdofResonator:
        """The retuned resonator at ``position``."""
        return self.resonator.with_stiffness(self.stiffness(position))

    def frequency_range(self) -> Tuple[float, float]:
        """(lowest, highest) mappable resonant frequency in Hz."""
        return (
            self.resonant_frequency(0),
            self.resonant_frequency(self.n_positions - 1),
        )

    # -- inverse map -----------------------------------------------------------

    def position_for_frequency(self, frequency_hz: float) -> int:
        """Integer position whose resonance is closest to ``frequency_hz``.

        Out-of-range frequencies clamp to the nearest end of the travel --
        the behaviour of the paper's LUT, which can only command reachable
        positions.
        """
        f_low, f_high = self.frequency_range()
        if frequency_hz <= f_low:
            return 0
        if frequency_hz >= f_high:
            return self.n_positions - 1
        lo, hi = 0, self.n_positions - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.resonant_frequency(mid) < frequency_hz:
                lo = mid
            else:
                hi = mid
        f_lo = self.resonant_frequency(lo)
        f_hi = self.resonant_frequency(hi)
        return lo if abs(f_lo - frequency_hz) <= abs(f_hi - frequency_hz) else hi

    def build_lut(self, f_min: float, f_max: float, n_entries: int = 256) -> "List[int]":
        """Pre-compute the MCU's frequency->position table.

        Entry ``i`` covers measured frequency
        ``f_min + i (f_max - f_min) / (n_entries - 1)`` -- the quantised
        table the PIC stores in program memory (Algorithm 1, step 10).
        """
        if not f_min < f_max:
            raise ModelError("need f_min < f_max")
        step = (f_max - f_min) / (n_entries - 1)
        return [
            self.position_for_frequency(f_min + i * step) for i in range(n_entries)
        ]

    def frequency_resolution(self) -> float:
        """Worst-case frequency change of a single position step (Hz)."""
        freqs = [self.resonant_frequency(p) for p in range(self.n_positions)]
        return max(b - a for a, b in zip(freqs, freqs[1:]))
