"""Supercapacitor energy bookkeeping for the envelope model.

The detailed model represents the 0.55 F supercapacitor as a circuit
element (:class:`repro.analog.components.Supercapacitor`); the envelope
model instead tracks stored *energy* directly and converts to voltage via
``E = C V^2 / 2``.  Deposits taper to zero as the voltage approaches the
rectifier's open-circuit ceiling (handled by the caller) and are hard
clamped at :attr:`v_max`; draws floor at zero.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.units import capacitor_energy, capacitor_voltage


class EnergyStore:
    """A capacitor tracked in the energy domain."""

    def __init__(self, capacitance: float = 0.55, v_init: float = 2.5, v_max: float = 3.6):
        if capacitance <= 0.0:
            raise ModelError("storage: capacitance must be > 0")
        if v_init < 0.0:
            raise ModelError("storage: initial voltage must be >= 0")
        if v_max <= 0.0 or v_max < v_init:
            raise ModelError("storage: need v_max >= v_init > 0")
        self.capacitance = capacitance
        self.v_max = v_max
        self._energy = capacitor_energy(capacitance, v_init)
        self.total_deposited = 0.0
        self.total_drawn = 0.0
        self.clipped_energy = 0.0

    # -- state ------------------------------------------------------------

    @property
    def energy(self) -> float:
        """Stored energy in joules."""
        return self._energy

    @property
    def voltage(self) -> float:
        """Terminal voltage in volts."""
        return capacitor_voltage(self.capacitance, self._energy)

    @property
    def energy_max(self) -> float:
        """Energy at the hard voltage clamp."""
        return capacitor_energy(self.capacitance, self.v_max)

    def headroom(self) -> float:
        """Energy that can still be deposited before hitting the clamp."""
        return max(self.energy_max - self._energy, 0.0)

    # -- transfers -----------------------------------------------------------

    def deposit(self, energy_j: float) -> float:
        """Add harvested energy; returns the amount actually stored."""
        if energy_j < 0.0:
            raise ModelError("deposit: energy must be >= 0 (use draw)")
        stored = min(energy_j, self.headroom())
        self._energy += stored
        self.total_deposited += stored
        self.clipped_energy += energy_j - stored
        return stored

    def draw(self, energy_j: float) -> float:
        """Remove consumed energy; returns the amount actually supplied."""
        if energy_j < 0.0:
            raise ModelError("draw: energy must be >= 0 (use deposit)")
        supplied = min(energy_j, self._energy)
        self._energy -= supplied
        self.total_drawn += supplied
        return supplied

    def can_supply(self, energy_j: float) -> bool:
        """Whether a draw of ``energy_j`` would be fully covered."""
        return self._energy >= energy_j

    def energy_above(self, voltage: float) -> float:
        """Stored energy in excess of what ``voltage`` represents (>= 0)."""
        return max(self._energy - capacitor_energy(self.capacitance, voltage), 0.0)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"EnergyStore(C={self.capacitance:g} F, V={self.voltage:.3f} V, "
            f"E={self._energy:.4f} J)"
        )
