"""The tunable electromagnetic microgenerator.

Two representations share one parameter set:

- :class:`ElectromagneticGenerator` -- a detailed MNA component coupling
  the mechanical SDOF states (relative displacement ``z`` and velocity
  ``v``) into the electrical network, exactly as SystemC-A couples its
  mechanical and electrical equations.  Its extra unknowns are
  ``[i_coil, z, v]`` with equations

      ``v_p - v_n - R_c i - L di/dt - theta v = 0``      (coil branch)
      ``dz/dt - v = 0``                                   (kinematics)
      ``m dv/dt + c_m v + k(t) z - theta i + m a(t) = 0`` (dynamics)

- :class:`TunableMicrogenerator` -- the facade used by the system model:
  it owns the tuning map, the actuator and the envelope model, and can
  instantiate the detailed component for co-simulation.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.analog.components.base import (
    Component,
    METHOD_TRAP,
    MODE_DC,
    Stamps,
)
from repro.errors import ModelError
from repro.harvester.actuator import LinearActuator
from repro.harvester.envelope import EnvelopeHarvester
from repro.harvester.rectifier import RectifierEnvelope
from repro.harvester.tuning_map import TuningMap
from repro.mech.coupling import ElectromagneticCoupling
from repro.mech.sdof import SdofResonator


class ElectromagneticGenerator(Component):
    """Detailed electromechanical generator between coil nodes ``p`` and ``n``.

    Parameters
    ----------
    mass, damping_mech:
        Mechanical SDOF constants (kg, N.s/m).
    stiffness:
        Initial spring constant (N/m); assign :attr:`stiffness` to retune
        mid-simulation (the tuning actuator does exactly that).
    coupling:
        Transduction constants (theta, coil R and L).
    acceleration:
        Base acceleration waveform ``a(t)`` in m/s^2.
    ac_accel_amplitude:
        Acceleration amplitude used as the stimulus in AC analysis.
    """

    def __init__(
        self,
        name: str,
        p: str,
        n: str,
        mass: float,
        stiffness: float,
        damping_mech: float,
        coupling: ElectromagneticCoupling,
        acceleration: Callable[[float], float],
        ac_accel_amplitude: float = 0.0,
    ):
        super().__init__(name, (p, n))
        if mass <= 0.0 or stiffness <= 0.0 or damping_mech < 0.0:
            raise ModelError("generator: need mass, stiffness > 0 and damping >= 0")
        self.mass = mass
        self.stiffness = stiffness
        self.damping_mech = damping_mech
        self.coupling = coupling
        self.acceleration = acceleration
        self.ac_accel_amplitude = ac_accel_amplitude
        self._didt_prev = 0.0
        self._vdot_prev = 0.0

    def reset(self) -> None:
        """Clear companion-model history (start of a new transient)."""
        self._didt_prev = 0.0
        self._vdot_prev = 0.0

    def n_extras(self) -> int:
        return 3  # [i_coil, z, v]

    def stamp(self, st: Stamps) -> None:
        p, n = self.node_idx
        ki, kz, kv = self.extra_idx
        theta = self.coupling.theta
        rc = self.coupling.coil_resistance
        lc = self.coupling.coil_inductance
        m, k, c = self.mass, self.stiffness, self.damping_mech

        # KCL: branch current i flows from p through the generator to n.
        st.add_G(p, ki, 1.0)
        st.add_G(n, ki, -1.0)

        if st.mode == MODE_DC:
            # Static equilibrium: v = 0, coil purely resistive.
            st.add_G(ki, p, 1.0)
            st.add_G(ki, n, -1.0)
            st.add_G(ki, ki, -rc)
            st.add_G(ki, kv, -theta)
            st.add_G(kz, kv, 1.0)  # v = 0
            st.add_G(kv, kv, c)
            st.add_G(kv, kz, k)
            st.add_G(kv, ki, -theta)
            st.add_b(kv, -m * self.acceleration(st.t))
            return

        dt = st.dt
        trap = st.method == METHOD_TRAP
        alpha = 2.0 / dt if trap else 1.0 / dt

        # Coil branch: v_p - v_n - (rc + alpha*lc) i - theta v = b_i
        st.add_G(ki, p, 1.0)
        st.add_G(ki, n, -1.0)
        st.add_G(ki, ki, -(rc + alpha * lc))
        st.add_G(ki, kv, -theta)
        b_i = -lc * (alpha * st.v_prev(ki) + (self._didt_prev if trap else 0.0))
        st.add_b(ki, b_i)

        # Kinematics: z - (1/alpha) v = z_prev (+ v_prev/alpha for trap)
        st.add_G(kz, kz, 1.0)
        st.add_G(kz, kv, -1.0 / alpha)
        rhs_z = st.v_prev(kz)
        if trap:
            rhs_z += st.v_prev(kv) / alpha
        st.add_b(kz, rhs_z)

        # Dynamics: (m*alpha + c) v + k z - theta i = m*alpha*v_prev
        #           (+ m*vdot_prev for trap) - m a(t)
        st.add_G(kv, kv, m * alpha + c)
        st.add_G(kv, kz, k)
        st.add_G(kv, ki, -theta)
        rhs_v = m * alpha * st.v_prev(kv) - m * self.acceleration(st.t)
        if trap:
            rhs_v += m * self._vdot_prev
        st.add_b(kv, rhs_v)

    def update_state(self, x, x_prev, dt, method) -> None:
        ki, kz, kv = self.extra_idx
        if method == METHOD_TRAP:
            self._didt_prev = 2.0 * (x[ki] - x_prev[ki]) / dt - self._didt_prev
            self._vdot_prev = 2.0 * (x[kv] - x_prev[kv]) / dt - self._vdot_prev

    def stamp_ac(self, G, b, omega, x_op) -> None:
        p, n = self.node_idx
        ki, kz, kv = self.extra_idx
        theta = self.coupling.theta
        rc = self.coupling.coil_resistance
        lc = self.coupling.coil_inductance
        if p >= 0:
            G[p, ki] += 1.0
            G[ki, p] += 1.0
        if n >= 0:
            G[n, ki] += -1.0
            G[ki, n] += -1.0
        G[ki, ki] += -(rc + 1j * omega * lc)
        G[ki, kv] += -theta
        G[kz, kz] += 1j * omega
        G[kz, kv] += -1.0
        G[kv, kv] += 1j * omega * self.mass + self.damping_mech
        G[kv, kz] += self.stiffness
        G[kv, ki] += -theta
        b[kv] += -self.mass * self.ac_accel_amplitude

    # -- probes --------------------------------------------------------------

    def coil_current(self, x: np.ndarray) -> float:
        """Coil branch current (A), positive flowing p -> n internally."""
        return float(x[self.extra_idx[0]])

    def displacement(self, x: np.ndarray) -> float:
        """Relative proof-mass displacement z (m)."""
        return float(x[self.extra_idx[1]])

    def velocity(self, x: np.ndarray) -> float:
        """Relative proof-mass velocity (m/s)."""
        return float(x[self.extra_idx[2]])


class TunableMicrogenerator:
    """Facade over the tunable generator: tuning map + actuator + envelope.

    This is the object the system model manipulates: the controller asks
    the actuator to move, which changes :attr:`position`, which retunes the
    resonance seen by both the envelope and detailed representations.
    """

    def __init__(
        self,
        tuning_map: TuningMap,
        coupling: ElectromagneticCoupling,
        actuator: Optional[LinearActuator] = None,
        rectifier: Optional[RectifierEnvelope] = None,
        source_resistance: Optional[float] = None,
        mech_efficiency: float = 1.0,
    ):
        self.tuning_map = tuning_map
        self.coupling = coupling
        self.actuator = actuator or LinearActuator(
            max_steps=tuning_map.n_positions - 1, steps_per_position=1
        )
        self.envelope = EnvelopeHarvester(
            tuning_map,
            coupling,
            rectifier=rectifier,
            source_resistance=source_resistance,
            mech_efficiency=mech_efficiency,
        )

    @property
    def position(self) -> float:
        """Current actuator position in tuning-map units."""
        return self.actuator.position

    def resonant_frequency(self) -> float:
        """Present resonant frequency (Hz)."""
        return self.tuning_map.resonant_frequency(self.position)

    def charging_power(self, frequency_hz: float, accel: float, store_voltage: float) -> float:
        """Envelope charging power at the current position (W)."""
        return self.envelope.charging_power(
            frequency_hz, accel, self.position, store_voltage
        )

    def detailed_component(
        self,
        acceleration: Callable[[float], float],
        name: str = "GEN",
        coil_p: str = "coil_p",
        coil_n: str = "coil_n",
        ac_accel_amplitude: float = 0.0,
    ) -> ElectromagneticGenerator:
        """Instantiate the detailed MNA component at the current tuning.

        The component's ``stiffness`` is a snapshot; co-simulations that
        retune mid-run should assign ``component.stiffness =
        micro.tuning_map.stiffness(micro.position)`` after actuator moves
        (the detailed backend wires this up automatically).

        The viscous damping handed to the component is the resonator's
        *total* (mechanical + calibrated average electrical) coefficient:
        the bridge only conducts near the EMF crest, so the instantaneous
        coil reaction alone would leave the detailed model far less damped
        than the calibrated envelope.  Folding the calibrated average into
        the viscous term keeps one amplitude story across both backends
        (the residual coil feedback adds a few percent on top).
        """
        resonator = self.tuning_map.resonator
        return ElectromagneticGenerator(
            name,
            coil_p,
            coil_n,
            mass=resonator.mass,
            stiffness=self.tuning_map.stiffness(self.position),
            damping_mech=resonator.damping_mech + resonator.damping_elec,
            coupling=self.coupling,
            acceleration=acceleration,
            ac_accel_amplitude=ac_accel_amplitude,
        )
