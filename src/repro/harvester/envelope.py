"""Analytic steady-state harvesting power (the accelerated model).

Hour-long design-space-exploration runs cannot integrate a 65 Hz
oscillation cycle-by-cycle; the paper's authors faced the same problem and
used a linearised state-space acceleration technique (their ref [9]).  Our
equivalent: for a *linear* harvester the steady-state response at a given
excitation is known in closed form, so the envelope simulator evaluates

    position -> retuned resonator -> velocity amplitude -> EMF peak
             -> averaged rectifier -> charging power at the present
                storage voltage

once per control-system event instead of thousands of times per vibration
cycle.  The mapping is validated against the detailed MNA model in
``tests/harvester/test_envelope_vs_detailed.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ModelError
from repro.harvester.rectifier import RectifierEnvelope
from repro.harvester.tuning_map import TuningMap
from repro.mech.coupling import ElectromagneticCoupling


class EnvelopeHarvester:
    """Steady-state electrical model of the tunable microgenerator.

    Parameters
    ----------
    tuning_map:
        Position -> resonant frequency physics (includes the resonator).
    coupling:
        Electromagnetic transduction constants.
    rectifier:
        Averaged bridge model.
    source_resistance:
        DC-side Thevenin resistance of coil + bridge; defaults to the coil
        resistance.
    mech_efficiency:
        Fraction of the resonator's electrical-damping power that can
        actually reach the storage (coil + rectifier losses).  Delivered
        power is ``min(Thevenin, mech_efficiency * P_e)`` -- the Thevenin
        gap limits near the voltage ceiling, the mechanical budget limits
        at low storage voltages.
    """

    def __init__(
        self,
        tuning_map: TuningMap,
        coupling: ElectromagneticCoupling,
        rectifier: Optional[RectifierEnvelope] = None,
        source_resistance: Optional[float] = None,
        mech_efficiency: float = 1.0,
    ):
        self.tuning_map = tuning_map
        self.coupling = coupling
        self.rectifier = rectifier or RectifierEnvelope()
        self.source_resistance = (
            coupling.coil_resistance if source_resistance is None else source_resistance
        )
        if self.source_resistance <= 0.0:
            raise ModelError("envelope: source resistance must be > 0")
        if not 0.0 < mech_efficiency <= 1.0:
            raise ModelError("envelope: mech efficiency must be in (0, 1]")
        self.mech_efficiency = mech_efficiency
        #: Analytic power evaluations served (always on: a plain int
        #: increment is far cheaper than a registry hit at this call
        #: rate; the simulator reads the delta into telemetry per run).
        self.power_evals = 0

    # -- mechanical/electrical chain ---------------------------------------

    def resonant_frequency(self, position: float) -> float:
        """Resonant frequency (Hz) at an actuator position."""
        return self.tuning_map.resonant_frequency(position)

    def emf_peak(self, frequency_hz: float, accel_amplitude: float, position: float) -> float:
        """Open-loop EMF peak (V) at the given excitation and position."""
        resonator = self.tuning_map.resonator_at(position)
        velocity = resonator.velocity_amplitude(frequency_hz, accel_amplitude)
        return self.coupling.emf_amplitude(velocity)

    def mechanical_limit(
        self, frequency_hz: float, accel_amplitude: float, position: float
    ) -> float:
        """Maximum deliverable power (W): the scaled electrical-damping power."""
        resonator = self.tuning_map.resonator_at(position)
        return self.mech_efficiency * resonator.electrical_power(
            frequency_hz, accel_amplitude
        )

    def charging_power(
        self,
        frequency_hz: float,
        accel_amplitude: float,
        position: float,
        store_voltage: float,
    ) -> float:
        """Average power (W) delivered into the storage capacitor."""
        self.power_evals += 1
        emf = self.emf_peak(frequency_hz, accel_amplitude, position)
        thevenin = self.rectifier.charging_power(
            emf, self.source_resistance, store_voltage
        )
        return min(
            thevenin, self.mechanical_limit(frequency_hz, accel_amplitude, position)
        )

    def charging_current(
        self,
        frequency_hz: float,
        accel_amplitude: float,
        position: float,
        store_voltage: float,
    ) -> float:
        """Average charging current (A) into the storage capacitor."""
        if store_voltage <= 0.0:
            return 0.0
        power = self.charging_power(
            frequency_hz, accel_amplitude, position, store_voltage
        )
        return power / store_voltage

    def ceiling_voltage(
        self, frequency_hz: float, accel_amplitude: float, position: float
    ) -> float:
        """Storage voltage at which charging stops for this excitation."""
        emf = self.emf_peak(frequency_hz, accel_amplitude, position)
        return self.rectifier.ceiling_voltage(emf)

    def optimal_position(self, frequency_hz: float) -> int:
        """LUT position maximising charging power for ``frequency_hz``."""
        return self.tuning_map.position_for_frequency(frequency_hz)
