"""Stdlib HTTP plumbing for the simulation service.

:mod:`repro.service.app` owns the routes; this module owns everything
HTTP-shaped around them: the request/response value objects, the
middleware chain (bearer-token auth, token-bucket rate limiting), the
:class:`~http.server.BaseHTTPRequestHandler` adapter and a
:class:`ServiceServer` wrapper around ``ThreadingHTTPServer`` that
binds, serves from a background thread and shuts down cleanly.

Everything is JSON: responses carry a ``payload`` object serialised
with sorted keys -- and endpoints that return stored result documents
mark themselves *canonical* so their bytes re-serialise exactly as the
store wrote them (``canonical_json``), which is what the byte-identity
tests pin.
"""

from __future__ import annotations

import hmac
import json
import math
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.obs.logging import get_logger
from repro.store.db import canonical_json

#: Requests with bodies beyond this many bytes are refused (HTTP 400,
#: per the service's "bad submissions are 400s, never 500s" contract).
#: Sized for campaign manifests: a stochastic family embeds its drawn
#: vibration schedule per scenario, so a 256-scenario manifest at a
#: multi-hour horizon runs to several MB.  The refusal happens on the
#: Content-Length header alone, before reading the body.
MAX_BODY_BYTES = 16 * 1024 * 1024

_LOG = get_logger("repro.service.http")


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request, free of socket machinery."""

    method: str
    path: str
    query: Mapping[str, str]
    headers: Mapping[str, str]
    body: bytes
    client: str = ""

    def json(self) -> object:
        """The body parsed as JSON (raises ``ValueError`` on garbage)."""
        return json.loads(self.body.decode("utf-8"))

    def token(self) -> Optional[str]:
        """The bearer token carried by the request, if any."""
        auth = self.headers.get("authorization", "")
        if auth.lower().startswith("bearer "):
            return auth[7:].strip()
        return None


@dataclass
class Response:
    """One response: status, payload, extra headers.

    ``canonical=True`` serialises the payload with the store's own
    :func:`~repro.store.db.canonical_json` (sorted keys, fixed
    separators) so embedded result documents keep their stored bytes.
    A non-JSON ``content_type`` (the Prometheus exposition) sends the
    payload as literal text instead of serialising it.
    """

    status: int
    payload: object
    headers: Dict[str, str] = field(default_factory=dict)
    canonical: bool = False
    content_type: str = "application/json"

    def body_bytes(self) -> bytes:
        if not self.content_type.startswith("application/json"):
            text = str(self.payload)
            if not text.endswith("\n"):
                text += "\n"
            return text.encode("utf-8")
        if self.canonical:
            text = canonical_json(self.payload)
        else:
            text = json.dumps(self.payload, indent=2, sort_keys=True)
        return (text + "\n").encode("utf-8")


def error_response(status: int, message: str, **extra) -> Response:
    """The one error shape every failure path uses."""
    payload = {"error": message, "status": status}
    headers = {str(k).replace("_", "-").title(): str(v) for k, v in extra.items()}
    return Response(status, payload, headers=headers)


# -- middleware ----------------------------------------------------------------


class TokenAuth:
    """Bearer-token gate.

    With no configured tokens the service is open (a local dev
    convenience the CLI makes explicit); with tokens, every request
    except the health probe must present one of them.  Comparison is
    constant-time.
    """

    def __init__(self, tokens: Tuple[str, ...] = ()):
        self.tokens = tuple(t for t in tokens if t)

    def __call__(self, request: Request) -> Optional[Response]:
        if not self.tokens:
            return None
        presented = request.token()
        if presented is not None and any(
            hmac.compare_digest(presented, token) for token in self.tokens
        ):
            return None
        refusal = error_response(401, "missing or invalid bearer token")
        refusal.headers["WWW-Authenticate"] = 'Bearer realm="repro-wsn"'
        return refusal


class RateLimiter:
    """Per-caller token bucket: ``rate`` requests/s, ``burst`` deep.

    Buckets are keyed by bearer token when one is presented, else by
    client address, so one noisy client cannot starve the rest.  A
    refused request gets a 429 with ``Retry-After`` rounded up to the
    next whole second a token becomes available.
    """

    def __init__(self, rate: float = 0.0, burst: Optional[int] = None):
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else max(rate * 2.0, 1.0))
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self._lock = threading.Lock()
        self.rejected = 0

    def __call__(self, request: Request) -> Optional[Response]:
        if self.rate <= 0.0:
            return None
        key = request.token() or request.client or "anonymous"
        now = time.monotonic()
        with self._lock:
            level, stamp = self._buckets.get(key, (self.burst, now))
            level = min(self.burst, level + (now - stamp) * self.rate)
            if level >= 1.0:
                self._buckets[key] = (level - 1.0, now)
                return None
            self._buckets[key] = (level, now)
            self.rejected += 1
            retry_after = max(math.ceil((1.0 - level) / self.rate), 1)
        return error_response(
            429,
            f"rate limit exceeded ({self.rate:g} requests/s); retry in "
            f"{retry_after} s",
            retry_after=retry_after,
        )


# -- server --------------------------------------------------------------------


def _make_handler(app) -> type:
    """A request-handler class bound to one application object."""

    class Handler(BaseHTTPRequestHandler):
        # Keep-alive is safe: every response carries Content-Length.
        protocol_version = "HTTP/1.1"
        server_version = "repro-wsn-service"

        def _respond(self, response: Response) -> None:
            body = response.body_bytes()
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in response.headers.items():
                self.send_header(name, value)
            self.end_headers()
            # HEAD carries the GET response's headers (including the
            # Content-Length the body *would* have) and no body.
            if self.command != "HEAD":
                self.wfile.write(body)

        def _dispatch(self, method: str) -> None:
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                length = -1
            if length < 0 or length > MAX_BODY_BYTES:
                self._respond(
                    error_response(
                        400,
                        f"request body must be 0..{MAX_BODY_BYTES} bytes "
                        f"with a valid Content-Length",
                    )
                )
                return
            body = self.rfile.read(length) if length else b""
            split = urlsplit(self.path)
            request = Request(
                method=method,
                path=split.path,
                query=dict(parse_qsl(split.query)),
                headers={k.lower(): v for k, v in self.headers.items()},
                body=body,
                client=self.client_address[0] if self.client_address else "",
            )
            self._respond(app.dispatch(request))

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            self._dispatch("GET")

        def do_HEAD(self) -> None:  # noqa: N802
            # Same middleware and routing as GET (load balancers probe
            # HEAD /v1/healthz); _respond drops the body.
            self._dispatch("HEAD")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST")

        def do_DELETE(self) -> None:  # noqa: N802
            self._dispatch("DELETE")

        def log_message(self, format: str, *args) -> None:
            # Access lines flow through the shared "repro" logger tree,
            # so --log-json covers them like every other service line.
            if getattr(app, "verbose", False):
                _LOG.info(
                    "%s %s", self.address_string(), format % args
                )

    return Handler


class ServiceServer:
    """A ``ThreadingHTTPServer`` hosting one service application.

    Binds eagerly (so ``port=0`` resolves to a real port before any
    client needs it), serves from a daemon thread, and ``shutdown()``
    unblocks cleanly -- the shape both the CLI and the tests want.
    """

    def __init__(self, app, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(app))
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        """Serve from a background thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
            name="repro-http",
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving and release the socket."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()
