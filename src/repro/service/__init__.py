"""Simulation-as-a-service: HTTP job API, durable queue, worker pool.

This package turns the library into a multi-tenant service without a
single new dependency: jobs are rows in the same SQLite file as the
:class:`~repro.store.ResultStore` they run against, workers are threads
draining that queue through the existing
:class:`~repro.store.Campaign` / :class:`~repro.core.study.Study`
machinery, and the API is a stdlib ``ThreadingHTTPServer``.

Because execution rides the store's content-addressed, first-writer-wins
results table, the service inherits every durability property the
library already proves: a SIGKILLed worker's job is requeued by
heartbeat timeout and *resumed* -- zero re-simulation of stored rows --
and results fetched over HTTP are byte-identical to a direct
``Campaign.run()`` against the same store.

Quickstart (server)::

    repro-wsn serve --store results.db --port 8080 --workers 2

Quickstart (client)::

    import json, urllib.request

    manifest = json.load(open("manifest.json"))
    req = urllib.request.Request(
        "http://127.0.0.1:8080/v1/jobs",
        data=json.dumps(manifest).encode(),
        method="POST",
    )
    job = json.load(urllib.request.urlopen(req))
    # ... poll /v1/jobs/{id}, then fetch /v1/jobs/{id}/results

In-process (tests, embedding)::

    from repro.service import JobQueue, ServiceApp, ServiceServer, WorkerPool

    queue = JobQueue(store)
    job = queue.submit(manifest)
    pool = WorkerPool(store, workers=2)
    pool.run_once()                    # cron-style: drain queue, return
    server = ServiceServer(ServiceApp(store, pool=pool)).start()
"""

from repro.service.app import ServiceApp
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.http import (
    RateLimiter,
    Request,
    Response,
    ServiceServer,
    TokenAuth,
)
from repro.service.jobs import (
    JOB_KINDS,
    JOB_STATUSES,
    Job,
    JobCancelled,
    JobQueue,
    validate_job,
)
from repro.service.worker import WorkerPool, execute_job

__all__ = [
    "JOB_KINDS",
    "JOB_STATUSES",
    "Job",
    "JobCancelled",
    "JobQueue",
    "RateLimiter",
    "Request",
    "Response",
    "ServiceApp",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceUnavailable",
    "TokenAuth",
    "WorkerPool",
    "execute_job",
    "validate_job",
]
