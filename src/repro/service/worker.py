"""Async worker pool draining the job queue against the shared store.

A :class:`WorkerPool` runs N worker threads, each looping *claim ->
execute -> finish* against a :class:`~repro.service.jobs.JobQueue`.
Execution is entirely the existing machinery: a campaign or scenario
job runs through :class:`~repro.store.Campaign` (journal + chunked
write-through), a study job through :class:`~repro.core.study.Study` --
so a job's durable progress is the results table itself and a job that
moves between workers (crash, drain, requeue) resumes with **zero**
re-simulation of stored rows.

Threads, not processes, because the unit of parallelism is *inside* a
job: each worker's :class:`~repro.core.batch.BatchRunner` can fan a
chunk out over ``jobs`` processes (or hand a whole batch to the
vectorized backend), while the worker thread itself mostly waits on the
store.  SQLite access is safe -- every (process, thread) pair already
gets its own connection.

Liveness has two layers:

- a **pulse thread** heartbeats every busy claim on a fixed cadence,
  independent of how long a simulation chunk takes, so a healthy
  worker's claim never goes stale;
- the **job-context hook** (``on_chunk``) re-checks the claim at every
  durable chunk boundary, so cancellation (or a claim lost to a
  too-aggressive orphan requeue) stops the job at the next boundary
  without losing stored work.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from dataclasses import replace
from typing import Dict, List, Optional

from repro.errors import ConfigError, ReproError
from repro.obs.logging import get_logger, log_context
from repro.obs.metrics import metrics as _obs_metrics
from repro.obs.state import STATE as _OBS
from repro.obs.trace import span
from repro.service.jobs import Job, JobCancelled, JobQueue
from repro.store.db import ResultStore

#: Fallback drain window applied by :meth:`WorkerPool.stop`.
DEFAULT_DRAIN_TIMEOUT_S = 30.0

_LOG = get_logger("repro.service.worker")

_BUSY_WORKERS = _obs_metrics().gauge(
    "repro_workers_busy", "Worker threads currently executing a claim"
)


class DrainRequeue(ReproError):
    """Raised at a chunk boundary when the pool is stopping *without*
    draining: the job goes back to the queue for the next worker."""


def execute_job(
    store: ResultStore,
    job: Job,
    *,
    jobs: int = 1,
    chunk_size: Optional[int] = None,
    executor: str = "process",
    on_chunk=None,
) -> None:
    """Run one claimed job through the campaign/study machinery.

    Idempotent by construction: re-executing a partially finished job
    (after a crash or requeue) re-creates the same journal
    (``exist_ok`` on identical content) and simulates only what the
    store does not already hold.
    """
    from repro.store.campaign import Campaign

    if job.kind == "study":
        from repro.core.study import Study, StudySpec

        spec = replace(StudySpec.from_dict(job.payload), name=job.name)
        study = Study(spec, store=store, jobs=jobs, chunk_size=chunk_size)
        study.run(on_chunk=on_chunk)
        return
    if job.kind == "campaign":
        from repro.service.jobs import job_partition
        from repro.store.campaign import partition_scenarios
        from repro.system.stochastic import manifest_scenarios

        scenarios = manifest_scenarios(job.payload)
        part = job_partition(job.payload, len(scenarios))
        if part is not None:
            # Same full-list seed resolution, then this job's slice --
            # so the keys match a single-store run of the whole
            # manifest and the shards merge without collisions.
            index, of = part
            scenarios = partition_scenarios(scenarios, of)[index - 1]
    else:
        from repro.scenario import Scenario

        scenarios = [Scenario.from_dict(job.payload)]
    campaign = Campaign.create(
        store,
        job.name,
        scenarios,
        source=f"job {job.id}",
        exist_ok=True,
    )
    campaign.run(
        jobs=jobs, chunk_size=chunk_size, executor=executor, on_chunk=on_chunk
    )


class WorkerPool:
    """N claim->execute->finish loops over one store's job queue.

    Parameters
    ----------
    store:
        The shared :class:`~repro.store.ResultStore` (jobs, journals
        and results all live in this one file).
    workers:
        Worker thread count.
    jobs:
        :class:`~repro.core.batch.BatchRunner` fan-out *inside* each
        job (``1`` = simulate in the worker thread).
    poll_interval:
        Idle sleep between claim attempts, seconds.
    heartbeat_timeout:
        Claims with heartbeats older than this are considered orphaned
        and requeued (each worker sweeps opportunistically); the pulse
        thread refreshes busy claims at a quarter of this cadence.
    chunk_size, executor:
        Passed through to campaign/study execution.
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 2,
        jobs: int = 1,
        poll_interval: float = 0.5,
        heartbeat_timeout: float = 60.0,
        chunk_size: Optional[int] = None,
        executor: str = "process",
    ):
        if workers < 1:
            raise ConfigError("worker pool needs workers >= 1")
        if jobs < 1:
            raise ConfigError("per-job fan-out needs jobs >= 1")
        if poll_interval <= 0.0:
            raise ConfigError("poll interval must be positive")
        if heartbeat_timeout <= 0.0:
            raise ConfigError("heartbeat timeout must be positive")
        self.store = store
        self.queue = JobQueue(store)
        self.workers = int(workers)
        self.jobs = int(jobs)
        self.poll_interval = float(poll_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.chunk_size = chunk_size
        self.executor = executor
        prefix = f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self._ids = [f"{prefix}/w{i}" for i in range(self.workers)]
        self._threads: List[threading.Thread] = []
        self._pulse: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._requeue_on_stop = threading.Event()
        self._once = False
        self._lock = threading.Lock()
        self._alive: Dict[str, float] = {}
        self._busy: Dict[str, Optional[str]] = {}
        self._lost: Dict[str, bool] = {}
        self._last_sweep = 0.0
        self.processed = 0
        self.failed = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker loops (and the claim pulse)."""
        if self._threads:
            raise ConfigError("worker pool is already started")
        self._stop.clear()
        self._requeue_on_stop.clear()
        for worker_id in self._ids:
            thread = threading.Thread(
                target=self._loop, args=(worker_id,), daemon=True,
                name=f"repro-{worker_id}",
            )
            self._threads.append(thread)
            thread.start()
        self._pulse = threading.Thread(
            target=self._pulse_loop, daemon=True, name="repro-pulse"
        )
        self._pulse.start()

    def stop(
        self,
        drain: bool = True,
        timeout: Optional[float] = DEFAULT_DRAIN_TIMEOUT_S,
    ) -> bool:
        """Stop the pool; returns ``True`` when every worker exited.

        ``drain=True`` lets in-flight jobs run to completion (bounded
        by ``timeout``; whatever is still running after the window is
        requeued at its next chunk boundary instead).  ``drain=False``
        requeues in-flight jobs at the very next boundary.  Queued jobs
        are untouched either way -- they simply wait for the next
        worker.
        """
        self._stop.set()
        if not drain:
            self._requeue_on_stop.set()
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = (
                None if deadline is None else max(deadline - time.monotonic(), 0.0)
            )
            thread.join(timeout=remaining)
        if any(t.is_alive() for t in self._threads):
            # Out of patience: flip the stragglers to requeue-at-boundary.
            self._requeue_on_stop.set()
            for thread in self._threads:
                thread.join(timeout=1.0)
        stopped = not any(t.is_alive() for t in self._threads)
        if stopped:
            self._threads = []
            if self._pulse is not None:
                self._pulse.join(timeout=2.0)
                self._pulse = None
        return stopped

    def run_once(self, requeue_orphans: bool = True) -> int:
        """Drain the queue and return: the cron-style ``--once`` mode.

        Sweeps orphaned claims first, then processes jobs until no
        queued work remains, and stops.  Returns how many jobs this
        call completed (done or failed).
        """
        if requeue_orphans:
            self.queue.requeue_orphans(self.heartbeat_timeout)
        before = self.processed + self.failed
        self._once = True
        try:
            self.start()
            for thread in self._threads:
                thread.join()
            self._stop.set()
            self._threads = []
            if self._pulse is not None:
                self._pulse.join(timeout=2.0)
                self._pulse = None
        finally:
            self._once = False
            self._stop.clear()
        return (self.processed + self.failed) - before

    # -- introspection -----------------------------------------------------------

    def worker_states(self) -> List[dict]:
        """Liveness snapshot: one entry per worker (the metrics feed)."""
        now = time.time()
        with self._lock:
            return [
                {
                    "id": worker_id,
                    "alive": (now - self._alive.get(worker_id, 0.0))
                    < max(4 * self.poll_interval, 5.0)
                    or self._busy.get(worker_id) is not None,
                    "job": self._busy.get(worker_id),
                }
                for worker_id in self._ids
            ]

    # -- loops -------------------------------------------------------------------

    def _loop(self, worker_id: str) -> None:
        while not self._stop.is_set():
            with self._lock:
                self._alive[worker_id] = time.time()
            self._maybe_sweep_orphans()
            job = self.queue.claim(worker_id)
            if job is None:
                if self._once:
                    return
                self._stop.wait(self.poll_interval)
                continue
            self._run_claim(worker_id, job)

    def _run_claim(self, worker_id: str, job: Job) -> None:
        with self._lock:
            self._busy[worker_id] = job.id
            self._lost[worker_id] = False
        if _OBS.metrics_on:
            _BUSY_WORKERS.inc()
        _LOG.info(
            "claimed job",
            extra=log_context(job=job.id, kind=job.kind, worker=worker_id),
        )

        def on_chunk(done: int, total: int) -> None:
            if self._requeue_on_stop.is_set():
                raise DrainRequeue(
                    f"pool stopping; job {job.id} returns to the queue"
                )
            with self._lock:
                if self._lost.get(worker_id):
                    raise JobCancelled(
                        f"job {job.id} claim lost (cancelled or requeued)"
                    )
            self.queue.heartbeat(job.id, worker_id)

        try:
            with span(
                "job.execute", job=job.id, kind=job.kind, worker=worker_id
            ):
                execute_job(
                    self.store,
                    job,
                    jobs=self.jobs,
                    chunk_size=self.chunk_size,
                    executor=self.executor,
                    on_chunk=on_chunk,
                )
            self.queue.finish(job.id, worker_id)
            with self._lock:
                self.processed += 1
            _LOG.info(
                "finished job", extra=log_context(job=job.id, worker=worker_id)
            )
        except JobCancelled:
            # The row is already cancelled (or owned elsewhere).
            _LOG.info(
                "lost claim", extra=log_context(job=job.id, worker=worker_id)
            )
        except DrainRequeue:
            self.queue.requeue(job.id, worker_id)
            _LOG.info(
                "requeued job (drain)",
                extra=log_context(job=job.id, worker=worker_id),
            )
        except ReproError as exc:
            self.queue.fail(job.id, worker_id, str(exc))
            with self._lock:
                self.failed += 1
            _LOG.warning(
                "job failed: %s",
                exc,
                extra=log_context(job=job.id, worker=worker_id),
            )
        except Exception as exc:  # a worker thread must survive anything
            self.queue.fail(job.id, worker_id, f"{type(exc).__name__}: {exc}")
            with self._lock:
                self.failed += 1
            _LOG.warning(
                "job failed: %s: %s",
                type(exc).__name__,
                exc,
                extra=log_context(job=job.id, worker=worker_id),
            )
        finally:
            with self._lock:
                self._busy[worker_id] = None
            if _OBS.metrics_on:
                _BUSY_WORKERS.dec()

    def _maybe_sweep_orphans(self) -> None:
        """Opportunistic orphan requeue, at most twice per timeout."""
        now = time.monotonic()
        with self._lock:
            due = (now - self._last_sweep) >= self.heartbeat_timeout / 2.0
            if due:
                self._last_sweep = now
        if due:
            self.queue.requeue_orphans(self.heartbeat_timeout)

    def _pulse_loop(self) -> None:
        """Refresh every busy claim's heartbeat on a fixed cadence."""
        interval = max(self.heartbeat_timeout / 4.0, 0.05)
        while not self._stop.is_set() or any(
            self._busy.get(w) for w in self._ids
        ):
            with self._lock:
                claims = [
                    (worker_id, job_id)
                    for worker_id, job_id in self._busy.items()
                    if job_id is not None
                ]
            for worker_id, job_id in claims:
                try:
                    self.queue.heartbeat(job_id, worker_id)
                except JobCancelled:
                    with self._lock:
                        self._lost[worker_id] = True
                except ReproError:
                    pass  # transient store contention; next pulse retries
            if self._stop.wait(interval):
                # Stopping: keep pulsing only while claims are in flight.
                if not any(self._busy.get(w) for w in self._ids):
                    return
