"""The durable job queue: simulation work as rows in the result store.

A job is a unit of client-submitted work -- a single scenario, a
scenario manifest (campaign) or a :class:`~repro.core.study.StudySpec`
-- journaled in the ``jobs`` table of the same SQLite file as the
:class:`~repro.store.ResultStore` it will run against.  Sharing the
file is the point: a job's *claim* state (queued/running/...) lives in
the queue, but its *progress* is always derived from the results table
itself, exactly like campaigns and studies.  A worker that dies holding
a job loses nothing but its claim -- the heartbeat-based
:meth:`JobQueue.requeue_orphans` hands the job to the next worker, and
the campaign/study resume machinery underneath re-simulates zero stored
rows.

Lifecycle::

    queued --claim--> running --finish--> done
       ^                 |    \\--fail--> failed
       |                 |     \\-------> cancelled
       +---requeue-------+        (DELETE /v1/jobs/{id}, or a drain)

Claiming is atomic: ``UPDATE ... WHERE status='queued'`` inside a
``BEGIN IMMEDIATE`` transaction, so two workers racing on the same
queue never run the same job.  Heartbeats are conditional the same way
(``WHERE worker=? AND status='running'``), so a worker whose claim was
requeued or cancelled finds out at its next chunk boundary and stops.

Everything validates at submission time: a malformed manifest or spec
raises the library's own :class:`~repro.errors.ConfigError` /
:class:`~repro.errors.DesignError` *before* a row is written, which is
what lets the HTTP layer turn bad payloads into clean 400s.
"""

from __future__ import annotations

import json
import uuid
from dataclasses import dataclass
from datetime import datetime, timezone
from functools import cached_property
from time import time as _wall_clock
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError, DesignError, ReproError
from repro.obs.metrics import metrics as _obs_metrics
from repro.obs.state import STATE as _OBS
from repro.obs.trace import event
from repro.store.db import ResultStore, canonical_json

#: Accepted job kinds, in routing order for payload sniffing.
JOB_KINDS = ("scenario", "campaign", "study")

#: Queue lifecycle telemetry; the matching ``job.*`` events carry ids.
_JOBS_SUBMITTED = _obs_metrics().counter(
    "repro_jobs_submitted_total", "Jobs accepted into the queue", ("kind",)
)
_JOBS_CLAIMED = _obs_metrics().counter(
    "repro_jobs_claimed_total", "Job claims handed to workers"
)
_JOBS_FINISHED = _obs_metrics().counter(
    "repro_jobs_finished_total",
    "Jobs reaching a terminal state",
    ("status",),
)
_JOBS_REQUEUED = _obs_metrics().counter(
    "repro_jobs_requeued_total",
    "Claims returned to the queue",
    ("reason",),
)

#: Every queue state a job row can be in.
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled")

#: Queue states a job can still leave (everything else is terminal).
ACTIVE_STATUSES = ("queued", "running")


class JobCancelled(ReproError):
    """Raised inside a running job when its claim was cancelled or lost.

    Workers raise this from the job-context hook (``on_chunk``) at a
    durable chunk boundary; everything already written through to the
    store stays, so a later resubmission resumes instead of redoing.
    """


def _utc_now() -> datetime:
    return datetime.now(timezone.utc)


def _new_job_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class Job:
    """One decoded job row.

    The payload column stays as stored JSON text until something
    actually reads :attr:`payload`: a status poll on a campaign job
    carries the whole manifest in that column, and decoding it on
    every ``GET /v1/jobs/{id}`` would make polling cost scale with
    manifest size instead of O(1).
    """

    id: str
    kind: str
    name: str
    payload_text: str
    status: str
    priority: int
    owner: str
    worker: Optional[str]
    attempts: int
    error: Optional[str]
    total: int
    submitted_at: str
    submitted_unix: float
    started_unix: Optional[float]
    finished_unix: Optional[float]
    heartbeat_unix: Optional[float]

    @cached_property
    def payload(self) -> dict:
        """The decoded payload (parsed once, on first access)."""
        return json.loads(self.payload_text)

    @property
    def terminal(self) -> bool:
        return self.status not in ACTIVE_STATUSES

    def to_payload(self, include_spec: bool = False) -> dict:
        """JSON-ready view of the row (the API's job document)."""
        doc = {
            "id": self.id,
            "kind": self.kind,
            "name": self.name,
            "status": self.status,
            "priority": self.priority,
            "owner": self.owner,
            "worker": self.worker,
            "attempts": self.attempts,
            "error": self.error,
            "total": self.total,
            "submitted_at": self.submitted_at,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "heartbeat_unix": self.heartbeat_unix,
        }
        if include_spec:
            doc["payload"] = self.payload
        return doc


def _detect_kind(payload: dict) -> str:
    """Infer what a bare (un-enveloped) submission payload describes.

    A manifest carries ``scenarios``, a study spec carries stage names
    (``design``/``surrogate``/``optimizers``/``space``), a scenario
    carries ``config``.  Anything else is a submission error.
    """
    if "scenarios" in payload:
        return "campaign"
    if any(k in payload for k in ("design", "surrogate", "optimizers", "space")):
        return "study"
    if "config" in payload:
        return "scenario"
    raise DesignError(
        "cannot infer the job kind from the payload (no 'scenarios', "
        "study stage names, or 'config'); submit "
        '{"kind": ..., "payload": ...} explicitly'
    )


def job_partition(payload: dict, total: int) -> Optional[Tuple[int, int]]:
    """Decode and validate a payload's ``partition`` request, if any.

    A campaign payload may carry ``{"partition": {"index": I, "of": N}}``
    (``I`` 1-based) to run only its I-th of N disjoint slices -- the
    service-side face of :meth:`~repro.store.Campaign.partition`, so N
    workers with local shards can split one manifest and the shards
    merge afterwards.  Returns ``(index, of)`` or ``None``.
    """
    part = payload.get("partition")
    if part is None:
        return None
    if not isinstance(part, dict) or set(part) != {"index", "of"}:
        raise DesignError(
            'a job partition must be {"index": I, "of": N} (I is 1-based)'
        )
    index, of = part["index"], part["of"]
    for label, value in (("index", index), ("of", of)):
        if not isinstance(value, int) or isinstance(value, bool):
            raise DesignError(f"partition {label!r} must be an integer")
    if not 1 <= of <= total:
        raise DesignError(
            f"cannot split {total} scenario(s) into {of} partition(s)"
        )
    if not 1 <= index <= of:
        raise DesignError(
            f"partition index must be in 1..{of}, got {index}"
        )
    return index, of


def validate_job(
    kind: Optional[str], payload: dict, name: Optional[str] = None
) -> Tuple[str, str, int]:
    """Parse-validate a submission; return ``(kind, job name, total)``.

    Runs the same constructors the worker will run (scenario / manifest
    / spec decoding plus backend-registry resolution), so everything
    that would fail a job at execution time fails the *submission*
    instead -- with the library's own error types and messages.
    """
    from repro.backends import get_backend
    from repro.core.study import StudySpec
    from repro.scenario import Scenario
    from repro.system.stochastic import manifest_scenarios

    if not isinstance(payload, dict):
        raise DesignError(
            f"job payload must be a JSON object, got {type(payload).__name__}"
        )
    if kind is None:
        kind = _detect_kind(payload)
    if kind not in JOB_KINDS:
        raise ConfigError(
            f"unknown job kind {kind!r} (known: {', '.join(JOB_KINDS)})"
        )
    if kind != "campaign" and payload.get("partition") is not None:
        raise DesignError(
            f"only campaign jobs can be partitioned, not {kind} jobs"
        )
    if kind == "campaign":
        scenarios = manifest_scenarios(payload)
        for backend in {s.backend for s in scenarios}:
            get_backend(backend)
        default = (
            f"{payload['family']}-n{payload.get('n', 1)}"
            f"-s{payload.get('seed', 0)}"
            if payload.get("family")
            else ""
        )
        job_name = str(name or payload.get("name") or default)
        total = len(scenarios)
        part = job_partition(payload, total)
        if part is not None:
            from repro.store.campaign import partition_name, partition_slices

            index, of = part
            start, stop = partition_slices(total, of)[index - 1]
            total = stop - start
            if job_name:
                # The journal name always carries the slice, so N
                # partition jobs of one manifest never collide on it.
                job_name = partition_name(job_name, index, of)
        return kind, job_name, total
    if kind == "study":
        spec = StudySpec.from_dict(payload)
        get_backend(spec.backend)
        # n_runs design points + the original-design verification run;
        # the authoritative total comes from the study journal once the
        # design matrix is resolved.
        return kind, str(name or spec.name), spec.n_runs + 1
    scenario = Scenario.from_dict(payload)
    get_backend(scenario.backend)
    return kind, str(name or scenario.name), 1


class JobQueue:
    """The durable queue living inside a result store's database.

    All methods are safe to call from any thread or process pointed at
    the same store file; writes serialise through ``BEGIN IMMEDIATE``
    exactly like the store's own.
    """

    def __init__(self, store: ResultStore):
        self.store = store

    # -- submission --------------------------------------------------------------

    def submit(
        self,
        payload: dict,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        priority: int = 0,
        owner: str = "",
    ) -> Job:
        """Validate and enqueue one job; returns the queued row.

        ``kind`` may be omitted -- manifests, study specs and scenarios
        are structurally distinguishable.  ``name`` overrides the
        journal name the job will run under (default: derived from the
        payload, or ``job-<id>``).
        """
        kind, job_name, total = validate_job(kind, payload, name=name)
        job_id = _new_job_id()
        if not job_name:
            job_name = f"job-{job_id}"
        now = _utc_now()
        conn = self.store._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute(
                "INSERT INTO jobs(id, kind, name, payload, status, priority, "
                "owner, attempts, total, submitted_at, submitted_unix) "
                "VALUES (?, ?, ?, ?, 'queued', ?, ?, 0, ?, ?, ?)",
                (
                    job_id,
                    kind,
                    job_name,
                    canonical_json(payload),
                    int(priority),
                    str(owner),
                    int(total),
                    now.isoformat(),
                    now.timestamp(),
                ),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if _OBS.metrics_on:
            _JOBS_SUBMITTED.inc(kind=kind)
        event("job.submit", job=job_id, kind=kind, name=job_name)
        return self.get(job_id)

    # -- reading -----------------------------------------------------------------

    _COLUMNS = (
        "id, kind, name, payload, status, priority, owner, worker, "
        "attempts, error, total, submitted_at, submitted_unix, "
        "started_unix, finished_unix, heartbeat_unix"
    )

    @staticmethod
    def _row_job(row) -> Job:
        return Job(
            id=row[0],
            kind=row[1],
            name=row[2],
            payload_text=row[3],
            status=row[4],
            priority=int(row[5]),
            owner=row[6],
            worker=row[7],
            attempts=int(row[8]),
            error=row[9],
            total=int(row[10]),
            submitted_at=row[11],
            submitted_unix=float(row[12]),
            started_unix=row[13],
            finished_unix=row[14],
            heartbeat_unix=row[15],
        )

    def get(self, job_id: str) -> Job:
        """The decoded job row, or :class:`ConfigError` if unknown."""
        row = self.store._conn().execute(
            f"SELECT {self._COLUMNS} FROM jobs WHERE id=?", (job_id,)
        ).fetchone()
        if row is None:
            raise ConfigError(f"unknown job {job_id!r} in {self.store.path}")
        return self._row_job(row)

    @staticmethod
    def _job_filters(
        status: Optional[str], kind: Optional[str]
    ) -> Tuple[str, List[object]]:
        """Validated ``WHERE`` clause + params for job listings."""
        if status is not None and status not in JOB_STATUSES:
            raise ConfigError(
                f"unknown job status {status!r} "
                f"(known: {', '.join(JOB_STATUSES)})"
            )
        if kind is not None and kind not in JOB_KINDS:
            raise ConfigError(
                f"unknown job kind {kind!r} (known: {', '.join(JOB_KINDS)})"
            )
        clauses: List[str] = []
        params: List[object] = []
        if status is not None:
            clauses.append("status=?")
            params.append(status)
        if kind is not None:
            clauses.append("kind=?")
            params.append(kind)
        return (" WHERE " + " AND ".join(clauses)) if clauses else "", params

    def jobs(
        self,
        status: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> List[Job]:
        """Job rows, newest submission first, filtered and paginated.

        ``status``/``kind`` filter (AND-combined), ``limit``/``offset``
        page through the filtered listing -- what a coordinator polling
        a busy queue needs instead of the whole table.
        """
        if offset < 0:
            raise ConfigError("job listing offset must be >= 0")
        where, params = self._job_filters(status, kind)
        sql = f"SELECT {self._COLUMNS} FROM jobs{where}"
        sql += " ORDER BY submitted_unix DESC, id"
        if limit is not None or offset:
            # SQLite's OFFSET requires a LIMIT; -1 means "unbounded".
            sql += " LIMIT ? OFFSET ?"
            params.extend([-1 if limit is None else int(limit), int(offset)])
        return [
            self._row_job(row)
            for row in self.store._conn().execute(sql, params)
        ]

    def count(
        self, status: Optional[str] = None, kind: Optional[str] = None
    ) -> int:
        """How many jobs match the given filters (ignoring pagination)."""
        where, params = self._job_filters(status, kind)
        return int(
            self.store._conn().execute(
                f"SELECT COUNT(*) FROM jobs{where}", params
            ).fetchone()[0]
        )

    def counts(self) -> Dict[str, int]:
        """Jobs by status (every status present, zero included)."""
        out = {status: 0 for status in JOB_STATUSES}
        for status, count in self.store._conn().execute(
            "SELECT status, COUNT(*) FROM jobs GROUP BY status"
        ):
            out[status] = int(count)
        return out

    def depth(self) -> int:
        """How many jobs are waiting to be claimed."""
        return self.counts()["queued"]

    # -- claiming ----------------------------------------------------------------

    def claim(self, worker: str) -> Optional[Job]:
        """Atomically move the best queued job to running for ``worker``.

        Highest priority first, then oldest submission.  Returns the
        claimed job, or ``None`` when the queue is empty.  ``BEGIN
        IMMEDIATE`` serialises racing claimers, and the conditional
        ``status='queued'`` guard means at most one of them flips any
        given row.
        """
        if not worker:
            raise ConfigError("worker id must be non-empty")
        now = _wall_clock()
        conn = self.store._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT id FROM jobs WHERE status='queued' "
                "ORDER BY priority DESC, submitted_unix, id LIMIT 1"
            ).fetchone()
            claimed = None
            if row is not None:
                cursor = conn.execute(
                    "UPDATE jobs SET status='running', worker=?, "
                    "attempts=attempts+1, started_unix=?, heartbeat_unix=?, "
                    "error=NULL WHERE id=? AND status='queued'",
                    (worker, now, now, row[0]),
                )
                if cursor.rowcount == 1:
                    claimed = row[0]
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if claimed is None:
            return None
        if _OBS.metrics_on:
            _JOBS_CLAIMED.inc()
        event("job.claim", job=claimed, worker=worker)
        return self.get(claimed)

    def heartbeat(self, job_id: str, worker: str) -> None:
        """Refresh a running claim; raise :class:`JobCancelled` if lost.

        The update is conditional on still *being* the claim holder, so
        a cancelled job (or one requeued from under a stalled worker)
        surfaces here, at the next durable chunk boundary.
        """
        cursor = self._execute_write(
            "UPDATE jobs SET heartbeat_unix=? "
            "WHERE id=? AND worker=? AND status='running'",
            (_wall_clock(), job_id, worker),
        )
        if cursor == 0:
            status = self.get(job_id).status
            raise JobCancelled(
                f"job {job_id} is no longer running as {worker!r} "
                f"(status is now {status!r})"
            )

    # -- completion --------------------------------------------------------------

    def finish(self, job_id: str, worker: str) -> None:
        """Mark a running claim done."""
        self._finish_as(job_id, worker, "done", None)

    def fail(self, job_id: str, worker: str, error: str) -> None:
        """Mark a running claim failed, recording the error detail."""
        self._finish_as(job_id, worker, "failed", str(error))

    def _finish_as(
        self, job_id: str, worker: str, status: str, error: Optional[str]
    ) -> None:
        changed = self._execute_write(
            "UPDATE jobs SET status=?, error=?, finished_unix=? "
            "WHERE id=? AND worker=? AND status='running'",
            (status, error, _wall_clock(), job_id, worker),
        )
        if changed == 0:
            # The claim was cancelled or requeued mid-run; leave the
            # authoritative row alone (its owner already moved on).
            self.get(job_id)  # still raises for a genuinely unknown id
            return
        if _OBS.metrics_on:
            _JOBS_FINISHED.inc(status=status)
        if status == "failed":
            event("job.fail", job=job_id, worker=worker, error=error)
        else:
            event("job.finish", job=job_id, worker=worker)

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job.

        A queued job is terminally cancelled right here.  A running
        job's row flips to ``cancelled`` immediately and its worker
        finds out at the next chunk boundary (its conditional heartbeat
        stops matching); no stored result is lost either way.  A job
        already in a terminal state raises :class:`ConfigError` -- the
        HTTP layer turns that into a 409.
        """
        job = self.get(job_id)
        if job.terminal:
            raise ConfigError(
                f"job {job_id} is already {job.status} and cannot be cancelled"
            )
        changed = self._execute_write(
            "UPDATE jobs SET status='cancelled', finished_unix=? "
            "WHERE id=? AND status IN ('queued', 'running')",
            (_wall_clock(), job_id),
        )
        if changed:
            if _OBS.metrics_on:
                _JOBS_FINISHED.inc(status="cancelled")
            event("job.cancel", job=job_id)
        return self.get(job_id)

    def requeue(self, job_id: str, worker: str) -> None:
        """Return a running claim to the queue (graceful drain path)."""
        changed = self._execute_write(
            "UPDATE jobs SET status='queued', worker=NULL, started_unix=NULL, "
            "heartbeat_unix=NULL WHERE id=? AND worker=? AND status='running'",
            (job_id, worker),
        )
        if changed:
            if _OBS.metrics_on:
                _JOBS_REQUEUED.inc(reason="drain")
            event("job.requeue", job=job_id, worker=worker, reason="drain")

    def requeue_orphans(self, timeout_s: float) -> int:
        """Requeue running jobs whose heartbeat went silent.

        A worker SIGKILLed mid-job never updates its heartbeat again;
        once it is ``timeout_s`` stale the claim is released and the
        next claimer resumes the job -- the store still holds every
        chunk the dead worker finished, so nothing is re-simulated.
        Returns how many jobs were requeued.
        """
        if timeout_s <= 0.0:
            raise ConfigError("heartbeat timeout must be positive")
        requeued = self._execute_write(
            "UPDATE jobs SET status='queued', worker=NULL, started_unix=NULL, "
            "heartbeat_unix=NULL WHERE status='running' AND heartbeat_unix < ?",
            (_wall_clock() - float(timeout_s),),
        )
        if requeued:
            if _OBS.metrics_on:
                _JOBS_REQUEUED.inc(requeued, reason="orphan")
            event("job.requeue", n=requeued, reason="orphan")
        return requeued

    def _execute_write(self, sql: str, params) -> int:
        conn = self.store._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            cursor = conn.execute(sql, params)
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return cursor.rowcount

    # -- progress and results ----------------------------------------------------

    def progress(self, job: Job) -> Tuple[int, int]:
        """(done, total) simulation counts straight from the store.

        For campaign/scenario jobs: stored rows among the journaled
        campaign's keys.  For studies: the study journal's key list.
        Before the worker journals anything, the submission-time total
        estimate stands with zero done -- the counts never go backwards
        because the results table only grows.
        """
        if job.kind == "study":
            row = self.store.get_study(job.name)
            if row is not None:
                return row.done(self.store), row.total
            return 0, job.total
        keys = self._campaign_keys(job.name)
        if keys:
            return self.store.count_keys(list(dict.fromkeys(keys))), len(keys)
        return 0, job.total

    def _campaign_keys(self, name: str) -> List[str]:
        return [
            row[0]
            for row in self.store._conn().execute(
                "SELECT key FROM campaign_scenarios WHERE campaign=? "
                "ORDER BY idx",
                (name,),
            )
        ]

    def result_entries(
        self, job: Job, offset: int = 0, limit: int = 100, raw: bool = False
    ) -> Tuple[int, List[dict]]:
        """One page of the job's canonical result payloads.

        Returns ``(total entry count, entries)``; each entry carries the
        journal index, scenario name (design-point index for studies),
        content key, and the *parsed* canonical payload (``None`` while
        pending).  Serialising an entry back with
        :func:`~repro.store.db.canonical_json` reproduces the stored
        row's exact bytes -- the byte-identity contract the tests pin.

        ``raw=True`` swaps the payload for the full
        :data:`~repro.store.db.RESULT_COLUMNS` row (``"row"``, a list;
        again ``None`` while pending): the exact canonical bytes *and*
        provenance columns, so a remote coordinator can feed pages
        straight into :meth:`~repro.store.db.ResultStore.put_raw` and
        an HTTP-fetched merge is byte-identical to a file-level one.
        """
        if offset < 0 or limit < 1:
            raise ConfigError("results page needs offset >= 0 and limit >= 1")
        if job.kind == "study":
            row = self.store.get_study(job.name)
            keys = [] if row is None else list(row.keys)
            names = [f"point-{i}" for i in range(len(keys))]
        else:
            pairs = [
                (row[0], row[1])
                for row in self.store._conn().execute(
                    "SELECT key, scenario FROM campaign_scenarios "
                    "WHERE campaign=? ORDER BY idx",
                    (job.name,),
                )
            ]
            keys = [key for key, _ in pairs]
            names = [
                json.loads(doc).get("name") or "" for _, doc in pairs
            ]
        entries = []
        for index in range(offset, min(offset + limit, len(keys))):
            entry = {
                "index": index,
                "name": names[index],
                "key": keys[index],
            }
            if raw:
                stored = self.store.get_raw(keys[index])
                entry["row"] = None if stored is None else list(stored)
            else:
                text = self.store.get_payload_text(keys[index])
                entry["result"] = None if text is None else json.loads(text)
            entries.append(entry)
        return len(keys), entries
