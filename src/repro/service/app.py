"""The simulation service's JSON API.

:class:`ServiceApp` maps HTTP requests onto one
:class:`~repro.service.jobs.JobQueue` (and, for liveness reporting, the
:class:`~repro.service.worker.WorkerPool` draining it):

====== ============================ ==========================================
Method Path                         Meaning
====== ============================ ==========================================
POST   ``/v1/jobs``                 submit a scenario / manifest / study spec
GET    ``/v1/jobs``                 list jobs (``status/kind/limit/offset``)
GET    ``/v1/jobs/{id}``            claim state + progress from the store
GET    ``/v1/jobs/{id}/results``    canonical payload page (``offset/limit``;
                                    ``raw=1`` serves full store rows)
DELETE ``/v1/jobs/{id}``            cancel (409 once terminal)
GET    ``/v1/healthz``              cheap liveness probe (never auth-gated)
GET    ``/v1/metrics``              queue depths, workers, store, requests
====== ============================ ==========================================

Error contract: anything wrong with a *submission* -- invalid JSON, an
oversized body, a malformed manifest or spec, an unknown backend --
surfaces as HTTP 400 carrying the library's own
:class:`~repro.errors.ConfigError`/:class:`~repro.errors.DesignError`
message, never as a 500; unknown jobs are 404s; cancelling a finished
job is a 409; rate-limited requests are 429s with ``Retry-After``.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

import repro
import repro.obs as obs
from repro.errors import ReproError
from repro.obs.metrics import metrics as _obs_metrics, render_prometheus
from repro.obs.state import STATE as _OBS
from repro.obs.trace import span
from repro.service.http import (
    RateLimiter,
    Request,
    Response,
    TokenAuth,
    error_response,
)
from repro.service.jobs import JOB_KINDS, JobQueue
from repro.store.db import ResultStore

#: Result-page size cap: keeps one response bounded however large the job.
MAX_PAGE_LIMIT = 500

#: How long a cached ``store.stats()`` snapshot serves /v1/metrics
#: before the next scrape recomputes it (a full-store scan otherwise).
DEFAULT_STATS_TTL_S = 5.0

#: Content type the Prometheus text exposition format specifies.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Request telemetry (the registry mirror of the JSON request counters)
#: and the scrape-time gauges for queue depth, workers and store size.
_HTTP_REQUESTS = _obs_metrics().counter(
    "repro_http_requests_total",
    "HTTP requests served, by method and response status",
    ("method", "status"),
)
_HTTP_SECONDS = _obs_metrics().histogram(
    "repro_http_request_seconds",
    "HTTP request handling latency",
    ("method",),
)
_QUEUE_JOBS = _obs_metrics().gauge(
    "repro_queue_jobs", "Jobs in the queue, by status", ("status",)
)
_WORKERS_ALIVE = _obs_metrics().gauge(
    "repro_workers_alive", "Worker threads alive in the attached pool"
)
_STORE_RESULTS = _obs_metrics().gauge(
    "repro_store_results", "Result rows in the store (cached scan)"
)


class _HTTPError(Exception):
    """Internal routing signal: becomes an error response, not a 500."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServiceApp:
    """Routes + middleware over one store's job queue.

    Parameters
    ----------
    store:
        The shared result store (jobs, journals, results).
    pool:
        Optional :class:`~repro.service.worker.WorkerPool`, used only
        for liveness in ``/v1/healthz`` and ``/v1/metrics`` (the API
        works fine with external ``--once`` cron workers instead).
    tokens:
        Bearer tokens; empty means an open (unauthenticated) service.
    rate, burst:
        Token-bucket rate limit per caller (``rate <= 0`` disables).
    stats_ttl:
        Seconds a cached ``store.stats()`` snapshot keeps serving
        ``/v1/metrics`` before a scrape recomputes it (``0`` scans
        every scrape); the response reports the staleness as
        ``store.stats_age_s``.
    telemetry:
        Switch the process-wide metrics registry on (the default: a
        service without counters has nothing to export).  Pass
        ``False`` to leave the global telemetry state alone.
    """

    def __init__(
        self,
        store: ResultStore,
        pool=None,
        tokens: Tuple[str, ...] = (),
        rate: float = 0.0,
        burst: Optional[int] = None,
        verbose: bool = False,
        stats_ttl: float = DEFAULT_STATS_TTL_S,
        telemetry: bool = True,
    ):
        self.store = store
        self.queue = JobQueue(store)
        self.pool = pool
        self.auth = TokenAuth(tuple(tokens))
        self.limiter = RateLimiter(rate=rate, burst=burst)
        self.middleware = (self.auth, self.limiter)
        self.verbose = verbose
        self.stats_ttl = float(stats_ttl)
        if telemetry:
            obs.configure(metrics=True)
        self._lock = threading.Lock()
        self._requests_total = 0
        self._requests_by_status: Dict[str, int] = {}
        self._stats_cache: Optional[tuple] = None

    # -- dispatch ----------------------------------------------------------------

    def dispatch(self, request: Request) -> Response:
        """Middleware chain -> route -> error mapping.  Never raises."""
        if request.method == "HEAD":
            # HEAD is GET without the body; the HTTP handler suppresses
            # the bytes, so routing can treat the two identically.
            from dataclasses import replace

            request = replace(request, method="GET")
        started = time.perf_counter()
        with span(
            "http.request", method=request.method, path=request.path
        ) as request_span:
            try:
                response = self._dispatch_inner(request)
            except _HTTPError as exc:
                response = error_response(exc.status, str(exc))
            except ReproError as exc:
                # The library's own validation errors are the client's
                # fault by definition: 400 with the real message.
                response = error_response(400, str(exc))
            except Exception as exc:  # noqa: BLE001 -- last-resort boundary
                response = error_response(
                    500, f"internal error: {type(exc).__name__}: {exc}"
                )
            request_span.annotate(status=response.status)
        with self._lock:
            self._requests_total += 1
            key = str(response.status)
            self._requests_by_status[key] = (
                self._requests_by_status.get(key, 0) + 1
            )
        if _OBS.metrics_on:
            _HTTP_REQUESTS.inc(
                method=request.method, status=str(response.status)
            )
            _HTTP_SECONDS.observe(
                time.perf_counter() - started, method=request.method
            )
        return response

    def _dispatch_inner(self, request: Request) -> Response:
        if request.method == "GET" and request.path == "/v1/healthz":
            return self._healthz()  # probes bypass auth and rate limits
        for middleware in self.middleware:
            refused = middleware(request)
            if refused is not None:
                return refused
        parts = [p for p in request.path.split("/") if p]
        if len(parts) < 2 or parts[0] != "v1":
            raise _HTTPError(404, f"no such path {request.path!r}")
        if parts[1] == "metrics" and len(parts) == 2:
            self._require(request, "GET")
            return self._metrics(request)
        if parts[1] == "jobs":
            if len(parts) == 2:
                if request.method == "POST":
                    return self._submit(request)
                self._require(request, "GET")
                return self._list_jobs(request)
            if len(parts) == 3:
                if request.method == "DELETE":
                    return self._cancel(parts[2])
                self._require(request, "GET")
                return self._job_status(parts[2])
            if len(parts) == 4 and parts[3] == "results":
                self._require(request, "GET")
                return self._job_results(request, parts[2])
        raise _HTTPError(404, f"no such path {request.path!r}")

    @staticmethod
    def _require(request: Request, method: str) -> None:
        if request.method != method:
            raise _HTTPError(
                405, f"{request.method} is not supported on {request.path}"
            )

    # -- handlers ----------------------------------------------------------------

    def _submit(self, request: Request) -> Response:
        try:
            body = request.json()
        except ValueError as exc:
            raise _HTTPError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        # Enveloped ({"kind", "payload", ...}) or bare (the payload
        # itself -- manifests, specs and scenarios are sniffable).
        if "payload" in body:
            payload = body["payload"]
            kind = body.get("kind")
            name = body.get("name")
            priority = body.get("priority", 0)
            # Envelope sugar for partitioned campaigns: {"partitions":
            # N, "partition": I} folds into the payload's partition
            # object (validated, like everything else, in validate_job).
            partitions = body.get("partitions")
            part_index = body.get("partition")
            if partitions is not None or part_index is not None:
                if partitions is None or part_index is None:
                    raise _HTTPError(
                        400,
                        "partitioned submissions need both 'partitions' "
                        "(N) and 'partition' (1-based index)",
                    )
                if not isinstance(payload, dict):
                    raise _HTTPError(400, "job payload must be a JSON object")
                payload = dict(payload)
                payload["partition"] = {"index": part_index, "of": partitions}
        else:
            payload, kind, name, priority = body, body.pop("kind", None), None, 0
        if kind is not None and kind not in JOB_KINDS:
            raise _HTTPError(
                400,
                f"unknown job kind {kind!r} (known: {', '.join(JOB_KINDS)})",
            )
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise _HTTPError(400, "job priority must be an integer")
        if name is not None and not isinstance(name, str):
            raise _HTTPError(400, "job name must be a string")
        if not isinstance(payload, dict):
            raise _HTTPError(400, "job payload must be a JSON object")
        job = self.queue.submit(
            payload,
            kind=kind,
            name=name,
            priority=priority,
            owner=request.token() or request.client,
        )
        doc = job.to_payload()
        doc["url"] = f"/v1/jobs/{job.id}"
        return Response(201, doc, headers={"Location": doc["url"]})

    def _list_jobs(self, request: Request) -> Response:
        status = request.query.get("status")
        kind = request.query.get("kind")
        limit = self._int_param(request, "limit", default=100, minimum=1)
        offset = self._int_param(request, "offset", default=0, minimum=0)
        jobs = self.queue.jobs(
            status=status, kind=kind, limit=limit, offset=offset
        )
        return Response(
            200,
            {
                "count": len(jobs),
                "total": self.queue.count(status=status, kind=kind),
                "offset": offset,
                "jobs": [job.to_payload() for job in jobs],
            },
        )

    def _job_status(self, job_id: str) -> Response:
        job = self._get_job(job_id)
        done, total = self.queue.progress(job)
        doc = job.to_payload()
        doc.update(done=done, total=total)
        return Response(200, doc)

    def _job_results(self, request: Request, job_id: str) -> Response:
        job = self._get_job(job_id)
        offset = self._int_param(request, "offset", default=0, minimum=0)
        limit = self._int_param(request, "limit", default=100, minimum=1)
        limit = min(limit, MAX_PAGE_LIMIT)
        raw = request.query.get("raw", "") not in ("", "0", "false")
        count, entries = self.queue.result_entries(
            job, offset=offset, limit=limit, raw=raw
        )
        return Response(
            200,
            {
                "job": job.id,
                "status": job.status,
                "count": count,
                "offset": offset,
                "limit": limit,
                "raw": raw,
                "results": entries,
            },
            canonical=True,  # embedded payloads keep their stored bytes
        )

    def _cancel(self, job_id: str) -> Response:
        job = self._get_job(job_id)
        if job.terminal:
            raise _HTTPError(
                409, f"job {job.id} is already {job.status}"
            )
        return Response(200, self.queue.cancel(job.id).to_payload())

    def _healthz(self) -> Response:
        doc = {
            "status": "ok",
            "version": repro.__version__,
            "store": str(self.store.path),
        }
        if self.pool is not None:
            states = self.pool.worker_states()
            doc["workers"] = {
                "configured": len(states),
                "alive": sum(1 for s in states if s["alive"]),
            }
        return Response(200, doc)

    def _store_snapshot(self) -> tuple:
        """``(stats, n_studies, refreshed_monotonic)``, TTL-cached.

        ``store.stats()`` walks the whole results table; serving scrapes
        from a bounded-staleness cache keeps tight scrape intervals from
        turning into repeated full-store scans.
        """
        now = time.monotonic()
        with self._lock:
            cached = self._stats_cache
        if cached is not None and now - cached[2] < self.stats_ttl:
            return cached
        entry = (
            self.store.stats(),
            len(self.store.study_names()),
            time.monotonic(),
        )
        with self._lock:
            self._stats_cache = entry
        return entry

    def _metrics(self, request: Request) -> Response:
        stats, n_studies, refreshed = self._store_snapshot()
        counts = self.queue.counts()
        states = None if self.pool is None else self.pool.worker_states()
        if _OBS.metrics_on:
            # Scrape-time gauges: the Prometheus view of queue depth,
            # worker liveness and store size comes from the registry.
            for status, count in counts.items():
                _QUEUE_JOBS.set(count, status=status)
            if states is not None:
                _WORKERS_ALIVE.set(sum(1 for s in states if s["alive"]))
            _STORE_RESULTS.set(stats.n_results)
        if self._wants_prometheus(request):
            return Response(
                200,
                render_prometheus(_obs_metrics().snapshot()),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        with self._lock:
            requests = {
                "total": self._requests_total,
                "by_status": dict(self._requests_by_status),
                "rate_limited": self.limiter.rejected,
            }
        doc = {
            "jobs": counts,
            "store": {
                "results": stats.n_results,
                "campaigns": stats.n_campaigns,
                "studies": n_studies,
                "payload_bytes": stats.payload_bytes,
                "file_bytes": stats.file_bytes,
                "wall_time_banked_s": stats.total_wall_time_s,
                "stats_age_s": round(time.monotonic() - refreshed, 3),
            },
            "requests": requests,
            "workers": states,
        }
        return Response(200, doc)

    @staticmethod
    def _wants_prometheus(request: Request) -> bool:
        """Content negotiation: ``?format=prometheus`` or text/plain."""
        explicit = request.query.get("format")
        if explicit is not None:
            if explicit not in ("json", "prometheus"):
                raise _HTTPError(
                    400,
                    f"unknown metrics format {explicit!r} "
                    f"(known: json, prometheus)",
                )
            return explicit == "prometheus"
        accept = request.headers.get("accept", "")
        return "text/plain" in accept and "application/json" not in accept

    # -- helpers -----------------------------------------------------------------

    def _get_job(self, job_id: str):
        from repro.errors import ConfigError

        try:
            return self.queue.get(job_id)
        except ConfigError as exc:
            raise _HTTPError(404, str(exc)) from exc

    @staticmethod
    def _int_param(
        request: Request, name: str, default: int, minimum: int
    ) -> int:
        raw = request.query.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise _HTTPError(400, f"query parameter {name!r} must be an integer")
        if value < minimum:
            raise _HTTPError(400, f"query parameter {name!r} must be >= {minimum}")
        return value
