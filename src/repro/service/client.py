"""Zero-dependency HTTP client for the simulation service.

:class:`ServiceClient` speaks the ``/v1`` JSON API of one
``repro-wsn serve`` process using nothing but :mod:`urllib` -- the same
stdlib-only constraint as the rest of the library.  It is the network
face the distributed coordinator (:mod:`repro.coord`) builds on, so the
transport policy lives here, once:

- every request carries a **timeout** (a hung worker must not hang the
  coordinator);
- connection errors and 5xx responses retry with **capped exponential
  backoff** (an overloaded or restarting worker gets a few chances
  before the caller has to care);
- a 429 honours the server's ``Retry-After`` header instead of the
  backoff schedule (the rate limiter already computed when a token
  frees up);
- any other 4xx raises :class:`ServiceError` immediately -- client
  mistakes do not retry.

Exhausted retries raise :class:`ServiceUnavailable`, the signal the
coordinator's per-worker circuit breaker consumes.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple
from urllib import error as _urlerror
from urllib import parse as _urlparse
from urllib import request as _urlrequest

from repro.errors import ConfigError, ReproError
from repro.obs.logging import get_logger
from repro.obs.metrics import metrics as _obs_metrics
from repro.obs.state import STATE as _OBS

#: Per-request socket timeout (connect + read), seconds.
DEFAULT_TIMEOUT_S = 10.0

#: Retries after the first attempt for retryable failures.
DEFAULT_RETRIES = 3

#: First backoff delay; doubles per retry up to the cap.
DEFAULT_BACKOFF_S = 0.25
DEFAULT_MAX_BACKOFF_S = 4.0

#: A server-sent ``Retry-After`` is honoured only up to this long.
MAX_RETRY_AFTER_S = 30.0

_LOG = get_logger("repro.service.client")

_CLIENT_RETRIES = _obs_metrics().counter(
    "repro_client_retries_total",
    "Service-client request retries, by reason",
    ("reason",),
)


class ServiceError(ReproError):
    """An error response (4xx/5xx) from the simulation service.

    ``status`` is the HTTP status code (0 when the failure never got an
    HTTP response at all).
    """

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = int(status)


class ServiceUnavailable(ServiceError):
    """The service stayed unreachable through every retry.

    Raised for connection failures, timeouts and persistent 5xx -- the
    cases that mean "this worker, right now, cannot serve", which is
    exactly what a coordinator's circuit breaker wants to count.
    """


def _retry_after_seconds(headers) -> Optional[float]:
    """The ``Retry-After`` delay a response asks for, if parseable."""
    raw = headers.get("Retry-After") if headers is not None else None
    if raw is None:
        return None
    try:
        return min(max(float(raw), 0.0), MAX_RETRY_AFTER_S)
    except ValueError:
        return None


class ServiceClient:
    """One worker endpoint, with timeouts, retries and backoff built in.

    Parameters
    ----------
    base_url:
        The service root, e.g. ``http://127.0.0.1:8080`` (anything
        ``repro-wsn serve`` printed).  A trailing slash is fine.
    token:
        Bearer token presented on every request (``--token`` services).
    timeout_s:
        Socket timeout per request.
    retries:
        How many times a retryable failure (connection error, timeout,
        5xx, 429) is retried before :class:`ServiceUnavailable`.
        ``0`` fails fast -- what the coordinator uses, since it owns
        failure handling at the partition level.
    backoff_s / max_backoff_s:
        Exponential backoff schedule between retries
        (``backoff_s * 2**attempt``, capped).
    sleep:
        Injection point for the tests; defaults to :func:`time.sleep`.
    """

    def __init__(
        self,
        base_url: str,
        token: Optional[str] = None,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        retries: int = DEFAULT_RETRIES,
        backoff_s: float = DEFAULT_BACKOFF_S,
        max_backoff_s: float = DEFAULT_MAX_BACKOFF_S,
        sleep: Callable[[float], None] = time.sleep,
    ):
        base = str(base_url).strip()
        if not base.startswith(("http://", "https://")):
            raise ConfigError(
                f"worker base URL must start with http:// or https://, "
                f"got {base_url!r}"
            )
        if retries < 0:
            raise ConfigError("client retries must be >= 0")
        if timeout_s <= 0:
            raise ConfigError("client timeout must be positive")
        self.base_url = base.rstrip("/")
        self.token = token
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self._sleep = sleep

    def __repr__(self) -> str:
        return f"ServiceClient({self.base_url!r})"

    # -- transport ---------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        query: Optional[Dict[str, object]] = None,
    ) -> dict:
        """One API call with the full retry/backoff/Retry-After policy.

        Returns the parsed JSON document of a 2xx response.  Raises
        :class:`ServiceError` for non-retryable error responses and
        :class:`ServiceUnavailable` when every attempt failed
        retryably.
        """
        url = self.base_url + path
        if query:
            pairs = [(k, v) for k, v in query.items() if v is not None]
            if pairs:
                url += "?" + _urlparse.urlencode(pairs)
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        last_error = "no attempt made"
        last_status = 0
        for attempt in range(self.retries + 1):
            if attempt:
                if _OBS.metrics_on:
                    _CLIENT_RETRIES.inc(
                        reason="http" if last_status else "connection"
                    )
                _LOG.debug(
                    "retrying %s %s (attempt %d/%d): %s",
                    method, url, attempt + 1, self.retries + 1, last_error,
                )
            wait: Optional[float] = None
            try:
                req = _urlrequest.Request(
                    url, data=body, headers=headers, method=method
                )
                with _urlrequest.urlopen(req, timeout=self.timeout_s) as resp:
                    return self._decode(resp.read())
            except _urlerror.HTTPError as exc:
                detail = b""
                try:
                    detail = exc.read()
                except OSError:
                    pass
                message = self._error_message(detail, exc.code, url)
                if exc.code == 429:
                    wait = _retry_after_seconds(exc.headers)
                elif exc.code < 500:
                    raise ServiceError(message, status=exc.code) from exc
                last_error, last_status = message, exc.code
            except OSError as exc:  # URLError, timeouts, refused connects
                reason = getattr(exc, "reason", exc)
                last_error = f"cannot reach {url}: {reason}"
                last_status = 0
            if attempt < self.retries:
                if wait is None:
                    wait = min(
                        self.backoff_s * (2.0 ** attempt), self.max_backoff_s
                    )
                if wait > 0:
                    self._sleep(wait)
        raise ServiceUnavailable(
            f"{method} {url} failed after {self.retries + 1} attempt(s): "
            f"{last_error}",
            status=last_status,
        )

    @staticmethod
    def _decode(raw: bytes) -> dict:
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(
                f"service returned a non-JSON response: {exc}"
            ) from exc

    @staticmethod
    def _error_message(detail: bytes, status: int, url: str) -> str:
        try:
            doc = json.loads(detail.decode("utf-8"))
            message = doc.get("error") or detail.decode("utf-8")
        except (UnicodeDecodeError, ValueError, AttributeError):
            message = detail.decode("utf-8", "replace") or "no detail"
        return f"{url} answered HTTP {status}: {message}"

    # -- API surface -------------------------------------------------------------

    def healthz(self) -> dict:
        """``GET /v1/healthz``."""
        return self.request("GET", "/v1/healthz")

    def metrics(self) -> dict:
        """``GET /v1/metrics`` (JSON form)."""
        return self.request("GET", "/v1/metrics", query={"format": "json"})

    def submit(
        self,
        payload: dict,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        priority: int = 0,
        partition: Optional[Tuple[int, int]] = None,
    ) -> dict:
        """``POST /v1/jobs``: enqueue one job, returning its document.

        ``partition=(index, of)`` uses the envelope sugar to run only
        the ``index``-th of ``of`` slices of a campaign manifest.
        """
        body: Dict[str, object] = {"payload": payload}
        if kind is not None:
            body["kind"] = kind
        if name is not None:
            body["name"] = name
        if priority:
            body["priority"] = int(priority)
        if partition is not None:
            index, of = partition
            body["partition"] = int(index)
            body["partitions"] = int(of)
        return self.request("POST", "/v1/jobs", payload=body)

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/{id}``: claim state plus store-derived progress."""
        return self.request("GET", f"/v1/jobs/{job_id}")

    def jobs(
        self,
        status: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
        offset: Optional[int] = None,
    ) -> dict:
        """``GET /v1/jobs`` with the filter/pagination parameters."""
        return self.request(
            "GET",
            "/v1/jobs",
            query={
                "status": status,
                "kind": kind,
                "limit": limit,
                "offset": offset,
            },
        )

    def find_job(
        self, name: str, kind: Optional[str] = None, page_size: int = 100
    ) -> Optional[dict]:
        """The newest job named ``name``, or ``None``.

        Pages through the (newest-first) listing, so a resumed
        coordinator can rediscover the job it submitted before dying
        instead of submitting a duplicate.
        """
        offset = 0
        while True:
            page = self.jobs(kind=kind, limit=page_size, offset=offset)
            for doc in page.get("jobs", []):
                if doc.get("name") == name:
                    return doc
            offset += len(page.get("jobs", []))
            if offset >= int(page.get("total", 0)) or not page.get("jobs"):
                return None

    def results(
        self,
        job_id: str,
        offset: int = 0,
        limit: int = 100,
        raw: bool = False,
    ) -> dict:
        """``GET /v1/jobs/{id}/results``: one page of result entries."""
        query: Dict[str, object] = {"offset": offset, "limit": limit}
        if raw:
            query["raw"] = 1
        return self.request("GET", f"/v1/jobs/{job_id}/results", query=query)

    def iter_results(
        self, job_id: str, page_size: int = 200, raw: bool = False
    ) -> Iterator[dict]:
        """Stream every result entry of a job, page by page."""
        offset = 0
        while True:
            page = self.results(
                job_id, offset=offset, limit=page_size, raw=raw
            )
            entries: List[dict] = page.get("results", [])
            for entry in entries:
                yield entry
            offset += len(entries)
            if offset >= int(page.get("count", 0)) or not entries:
                return

    def cancel(self, job_id: str) -> dict:
        """``DELETE /v1/jobs/{id}``: cancel a queued or running job."""
        return self.request("DELETE", f"/v1/jobs/{job_id}")
