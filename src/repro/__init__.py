"""repro: reproduction of "Response-surface-based design space exploration
and optimisation of wireless sensor nodes with tunable energy harvesters"
(Wang et al., DATE 2012).

The library has three layers:

1. **Simulation substrates** -- an event-driven mixed-signal kernel
   (:mod:`repro.sim`), a nonlinear analogue circuit solver
   (:mod:`repro.analog`) and physical-domain models
   (:mod:`repro.mech`, :mod:`repro.harvester`).
2. **System model** -- the complete harvester-powered wireless sensor node
   (:mod:`repro.digital`, :mod:`repro.node`, :mod:`repro.control`,
   :mod:`repro.system`), runnable either as a detailed co-simulation or as
   the fast envelope model used for hour-long runs.
3. **Methodology** -- response-surface modelling (:mod:`repro.rsm`), design
   of experiments (:mod:`repro.doe`), global optimisers
   (:mod:`repro.optimize`) and the end-to-end design-space-exploration
   workflow (:mod:`repro.core`), which is the paper's contribution.

The curated public surface lives at the package root and is imported
lazily (``import repro`` stays cheap)::

    import repro

    result = repro.run(repro.Scenario(horizon=600.0, seed=1))
    batch = repro.BatchRunner(jobs=4).run(
        [repro.named_scenario(n) for n in repro.scenario_names()]
    )

    # Stochastic environments: a family expands into seeded scenarios.
    family = repro.named_family("factory-floor")
    results = repro.BatchRunner(jobs=4).run_family(family, n=20, seed=0)

    # Persistence: attach a content-addressed store and results survive
    # the process; campaigns resume instead of re-simulating.
    store = repro.ResultStore("results.db")
    camp = repro.Campaign.create(store, "floor", family.expand(40, seed=0))
    camp.run(jobs=4)

    # Declarative studies: the whole DoE -> surrogate -> optimise ->
    # verify pipeline as one serialisable, resumable value.
    spec = repro.named_study("paper")
    outcome = repro.Study(spec, store=store).run()   # kill it halfway...
    outcome = repro.Study.resume(store, "paper")     # ...zero re-simulation

    # Simulation as a service: a durable job queue in the same store,
    # drained by a worker pool, fronted by a stdlib HTTP JSON API
    # (``repro-wsn serve``).
    queue = repro.JobQueue(store)
    job = queue.submit(family.manifest(n=40, seed=0))
    repro.WorkerPool(store, workers=4).run_once()

    # Distributed campaigns: fan partitions out to remote serve
    # processes, stream-merging results back as partitions finish
    # (``repro-wsn coord run``).
    coord = repro.Coordinator(store, family.manifest(n=40, seed=0),
                              ["http://worker-a:8080", "http://worker-b:8080"])
    coord.run()                          # kill it; resume() re-fetches nothing merged
"""

import importlib
from typing import List

__version__ = "1.10.0"

#: Public name -> defining module.  Resolved on first attribute access so
#: ``import repro`` pulls in nothing beyond this file.
_EXPORTS = {
    # scenarios (repro.scenario)
    "Scenario": "repro.scenario",
    "PartsSpec": "repro.scenario",
    "SCENARIO_LIBRARY": "repro.scenario",
    "named_scenario": "repro.scenario",
    "scenario_names": "repro.scenario",
    # stochastic environments and families (repro.system.stochastic)
    "EnvironmentState": "repro.system.stochastic",
    "RegimeSwitchingVibration": "repro.system.stochastic",
    "ScenarioFamily": "repro.system.stochastic",
    "StochasticFamily": "repro.system.stochastic",
    "FixedFamily": "repro.system.stochastic",
    "FAMILY_LIBRARY": "repro.system.stochastic",
    "named_family": "repro.system.stochastic",
    "family_names": "repro.system.stochastic",
    "manifest_scenarios": "repro.system.stochastic",
    # backends (repro.backends)
    "Backend": "repro.backends",
    "run": "repro.backends",
    "run_batch": "repro.backends",
    "supports_batch": "repro.backends",
    "run_conformance": "repro.backends",
    "register_backend": "repro.backends",
    "get_backend": "repro.backends",
    "backend_names": "repro.backends",
    # batch execution (repro.core.batch)
    "BatchRunner": "repro.core.batch",
    # persistence (repro.store)
    "ResultStore": "repro.store",
    "ShardedResultStore": "repro.store",
    "StoredResult": "repro.store",
    "StoreStats": "repro.store",
    "Campaign": "repro.store",
    "CampaignPartition": "repro.store",
    "CampaignStatus": "repro.store",
    "campaign_names": "repro.store",
    "campaign_statuses": "repro.store",
    "open_store": "repro.store",
    "merge_stores": "repro.store",
    "sync_stores": "repro.store",
    "MergeReport": "repro.store",
    # system model (repro.system)
    "SystemConfig": "repro.system.config",
    "ORIGINAL_DESIGN": "repro.system.config",
    "paper_parameter_space": "repro.system.config",
    "SystemResult": "repro.system.result",
    "EnergyBreakdown": "repro.system.result",
    "VibrationProfile": "repro.system.vibration",
    "SystemParts": "repro.system.components",
    "paper_system": "repro.system.components",
    # stage registries (repro.doe / repro.rsm / repro.optimize)
    "register_design": "repro.doe.registry",
    "get_design": "repro.doe.registry",
    "design_names": "repro.doe.registry",
    "register_surrogate": "repro.rsm.registry",
    "get_surrogate": "repro.rsm.registry",
    "surrogate_names": "repro.rsm.registry",
    "register_optimizer": "repro.optimize.registry",
    "get_optimizer": "repro.optimize.registry",
    "optimizer_names": "repro.optimize.registry",
    # declarative studies (repro.core.study)
    "StudySpec": "repro.core.study",
    "Study": "repro.core.study",
    "StudyStatus": "repro.core.study",
    "STUDY_LIBRARY": "repro.core.study",
    "named_study": "repro.core.study",
    "paper_study_spec": "repro.core.study",
    "study_names": "repro.core.study",
    "study_status": "repro.core.study",
    "study_statuses": "repro.core.study",
    # methodology (repro.core)
    "DesignSpaceExplorer": "repro.core.explorer",
    "ExplorationOutcome": "repro.core.explorer",
    "SimulationObjective": "repro.core.objective",
    "metric_names": "repro.core.objective",
    "monte_carlo": "repro.core.montecarlo",
    "EnvironmentModel": "repro.core.montecarlo",
    "EnvironmentFamily": "repro.core.montecarlo",
    "robustness_study": "repro.core.sensitivity",
    "perturbation_family": "repro.core.sensitivity",
    "paper_objective": "repro.core.paper",
    "paper_explorer": "repro.core.paper",
    "run_paper_flow": "repro.core.paper",
    "save_outcome": "repro.core.campaign",
    "load_outcome": "repro.core.campaign",
    # simulation service (repro.service)
    "Job": "repro.service",
    "JobQueue": "repro.service",
    "JobCancelled": "repro.service",
    "WorkerPool": "repro.service",
    "ServiceApp": "repro.service",
    "ServiceClient": "repro.service",
    "ServiceError": "repro.service",
    "ServiceServer": "repro.service",
    "ServiceUnavailable": "repro.service",
    # distributed campaign coordination (repro.coord)
    "Coordinator": "repro.coord",
    "CoordStatus": "repro.coord",
    "CoordJournal": "repro.coord",
    "PartitionState": "repro.coord",
    "coord_names": "repro.coord",
    "coord_status": "repro.coord",
    # observability (repro.obs)
    "MetricsRegistry": "repro.obs",
    "MetricsSnapshot": "repro.obs",
    "render_prometheus": "repro.obs",
    "span": "repro.obs",
    "event": "repro.obs",
    "read_events": "repro.obs",
    "configure_logging": "repro.obs",
    "get_logger": "repro.obs",
    "log_context": "repro.obs",
    "summarize_events": "repro.obs.report",
    # errors
    "ReproError": "repro.errors",
    "ConfigError": "repro.errors",
    "CoordinationError": "repro.errors",
    "DesignError": "repro.errors",
    "SimulationError": "repro.errors",
    "StoreError": "repro.errors",
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    """Resolve a public name by importing its defining module on demand."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: subsequent accesses skip __getattr__
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
