"""repro: reproduction of "Response-surface-based design space exploration
and optimisation of wireless sensor nodes with tunable energy harvesters"
(Wang et al., DATE 2012).

The library has three layers:

1. **Simulation substrates** -- an event-driven mixed-signal kernel
   (:mod:`repro.sim`), a nonlinear analogue circuit solver
   (:mod:`repro.analog`) and physical-domain models
   (:mod:`repro.mech`, :mod:`repro.harvester`).
2. **System model** -- the complete harvester-powered wireless sensor node
   (:mod:`repro.digital`, :mod:`repro.node`, :mod:`repro.control`,
   :mod:`repro.system`), runnable either as a detailed co-simulation or as
   the fast envelope model used for hour-long runs.
3. **Methodology** -- response-surface modelling (:mod:`repro.rsm`), design
   of experiments (:mod:`repro.doe`), global optimisers
   (:mod:`repro.optimize`) and the end-to-end design-space-exploration
   workflow (:mod:`repro.core`), which is the paper's contribution.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
