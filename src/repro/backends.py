"""Pluggable simulation backends behind one ``run(scenario)`` call.

The envelope and detailed simulators predate this module and keep their
native constructors; a :class:`Backend` adapts each one to the common
contract *scenario in, :class:`~repro.system.result.SystemResult` out*.
Backends are looked up by name in a process-wide registry so drivers
(:class:`~repro.core.batch.BatchRunner`, the CLI, the simulation
objective) never hard-code a fidelity level:

>>> from repro import Scenario, run
>>> result = run(Scenario(horizon=60.0, seed=1))          # envelope
>>> result = run(Scenario(horizon=0.5, backend="detailed", seed=1))

Backends may additionally implement the optional **batch capability**
``run_batch(scenarios) -> list[SystemResult]``; drivers that hold many
scenarios hand the whole list over in one call so the backend can
amortise per-scenario overhead (the ``vectorized`` backend integrates a
batch as NumPy arrays in lockstep).  :func:`run_batch` here is the
capability-aware dispatcher: it groups scenarios by backend, uses
``run_batch`` where available and falls back to per-scenario
:func:`run` otherwise, always preserving submission order.

Third parties extend the registry with :func:`register_backend`; unknown
names fail with a :class:`~repro.errors.ConfigError` that lists what is
available.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.errors import ConfigError, SimulationError
from repro.scenario import Scenario
from repro.system.result import SystemResult


@runtime_checkable
class Backend(Protocol):
    """The contract every simulation backend implements."""

    #: Registry name (``scenario.backend`` selects by this).
    name: str

    def simulate(self, scenario: Scenario) -> SystemResult:
        """Run one scenario to completion and return its result."""
        ...


class EnvelopeBackend:
    """The fast energy-balance simulator (hour-scale runs)."""

    name = "envelope"

    def simulate(self, scenario: Scenario) -> SystemResult:
        from repro.system.envelope import EnvelopeSimulator

        sim = _construct(
            EnvelopeSimulator,
            scenario,
            scenario.config,
            parts=scenario.build_parts(),
            profile=scenario.profile,
            seed=scenario.seed,
            **dict(scenario.options),
        )
        return sim.run(scenario.horizon)


class DetailedBackend:
    """The cycle-accurate MNA co-simulation (seconds-scale runs)."""

    name = "detailed"

    def simulate(self, scenario: Scenario) -> SystemResult:
        from repro.system.detailed import DetailedSimulator

        sim = _construct(
            DetailedSimulator,
            scenario,
            scenario.config,
            parts=scenario.build_parts(),
            profile=scenario.profile,
            seed=scenario.seed,
            **dict(scenario.options),
        )
        return sim.run(scenario.horizon).to_system_result()


class VectorizedBackend:
    """The NumPy lockstep batch integrator (envelope physics, SIMD).

    Semantically the envelope backend; operationally it advances whole
    scenario batches as ``(n_scenarios,)`` arrays per integration step
    (:mod:`repro.system.vectorized`).  Requires NumPy: without it every
    use raises a :class:`~repro.errors.ConfigError` naming the
    ``[vectorized]`` extra, while registration itself always succeeds so
    the name shows up in error listings.
    """

    name = "vectorized"

    def simulate(self, scenario: Scenario) -> SystemResult:
        return self.run_batch([scenario])[0]

    def run_batch(self, scenarios: Sequence[Scenario]) -> List[SystemResult]:
        from repro.system.vectorized import simulate_batch

        return simulate_batch(scenarios)


def _construct(cls, scenario: Scenario, *args, **kwargs):
    """Instantiate a simulator, turning bad options into ConfigError."""
    try:
        return cls(*args, **kwargs)
    except TypeError as exc:
        raise ConfigError(
            f"backend {scenario.backend!r} rejected scenario options "
            f"{sorted(scenario.options)}: {exc}"
        ) from exc


# -- registry -----------------------------------------------------------------

_REGISTRY: Dict[str, Callable[[], Backend]] = {}


def register_backend(
    name: str, factory: Callable[[], Backend], overwrite: bool = False
) -> None:
    """Register a backend factory under ``name``.

    Re-registering an existing name requires ``overwrite=True`` so typos
    cannot silently shadow a shipped backend.

    The registry is per-process.  Process-pool batches
    (:class:`~repro.core.batch.BatchRunner` with ``jobs > 1``) see
    custom backends on platforms whose workers are forked (Linux);
    under a ``spawn``/``forkserver`` start method the registration must
    happen at import time of a module the workers also import, or the
    batch should use ``executor="thread"``.
    """
    if not name:
        raise ConfigError("backend name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ConfigError(
            f"backend {name!r} is already registered (pass overwrite=True)"
        )
    _REGISTRY[name] = factory


def backend_names() -> List[str]:
    """Registered backend names."""
    return sorted(_REGISTRY)


def get_backend(name: str) -> Backend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(backend_names())
        raise ConfigError(f"unknown backend {name!r} (known: {known})") from None
    return factory()


register_backend("envelope", EnvelopeBackend)
register_backend("detailed", DetailedBackend)
register_backend("vectorized", VectorizedBackend)


def run(scenario: Scenario) -> SystemResult:
    """Execute one scenario on its named backend."""
    return get_backend(scenario.backend).simulate(scenario)


def supports_batch(backend: Backend) -> bool:
    """Whether ``backend`` implements the batch capability."""
    return callable(getattr(backend, "run_batch", None))


def shard_contiguous(items: Sequence, parts: int) -> List[List]:
    """Split ``items`` into at most ``parts`` contiguous, non-empty runs.

    The shard boundaries are deterministic in ``(len(items), parts)``
    alone (sizes differ by at most one, longer shards first), so a
    batch splits identically on every worker count -- the property the
    ``jobs x run_batch`` composition relies on for order-stable
    reassembly.
    """
    if parts < 1:
        raise ConfigError("shard count must be >= 1")
    n = len(items)
    parts = min(parts, n)
    if parts <= 1:
        return [list(items)] if n else []
    base, extra = divmod(n, parts)
    shards: List[List] = []
    start = 0
    for k in range(parts):
        size = base + (1 if k < extra else 0)
        shards.append(list(items[start : start + size]))
        start += size
    return shards


def dispatch_batchable(
    scenarios: Sequence[Scenario],
    batch_executor: Optional[
        Callable[[str, List[Scenario]], List[SystemResult]]
    ] = None,
) -> "tuple[List[Optional[SystemResult]], List[int]]":
    """Run every batch-capable backend group in one call each.

    Groups ``scenarios`` by backend name and hands each group whose
    backend implements ``run_batch`` over in a single call; the returned
    result list carries those results at their submission indices, with
    ``None`` holes for the leftover indices (returned separately) whose
    backends must run scenario by scenario.  This is the one shared
    dispatch primitive behind :func:`run_batch` and
    :class:`~repro.core.batch.BatchRunner`.

    ``batch_executor`` overrides *how* a batch-capable group executes:
    it is called as ``batch_executor(name, batch)`` and must return one
    result per scenario in order.  :class:`~repro.core.batch.BatchRunner`
    passes its sharded fan-out here so ``jobs=N`` composes with
    ``run_batch`` (N workers, one contiguous sub-batch each) instead of
    batch dispatch silently running below the process pool.
    """
    results: List[Optional[SystemResult]] = [None] * len(scenarios)
    leftover: List[int] = []
    groups: Dict[str, List[int]] = {}
    for index, scenario in enumerate(scenarios):
        groups.setdefault(scenario.backend, []).append(index)
    for name, indices in groups.items():
        backend = get_backend(name)
        if not supports_batch(backend):
            leftover.extend(indices)
            continue
        batch = [scenarios[i] for i in indices]
        if batch_executor is not None:
            fresh = batch_executor(name, batch)
        else:
            fresh = backend.run_batch(batch)
        if len(fresh) != len(batch):
            raise SimulationError(
                f"backend {name!r} returned {len(fresh)} results for a "
                f"{len(batch)}-scenario batch"
            )
        for i, result in zip(indices, fresh):
            results[i] = result
    return results, leftover


def run_batch(scenarios: Sequence[Scenario]) -> List[SystemResult]:
    """Execute many scenarios, batching where the backend allows it.

    Scenarios are grouped by backend name; each batch-capable group is
    handed to the backend's ``run_batch`` in one call, the rest run one
    by one through :func:`run`.  Results align with the input order
    regardless of grouping.
    """
    results, leftover = dispatch_batchable(scenarios)
    for i in leftover:
        results[i] = run(scenarios[i])
    return results  # type: ignore[return-value]


def run_conformance(
    scenario: Scenario,
    backends: Sequence[str] = ("envelope", "detailed", "vectorized"),
) -> Dict[str, SystemResult]:
    """Run one scenario on several backends under identical excitation.

    This is the cross-backend conformance primitive: the same
    configuration, parts, profile, horizon and seed on every named
    backend, so the results differ only by model fidelity.  Two
    normalisations make the comparison fair:

    - a ``profile=None`` scenario is materialised to the paper profile
      first (each backend has a *different* native default, which would
      silently compare different excitations), and
    - backend-specific ``options`` are dropped (they do not transfer --
      e.g. the envelope's ``record_traces`` would be rejected by the
      detailed simulator's constructor).
    """
    from dataclasses import replace

    if scenario.profile is None:
        from repro.system.vibration import VibrationProfile

        scenario = replace(scenario, profile=VibrationProfile.paper_profile())
    return {
        name: run(replace(scenario, backend=name, options={}))
        for name in backends
    }


def quiet_options(backend: str) -> dict:
    """Scenario options that suppress trace recording on ``backend``.

    Batch drivers (Monte Carlo, robustness grids, DOE evaluation) want
    lean results; only the envelope-physics backends record optional
    traces, so this is the one place that capability knowledge lives.
    """
    return {"record_traces": False} if backend in ("envelope", "vectorized") else {}
