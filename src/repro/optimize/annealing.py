"""Simulated annealing (the paper's first global optimiser).

Standard Metropolis annealing over a bounded box:

- Gaussian proposal steps, reflected at the box faces;
- geometric cooling ``T <- cooling * T``;
- step-size adaptation towards a target acceptance rate (big steps while
  the landscape is easy, small steps as the search localises);
- optional restarts from the incumbent when a temperature level ends cold.

The initial temperature defaults to the spread of a quick random probe of
the objective, so the first sweeps accept nearly everything -- the usual
"melt first" rule.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.problem import Problem
from repro.optimize.result import OptimizationResult
from repro.rng import SeedLike, ensure_rng


def simulated_annealing(
    problem: Problem,
    n_iterations: int = 2000,
    initial_temperature: Optional[float] = None,
    cooling: float = 0.95,
    steps_per_temperature: int = 20,
    initial_step_fraction: float = 0.25,
    target_acceptance: float = 0.4,
    seed: SeedLike = None,
    x0: Optional[np.ndarray] = None,
) -> OptimizationResult:
    """Maximise/minimise ``problem`` by simulated annealing.

    Parameters
    ----------
    n_iterations:
        Total objective evaluations (excluding the temperature probe).
    cooling:
        Geometric temperature factor per level, in (0, 1).
    steps_per_temperature:
        Metropolis steps per temperature level.
    initial_step_fraction:
        Initial proposal sigma as a fraction of each box width.
    """
    if not 0.0 < cooling < 1.0:
        raise OptimizationError("cooling factor must be in (0, 1)")
    if n_iterations < 1 or steps_per_temperature < 1:
        raise OptimizationError("iteration counts must be positive")
    rng = ensure_rng(seed)

    x = problem.clip(x0) if x0 is not None else problem.random_point(rng)
    score = problem.score(x)
    best_x, best_score = x.copy(), score
    history = [problem.value_from_score(best_score)]

    temperature = (
        initial_temperature
        if initial_temperature is not None
        else _probe_temperature(problem, rng)
    )
    if temperature <= 0.0:
        temperature = 1.0
    step = initial_step_fraction * problem.span()

    evaluations = 0
    accepted_at_level = 0
    steps_at_level = 0
    while evaluations < n_iterations:
        candidate = problem.reflect(x + rng.normal(0.0, step))
        cand_score = problem.score(candidate)
        evaluations += 1
        steps_at_level += 1
        delta = cand_score - score
        if delta <= 0.0 or rng.uniform() < np.exp(-delta / temperature):
            x, score = candidate, cand_score
            accepted_at_level += 1
            if score < best_score:
                best_x, best_score = x.copy(), score
        history.append(problem.value_from_score(best_score))

        if steps_at_level >= steps_per_temperature:
            rate = accepted_at_level / steps_at_level
            # Nudge the step size toward the target acceptance rate.
            if rate > target_acceptance:
                step = np.minimum(step * 1.3, problem.span())
            else:
                step = np.maximum(step * 0.7, problem.span() * 1e-4)
            temperature *= cooling
            accepted_at_level = 0
            steps_at_level = 0

    return OptimizationResult(
        x=best_x,
        value=problem.value_from_score(best_score),
        n_evaluations=evaluations,
        method="simulated-annealing",
        history=history,
    )


def _probe_temperature(problem: Problem, rng: np.random.Generator, n: int = 20) -> float:
    """Initial temperature from the spread of random objective probes."""
    scores = [problem.score(problem.random_point(rng)) for _ in range(n)]
    spread = float(np.std(scores))
    return spread if spread > 0.0 else abs(float(np.mean(scores))) + 1.0
