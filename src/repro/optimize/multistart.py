"""Multistart wrapper: run a local optimiser from several random starts."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.problem import Problem
from repro.optimize.result import OptimizationResult
from repro.rng import SeedLike, ensure_rng


def multistart(
    problem: Problem,
    local_method: Callable[..., OptimizationResult],
    n_starts: int = 8,
    seed: SeedLike = None,
    **method_kwargs,
) -> OptimizationResult:
    """Best-of-``n_starts`` runs of ``local_method`` from random points.

    The local method must accept ``x0`` and ``seed`` keyword arguments
    (all of this package's local methods do).
    """
    if n_starts < 1:
        raise OptimizationError("need at least one start")
    rng = ensure_rng(seed)
    best: Optional[OptimizationResult] = None
    total_evaluations = 0
    history = []
    better = max if problem.maximize else min
    for i in range(n_starts):
        x0 = problem.random_point(rng)
        result = local_method(
            problem, x0=x0, seed=rng, **method_kwargs
        )
        total_evaluations += result.n_evaluations
        history.extend(result.history)
        if best is None or better(result.value, best.value) == result.value:
            best = result
    assert best is not None
    return OptimizationResult(
        x=best.x,
        value=best.value,
        n_evaluations=total_evaluations,
        method=f"multistart({best.method}, {n_starts})",
        history=history,
        converged=best.converged,
    )
