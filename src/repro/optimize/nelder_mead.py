"""Bounded Nelder-Mead simplex.

Classic reflection/expansion/contraction/shrink with box clipping.
Included as the local baseline the global methods are compared against in
the ablation benches (a quadratic RSM is unimodal inside the box often
enough that Nelder-Mead from a few starts matches SA/GA at a fraction of
the evaluations -- worth demonstrating).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.problem import Problem
from repro.optimize.result import OptimizationResult
from repro.rng import SeedLike, ensure_rng


def nelder_mead(
    problem: Problem,
    x0: Optional[np.ndarray] = None,
    initial_size_fraction: float = 0.2,
    tol: float = 1e-8,
    max_evaluations: int = 5000,
    seed: SeedLike = None,
) -> OptimizationResult:
    """Maximise/minimise ``problem`` with the Nelder-Mead simplex."""
    if max_evaluations < problem.k + 2:
        raise OptimizationError("evaluation budget too small for a simplex")
    rng = ensure_rng(seed)
    k = problem.k
    x_start = problem.clip(x0) if x0 is not None else problem.random_point(rng)

    simplex = [x_start]
    for i in range(k):
        vertex = x_start.copy()
        vertex[i] += initial_size_fraction * problem.span()[i]
        simplex.append(problem.clip(vertex))
    simplex = np.array(simplex)
    scores = np.array([problem.score(v) for v in simplex])
    evaluations = k + 1
    history = [problem.value_from_score(float(np.min(scores)))]
    converged = False

    alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5
    while evaluations < max_evaluations:
        order = np.argsort(scores)
        simplex, scores = simplex[order], scores[order]
        if abs(scores[-1] - scores[0]) < tol * (1.0 + abs(scores[0])):
            converged = True
            break
        centroid = np.mean(simplex[:-1], axis=0)

        reflected = problem.clip(centroid + alpha * (centroid - simplex[-1]))
        r_score = problem.score(reflected)
        evaluations += 1
        if scores[0] <= r_score < scores[-2]:
            simplex[-1], scores[-1] = reflected, r_score
        elif r_score < scores[0]:
            expanded = problem.clip(centroid + gamma * (reflected - centroid))
            e_score = problem.score(expanded)
            evaluations += 1
            if e_score < r_score:
                simplex[-1], scores[-1] = expanded, e_score
            else:
                simplex[-1], scores[-1] = reflected, r_score
        else:
            contracted = problem.clip(centroid + rho * (simplex[-1] - centroid))
            c_score = problem.score(contracted)
            evaluations += 1
            if c_score < scores[-1]:
                simplex[-1], scores[-1] = contracted, c_score
            else:
                for i in range(1, k + 1):
                    simplex[i] = problem.clip(
                        simplex[0] + sigma * (simplex[i] - simplex[0])
                    )
                    scores[i] = problem.score(simplex[i])
                evaluations += k
        history.append(problem.value_from_score(float(np.min(scores))))

    best = int(np.argmin(scores))
    return OptimizationResult(
        x=simplex[best],
        value=problem.value_from_score(float(scores[best])),
        n_evaluations=evaluations,
        method="nelder-mead",
        history=history,
        converged=converged,
    )
