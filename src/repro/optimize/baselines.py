"""Naive baselines: grid search and random search.

These bracket what the global optimisers must beat (grid search at the
paper's 3 levels per axis is 27 evaluations and can only find coded corner
or centre points).
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.problem import Problem
from repro.optimize.result import OptimizationResult
from repro.rng import SeedLike, ensure_rng


def grid_search(problem: Problem, n_levels: int = 5) -> OptimizationResult:
    """Exhaustive search over an ``n_levels^k`` grid of the box."""
    if n_levels < 2:
        raise OptimizationError("need at least 2 levels per axis")
    axes = [
        np.linspace(lo, hi, n_levels) for lo, hi in problem.bounds
    ]
    best_x, best_score = None, np.inf
    history = []
    evaluations = 0
    for point in product(*axes):
        x = np.array(point)
        score = problem.score(x)
        evaluations += 1
        if score < best_score:
            best_x, best_score = x, score
        history.append(problem.value_from_score(best_score))
    return OptimizationResult(
        x=best_x,
        value=problem.value_from_score(best_score),
        n_evaluations=evaluations,
        method=f"grid-search({n_levels}^{problem.k})",
        history=history,
    )


def random_search(
    problem: Problem, n_evaluations: int = 200, seed: SeedLike = None
) -> OptimizationResult:
    """Uniform random sampling of the box."""
    if n_evaluations < 1:
        raise OptimizationError("need at least one evaluation")
    rng = ensure_rng(seed)
    best_x, best_score = None, np.inf
    history = []
    for _ in range(n_evaluations):
        x = problem.random_point(rng)
        score = problem.score(x)
        if score < best_score:
            best_x, best_score = x, score
        history.append(problem.value_from_score(best_score))
    return OptimizationResult(
        x=best_x,
        value=problem.value_from_score(best_score),
        n_evaluations=n_evaluations,
        method="random-search",
        history=history,
    )
