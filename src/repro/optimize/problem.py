"""Bounded optimisation problems.

A :class:`Problem` wraps an objective over a box; optimisers always
*maximise* internally when ``maximize=True`` (the paper maximises
transmissions), and the evaluation counter gives honest comparisons
between methods.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import OptimizationError


class Problem:
    """An objective over a rectangular box.

    Parameters
    ----------
    objective:
        Callable ``f(x) -> float`` with ``x`` a numpy vector.
    bounds:
        Sequence of (low, high) per dimension.
    maximize:
        If True the optimisers seek the maximum (default: the paper's
        setting); internally they minimise ``-f``.
    name:
        Label for reports.
    """

    def __init__(
        self,
        objective: Callable[[np.ndarray], float],
        bounds: Sequence[Tuple[float, float]],
        maximize: bool = True,
        name: str = "problem",
    ):
        if not bounds:
            raise OptimizationError("problem needs at least one dimension")
        for lo, hi in bounds:
            if not lo < hi:
                raise OptimizationError(f"bad bound ({lo}, {hi}): need lo < hi")
        self.objective = objective
        self.bounds = [(float(lo), float(hi)) for lo, hi in bounds]
        self.maximize = maximize
        self.name = name
        self.n_evaluations = 0

    @property
    def k(self) -> int:
        """Number of decision variables."""
        return len(self.bounds)

    @property
    def lower(self) -> np.ndarray:
        """Lower bounds vector."""
        return np.array([lo for lo, _ in self.bounds])

    @property
    def upper(self) -> np.ndarray:
        """Upper bounds vector."""
        return np.array([hi for _, hi in self.bounds])

    def clip(self, x: np.ndarray) -> np.ndarray:
        """Clamp a point into the box."""
        return np.clip(np.asarray(x, dtype=float), self.lower, self.upper)

    def reflect(self, x: np.ndarray) -> np.ndarray:
        """Reflect a point at the box faces (keeps random walks inside
        without piling probability mass onto the boundary)."""
        lo, hi = self.lower, self.upper
        span = hi - lo
        y = (np.asarray(x, dtype=float) - lo) % (2.0 * span)
        y = np.where(y > span, 2.0 * span - y, y)
        return lo + y

    def span(self) -> np.ndarray:
        """Box widths per dimension."""
        return self.upper - self.lower

    def evaluate(self, x: np.ndarray) -> float:
        """Raw objective value (counted)."""
        self.n_evaluations += 1
        return float(self.objective(np.asarray(x, dtype=float)))

    def score(self, x: np.ndarray) -> float:
        """Internal minimisation score (negated when maximising)."""
        value = self.evaluate(x)
        return -value if self.maximize else value

    def value_from_score(self, score: float) -> float:
        """Convert an internal score back to the user's objective scale."""
        return -score if self.maximize else score

    def random_point(self, rng: np.random.Generator) -> np.ndarray:
        """Uniform random point in the box."""
        return rng.uniform(self.lower, self.upper)
