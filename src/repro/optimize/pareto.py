"""Multi-objective optimisation: NSGA-II and Pareto utilities.

The paper optimises a single objective (transmissions per hour), but its
own discussion exposes a trade-off: draining the storage for throughput
leaves no reserve for vibration droughts.  This module provides the
standard tooling to study such trade-offs:

- :func:`pareto_front` / :func:`non_dominated_sort` -- dominance analysis
  of a finished evaluation set;
- :func:`nsga2` -- the classic elitist multi-objective GA (fast
  non-dominated sorting + crowding distance), real-coded with the same
  variation operators as :mod:`repro.optimize.genetic`.

All objectives are **maximised**; negate any objective to minimise it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.errors import OptimizationError
from repro.rng import SeedLike, ensure_rng


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether objective vector ``a`` Pareto-dominates ``b`` (maximising)."""
    return bool(np.all(a >= b) and np.any(a > b))


def non_dominated_sort(objectives: np.ndarray) -> List[np.ndarray]:
    """Fast non-dominated sorting (Deb et al.).

    Returns a list of index arrays, front 0 first (the Pareto set).
    """
    objs = np.atleast_2d(np.asarray(objectives, dtype=float))
    n = objs.shape[0]
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = np.zeros(n, dtype=int)
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(objs[i], objs[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(objs[j], objs[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: List[np.ndarray] = []
    current = np.where(domination_count == 0)[0]
    while len(current):
        fronts.append(current)
        nxt: List[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    nxt.append(j)
        current = np.array(sorted(set(nxt)), dtype=int)
    return fronts


def pareto_front(objectives: np.ndarray) -> np.ndarray:
    """Indices of the non-dominated points of an evaluation set."""
    return non_dominated_sort(objectives)[0]


def crowding_distance(objectives: np.ndarray) -> np.ndarray:
    """Crowding distance of each point within one front (larger = lonelier)."""
    objs = np.atleast_2d(np.asarray(objectives, dtype=float))
    n, m = objs.shape
    distance = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for k in range(m):
        order = np.argsort(objs[:, k])
        span = objs[order[-1], k] - objs[order[0], k]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span <= 0:
            continue
        for idx in range(1, n - 1):
            distance[order[idx]] += (
                objs[order[idx + 1], k] - objs[order[idx - 1], k]
            ) / span
    return distance


@dataclass
class ParetoResult:
    """Outcome of a multi-objective run."""

    points: np.ndarray  # decision vectors of the final front, (n, k)
    objectives: np.ndarray  # objective vectors of the final front, (n, m)
    n_evaluations: int
    method: str = "nsga2"

    def knee_point(self) -> Tuple[np.ndarray, np.ndarray]:
        """The front member closest (normalised) to the ideal point."""
        objs = self.objectives
        ideal = objs.max(axis=0)
        nadir = objs.min(axis=0)
        span = np.where(ideal > nadir, ideal - nadir, 1.0)
        scaled = (ideal - objs) / span
        idx = int(np.argmin(np.linalg.norm(scaled, axis=1)))
        return self.points[idx], self.objectives[idx]

    def sorted_by(self, objective_index: int) -> "ParetoResult":
        """A copy with the front ordered along one objective."""
        order = np.argsort(self.objectives[:, objective_index])
        return ParetoResult(
            self.points[order], self.objectives[order], self.n_evaluations,
            self.method,
        )


def nsga2(
    objectives: Callable[[np.ndarray], Sequence[float]],
    bounds: Sequence[Tuple[float, float]],
    population_size: int = 40,
    n_generations: int = 40,
    crossover_rate: float = 0.9,
    blend_alpha: float = 0.5,
    mutation_rate: float = 0.15,
    mutation_sigma_fraction: float = 0.1,
    seed: SeedLike = None,
) -> ParetoResult:
    """Maximise several objectives with NSGA-II.

    Parameters
    ----------
    objectives:
        Callable returning the objective vector (all maximised) for a
        decision vector.
    bounds:
        Box bounds per decision variable.
    """
    if population_size < 4 or population_size % 2:
        raise OptimizationError("population must be even and >= 4")
    for lo, hi in bounds:
        if not lo < hi:
            raise OptimizationError(f"bad bound ({lo}, {hi})")
    rng = ensure_rng(seed)
    lower = np.array([lo for lo, _ in bounds])
    upper = np.array([hi for _, hi in bounds])
    span = upper - lower
    sigma = mutation_sigma_fraction * span
    k = len(bounds)

    def evaluate(pop: np.ndarray) -> np.ndarray:
        return np.array([list(objectives(ind)) for ind in pop], dtype=float)

    population = rng.uniform(lower, upper, size=(population_size, k))
    objs = evaluate(population)
    evaluations = population_size

    for _ in range(n_generations):
        fronts = non_dominated_sort(objs)
        rank = np.empty(len(population), dtype=int)
        crowd = np.empty(len(population))
        for r, front in enumerate(fronts):
            rank[front] = r
            crowd[front] = crowding_distance(objs[front])

        def binary_tournament() -> np.ndarray:
            i, j = rng.choice(len(population), size=2, replace=False)
            if rank[i] < rank[j] or (rank[i] == rank[j] and crowd[i] > crowd[j]):
                return population[i]
            return population[j]

        children = []
        while len(children) < population_size:
            p1, p2 = binary_tournament(), binary_tournament()
            if rng.uniform() < crossover_rate:
                low = np.minimum(p1, p2)
                high = np.maximum(p1, p2)
                width = high - low
                child = rng.uniform(low - blend_alpha * width, high + blend_alpha * width)
            else:
                child = p1.copy()
            mask = rng.uniform(size=k) < mutation_rate
            if np.any(mask):
                child = child + mask * rng.normal(0.0, sigma)
            children.append(np.clip(child, lower, upper))
        children = np.array(children)
        child_objs = evaluate(children)
        evaluations += population_size

        # Elitist environmental selection over parents + children.
        combined = np.vstack([population, children])
        combined_objs = np.vstack([objs, child_objs])
        fronts = non_dominated_sort(combined_objs)
        selected: List[int] = []
        for front in fronts:
            if len(selected) + len(front) <= population_size:
                selected.extend(front.tolist())
            else:
                crowd_front = crowding_distance(combined_objs[front])
                order = np.argsort(-crowd_front)
                need = population_size - len(selected)
                selected.extend(front[order[:need]].tolist())
                break
        population = combined[selected]
        objs = combined_objs[selected]

    final_front = pareto_front(objs)
    return ParetoResult(
        points=population[final_front].copy(),
        objectives=objs[final_front].copy(),
        n_evaluations=evaluations,
    )
