"""Compass pattern search (derivative-free local method).

Polls the 2k axis directions around the incumbent; on success the step may
expand, on a full failed poll it contracts.  Terminates when the step
drops below ``tol`` (relative to the box width) or the evaluation budget
runs out.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.problem import Problem
from repro.optimize.result import OptimizationResult
from repro.rng import SeedLike, ensure_rng


def pattern_search(
    problem: Problem,
    x0: Optional[np.ndarray] = None,
    initial_step_fraction: float = 0.25,
    expansion: float = 2.0,
    contraction: float = 0.5,
    tol: float = 1e-6,
    max_evaluations: int = 5000,
    seed: SeedLike = None,
) -> OptimizationResult:
    """Maximise/minimise ``problem`` by compass search."""
    if not 0.0 < contraction < 1.0 <= expansion:
        raise OptimizationError("need 0 < contraction < 1 <= expansion")
    rng = ensure_rng(seed)
    x = problem.clip(x0) if x0 is not None else problem.random_point(rng)
    score = problem.score(x)
    evaluations = 1
    history = [problem.value_from_score(score)]
    step = initial_step_fraction * problem.span()
    min_step = tol * problem.span()
    converged = False

    while evaluations < max_evaluations:
        improved = False
        for i in range(problem.k):
            for sign in (1.0, -1.0):
                candidate = x.copy()
                candidate[i] += sign * step[i]
                candidate = problem.clip(candidate)
                if np.allclose(candidate, x):
                    continue
                cand_score = problem.score(candidate)
                evaluations += 1
                if cand_score < score:
                    x, score = candidate, cand_score
                    improved = True
                    break
                if evaluations >= max_evaluations:
                    break
            if improved or evaluations >= max_evaluations:
                break
        history.append(problem.value_from_score(score))
        if improved:
            step = np.minimum(step * expansion, problem.span())
        else:
            step = step * contraction
            if np.all(step < min_step):
                converged = True
                break

    return OptimizationResult(
        x=x,
        value=problem.value_from_score(score),
        n_evaluations=evaluations,
        method="pattern-search",
        history=history,
        converged=converged,
    )
