"""Real-coded genetic algorithm (the paper's second global optimiser).

A conventional floating-point GA:

- tournament selection,
- blend (BLX-alpha) crossover,
- Gaussian mutation with per-dimension sigma tied to the box width,
- elitism (the best individuals survive unchanged).

Defaults are sized for the paper's 3-variable response surface (cheap
objective, so generous population).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import OptimizationError
from repro.optimize.problem import Problem
from repro.optimize.result import OptimizationResult
from repro.rng import SeedLike, ensure_rng


def genetic_algorithm(
    problem: Problem,
    population_size: int = 40,
    n_generations: int = 60,
    tournament_size: int = 3,
    crossover_rate: float = 0.9,
    blend_alpha: float = 0.5,
    mutation_rate: float = 0.15,
    mutation_sigma_fraction: float = 0.1,
    n_elites: int = 2,
    seed: SeedLike = None,
) -> OptimizationResult:
    """Maximise/minimise ``problem`` with a real-coded GA."""
    if population_size < 4:
        raise OptimizationError("population must have at least 4 individuals")
    if not 2 <= tournament_size <= population_size:
        raise OptimizationError("bad tournament size")
    if not 0 <= n_elites < population_size:
        raise OptimizationError("bad elite count")
    rng = ensure_rng(seed)
    span = problem.span()
    sigma = mutation_sigma_fraction * span

    population = np.array(
        [problem.random_point(rng) for _ in range(population_size)]
    )
    scores = np.array([problem.score(ind) for ind in population])
    evaluations = population_size
    best_idx = int(np.argmin(scores))
    best_x = population[best_idx].copy()
    best_score = float(scores[best_idx])
    history = [problem.value_from_score(best_score)]

    for _ in range(n_generations):
        order = np.argsort(scores)
        elites = population[order[:n_elites]].copy()
        children = list(elites)
        while len(children) < population_size:
            p1 = _tournament(population, scores, tournament_size, rng)
            p2 = _tournament(population, scores, tournament_size, rng)
            if rng.uniform() < crossover_rate:
                child = _blend_crossover(p1, p2, blend_alpha, rng)
            else:
                child = p1.copy()
            mask = rng.uniform(size=problem.k) < mutation_rate
            if np.any(mask):
                child = child + mask * rng.normal(0.0, sigma)
            children.append(problem.clip(child))
        population = np.array(children[:population_size])
        scores = np.array([problem.score(ind) for ind in population])
        evaluations += population_size
        gen_best = int(np.argmin(scores))
        if scores[gen_best] < best_score:
            best_score = float(scores[gen_best])
            best_x = population[gen_best].copy()
        history.append(problem.value_from_score(best_score))

    return OptimizationResult(
        x=best_x,
        value=problem.value_from_score(best_score),
        n_evaluations=evaluations,
        method="genetic-algorithm",
        history=history,
    )


def _tournament(
    population: np.ndarray,
    scores: np.ndarray,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    idx = rng.choice(len(population), size=size, replace=False)
    winner = idx[np.argmin(scores[idx])]
    return population[winner]


def _blend_crossover(
    p1: np.ndarray, p2: np.ndarray, alpha: float, rng: np.random.Generator
) -> np.ndarray:
    low = np.minimum(p1, p2)
    high = np.maximum(p1, p2)
    spread = high - low
    return rng.uniform(low - alpha * spread, high + alpha * spread)
