"""Optimisation results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np


@dataclass
class OptimizationResult:
    """Outcome of one optimiser run.

    ``value`` is in the user's objective scale (maximisation problems
    report the maximum found).  ``history`` records the best-so-far value
    after each evaluation, for convergence plots.
    """

    x: np.ndarray
    value: float
    n_evaluations: int
    method: str
    history: List[float] = field(default_factory=list)
    converged: bool = True

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)

    def summary(self) -> str:
        """One-line report."""
        coords = ", ".join(f"{v:.4g}" for v in self.x)
        return (
            f"{self.method}: value={self.value:.6g} at [{coords}] "
            f"({self.n_evaluations} evaluations)"
        )
