"""Global optimisers (MATLAB Optimisation Toolbox substitute).

The paper maximises its fitted response surface with Simulated Annealing
and a Genetic Algorithm; both are implemented from scratch here, plus the
local/baseline methods a practitioner would sanity-check against:

- :mod:`repro.optimize.problem` / :mod:`repro.optimize.result` -- the
  bounded-problem and result containers.
- :mod:`repro.optimize.annealing` -- simulated annealing with adaptive
  step size and geometric cooling.
- :mod:`repro.optimize.genetic` -- real-coded GA (tournament selection,
  blend crossover, Gaussian mutation, elitism).
- :mod:`repro.optimize.pattern` -- compass pattern search.
- :mod:`repro.optimize.nelder_mead` -- bounded Nelder-Mead simplex.
- :mod:`repro.optimize.multistart` -- restart wrapper for local methods.
- :mod:`repro.optimize.baselines` -- grid and random search.
- :mod:`repro.optimize.registry` -- named optimisers
  (:func:`~repro.optimize.registry.register_optimizer`) for declarative
  studies.
"""

from repro.optimize.annealing import simulated_annealing
from repro.optimize.baselines import grid_search, random_search
from repro.optimize.genetic import genetic_algorithm
from repro.optimize.multistart import multistart
from repro.optimize.nelder_mead import nelder_mead
from repro.optimize.pareto import ParetoResult, nsga2, pareto_front
from repro.optimize.pattern import pattern_search
from repro.optimize.problem import Problem
from repro.optimize.registry import (
    get_optimizer,
    optimizer_names,
    register_optimizer,
)
from repro.optimize.result import OptimizationResult

__all__ = [
    "OptimizationResult",
    "ParetoResult",
    "Problem",
    "genetic_algorithm",
    "get_optimizer",
    "grid_search",
    "multistart",
    "nelder_mead",
    "nsga2",
    "optimizer_names",
    "pareto_front",
    "pattern_search",
    "random_search",
    "register_optimizer",
    "simulated_annealing",
]
