"""Named optimisers: the optimisation stage registry.

Mirrors :mod:`repro.backends`: a process-wide registry maps a name to an
optimiser with the uniform signature

    ``optimizer(problem, seed=None, **options) -> OptimizationResult``

so a :class:`~repro.core.study.StudySpec` (or the CLI's ``explore
--optimizers``) can select its surface maximisers declaratively.  The
shipped names wrap this package's methods:

===================  ===========================================
name                 method
===================  ===========================================
simulated-annealing  :func:`repro.optimize.annealing.simulated_annealing`
genetic-algorithm    :func:`repro.optimize.genetic.genetic_algorithm`
nelder-mead          :func:`repro.optimize.nelder_mead.nelder_mead`
pattern              :func:`repro.optimize.pattern.pattern_search`
multistart           :func:`repro.optimize.multistart.multistart`
                     (around Nelder-Mead by default)
grid                 :func:`repro.optimize.baselines.grid_search`
random               :func:`repro.optimize.baselines.random_search`
nsga2                :func:`repro.optimize.pareto.nsga2` collapsed to
                     the single study objective
===================  ===========================================

``sa`` and ``ga`` are accepted as aliases of the paper's two methods.
All shipped optimisers are deterministic in ``seed`` (``grid`` ignores
it -- the search is exhaustive), which the registry conformance tests
assert for every registered name.

Third parties extend the registry with :func:`register_optimizer`;
unknown names fail with a :class:`~repro.errors.ConfigError` listing
what is available.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.errors import ConfigError
from repro.optimize.annealing import simulated_annealing
from repro.optimize.baselines import grid_search, random_search
from repro.optimize.genetic import genetic_algorithm
from repro.optimize.multistart import multistart
from repro.optimize.nelder_mead import nelder_mead
from repro.optimize.pareto import nsga2
from repro.optimize.pattern import pattern_search
from repro.optimize.problem import Problem
from repro.optimize.result import OptimizationResult

#: The uniform optimiser signature.
Optimizer = Callable[..., OptimizationResult]

_REGISTRY: Dict[str, Optimizer] = {}


def register_optimizer(
    name: str, optimizer: Optimizer, overwrite: bool = False
) -> None:
    """Register an optimiser under ``name``.

    ``optimizer(problem, seed=None, **options)`` must return an
    :class:`~repro.optimize.result.OptimizationResult` and be
    deterministic in ``seed`` (same problem + seed, same optimum --
    studies rely on this to reproduce bit-identical outcomes on
    resume).  Re-registering an existing name requires
    ``overwrite=True`` so typos cannot silently shadow a shipped
    method.
    """
    if not name:
        raise ConfigError("optimizer name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ConfigError(
            f"optimizer {name!r} is already registered (pass overwrite=True)"
        )
    _REGISTRY[name] = optimizer


def optimizer_names() -> List[str]:
    """Registered optimiser names."""
    return sorted(_REGISTRY)


def get_optimizer(name: str) -> Optimizer:
    """The optimiser registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(optimizer_names())
        raise ConfigError(f"unknown optimizer {name!r} (known: {known})") from None


# -- shipped optimisers --------------------------------------------------------


def _multistart(problem: Problem, seed=None, **options) -> OptimizationResult:
    """Best-of-N restarts of a local method (Nelder-Mead by default).

    ``local_method`` may be a callable or a registered optimiser name
    (the only form a JSON study spec can carry).
    """
    local = options.pop("local_method", nelder_mead)
    if isinstance(local, str):
        local = get_optimizer(local)
    return multistart(problem, local, seed=seed, **options)


def _grid(problem: Problem, seed=None, **options) -> OptimizationResult:
    """Exhaustive level-grid search; deterministic, ``seed`` ignored."""
    return grid_search(problem, **options)


def _nsga2_single(problem: Problem, seed=None, **options) -> OptimizationResult:
    """NSGA-II collapsed onto one objective.

    The population-based Pareto machinery still applies (it degenerates
    to a (mu + lambda) evolution strategy); the best point of the final
    front is reported in the problem's own maximise/minimise scale.
    """
    sign = 1.0 if problem.maximize else -1.0
    result = nsga2(
        lambda x: [sign * problem.evaluate(x)],
        problem.bounds,
        population_size=int(options.pop("population_size", 24)),
        n_generations=int(options.pop("n_generations", 30)),
        seed=seed,
        **options,
    )
    best = int(np.argmax(result.objectives[:, 0]))
    return OptimizationResult(
        x=result.points[best],
        value=sign * float(result.objectives[best, 0]),
        n_evaluations=result.n_evaluations,
        method="nsga2",
    )


register_optimizer("simulated-annealing", simulated_annealing)
register_optimizer("genetic-algorithm", genetic_algorithm)
register_optimizer("nelder-mead", nelder_mead)
register_optimizer("pattern", pattern_search)
register_optimizer("multistart", _multistart)
register_optimizer("grid", _grid)
register_optimizer("random", random_search)
register_optimizer("nsga2", _nsga2_single)

#: The paper's two methods under their short names.
register_optimizer("sa", simulated_annealing)
register_optimizer("ga", genetic_algorithm)
