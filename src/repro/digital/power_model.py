"""Power consumption constants of the tuning subsystem (paper Table IV).

The paper characterises each component by measured current at the 2.8 V
rail and an operation time, from which energy and an equivalent resistance
follow:

=====================  ============  ========  ========  ========  ========
Component (action)     time (ms)     current   power     R_eq      energy
=====================  ============  ========  ========  ========  ========
Accelerometer          153           5.1 mA    13.2 mW   509 ohm   2.02 mJ
Actuator (1 step)      5             312 mA    811 mW    8.33 ohm  4.06 mJ
Actuator (100 steps)   500           156 mA    405 mW    16.7 ohm  203 mJ
MCU (coarse tuning)    149           1.9 mA    5.0 mW    1.38 kohm 0.745 mJ
MCU (fine tuning)      325           5.1 mA    6.5 mW    250 ohm   2.11 mJ
=====================  ============  ========  ========  ========  ========

The MCU rows were measured at the original design's 4 MHz clock; the CMOS
core power scales as ``P(f) = P_static + k_dyn * f`` and
:class:`McuPowerModel` extrapolates the table across the 125 kHz - 8 MHz
optimisation range with that law.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

#: Rail voltage at which Table IV currents were measured.
RAIL_VOLTAGE = 2.8

#: Reference clock of the Table IV MCU measurements (the original design).
REFERENCE_CLOCK_HZ = 4e6

#: Paper Table IV rows (operation time s, power W, energy J).
ACCELEROMETER_ON_TIME = 153e-3
ACCELEROMETER_POWER = 13.2e-3
ACCELEROMETER_ENERGY = 2.02e-3

MCU_COARSE_TIME = 149e-3
MCU_COARSE_POWER = 5.0e-3
MCU_COARSE_ENERGY = 0.745e-3

MCU_FINE_TIME = 325e-3
MCU_FINE_POWER = 6.5e-3
MCU_FINE_ENERGY = 2.11e-3


@dataclass(frozen=True)
class McuPowerModel:
    """CMOS power law ``P_active(f) = p_static + k_dyn * f``.

    Default constants reproduce the Table IV coarse-tuning row at the
    4 MHz reference clock: ``0.5 mW + 1.125 nW/Hz * 4 MHz = 5.0 mW``.
    """

    p_static: float = 0.5e-3
    k_dyn: float = 1.125e-9
    sleep_power: float = 2.8e-6  # ~1 uA @ 2.8 V with the watchdog running

    def __post_init__(self) -> None:
        if self.p_static < 0.0 or self.k_dyn < 0.0 or self.sleep_power < 0.0:
            raise ModelError("MCU power constants must be >= 0")

    def active_power(self, clock_hz: float) -> float:
        """Core power (W) while executing at ``clock_hz``."""
        if clock_hz <= 0.0:
            raise ModelError("clock frequency must be > 0")
        return self.p_static + self.k_dyn * clock_hz

    def scaling(self, clock_hz: float) -> float:
        """Active power relative to the 4 MHz Table IV reference."""
        return self.active_power(clock_hz) / self.active_power(REFERENCE_CLOCK_HZ)

    def equivalent_resistance(self, clock_hz: float, rail: float = RAIL_VOLTAGE) -> float:
        """Equivalent load resistance of the active core (eq. 8 style)."""
        return rail * rail / self.active_power(clock_hz)


@dataclass(frozen=True)
class AccelerometerPower:
    """LIS3L06AL accelerometer: constant power while enabled."""

    power: float = ACCELEROMETER_POWER
    on_time: float = ACCELEROMETER_ON_TIME

    def energy_per_measurement(self) -> float:
        """Energy of one measurement window (Table IV: 2.02 mJ)."""
        return self.power * self.on_time

    def equivalent_resistance(self, rail: float = RAIL_VOLTAGE) -> float:
        """Equivalent load resistance while on (Table IV: ~509 ohm)."""
        return rail * rail / self.power
