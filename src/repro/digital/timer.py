"""Timer/counter period measurement with clock quantisation.

Algorithm 1 measures the microgenerator period by counting MCU clock ticks
across input-signal cycles (Timer1 on the PIC).  The count is an integer,
so a single-period measurement carries a quantisation error of up to one
clock tick; averaging over the paper's 8 cycles reduces it by sqrt(8).
This is the mechanism behind the paper's trade-off: *"Low clock frequency
can save energy but the measurement of the input vibration frequency will
be less accurate."*
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.rng import SeedLike, ensure_rng


class TimerCounter:
    """An MCU timer counting clock ticks over input-signal periods.

    Parameters
    ----------
    clock_hz:
        Timer clock (the MCU clock; the paper's Timer1).
    width_bits:
        Counter width; overflows are counted (the real firmware chains an
        overflow interrupt), so width only matters for the overhead model.
    jitter_seconds:
        1-sigma analogue edge jitter of the comparator that digitises the
        generator signal (a small noise floor independent of the clock).
    """

    def __init__(
        self,
        clock_hz: float,
        width_bits: int = 16,
        jitter_seconds: float = 2e-6,
    ):
        if clock_hz <= 0.0:
            raise ModelError("timer: clock must be > 0")
        if width_bits < 8:
            raise ModelError("timer: width must be >= 8 bits")
        if jitter_seconds < 0.0:
            raise ModelError("timer: jitter must be >= 0")
        self.clock_hz = clock_hz
        self.width_bits = width_bits
        self.jitter_seconds = jitter_seconds

    @property
    def tick(self) -> float:
        """One timer tick in seconds."""
        return 1.0 / self.clock_hz

    def counts_for_period(self, period_seconds: float) -> int:
        """Ideal (noise-free) tick count for one input period."""
        if period_seconds <= 0.0:
            raise ModelError("period must be > 0")
        return int(round(period_seconds * self.clock_hz))

    def overflows_for_period(self, period_seconds: float) -> int:
        """Number of counter overflows while timing one period."""
        return self.counts_for_period(period_seconds) >> self.width_bits

    def measure_period(
        self,
        true_period: float,
        n_periods: int = 8,
        rng: SeedLike = None,
    ) -> float:
        """Measured average period over ``n_periods`` cycles (seconds).

        Each cycle's count is the true duration plus edge jitter, floored
        to the tick grid; the average of the per-cycle periods is returned
        -- exactly what Algorithm 1's 8-cycle loop computes.
        """
        if true_period <= 0.0:
            raise ModelError("period must be > 0")
        if n_periods < 1:
            raise ModelError("need at least one period")
        gen = ensure_rng(rng)
        # Hot loop (every tuning session starts with a frequency
        # measurement): hoist the tick property and bound methods, and
        # draw through the raw-variate methods -- ``jitter *
        # standard_normal()`` consumes the same bit stream and sums to
        # the same value as ``normal(0.0, jitter)`` (ditto ``tick *
        # random()`` for ``uniform(0.0, tick)``) without the location/
        # scale broadcasting overhead.
        tick = 1.0 / self.clock_hz
        clock_hz = self.clock_hz
        jitter = self.jitter_seconds
        std_normal = gen.standard_normal
        random = gen.random
        floor = math.floor
        total = 0.0
        for _ in range(n_periods):
            # float() unwraps the NumPy scalar draw (exact -- same IEEE
            # double) so the rest of the chain runs on plain floats
            # instead of ufunc-dispatching scalar ndarrays.
            noisy = true_period + jitter * float(std_normal())
            # Asynchronous sampling: the start/stop edges land uniformly
            # within a tick, flooring the count.
            phase = tick * float(random())
            counts = floor((noisy + phase) * clock_hz)
            total += counts * tick
        return total / n_periods

    def measure_frequency(
        self,
        true_frequency: float,
        n_periods: int = 8,
        rng: SeedLike = None,
    ) -> float:
        """Measured frequency (Hz) from an ``n_periods`` period average."""
        if true_frequency <= 0.0:
            raise ModelError("frequency must be > 0")
        period = self.measure_period(1.0 / true_frequency, n_periods, rng)
        if period <= 0.0:
            return 0.0
        return 1.0 / period

    def frequency_std(self, frequency: float, n_periods: int = 8) -> float:
        """Predicted 1-sigma frequency error of a measurement (Hz).

        Combines tick quantisation (uniform, var ``tick^2/12``) and edge
        jitter across ``n_periods`` averaged cycles:
        ``sigma_f ~= f^2 sqrt(tick^2/12 + jitter^2) / sqrt(n)``.
        """
        sigma_t = math.sqrt(self.tick**2 / 12.0 + self.jitter_seconds**2)
        return frequency**2 * sigma_t / math.sqrt(n_periods)

    def measure_interval(self, true_interval: float, rng: SeedLike = None) -> float:
        """Measure an arbitrary time interval (used for phase differences)."""
        if true_interval < 0.0:
            raise ModelError("interval must be >= 0")
        gen = ensure_rng(rng)
        tick = 1.0 / self.clock_hz
        noisy = true_interval + self.jitter_seconds * float(gen.standard_normal())
        phase = tick * float(gen.random())
        counts = math.floor(max(noisy, 0.0) / tick + phase / tick)
        return max(counts, 0) * tick
