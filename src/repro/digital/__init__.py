"""Digital controller substrate: the PIC16F884-class microcontroller.

- :mod:`repro.digital.power_model` -- per-operation power/energy constants
  reproducing the paper's Table IV measurements, with clock-frequency
  scaling for the MCU core.
- :mod:`repro.digital.timer` -- timer/counter period measurement with
  clock quantisation (why low clock frequencies measure less accurately).
- :mod:`repro.digital.mcu` -- the microcontroller model: clock, sleep and
  measurement operations with energy costs.
- :mod:`repro.digital.watchdog` -- periodic wake-up bookkeeping.
- :mod:`repro.digital.lut` -- the 8-bit frequency-to-position look-up
  table stored in MCU memory (Algorithm 1, step 10).
"""

from repro.digital.lut import FrequencyLut
from repro.digital.mcu import Microcontroller, Measurement
from repro.digital.power_model import AccelerometerPower, McuPowerModel
from repro.digital.timer import TimerCounter
from repro.digital.watchdog import WatchdogTimer

__all__ = [
    "AccelerometerPower",
    "FrequencyLut",
    "McuPowerModel",
    "Measurement",
    "Microcontroller",
    "TimerCounter",
    "WatchdogTimer",
]
