"""Watchdog timer: periodic MCU wake-ups.

Algorithm 1's outer loop sleeps until the watchdog fires (the paper's
second optimisation parameter, 60-600 s).  The class is deliberately tiny:
both simulation backends only need the schedule arithmetic, but keeping it
a first-class model object lets tests pin the semantics (first wake-up one
full period after start, no drift accumulation).
"""

from __future__ import annotations

from repro.errors import ModelError


class WatchdogTimer:
    """Fixed-period wake-up schedule starting at ``t0``."""

    def __init__(self, period: float, t0: float = 0.0):
        if period <= 0.0:
            raise ModelError("watchdog: period must be > 0")
        self.period = period
        self.t0 = t0

    def next_wakeup(self, now: float) -> float:
        """Earliest wake-up time strictly after ``now``."""
        if now < self.t0:
            return self.t0 + self.period
        n = int((now - self.t0) / self.period) + 1
        t = self.t0 + n * self.period
        # Guard against floating-point landing exactly on `now`.
        if t <= now:
            t += self.period
        return t

    def wakeups_until(self, horizon: float) -> int:
        """Number of wake-ups in ``(t0, horizon]``."""
        if horizon <= self.t0:
            return 0
        return int((horizon - self.t0) / self.period)
