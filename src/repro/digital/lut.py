"""The 8-bit frequency-to-position look-up table in MCU memory.

Algorithm 1 step 10: *"Find optimum position (8-bit) of tuning magnet
through look-up table which has been pre-obtained and stored in the
microcontroller memory."*  :class:`FrequencyLut` is that table: a dense
array over a quantised frequency axis mapping measured frequency to the
actuator position believed to retune the generator onto it.

The table is built from a :class:`repro.harvester.tuning_map.TuningMap`
during "factory characterisation" and is intentionally *frozen* -- if the
physical map drifted, the LUT would be stale, which is one reason the
paper pairs coarse LUT tuning with closed-loop fine tuning.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ModelError


class FrequencyLut:
    """Dense frequency -> 8-bit position table."""

    def __init__(self, f_min: float, f_max: float, positions: Sequence[int]):
        if not f_min < f_max:
            raise ModelError("LUT: need f_min < f_max")
        if len(positions) < 2:
            raise ModelError("LUT: need at least 2 entries")
        if any(not 0 <= p <= 255 for p in positions):
            raise ModelError("LUT: positions must fit in 8 bits")
        self.f_min = f_min
        self.f_max = f_max
        self.positions: List[int] = [int(p) for p in positions]

    @classmethod
    def from_tuning_map(
        cls, tuning_map, f_min: float, f_max: float, n_entries: int = 256
    ) -> "FrequencyLut":
        """Characterise a physical tuning map into a stored table."""
        return cls(f_min, f_max, tuning_map.build_lut(f_min, f_max, n_entries))

    def lookup(self, frequency_hz: float) -> int:
        """Optimum 8-bit position for a measured frequency (clamped)."""
        if frequency_hz <= self.f_min:
            return self.positions[0]
        if frequency_hz >= self.f_max:
            return self.positions[-1]
        n = len(self.positions)
        idx = int(round((frequency_hz - self.f_min) / (self.f_max - self.f_min) * (n - 1)))
        return self.positions[min(max(idx, 0), n - 1)]

    @property
    def frequency_step(self) -> float:
        """Frequency quantum of one table entry (Hz)."""
        return (self.f_max - self.f_min) / (len(self.positions) - 1)

    def __len__(self) -> int:
        return len(self.positions)
