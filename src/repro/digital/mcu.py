"""Microcontroller model (PIC16F884-class).

Wraps the power model and the timer into the operations Algorithm 1
performs, each returning a :class:`Measurement` carrying its result,
duration and energy so that both simulation backends account identically:

- :meth:`Microcontroller.measure_frequency` -- the 8-cycle Timer1 loop
  (coarse-tuning measurement; MCU energy only).
- :meth:`Microcontroller.measure_phase` -- the accelerometer-vs-generator
  phase comparison (fine tuning; MCU *and* accelerometer energy).
- :meth:`Microcontroller.sleep_power` -- standby draw with the watchdog
  running.

Durations reproduce the paper's Table IV operation times at the 4 MHz
reference clock and 65 Hz excitation: the measurement loop takes
``n_cycles / f_in`` (waveform-bound) plus a computation tail that scales
with ``1/f_clk``.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.digital.power_model import (
    ACCELEROMETER_ON_TIME,
    ACCELEROMETER_POWER,
    MCU_COARSE_TIME,
    MCU_FINE_TIME,
    REFERENCE_CLOCK_HZ,
    AccelerometerPower,
    McuPowerModel,
)
from repro.digital.timer import TimerCounter
from repro.errors import ModelError
from repro.rng import SeedLike, ensure_rng

#: Instruction cycles of the coarse computation tail (LUT lookup, division).
COARSE_CALC_CYCLES = 104000.0  # 26 ms at 4 MHz: 149 ms total at 65 Hz input
#: Instruction cycles of the fine computation tail (phase arithmetic).
FINE_CALC_CYCLES = 688000.0  # 172 ms at 4 MHz: 325 ms total at 65 Hz input
#: Extra analogue-peripheral power during phase measurement (ADC/comparator
#: running): lifts the 4 MHz fine-tuning row to Table IV's 6.5 mW.
FINE_PERIPHERAL_POWER = 1.5e-3


class Measurement(NamedTuple):
    """Result of one MCU operation: value, wall time and energy drawn.

    A ``NamedTuple`` rather than a dataclass: both backends create one
    per MCU operation on their hot paths, and tuple construction is a
    single C call where a frozen dataclass pays ``object.__setattr__``
    per field.  Still immutable, same field API.
    """

    value: float
    duration: float
    mcu_energy: float
    peripheral_energy: float = 0.0

    @property
    def total_energy(self) -> float:
        """MCU plus peripheral energy (J)."""
        return self.mcu_energy + self.peripheral_energy


class Microcontroller:
    """The tuning-control MCU with a configurable clock."""

    def __init__(
        self,
        clock_hz: float,
        power: Optional[McuPowerModel] = None,
        accelerometer: Optional[AccelerometerPower] = None,
        n_measure_cycles: int = 8,
    ):
        if clock_hz <= 0.0:
            raise ModelError("MCU clock must be > 0")
        if n_measure_cycles < 1:
            raise ModelError("need at least one measurement cycle")
        self.clock_hz = clock_hz
        self.power = power or McuPowerModel()
        self.accelerometer = accelerometer or AccelerometerPower()
        self.n_measure_cycles = n_measure_cycles
        self.timer = TimerCounter(clock_hz)
        # Active-mode power is a pure function of the (fixed) clock;
        # computed once so the per-measurement hot path reads a float.
        self._active_power = self.power.active_power(clock_hz)

    # -- operations -----------------------------------------------------------

    def measure_frequency(self, true_frequency: float, rng: SeedLike = None) -> Measurement:
        """Run the 8-cycle frequency measurement (Algorithm 1, steps 4-9)."""
        gen = ensure_rng(rng)
        f_measured = self.timer.measure_frequency(
            true_frequency, self.n_measure_cycles, gen
        )
        duration = (
            self.n_measure_cycles / true_frequency
            + COARSE_CALC_CYCLES / self.clock_hz
        )
        energy = self._active_power * duration
        return Measurement(f_measured, duration, energy)

    def measure_phase(self, true_phase_seconds: float, rng: SeedLike = None) -> Measurement:
        """Measure the accelerometer/generator phase difference (Algorithm 3).

        The accelerometer is powered for its Table IV window; the returned
        value keeps the sign of the true phase difference (the firmware
        derives direction from which edge arrives first).
        """
        gen = ensure_rng(rng)
        magnitude = self.timer.measure_interval(abs(true_phase_seconds), gen)
        value = magnitude if true_phase_seconds >= 0.0 else -magnitude
        duration = (
            self.accelerometer.on_time + FINE_CALC_CYCLES / self.clock_hz
        )
        mcu_energy = (self._active_power + FINE_PERIPHERAL_POWER) * duration
        return Measurement(
            value,
            duration,
            mcu_energy,
            peripheral_energy=self.accelerometer.energy_per_measurement(),
        )

    def busy(self, duration: float) -> Measurement:
        """Account an arbitrary active-mode stretch (e.g. issuing commands)."""
        if duration < 0.0:
            raise ModelError("duration must be >= 0")
        return Measurement(0.0, duration, self._active_power * duration)

    # -- standby ------------------------------------------------------------

    def sleep_power(self) -> float:
        """Standby power (W) with the watchdog timer running."""
        return self.power.sleep_power

    def frequency_resolution(self, frequency: float) -> float:
        """Predicted 1-sigma error of :meth:`measure_frequency` (Hz)."""
        return self.timer.frequency_std(frequency, self.n_measure_cycles)
