"""The content-addressed on-disk result store.

:class:`ResultStore` is a single-file SQLite database mapping
``Scenario.cache_key()`` (the scenario's canonical content hash) to the
fully JSON-round-trippable :meth:`~repro.system.result.SystemResult.to_payload`
of its simulation, plus provenance: which backend produced it, which
library version, how long it took and when.  Because the key is a pure
function of the scenario *content*, re-labelled or re-submitted copies of
the same simulation dedupe to one row -- across batches, across
campaigns, across processes and across time.

Design notes
------------
- **Stdlib only.**  SQLite ships with CPython; no new dependency.
- **Safe under fan-out.**  The database runs in WAL mode and every
  (process, thread) pair gets its own lazily opened connection, so a
  store object can be shared across a :class:`~repro.core.batch.BatchRunner`
  thread pool or pickled into process workers.  Writes use
  ``INSERT OR IGNORE`` inside immediate transactions: when two runners
  race on the same scenario, exactly one row survives and both see it.
- **Queryable.**  Headline metrics and the three Table V configuration
  fields are stored as indexed columns next to the payload, so
  ``store.query(family=..., min_transmissions=...)`` never parses JSON.
- **Canonical bytes.**  Payloads are serialised with sorted keys and
  fixed separators, so identical results are byte-identical rows --
  which is what the concurrent-writer tests assert.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigError, DesignError, StoreError
from repro.obs.metrics import metrics as _obs_metrics
from repro.obs.state import STATE as _OBS
from repro.scenario import Scenario
from repro.system.result import SystemResult

#: Store operation telemetry: counts and latency per primitive.  The
#: ``hit`` label on ``get`` distinguishes a served row from a miss.
_STORE_OPS = _obs_metrics().counter(
    "repro_store_ops_total",
    "Result-store operations by kind and outcome",
    ("op", "outcome"),
)
_STORE_OP_SECONDS = _obs_metrics().histogram(
    "repro_store_op_seconds",
    "Result-store operation latency",
    ("op",),
)

#: On-disk layout version, recorded in ``store_meta``; a store created by
#: an incompatible future layout is refused instead of misread.  Purely
#: *additive* layout growth (the ``jobs`` table the service layer added)
#: keeps the version: ``CREATE TABLE IF NOT EXISTS`` inside the
#: version-checked ``_init_schema`` transaction migrates an older file in
#: place, and older readers simply never touch the extra table.
STORE_SCHEMA = 1

_TABLES = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    key            TEXT PRIMARY KEY,
    name           TEXT NOT NULL DEFAULT '',
    family         TEXT NOT NULL DEFAULT '',
    backend        TEXT NOT NULL,
    horizon        REAL NOT NULL,
    seed           INTEGER,
    clock_hz       REAL NOT NULL,
    watchdog_s     REAL NOT NULL,
    tx_interval_s  REAL NOT NULL,
    transmissions  INTEGER NOT NULL,
    final_voltage  REAL NOT NULL,
    scenario       TEXT NOT NULL,
    payload        TEXT NOT NULL,
    repro_version  TEXT NOT NULL,
    wall_time_s    REAL NOT NULL DEFAULT 0.0,
    created_at     TEXT NOT NULL,
    created_unix   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_family ON results(family);
CREATE INDEX IF NOT EXISTS idx_results_backend ON results(backend);
CREATE INDEX IF NOT EXISTS idx_results_created ON results(created_unix);
CREATE TABLE IF NOT EXISTS campaigns (
    name         TEXT PRIMARY KEY,
    source       TEXT NOT NULL DEFAULT '',
    total        INTEGER NOT NULL,
    created_at   TEXT NOT NULL,
    created_unix REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS campaign_scenarios (
    campaign TEXT NOT NULL,
    idx      INTEGER NOT NULL,
    key      TEXT NOT NULL,
    scenario TEXT NOT NULL,
    PRIMARY KEY (campaign, idx)
);
CREATE INDEX IF NOT EXISTS idx_campaign_keys ON campaign_scenarios(key);
CREATE TABLE IF NOT EXISTS studies (
    name         TEXT PRIMARY KEY,
    spec         TEXT NOT NULL,
    spec_key     TEXT NOT NULL,
    design_name  TEXT NOT NULL,
    points       TEXT NOT NULL,
    keys         TEXT NOT NULL,
    total        INTEGER NOT NULL,
    created_at   TEXT NOT NULL,
    created_unix REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id             TEXT PRIMARY KEY,
    kind           TEXT NOT NULL,
    name           TEXT NOT NULL,
    payload        TEXT NOT NULL,
    status         TEXT NOT NULL DEFAULT 'queued',
    priority       INTEGER NOT NULL DEFAULT 0,
    owner          TEXT NOT NULL DEFAULT '',
    worker         TEXT,
    attempts       INTEGER NOT NULL DEFAULT 0,
    error          TEXT,
    total          INTEGER NOT NULL DEFAULT 0,
    submitted_at   TEXT NOT NULL,
    submitted_unix REAL NOT NULL,
    started_unix   REAL,
    finished_unix  REAL,
    heartbeat_unix REAL
);
CREATE INDEX IF NOT EXISTS idx_jobs_claim ON jobs(status, priority, submitted_unix);
CREATE TABLE IF NOT EXISTS coord_runs (
    name         TEXT PRIMARY KEY,
    manifest     TEXT NOT NULL,
    partitions   INTEGER NOT NULL,
    created_at   TEXT NOT NULL,
    created_unix REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS coord_partitions (
    run          TEXT NOT NULL,
    idx          INTEGER NOT NULL,
    state        TEXT NOT NULL DEFAULT 'queued',
    worker       TEXT NOT NULL DEFAULT '',
    job_id       TEXT NOT NULL DEFAULT '',
    attempts     INTEGER NOT NULL DEFAULT 0,
    rows_merged  INTEGER NOT NULL DEFAULT 0,
    error        TEXT NOT NULL DEFAULT '',
    updated_unix REAL NOT NULL DEFAULT 0.0,
    PRIMARY KEY (run, idx)
);
"""

#: Every ``results`` column, in table order -- the raw-row shape
#: :meth:`ResultStore.iter_raw` yields and :meth:`ResultStore.put_raw`
#: accepts.  Merges copy rows in this shape so the destination keeps the
#: source's exact canonical bytes *and* provenance (who simulated it,
#: when, on which library version).
RESULT_COLUMNS = (
    "key", "name", "family", "backend", "horizon", "seed",
    "clock_hz", "watchdog_s", "tx_interval_s",
    "transmissions", "final_voltage",
    "scenario", "payload", "repro_version", "wall_time_s",
    "created_at", "created_unix",
)


def canonical_json(payload: object) -> str:
    """The store's one serialisation: sorted keys, fixed separators.

    Equal payloads always produce identical bytes, making row-level
    byte comparison a meaningful integrity check.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _utc_now() -> datetime:
    return datetime.now(timezone.utc)


def scenario_family(scenario: Scenario) -> str:
    """The family label a scenario's name encodes (``""`` if none).

    Family expansions name their members ``<family>/g<G>r<R>``
    (:meth:`repro.system.stochastic.StochasticFamily.expand`); everything
    before the first ``/`` is the family.  Unnamed or flat-named
    scenarios belong to no family.
    """
    name = scenario.name or ""
    return name.split("/", 1)[0] if "/" in name else ""


@dataclass(frozen=True)
class StoredResult:
    """One store row without its (potentially large) payload."""

    key: str
    name: str
    family: str
    backend: str
    horizon: float
    seed: Optional[int]
    clock_hz: float
    watchdog_s: float
    tx_interval_s: float
    transmissions: int
    final_voltage: float
    repro_version: str
    wall_time_s: float
    created_at: str

    @property
    def transmissions_per_hour(self) -> float:
        """Figure of merit normalised to one hour."""
        if self.horizon <= 0.0:
            return 0.0
        return self.transmissions * 3600.0 / self.horizon

    def to_row_dict(self) -> dict:
        """Flat JSON/CSV-ready dictionary of the indexed columns."""
        return {
            "key": self.key,
            "name": self.name,
            "family": self.family,
            "backend": self.backend,
            "horizon": self.horizon,
            "seed": self.seed,
            "clock_hz": self.clock_hz,
            "watchdog_s": self.watchdog_s,
            "tx_interval_s": self.tx_interval_s,
            "transmissions": self.transmissions,
            "transmissions_per_hour": self.transmissions_per_hour,
            "final_voltage": self.final_voltage,
            "repro_version": self.repro_version,
            "wall_time_s": self.wall_time_s,
            "created_at": self.created_at,
        }


@dataclass(frozen=True)
class StoredStudy:
    """One study-journal row (:mod:`repro.core.study`), decoded.

    ``keys`` holds the content keys of every simulation the study
    issues, so progress is derivable from the journal alone -- no stage
    registries (which a plugin-registered study's spec may need) are
    required to *inspect* a store.
    """

    name: str
    spec: dict
    spec_key: str
    design_name: str
    points: list
    keys: list
    total: int
    created_at: str

    def done(self, store: "ResultStore") -> int:
        """How many of this study's simulations ``store`` already holds."""
        return store.count_keys(self.keys)


@dataclass(frozen=True)
class StoreStats:
    """Aggregate view of a store (``repro-wsn store stats``)."""

    path: str
    n_results: int
    n_campaigns: int
    by_backend: Tuple[Tuple[str, int], ...]
    by_family: Tuple[Tuple[str, int], ...]
    payload_bytes: int
    file_bytes: int
    total_wall_time_s: float
    oldest: Optional[str]
    newest: Optional[str]
    by_job_status: Tuple[Tuple[str, int], ...] = ()
    n_shards: int = 1

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"store: {self.path}",
            f"results: {self.n_results} "
            f"({self.payload_bytes / 1e6:.2f} MB payload, "
            f"{self.file_bytes / 1e6:.2f} MB on disk)",
            f"campaigns: {self.n_campaigns}",
            f"simulated wall time banked: {self.total_wall_time_s:.2f} s",
        ]
        if self.n_shards > 1:
            lines.insert(1, f"shards: {self.n_shards}")
        if self.by_job_status:
            lines.append(
                "jobs: "
                + ", ".join(
                    f"{status} {count}" for status, count in self.by_job_status
                )
            )
        if self.by_backend:
            lines.append(
                "by backend: "
                + ", ".join(f"{name} {count}" for name, count in self.by_backend)
            )
        if self.by_family:
            lines.append(
                "by family: "
                + ", ".join(
                    f"{name or '(none)'} {count}" for name, count in self.by_family
                )
            )
        if self.oldest:
            lines.append(f"span: {self.oldest} .. {self.newest}")
        return "\n".join(lines)


class ResultStore:
    """Content-addressed persistent cache of simulation results.

    Parameters
    ----------
    path:
        Database file.  Created (with schema) on first open; the parent
        directory must exist.  In-memory databases are rejected because
        the store's whole point is to outlive the process (and each
        worker connection would see a different empty database).

    A store instance is cheap, picklable (workers re-open their own
    connections) and safe to share across threads and processes.
    """

    def __init__(self, path: Union[str, Path]):
        text = str(path)
        if text == ":memory:" or text.startswith("file::memory:"):
            raise ConfigError(
                "the result store must live on disk (an in-memory store "
                "would give every worker its own empty database)"
            )
        self.path = Path(text)
        if not self.path.parent.exists():
            raise ConfigError(
                f"store directory {str(self.path.parent)!r} does not exist"
            )
        self._connections: Dict[Tuple[int, int], sqlite3.Connection] = {}
        self._init_schema()

    # -- connection management ------------------------------------------------

    def _conn(self) -> sqlite3.Connection:
        """The calling (process, thread)'s own connection, opened lazily."""
        ident = (os.getpid(), threading.get_ident())
        conn = self._connections.get(ident)
        if conn is None:
            try:
                conn = sqlite3.connect(str(self.path), timeout=60.0)
            except sqlite3.Error as exc:
                raise ConfigError(f"cannot open store {self.path}: {exc}") from exc
            conn.isolation_level = None  # explicit transactions only
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=60000")
            self._connections[ident] = conn
        return conn

    def _init_schema(self) -> None:
        conn = self._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            # Not executescript(): that would commit the open transaction.
            for statement in _TABLES.split(";"):
                if statement.strip():
                    conn.execute(statement)
            row = conn.execute(
                "SELECT value FROM store_meta WHERE key='schema'"
            ).fetchone()
            if row is None:
                now = _utc_now()
                conn.execute(
                    "INSERT INTO store_meta(key, value) VALUES (?, ?), (?, ?)",
                    ("schema", str(STORE_SCHEMA), "created_at", now.isoformat()),
                )
            elif row[0] != str(STORE_SCHEMA):
                raise DesignError(
                    f"store {self.path} has layout version {row[0]} "
                    f"(this library reads version {STORE_SCHEMA})"
                )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def close(self) -> None:
        """Close the calling (process, thread)'s connection.

        sqlite3 connections are thread-bound, so only the owner may
        close one; other workers' connections close when their threads
        or processes end.
        """
        conn = self._connections.pop((os.getpid(), threading.get_ident()), None)
        if conn is not None:
            try:
                conn.close()
            except sqlite3.Error:
                pass

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # Connections cannot cross process boundaries; workers reconnect.
    def __getstate__(self) -> dict:
        return {"path": self.path}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self._connections = {}

    def __repr__(self) -> str:
        return f"ResultStore({str(self.path)!r})"

    # -- writing ----------------------------------------------------------------

    def put(
        self,
        scenario: Scenario,
        result: SystemResult,
        wall_time_s: float = 0.0,
    ) -> bool:
        """Store ``result`` under ``scenario``'s content hash.

        Idempotent: the first writer of a key wins and later writes of
        the same key are no-ops (identical content by construction --
        the key covers everything that determines the simulation).
        Returns ``True`` when this call inserted the row.
        """
        import repro

        t0 = time.perf_counter() if _OBS.metrics_on else 0.0
        key = scenario.cache_key()
        now = _utc_now()
        conn = self._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            cursor = conn.execute(
                """
                INSERT OR IGNORE INTO results (
                    key, name, family, backend, horizon, seed,
                    clock_hz, watchdog_s, tx_interval_s,
                    transmissions, final_voltage,
                    scenario, payload, repro_version, wall_time_s,
                    created_at, created_unix
                ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                (
                    key,
                    scenario.name,
                    scenario_family(scenario),
                    scenario.backend,
                    scenario.horizon,
                    scenario.seed,
                    scenario.config.clock_hz,
                    scenario.config.watchdog_s,
                    scenario.config.tx_interval_s,
                    int(result.transmissions),
                    float(result.final_voltage),
                    canonical_json(scenario.to_dict()),
                    canonical_json(result.to_payload()),
                    repro.__version__,
                    float(wall_time_s),
                    now.isoformat(),
                    now.timestamp(),
                ),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        inserted = cursor.rowcount == 1
        if _OBS.metrics_on:
            _STORE_OPS.inc(op="put", outcome="insert" if inserted else "dedup")
            _STORE_OP_SECONDS.observe(time.perf_counter() - t0, op="put")
        return inserted

    def put_raw(self, row: Tuple, source: str = "") -> bool:
        """Import one raw results row (a :data:`RESULT_COLUMNS` tuple).

        The merge/sync primitive: unlike :meth:`put` it preserves the
        source row's exact canonical bytes and provenance columns.
        First writer wins, but a key collision with *different*
        canonical bytes (scenario or payload) is a hard
        :class:`~repro.errors.StoreError` -- content-addressed rows may
        only ever collide identically.  ``source`` labels where the row
        came from in that error.  Returns ``True`` when this call
        inserted the row.
        """
        if len(row) != len(RESULT_COLUMNS):
            raise StoreError(
                f"raw result row must have {len(RESULT_COLUMNS)} columns "
                f"({', '.join(RESULT_COLUMNS)}), got {len(row)}"
            )
        placeholders = ",".join("?" * len(RESULT_COLUMNS))
        conn = self._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            cursor = conn.execute(
                f"INSERT OR IGNORE INTO results ({', '.join(RESULT_COLUMNS)}) "
                f"VALUES ({placeholders})",
                tuple(row),
            )
            existing = None
            if cursor.rowcount != 1:
                existing = conn.execute(
                    "SELECT scenario, payload FROM results WHERE key=?",
                    (row[0],),
                ).fetchone()
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if existing is None:
            return True
        scenario_idx = RESULT_COLUMNS.index("scenario")
        payload_idx = RESULT_COLUMNS.index("payload")
        if (row[scenario_idx], row[payload_idx]) != tuple(existing):
            diverged = [
                label
                for label, mine, theirs in (
                    ("scenario", existing[0], row[scenario_idx]),
                    ("payload", existing[1], row[payload_idx]),
                )
                if mine != theirs
            ]
            raise StoreError(
                f"result {row[0]} in {self.path} and "
                f"{source or 'the incoming row'} share a content key but "
                f"their canonical bytes differ ({', '.join(diverged)}); "
                f"one of the stores is corrupt or non-deterministic"
            )
        return False

    # -- reading ----------------------------------------------------------------

    @staticmethod
    def _key_of(scenario_or_key: Union[Scenario, str]) -> str:
        if isinstance(scenario_or_key, Scenario):
            return scenario_or_key.cache_key()
        return str(scenario_or_key)

    def get(self, scenario_or_key: Union[Scenario, str]) -> Optional[SystemResult]:
        """The stored result for a scenario (or raw key), or ``None``."""
        t0 = time.perf_counter() if _OBS.metrics_on else 0.0
        key = self._key_of(scenario_or_key)
        row = self._conn().execute(
            "SELECT payload FROM results WHERE key=?", (key,)
        ).fetchone()
        if _OBS.metrics_on:
            _STORE_OPS.inc(op="get", outcome="hit" if row else "miss")
            _STORE_OP_SECONDS.observe(time.perf_counter() - t0, op="get")
        if row is None:
            return None
        return SystemResult.from_payload(json.loads(row[0]))

    def get_payload_text(
        self, scenario_or_key: Union[Scenario, str]
    ) -> Optional[str]:
        """The stored payload's exact bytes (for integrity checks)."""
        key = self._key_of(scenario_or_key)
        row = self._conn().execute(
            "SELECT payload FROM results WHERE key=?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def get_raw(self, scenario_or_key: Union[Scenario, str]) -> Optional[Tuple]:
        """One stored row as a raw :data:`RESULT_COLUMNS` tuple, or ``None``.

        The point lookup sibling of :meth:`iter_raw`: exact canonical
        bytes and provenance columns, suitable for :meth:`put_raw` on
        another store.  The service layer serves these to remote
        coordinators so a merge over HTTP preserves the same bytes a
        file-level merge would.
        """
        key = self._key_of(scenario_or_key)
        row = self._conn().execute(
            f"SELECT {', '.join(RESULT_COLUMNS)} FROM results WHERE key=?",
            (key,),
        ).fetchone()
        return None if row is None else tuple(row)

    def get_scenario(
        self, scenario_or_key: Union[Scenario, str]
    ) -> Optional[Scenario]:
        """The scenario document stored next to a result, or ``None``."""
        key = self._key_of(scenario_or_key)
        row = self._conn().execute(
            "SELECT scenario FROM results WHERE key=?", (key,)
        ).fetchone()
        return None if row is None else Scenario.from_dict(json.loads(row[0]))

    def __contains__(self, scenario_or_key: Union[Scenario, str]) -> bool:
        key = self._key_of(scenario_or_key)
        row = self._conn().execute(
            "SELECT 1 FROM results WHERE key=?", (key,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        return int(self._conn().execute("SELECT COUNT(*) FROM results").fetchone()[0])

    def count_keys(self, keys: List[str]) -> int:
        """How many of ``keys`` (assumed distinct) have stored results.

        One aggregated query per 500 keys instead of a SELECT per key --
        what study/campaign progress polls want.
        """
        conn = self._conn()
        total = 0
        for start in range(0, len(keys), 500):
            chunk = keys[start : start + 500]
            placeholders = ",".join("?" * len(chunk))
            total += int(
                conn.execute(
                    f"SELECT COUNT(*) FROM results WHERE key IN ({placeholders})",
                    chunk,
                ).fetchone()[0]
            )
        return total

    def have_keys(self, keys: List[str]) -> set:
        """The subset of ``keys`` that have stored results.

        The set-valued sibling of :meth:`count_keys`, for callers that
        need to know *which* keys are done (campaign progress over a
        sharded store), again one aggregated query per 500 keys.
        """
        conn = self._conn()
        present: set = set()
        distinct = list(dict.fromkeys(keys))
        for start in range(0, len(distinct), 500):
            chunk = distinct[start : start + 500]
            placeholders = ",".join("?" * len(chunk))
            present.update(
                row[0]
                for row in conn.execute(
                    f"SELECT key FROM results WHERE key IN ({placeholders})",
                    chunk,
                )
            )
        return present

    def keys(self) -> List[str]:
        """Every stored content key, sorted."""
        return [
            row[0]
            for row in self._conn().execute(
                "SELECT key FROM results ORDER BY key"
            )
        ]

    def iter_raw(self) -> Iterator[Tuple]:
        """Every results row as a raw :data:`RESULT_COLUMNS` tuple.

        Key-ordered and streamed from the reader's own connection; the
        merge primitives feed these straight into :meth:`put_raw` on
        another store.
        """
        cursor = self._conn().execute(
            f"SELECT {', '.join(RESULT_COLUMNS)} FROM results ORDER BY key"
        )
        for row in cursor:
            yield tuple(row)

    # -- study journal ----------------------------------------------------------

    def put_study(
        self,
        name: str,
        spec: dict,
        spec_key: str,
        design_name: str,
        points: list,
        keys: list,
    ) -> bool:
        """Journal a study (spec + resolved design matrix) under ``name``.

        ``keys`` are the content keys of every simulation the study
        issues (deduplicated design points + the original design);
        ``total`` is derived from them.  First writer wins, exactly
        like :meth:`put`: when two runners race on the same name, one
        row survives and both see it.  Returns ``True`` when this call
        inserted the row.  Spec consistency (same name, different spec)
        is the caller's check -- :class:`~repro.core.study.Study`
        compares ``spec_key``.
        """
        now = _utc_now()
        conn = self._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO studies(name, spec, spec_key, "
                "design_name, points, keys, total, created_at, created_unix) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    name,
                    canonical_json(spec),
                    spec_key,
                    design_name,
                    canonical_json(points),
                    canonical_json(list(keys)),
                    len(keys),
                    now.isoformat(),
                    now.timestamp(),
                ),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return cursor.rowcount == 1

    _STUDY_COLUMNS = (
        "name, spec, spec_key, design_name, points, keys, total, created_at"
    )

    @staticmethod
    def _study_row(row) -> StoredStudy:
        return StoredStudy(
            name=row[0],
            spec=json.loads(row[1]),
            spec_key=row[2],
            design_name=row[3],
            points=json.loads(row[4]),
            keys=json.loads(row[5]),
            total=int(row[6]),
            created_at=row[7],
        )

    def get_study(self, name: str) -> Optional[StoredStudy]:
        """The decoded study-journal row for ``name``, or ``None``."""
        row = self._conn().execute(
            f"SELECT {self._STUDY_COLUMNS} FROM studies WHERE name=?",
            (name,),
        ).fetchone()
        return None if row is None else self._study_row(row)

    def studies(self) -> List[StoredStudy]:
        """Every journaled study row, sorted by name."""
        return [
            self._study_row(row)
            for row in self._conn().execute(
                f"SELECT {self._STUDY_COLUMNS} FROM studies ORDER BY name"
            )
        ]

    def study_names(self) -> List[str]:
        """Names of every journaled study, sorted."""
        return [
            row[0]
            for row in self._conn().execute(
                "SELECT name FROM studies ORDER BY name"
            )
        ]

    # -- querying ---------------------------------------------------------------

    def query(
        self,
        family: Optional[str] = None,
        backend: Optional[str] = None,
        name_like: Optional[str] = None,
        min_transmissions: Optional[int] = None,
        max_transmissions: Optional[int] = None,
        min_final_voltage: Optional[float] = None,
        max_final_voltage: Optional[float] = None,
        clock_hz: Optional[float] = None,
        watchdog_s: Optional[float] = None,
        tx_interval_s: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[StoredResult]:
        """Filter stored rows on indexed columns (payloads stay on disk).

        All filters combine with AND; ``name_like`` is a SQL ``LIKE``
        pattern (``%`` wildcards).  Rows come back oldest-first, then by
        key for a deterministic order within one timestamp.
        """
        clauses: List[str] = []
        params: List[object] = []

        def _where(condition: str, value: object) -> None:
            clauses.append(condition)
            params.append(value)

        if family is not None:
            _where("family = ?", family)
        if backend is not None:
            _where("backend = ?", backend)
        if name_like is not None:
            _where("name LIKE ?", name_like)
        if min_transmissions is not None:
            _where("transmissions >= ?", int(min_transmissions))
        if max_transmissions is not None:
            _where("transmissions <= ?", int(max_transmissions))
        if min_final_voltage is not None:
            _where("final_voltage >= ?", float(min_final_voltage))
        if max_final_voltage is not None:
            _where("final_voltage <= ?", float(max_final_voltage))
        if clock_hz is not None:
            _where("clock_hz = ?", float(clock_hz))
        if watchdog_s is not None:
            _where("watchdog_s = ?", float(watchdog_s))
        if tx_interval_s is not None:
            _where("tx_interval_s = ?", float(tx_interval_s))

        sql = (
            "SELECT key, name, family, backend, horizon, seed, clock_hz, "
            "watchdog_s, tx_interval_s, transmissions, final_voltage, "
            "repro_version, wall_time_s, created_at FROM results"
        )
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY created_unix, key"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        return [
            StoredResult(
                key=row[0],
                name=row[1],
                family=row[2],
                backend=row[3],
                horizon=row[4],
                seed=row[5],
                clock_hz=row[6],
                watchdog_s=row[7],
                tx_interval_s=row[8],
                transmissions=row[9],
                final_voltage=row[10],
                repro_version=row[11],
                wall_time_s=row[12],
                created_at=row[13],
            )
            for row in self._conn().execute(sql, params)
        ]

    def iter_results(self, **filters) -> Iterator[Tuple[StoredResult, SystemResult]]:
        """Yield (row, full result) pairs for :meth:`query` filters."""
        for row in self.query(**filters):
            result = self.get(row.key)
            if result is not None:
                yield row, result

    # -- export -----------------------------------------------------------------

    def export_json(self, include_payloads: bool = False, **filters) -> str:
        """Matching rows as a JSON document (optionally with payloads)."""
        entries = []
        for row in self.query(**filters):
            entry = row.to_row_dict()
            if include_payloads:
                text = self.get_payload_text(row.key)
                entry["result"] = None if text is None else json.loads(text)
            entries.append(entry)
        return json.dumps(
            {"schema": STORE_SCHEMA, "count": len(entries), "results": entries},
            indent=2,
            sort_keys=True,
        )

    def export_csv(self, **filters) -> str:
        """Matching rows as CSV over the indexed scalar columns.

        Rendered with :mod:`csv` so arbitrary scenario names (commas,
        quotes, newlines) stay one properly quoted field.
        """
        import csv
        import io

        header = [
            "key", "name", "family", "backend", "horizon", "seed",
            "clock_hz", "watchdog_s", "tx_interval_s", "transmissions",
            "transmissions_per_hour", "final_voltage", "repro_version",
            "wall_time_s", "created_at",
        ]
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(header)
        for row in self.query(**filters):
            values = row.to_row_dict()
            writer.writerow(
                [
                    ""
                    if values[column] is None
                    else f"{values[column]:.9g}"
                    if isinstance(values[column], float)
                    else values[column]
                    for column in header
                ]
            )
        return buf.getvalue().rstrip("\n")

    # -- maintenance -------------------------------------------------------------

    def stats(self) -> StoreStats:
        """Aggregate counts, sizes and provenance span."""
        conn = self._conn()
        n_results = int(conn.execute("SELECT COUNT(*) FROM results").fetchone()[0])
        n_campaigns = int(
            conn.execute("SELECT COUNT(*) FROM campaigns").fetchone()[0]
        )
        by_backend = tuple(
            (row[0], int(row[1]))
            for row in conn.execute(
                "SELECT backend, COUNT(*) FROM results "
                "GROUP BY backend ORDER BY backend"
            )
        )
        by_family = tuple(
            (row[0], int(row[1]))
            for row in conn.execute(
                "SELECT family, COUNT(*) FROM results "
                "GROUP BY family ORDER BY family"
            )
        )
        by_job_status = tuple(
            (row[0], int(row[1]))
            for row in conn.execute(
                "SELECT status, COUNT(*) FROM jobs "
                "GROUP BY status ORDER BY status"
            )
        )
        payload_bytes, wall_time, oldest, newest = conn.execute(
            "SELECT COALESCE(SUM(LENGTH(payload)), 0), "
            "COALESCE(SUM(wall_time_s), 0.0), "
            "MIN(created_at), MAX(created_at) FROM results"
        ).fetchone()
        file_bytes = self.path.stat().st_size if self.path.exists() else 0
        return StoreStats(
            path=str(self.path),
            n_results=n_results,
            n_campaigns=n_campaigns,
            by_backend=by_backend,
            by_family=by_family,
            payload_bytes=int(payload_bytes),
            file_bytes=int(file_bytes),
            total_wall_time_s=float(wall_time),
            oldest=oldest,
            newest=newest,
            by_job_status=by_job_status,
        )

    def gc(
        self,
        older_than_days: Optional[float] = None,
        family: Optional[str] = None,
        orphans: bool = False,
        dry_run: bool = False,
        force: bool = False,
    ) -> int:
        """Delete matching result rows and reclaim their space.

        ``older_than_days`` keeps recent work, ``family`` targets one
        family's rows, ``orphans`` selects rows no campaign references.
        With no selector at all nothing is deleted (an unfiltered purge
        must be an explicit decision -- pass ``older_than_days=0``).
        Returns the number of (to-be-)deleted rows; ``dry_run`` only
        counts.

        Rows an *active* (queued/running) job derives its progress from
        are protected: deleting them would silently regress the job and
        force re-simulation, so matching any of them raises
        :class:`~repro.errors.StoreError` naming the jobs.  ``force``
        overrides the guard (and the jobs re-simulate).
        """
        if older_than_days is None and family is None and not orphans:
            return 0
        candidates = self._gc_candidates(older_than_days, family, orphans)
        if candidates and not force:
            protected = self._active_job_keys()
            hit = protected.keys() & set(candidates)
            if hit:
                jobs = sorted({job for key in hit for job in protected[key]})
                raise StoreError(
                    f"gc would delete {len(hit)} result row(s) that active "
                    f"job(s) {', '.join(jobs)} derive their progress from; "
                    f"wait for them or pass force=True (--force)"
                )
        if dry_run:
            return len(candidates)
        return self._delete_keys(candidates)

    def _gc_candidates(
        self,
        older_than_days: Optional[float],
        family: Optional[str],
        orphans: bool,
    ) -> List[str]:
        """Keys of the rows the given gc selectors match."""
        clauses: List[str] = []
        params: List[object] = []
        if older_than_days is not None:
            cutoff = _utc_now().timestamp() - float(older_than_days) * 86400.0
            clauses.append("created_unix <= ?")
            params.append(cutoff)
        if family is not None:
            clauses.append("family = ?")
            params.append(family)
        if orphans:
            clauses.append("key NOT IN (SELECT key FROM campaign_scenarios)")
        where = " AND ".join(clauses) or "1"
        return [
            row[0]
            for row in self._conn().execute(
                f"SELECT key FROM results WHERE {where}", params
            )
        ]

    def _delete_keys(self, keys: List[str]) -> int:
        """Delete rows by key (chunked), compact, return the count."""
        if not keys:
            return 0
        conn = self._conn()
        deleted = 0
        conn.execute("BEGIN IMMEDIATE")
        try:
            for start in range(0, len(keys), 500):
                chunk = keys[start : start + 500]
                placeholders = ",".join("?" * len(chunk))
                deleted += conn.execute(
                    f"DELETE FROM results WHERE key IN ({placeholders})",
                    chunk,
                ).rowcount
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if deleted:
            conn.execute("VACUUM")
        return int(deleted)

    def _active_job_keys(self) -> Dict[str, List[str]]:
        """Result keys active (queued/running) jobs derive progress from.

        Maps each protected key to the job ids that reference it:
        campaign/scenario jobs reference their journaled campaign's
        keys, study jobs the study journal's key list.  Jobs whose
        journal does not exist yet protect nothing -- there is nothing
        stored to lose.
        """
        conn = self._conn()
        protected: Dict[str, List[str]] = {}
        for job_id, kind, name in conn.execute(
            "SELECT id, kind, name FROM jobs "
            "WHERE status IN ('queued', 'running')"
        ).fetchall():
            if kind == "study":
                row = conn.execute(
                    "SELECT keys FROM studies WHERE name=?", (name,)
                ).fetchone()
                keys = json.loads(row[0]) if row is not None else []
            else:
                keys = [
                    r[0]
                    for r in conn.execute(
                        "SELECT key FROM campaign_scenarios WHERE campaign=?",
                        (name,),
                    )
                ]
            for key in keys:
                protected.setdefault(key, []).append(job_id)
        return protected
