"""Merging and syncing content-addressed stores.

Because every result row is keyed by its scenario's content hash and
written first-writer-wins in one canonical byte shape, two stores are
trivially mergeable: copy the rows the destination lacks, verify that
rows both sides hold are *byte-identical*, and refuse loudly when they
are not (:class:`~repro.errors.StoreError` -- diverging bytes under one
content key mean corruption or non-determinism, never a policy choice).

:func:`merge_stores` copies raw rows (exact canonical bytes *and*
provenance columns) from a source store into a destination;
:func:`sync_stores` runs the merge both ways so two stores converge on
the union.  Both accept any mix of plain :class:`~repro.store.db.ResultStore`
files and :class:`~repro.store.shard.ShardedResultStore` directories --
routing is just :meth:`put_raw` on the destination.

Campaign and study *journals* merge with the same semantics: a name
both sides know must journal identical content (keys for campaigns,
``spec_key`` + keys for studies), otherwise :class:`StoreError`.  The
``jobs`` table never merges -- claim state (who is running what, with
which heartbeat) is meaningful only inside one deployment.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Tuple

from repro.errors import StoreError
from repro.obs.metrics import metrics as _obs_metrics
from repro.obs.state import STATE as _OBS
from repro.obs.trace import span
from repro.store.db import RESULT_COLUMNS, ResultStore

#: Store-merge telemetry: rows moved (or found identical) per merge.
_MERGE_ROWS = _obs_metrics().counter(
    "repro_store_merge_rows_total",
    "Result rows handled by store merges, by outcome",
    ("outcome",),
)


@dataclass(frozen=True)
class MergeReport:
    """What one :func:`merge_stores` call did (or, dry, *would* do).

    A dry run additionally names what a real merge would refuse on:
    ``conflicts`` holds content keys whose canonical bytes diverge
    between the stores, ``journal_conflicts`` the campaign/study names
    journaled with different content on each side.  A non-dry merge
    never populates these -- it raises :class:`StoreError` at the first
    one instead of writing past it.
    """

    source: str
    dest: str
    imported: int
    identical: int
    campaigns_imported: int
    campaigns_shared: int
    studies_imported: int
    studies_shared: int
    dry_run: bool = False
    conflicts: Tuple[str, ...] = field(default=())
    journal_conflicts: Tuple[str, ...] = field(default=())

    def summary(self) -> str:
        """One-line human-readable report."""
        verb = "would merge" if self.dry_run else "merged"
        imported = (
            f"{self.imported} row(s) to import"
            if self.dry_run
            else f"{self.imported} row(s) imported"
        )
        parts = [
            f"{verb} {self.source} -> {self.dest}: "
            f"{imported}, {self.identical} already present"
        ]
        if self.campaigns_imported or self.campaigns_shared:
            parts.append(
                f"campaigns: {self.campaigns_imported} imported, "
                f"{self.campaigns_shared} shared"
            )
        if self.studies_imported or self.studies_shared:
            parts.append(
                f"studies: {self.studies_imported} imported, "
                f"{self.studies_shared} shared"
            )
        if self.conflicts:
            parts.append(
                f"REFUSES: {len(self.conflicts)} diverging row(s) "
                f"({', '.join(k[:12] for k in self.conflicts[:4])}"
                f"{', ...' if len(self.conflicts) > 4 else ''})"
            )
        if self.journal_conflicts:
            parts.append(
                "REFUSES: journal conflict(s) "
                + ", ".join(self.journal_conflicts)
            )
        return "; ".join(parts)


def import_raw_rows(
    dest: ResultStore, rows: Iterable[Tuple], source: str = ""
) -> Tuple[int, int]:
    """Import raw :data:`RESULT_COLUMNS` rows into ``dest``.

    The incremental sibling of :func:`merge_stores`: same first-writer-
    wins :meth:`~repro.store.db.ResultStore.put_raw` semantics (a key
    collision with different canonical bytes raises
    :class:`StoreError`), same telemetry, but fed page by page -- this
    is what the distributed coordinator calls as each partition's
    result pages land, so rows are queryable long before the campaign
    finishes.  Returns ``(imported, identical)``.
    """
    imported = identical = 0
    for row in rows:
        if dest.put_raw(tuple(row), source=source):
            imported += 1
        else:
            identical += 1
    if _OBS.metrics_on:
        if imported:
            _MERGE_ROWS.inc(imported, outcome="imported")
        if identical:
            _MERGE_ROWS.inc(identical, outcome="identical")
    return imported, identical


def merge_stores(
    dest: ResultStore,
    source: ResultStore,
    journals: bool = True,
    dry_run: bool = False,
) -> MergeReport:
    """Import every row of ``source`` into ``dest``; return the tally.

    Result rows copy raw (byte- and provenance-preserving); colliding
    keys must match byte-for-byte or the merge dies with
    :class:`StoreError` naming both stores.  ``journals=False`` limits
    the merge to result rows (what partitioned campaign execution wants
    -- the canonical campaign journal already lives in the destination
    and the partitions' scratch journals should not follow it there).

    ``dry_run=True`` writes nothing: the report counts what a real
    merge would import, and -- instead of raising at the first
    divergence -- collects *every* conflicting key and journal name, so
    an operator can audit a merge before committing to it.

    Idempotent and kill-safe: every imported row is durable the moment
    its transaction commits, and re-running the merge just counts the
    survivors as already-present.
    """
    source_label = _store_label(source)
    dest_label = _store_label(dest)
    if dry_run:
        return _dry_run_report(dest, source, journals)
    with span("store.merge", source=source_label, dest=dest_label) as sp:
        imported, identical = import_raw_rows(
            dest, source.iter_raw(), source=source_label
        )
        campaigns = studies = shared_campaigns = shared_studies = 0
        if journals:
            campaigns, shared_campaigns = _merge_campaigns(dest, source)
            studies, shared_studies = _merge_studies(dest, source)
        sp.annotate(imported=imported, identical=identical)
    return MergeReport(
        source=source_label,
        dest=dest_label,
        imported=imported,
        identical=identical,
        campaigns_imported=campaigns,
        campaigns_shared=shared_campaigns,
        studies_imported=studies,
        studies_shared=shared_studies,
    )


def sync_stores(
    a: ResultStore, b: ResultStore, journals: bool = True, dry_run: bool = False
) -> Tuple[MergeReport, MergeReport]:
    """Merge both ways so ``a`` and ``b`` converge on the union."""
    return merge_stores(a, b, journals=journals, dry_run=dry_run), merge_stores(
        b, a, journals=journals, dry_run=dry_run
    )


def _dry_run_report(
    dest: ResultStore, source: ResultStore, journals: bool
) -> MergeReport:
    """What :func:`merge_stores` would do, computed read-only."""
    scenario_idx = RESULT_COLUMNS.index("scenario")
    payload_idx = RESULT_COLUMNS.index("payload")
    imported = identical = 0
    conflicts = []
    for row in source.iter_raw():
        held = dest.get_raw(row[0])
        if held is None:
            imported += 1
        elif (held[scenario_idx], held[payload_idx]) == (
            row[scenario_idx],
            row[payload_idx],
        ):
            identical += 1
        else:
            conflicts.append(str(row[0]))
    campaigns = studies = shared_campaigns = shared_studies = 0
    journal_conflicts = []
    if journals:
        campaigns, shared_campaigns, bad = _diff_campaigns(dest, source)
        journal_conflicts.extend(f"campaign {name!r}" for name in bad)
        studies, shared_studies, bad = _diff_studies(dest, source)
        journal_conflicts.extend(f"study {name!r}" for name in bad)
    return MergeReport(
        source=_store_label(source),
        dest=_store_label(dest),
        imported=imported,
        identical=identical,
        campaigns_imported=campaigns,
        campaigns_shared=shared_campaigns,
        studies_imported=studies,
        studies_shared=shared_studies,
        dry_run=True,
        conflicts=tuple(conflicts),
        journal_conflicts=tuple(journal_conflicts),
    )


def _diff_campaigns(
    dest: ResultStore, source: ResultStore
) -> Tuple[int, int, Tuple[str, ...]]:
    """(would import, shared, conflicting) campaign journal names."""
    src_conn = source._conn()
    dest_conn = dest._conn()
    imported = shared = 0
    conflicting = []
    for (name,) in src_conn.execute(
        "SELECT name FROM campaigns ORDER BY name"
    ).fetchall():
        held = dest_conn.execute(
            "SELECT 1 FROM campaigns WHERE name=?", (name,)
        ).fetchone()
        if held is None:
            imported += 1
            continue
        rows = [
            tuple(r)
            for r in src_conn.execute(
                "SELECT idx, key, scenario FROM campaign_scenarios "
                "WHERE campaign=? ORDER BY idx",
                (name,),
            )
        ]
        journaled = [
            tuple(r)
            for r in dest_conn.execute(
                "SELECT idx, key, scenario FROM campaign_scenarios "
                "WHERE campaign=? ORDER BY idx",
                (name,),
            )
        ]
        if journaled == rows:
            shared += 1
        else:
            conflicting.append(name)
    return imported, shared, tuple(conflicting)


def _diff_studies(
    dest: ResultStore, source: ResultStore
) -> Tuple[int, int, Tuple[str, ...]]:
    """(would import, shared, conflicting) study journal names."""
    src_conn = source._conn()
    dest_conn = dest._conn()
    imported = shared = 0
    conflicting = []
    for name, spec_key, keys_doc in src_conn.execute(
        "SELECT name, spec_key, keys FROM studies ORDER BY name"
    ).fetchall():
        held = dest_conn.execute(
            "SELECT spec_key, keys FROM studies WHERE name=?", (name,)
        ).fetchone()
        if held is None:
            imported += 1
        elif (held[0], json.loads(held[1])) == (spec_key, json.loads(keys_doc)):
            shared += 1
        else:
            conflicting.append(name)
    return imported, shared, tuple(conflicting)


def _store_label(store: ResultStore) -> str:
    return str(getattr(store, "root", store.path))


def _merge_campaigns(
    dest: ResultStore, source: ResultStore
) -> Tuple[int, int]:
    """Copy campaign journals ``source`` has and ``dest`` lacks."""
    imported = shared = 0
    src_conn = source._conn()
    for name, src, total, created_at, created_unix in src_conn.execute(
        "SELECT name, source, total, created_at, created_unix "
        "FROM campaigns ORDER BY name"
    ).fetchall():
        rows = src_conn.execute(
            "SELECT idx, key, scenario FROM campaign_scenarios "
            "WHERE campaign=? ORDER BY idx",
            (name,),
        ).fetchall()
        conn = dest._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            existing = conn.execute(
                "SELECT 1 FROM campaigns WHERE name=?", (name,)
            ).fetchone()
            if existing is None:
                conn.execute(
                    "INSERT INTO campaigns(name, source, total, created_at, "
                    "created_unix) VALUES (?, ?, ?, ?, ?)",
                    (name, src, total, created_at, created_unix),
                )
                conn.executemany(
                    "INSERT INTO campaign_scenarios(campaign, idx, key, "
                    "scenario) VALUES (?, ?, ?, ?)",
                    [(name, idx, key, doc) for idx, key, doc in rows],
                )
                imported += 1
                journaled = None
            else:
                journaled = conn.execute(
                    "SELECT idx, key, scenario FROM campaign_scenarios "
                    "WHERE campaign=? ORDER BY idx",
                    (name,),
                ).fetchall()
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if journaled is not None:
            if [tuple(r) for r in journaled] != [tuple(r) for r in rows]:
                raise StoreError(
                    f"campaign {name!r} exists in both "
                    f"{_store_label(dest)} and {_store_label(source)} "
                    f"with different journaled scenarios; rename one "
                    f"before merging"
                )
            shared += 1
    return imported, shared


def _merge_studies(dest: ResultStore, source: ResultStore) -> Tuple[int, int]:
    """Copy study journals ``source`` has and ``dest`` lacks."""
    imported = shared = 0
    src_conn = source._conn()
    columns = (
        "name, spec, spec_key, design_name, points, keys, total, "
        "created_at, created_unix"
    )
    for row in src_conn.execute(
        f"SELECT {columns} FROM studies ORDER BY name"
    ).fetchall():
        name, spec_key, keys_doc = row[0], row[2], row[5]
        conn = dest._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            existing = conn.execute(
                "SELECT spec_key, keys FROM studies WHERE name=?", (name,)
            ).fetchone()
            if existing is None:
                conn.execute(
                    f"INSERT INTO studies({columns}) "
                    f"VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    tuple(row),
                )
                imported += 1
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if existing is not None:
            if (existing[0], json.loads(existing[1])) != (
                spec_key,
                json.loads(keys_doc),
            ):
                raise StoreError(
                    f"study {name!r} exists in both {_store_label(dest)} "
                    f"and {_store_label(source)} with a different spec or "
                    f"design; rename one before merging"
                )
            shared += 1
    return imported, shared
